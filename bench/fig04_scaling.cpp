/**
 * @file
 * Figure 4: optimistic, average, and pessimistic scaling trends for
 * the aggregate transmit and receive delays, 45 nm down to 16 nm.
 */

#include "bench_util.hpp"
#include "optical/scaling.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    DeviceScalingModel model;

    TextTable t({"node [nm]", "tx opt [ps]", "tx avg [ps]",
                 "tx pess [ps]", "rx opt [ps]", "rx avg [ps]",
                 "rx pess [ps]"});
    for (double node : {45.0, 40.0, 32.0, 28.0, 22.0, 20.0, 18.0,
                        16.0}) {
        t.addRow({TextTable::num(node, 0),
                  TextTable::num(model.txDelayPs(Scaling::Optimistic,
                                                 node), 2),
                  TextTable::num(model.txDelayPs(Scaling::Average,
                                                 node), 2),
                  TextTable::num(model.txDelayPs(Scaling::Pessimistic,
                                                 node), 2),
                  TextTable::num(model.rxDelayPs(Scaling::Optimistic,
                                                 node), 2),
                  TextTable::num(model.rxDelayPs(Scaling::Average,
                                                 node), 2),
                  TextTable::num(model.rxDelayPs(Scaling::Pessimistic,
                                                 node), 2)});
    }
    bench::emit(opts,
                "Fig 4: transmit/receive delay scaling "
                "(log/linear/exp fits; paper 16nm: tx 8.0-19.4ps, "
                "rx 1.8-3.7ps)",
                t);
    return 0;
}
