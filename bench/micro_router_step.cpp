/**
 * @file
 * Google-benchmark microbenchmarks of the two simulators' step()
 * throughput under uniform load -- useful for tracking simulator
 * performance regressions, not a paper artifact.
 */

#include <benchmark/benchmark.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace phastlane;

template <typename Net, typename Params>
void
stepUnderLoad(benchmark::State &state, Params params, double rate)
{
    Net net(params);
    Rng rng(7);
    PacketId id = 1;
    for (auto _ : state) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (rng.bernoulli(rate)) {
                Packet p;
                p.id = id++;
                p.src = n;
                p.dst = traffic::destination(
                    traffic::Pattern::UniformRandom, n, net.mesh(),
                    rng);
                p.createdAt = net.now();
                net.inject(p);
            }
        }
        net.step();
        benchmark::DoNotOptimize(net.inFlight());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            net.nodeCount());
}

void
BM_PhastlaneStep(benchmark::State &state)
{
    core::PhastlaneParams p;
    stepUnderLoad<core::PhastlaneNetwork>(
        state, p, static_cast<double>(state.range(0)) / 100.0);
}

void
BM_ElectricalStep(benchmark::State &state)
{
    electrical::ElectricalParams p;
    stepUnderLoad<electrical::ElectricalNetwork>(
        state, p, static_cast<double>(state.range(0)) / 100.0);
}

} // namespace

BENCHMARK(BM_PhastlaneStep)->Arg(2)->Arg(10)->Arg(20);
BENCHMARK(BM_ElectricalStep)->Arg(2)->Arg(10)->Arg(20);
