# Empty dependencies file for fig08_area.
# This may be replaced when dependencies are built.
