/**
 * @file
 * Trace ring and exporter tests: wrap/shed accounting, per-kind
 * whole-run totals that survive overflow, Chrome trace_event JSON
 * structure, and the heatmap recorder's snapshot/CSV output.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/geometry.hpp"
#include "obs/heatmap.hpp"
#include "obs/trace.hpp"

namespace phastlane::obs {
namespace {

TraceRecord
rec(Cycle cycle, TraceEvent kind, PacketId pkt = 1, NodeId node = 0,
    uint64_t branch = 0)
{
    TraceRecord r;
    r.cycle = cycle;
    r.kind = kind;
    r.packet = pkt;
    r.node = node;
    r.branch = branch;
    return r;
}

TEST(TraceRing, FillsThenWrapsOldestFirst)
{
    TraceRing ring(4);
    for (Cycle c = 0; c < 6; ++c)
        ring.push(rec(c, TraceEvent::Pass));
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.shedRecords(), 2u);
    const auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // The two oldest records (cycles 0, 1) were overwritten.
    for (size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].cycle, static_cast<Cycle>(i + 2));
}

TEST(TraceRing, KindCountsSurviveOverflow)
{
    TraceRing ring(8);
    for (int i = 0; i < 100; ++i)
        ring.push(rec(i, TraceEvent::Deliver));
    for (int i = 0; i < 37; ++i)
        ring.push(rec(i, TraceEvent::Drop));
    EXPECT_EQ(ring.kindCount(TraceEvent::Deliver), 100u);
    EXPECT_EQ(ring.kindCount(TraceEvent::Drop), 37u);
    EXPECT_EQ(ring.kindCount(TraceEvent::Launch), 0u);
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.shedRecords(), 129u);
}

TEST(TraceRing, EveryKindHasAName)
{
    for (int k = 0; k < kTraceEventKinds; ++k) {
        const char *name =
            traceEventName(static_cast<TraceEvent>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

/** Minimal structural JSON scan: balanced braces/brackets outside
 *  strings, and no trailing comma before a closer. */
void
expectWellFormedJson(const std::string &json)
{
    int depth = 0;
    bool in_string = false;
    bool escape = false;
    char last_significant = '\0';
    for (char c : json) {
        if (in_string) {
            if (escape)
                escape = false;
            else if (c == '\\')
                escape = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
            last_significant = c;
            continue;
        }
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
            EXPECT_NE(last_significant, ',')
                << "trailing comma before closer";
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            last_significant = c;
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmitsLoadableStructure)
{
    const MeshTopology mesh(2, 2);
    TraceRing ring(64);
    ring.push(rec(1, TraceEvent::Inject, 7, 0));
    ring.push(rec(2, TraceEvent::Launch, 7, 0, 42));
    ring.push(rec(3, TraceEvent::Pass, 7, 1, 42));
    ring.push(rec(4, TraceEvent::Tap, 7, 1, 42));
    {
        TraceRecord d = rec(5, TraceEvent::Deliver, 7, 3);
        d.aux = 4; // latency
        ring.push(d);
    }
    ring.push(rec(5, TraceEvent::BranchFinal, 7, 3, 42));
    {
        TraceRecord s = rec(6, TraceEvent::Sample);
        s.packet = 3; // in-flight
        s.branch = 1; // buffered
        ring.push(s);
    }

    const std::string json = toChromeTrace(ring, mesh);
    expectWellFormedJson(json);
    EXPECT_EQ(json.find("{"), 0u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Router rows are labelled with coordinates for the viewer.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("router 3 (1,1)"), std::string::npos);
    // The branch flight is a nestable async span keyed by branch id.
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    // Counter samples and the delivery instant are present.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"latency\":4"), std::string::npos);
    EXPECT_NE(json.find("shed_records"), std::string::npos);
}

TEST(ChromeTrace, EmptyRingStillValid)
{
    const MeshTopology mesh(2, 2);
    TraceRing ring(4);
    const std::string json = toChromeTrace(ring, mesh);
    expectWellFormedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Heatmap, AccumulatesAndSnapshots)
{
    const MeshTopology mesh(2, 2);
    HeatmapRecorder hm(mesh);
    hm.addLaunch(0);
    hm.addLaunch(0);
    hm.addDrop(3);
    hm.addTurnLost(1);
    hm.addInterim(2);
    hm.snapshot(100, [](NodeId n) { return n == 1 ? 5 : 0; });
    hm.addLaunch(0);
    hm.snapshot(200, [](NodeId) { return 0; });

    ASSERT_EQ(hm.snapshots().size(), 2u);
    const auto &s0 = hm.snapshots()[0];
    EXPECT_EQ(s0.cycle, 100u);
    ASSERT_EQ(s0.cells.size(), 4u);
    EXPECT_EQ(s0.cells[0].launches, 2u);
    EXPECT_EQ(s0.cells[1].bufferDepth, 5u);
    EXPECT_EQ(s0.cells[1].turnsLost, 1u);
    EXPECT_EQ(s0.cells[2].interimAccepts, 1u);
    EXPECT_EQ(s0.cells[3].drops, 1u);
    // Counters are cumulative across snapshots.
    EXPECT_EQ(hm.snapshots()[1].cells[0].launches, 3u);

    const std::string csv = hm.toCsv();
    EXPECT_EQ(csv.find("cycle,router,x,y,depth,drops,turns_lost,"
                       "interim,launches"),
              0u);
    EXPECT_NE(csv.find("\n100,1,1,0,5,0,1,0,0"), std::string::npos);
    expectWellFormedJson(hm.toJson());
}

} // namespace
} // namespace phastlane::obs
