/**
 * @file
 * Exponential-backoff edge cases. Pins the backoffWindow() contract
 * (the documented cap is honoured even above 63 — the old code
 * clamped the exponent at 6 before applying the cap, silently
 * limiting every window to 63 cycles) and proves the optimized
 * network and the reference oracle stay in lockstep across the
 * backoffBase/backoffCap matrix, including the RNG draw-order rule
 * that jitter is drawn only when the window is positive.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "check/differential.hpp"
#include "core/params.hpp"

namespace phastlane::core {
namespace {

PhastlaneParams
backoffParams(int base, int cap)
{
    PhastlaneParams p;
    p.exponentialBackoff = true;
    p.backoffBase = base;
    p.backoffCap = cap;
    return p;
}

TEST(BackoffWindow, DisabledWithoutExponentialFlag)
{
    PhastlaneParams p;
    p.exponentialBackoff = false;
    p.backoffCap = 1000;
    for (int attempts = 0; attempts < 10; ++attempts)
        EXPECT_EQ(backoffWindow(p, attempts), 0);
}

TEST(BackoffWindow, ZeroBeforeFirstRetry)
{
    const auto p = backoffParams(0, 64);
    EXPECT_EQ(backoffWindow(p, 0), 0);
    EXPECT_EQ(backoffWindow(p, -1), 0);
}

TEST(BackoffWindow, GrowsAsPowersOfTwoMinusOne)
{
    const auto p = backoffParams(0, 1 << 20);
    EXPECT_EQ(backoffWindow(p, 1), 1);
    EXPECT_EQ(backoffWindow(p, 2), 3);
    EXPECT_EQ(backoffWindow(p, 3), 7);
    EXPECT_EQ(backoffWindow(p, 6), 63);
    EXPECT_EQ(backoffWindow(p, 7), 127);
    EXPECT_EQ(backoffWindow(p, 10), 1023);
}

TEST(BackoffWindow, CapIsHonouredAsDocumented)
{
    // cap = 0: no window, so no RNG draw at all.
    EXPECT_EQ(backoffWindow(backoffParams(0, 0), 5), 0);
    // cap = 1: every retry jitters over {0, 1}.
    EXPECT_EQ(backoffWindow(backoffParams(0, 1), 1), 1);
    EXPECT_EQ(backoffWindow(backoffParams(0, 1), 9), 1);
    // cap = 63 matches the natural window at attempts = 6.
    EXPECT_EQ(backoffWindow(backoffParams(0, 63), 6), 63);
    EXPECT_EQ(backoffWindow(backoffParams(0, 63), 7), 63);
    // The regression this file pins: caps above 63 must widen the
    // window past 63 once attempts > 6.
    EXPECT_EQ(backoffWindow(backoffParams(0, 64), 7), 64);
    EXPECT_EQ(backoffWindow(backoffParams(0, 64), 50), 64);
    EXPECT_EQ(backoffWindow(backoffParams(0, 1000), 7), 127);
    EXPECT_EQ(backoffWindow(backoffParams(0, 1000), 10), 1000);
    EXPECT_EQ(backoffWindow(backoffParams(0, 1000), 61), 1000);
}

TEST(BackoffWindow, HugeAttemptCountsDoNotOverflow)
{
    const auto p = backoffParams(0, INT32_MAX);
    const int64_t w62 = backoffWindow(p, 62);
    EXPECT_EQ(backoffWindow(p, 63), w62);
    EXPECT_EQ(backoffWindow(p, 1000), w62);
    EXPECT_GT(w62, 0);
    EXPECT_EQ(w62, static_cast<int64_t>(INT32_MAX));
}

class BackoffLockstep : public ::testing::TestWithParam<int>
{
};

TEST_P(BackoffLockstep, OptimizedMatchesReferenceAcrossCaps)
{
    // A congested 4x4 mesh with a single buffer entry per router
    // forces repeated drops, so retransmissions walk well into the
    // exponential schedule; any divergence in window math or RNG draw
    // order between the two implementations fails the diff.
    check::StreamConfig sc;
    sc.rate = 0.5;
    sc.broadcastFraction = 0.2;
    sc.cycles = 120;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        auto p = backoffParams(/*base=*/2, GetParam());
        p.meshWidth = 4;
        p.meshHeight = 4;
        p.routerBufferEntries = 1;
        p.seed = seed;
        sc.seed = seed;
        const auto stream = check::makeStream(p, sc);
        ASSERT_FALSE(stream.empty());
        const auto result = check::runLockstep(p, stream, 60000);
        EXPECT_TRUE(result.ok)
            << "cap=" << GetParam() << " seed=" << seed << ": "
            << result.message;
    }
}

INSTANTIATE_TEST_SUITE_P(Caps, BackoffLockstep,
                         ::testing::Values(0, 1, 63, 64, 1000));

TEST(BackoffLockstepExtra, BaseWithoutJitterStaysDeterministic)
{
    // backoffBase > 0 with cap = 0 must not consult the RNG: two runs
    // and the reference must agree exactly.
    auto p = backoffParams(/*base=*/5, /*cap=*/0);
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 1;
    p.seed = 9;
    check::StreamConfig sc;
    sc.rate = 0.5;
    sc.cycles = 100;
    sc.seed = 9;
    const auto stream = check::makeStream(p, sc);
    const auto first = check::runLockstep(p, stream, 60000);
    const auto second = check::runLockstep(p, stream, 60000);
    EXPECT_TRUE(first.ok) << first.message;
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.message, second.message);
}

} // namespace
} // namespace phastlane::core
