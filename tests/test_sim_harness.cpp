/**
 * @file
 * Simulation harness tests: the named configuration registry and the
 * injection-rate sweep.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "sim/configs.hpp"
#include "sim/sweep.hpp"

namespace phastlane::sim {
namespace {

TEST(Configs, StandardListMatchesPaperSection5)
{
    const auto configs = standardConfigs();
    ASSERT_EQ(configs.size(), 8u);
    const char *names[] = {"Optical4", "Optical5", "Optical8",
                           "Optical4B32", "Optical4B64",
                           "Optical4IB", "Electrical2",
                           "Electrical3"};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(configs[i].name, names[i]);
}

TEST(Configs, OpticalHopLimits)
{
    for (auto [name, hops] :
         {std::pair{"Optical4", 4}, {"Optical5", 5},
          {"Optical8", 8}}) {
        auto net = makeConfig(name).make(1);
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        ASSERT_NE(pl, nullptr) << name;
        EXPECT_EQ(pl->params().maxHopsPerCycle, hops);
        EXPECT_EQ(pl->params().routerBufferEntries, 10);
    }
}

TEST(Configs, BufferVariants)
{
    auto b32 = makeConfig("Optical4B32").make(1);
    auto b64 = makeConfig("Optical4B64").make(1);
    auto ib = makeConfig("Optical4IB").make(1);
    EXPECT_EQ(dynamic_cast<core::PhastlaneNetwork *>(b32.get())
                  ->params().routerBufferEntries, 32);
    EXPECT_EQ(dynamic_cast<core::PhastlaneNetwork *>(b64.get())
                  ->params().routerBufferEntries, 64);
    EXPECT_TRUE(dynamic_cast<core::PhastlaneNetwork *>(ib.get())
                    ->params().infiniteBuffers());
}

TEST(Configs, ElectricalDelays)
{
    auto e2 = makeConfig("Electrical2").make(1);
    auto e3 = makeConfig("Electrical3").make(1);
    EXPECT_EQ(dynamic_cast<electrical::ElectricalNetwork *>(e2.get())
                  ->params().routerDelay, 2);
    EXPECT_EQ(dynamic_cast<electrical::ElectricalNetwork *>(e3.get())
                  ->params().routerDelay, 3);
}

TEST(Configs, PowerEvaluatorsWork)
{
    for (const auto &cfg : standardConfigs()) {
        auto net = cfg.make(1);
        Packet p;
        p.id = 1;
        p.src = 0;
        p.dst = 5;
        ASSERT_TRUE(net->inject(p));
        while (net->inFlight() > 0)
            net->step();
        const auto power = cfg.power(*net, net->now());
        EXPECT_GT(power.totalW, 0.0) << cfg.name;
    }
}

TEST(Configs, UnknownNameDies)
{
    EXPECT_DEATH(makeConfig("NotAConfig"), "unknown");
}

TEST(Sweep, DefaultGridIsIncreasing)
{
    const auto grid = defaultRateGrid();
    ASSERT_GT(grid.size(), 5u);
    for (size_t i = 1; i < grid.size(); ++i)
        EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(Sweep, ProducesMonotoneLoadPoints)
{
    SweepConfig sc;
    sc.pattern = traffic::Pattern::Transpose;
    sc.rates = {0.02, 0.1, 0.5};
    sc.warmupCycles = 200;
    sc.measureCycles = 1000;
    const auto pts = runSweep(makeConfig("Electrical3"), sc);
    ASSERT_GE(pts.size(), 2u);
    EXPECT_LT(pts.front().result.avgLatency,
              pts.back().result.avgLatency);
}

TEST(Sweep, StopsAtSaturation)
{
    SweepConfig sc;
    sc.pattern = traffic::Pattern::BitComplement;
    sc.rates = {0.05, 0.5, 0.6, 0.7};
    sc.warmupCycles = 200;
    sc.measureCycles = 1500;
    const auto pts = runSweep(makeConfig("Electrical3"), sc);
    ASSERT_GE(pts.size(), 2u);
    EXPECT_TRUE(pts.back().result.saturated);
    EXPECT_LT(pts.size(), sc.rates.size() + 1);
}

TEST(Sweep, SaturationThroughputIsMaxAccepted)
{
    SweepConfig sc;
    sc.pattern = traffic::Pattern::Transpose;
    sc.rates = {0.02, 0.1};
    sc.warmupCycles = 200;
    sc.measureCycles = 1000;
    const auto pts = runSweep(makeConfig("Optical4"), sc);
    const double sat = saturationThroughput(pts);
    for (const auto &pt : pts)
        EXPECT_LE(pt.result.acceptedRate, sat + 1e-12);
}

} // namespace
} // namespace phastlane::sim
