file(REMOVE_RECURSE
  "CMakeFiles/pltraffic.dir/coherence.cpp.o"
  "CMakeFiles/pltraffic.dir/coherence.cpp.o.d"
  "CMakeFiles/pltraffic.dir/patterns.cpp.o"
  "CMakeFiles/pltraffic.dir/patterns.cpp.o.d"
  "CMakeFiles/pltraffic.dir/splash.cpp.o"
  "CMakeFiles/pltraffic.dir/splash.cpp.o.d"
  "CMakeFiles/pltraffic.dir/synthetic.cpp.o"
  "CMakeFiles/pltraffic.dir/synthetic.cpp.o.d"
  "CMakeFiles/pltraffic.dir/trace.cpp.o"
  "CMakeFiles/pltraffic.dir/trace.cpp.o.d"
  "libpltraffic.a"
  "libpltraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pltraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
