#include "common/config.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace phastlane {

namespace {

/** Strip up to two leading dashes. */
std::string
stripDashes(const std::string &s)
{
    size_t i = 0;
    while (i < s.size() && i < 2 && s[i] == '-')
        ++i;
    return s.substr(i);
}

} // namespace

Config
Config::fromArgs(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const bool dashed = arg.rfind("--", 0) == 0;
        arg = stripDashes(arg);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (dashed && i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            cfg.set(arg, argv[++i]);
        } else {
            cfg.set(arg, "true");
        }
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

int64_t
Config::getInt(const std::string &key, int64_t def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s' is not an integer: '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s' is not a number: '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::vector<std::string>
Config::unknownKeys(const std::vector<std::string> &allowed) const
{
    std::vector<std::string> out;
    for (const auto &kv : values_) {
        bool known = false;
        for (const auto &a : allowed) {
            if (kv.first == a) {
                known = true;
                break;
            }
        }
        if (!known)
            out.push_back(kv.first);
    }
    return out;
}

void
Config::requireKnown(const std::vector<std::string> &allowed) const
{
    const auto unknown = unknownKeys(allowed);
    if (unknown.empty())
        return;
    std::string list;
    for (const auto &k : unknown) {
        if (!list.empty())
            list += ", ";
        list += "--" + k;
    }
    fatal("unknown flag(s): %s", list.c_str());
}

} // namespace phastlane
