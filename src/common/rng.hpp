/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulations must be reproducible across platforms and standard
 * library versions, so we implement xoshiro256** (Blackman & Vigna)
 * seeded through SplitMix64 rather than relying on std::mt19937
 * distributions (whose std::uniform_*_distribution results are not
 * portable).
 */

#ifndef PHASTLANE_COMMON_RNG_HPP
#define PHASTLANE_COMMON_RNG_HPP

#include <array>
#include <cstdint>

#include "common/log.hpp"

namespace phastlane {

/**
 * xoshiro256** PRNG with SplitMix64 seeding and portable distribution
 * helpers. The core draws are inline: simulation hot loops draw per
 * node per cycle, and the call overhead of out-of-line definitions was
 * measurable in profiles.
 */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi)
    {
        PL_ASSERT(lo <= hi,
                  "uniformInt bounds inverted (%lld > %lld)",
                  static_cast<long long>(lo),
                  static_cast<long long>(hi));
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        if (span == 0) // full 64-bit range
            return static_cast<int64_t>(next());
        // Rejection sampling to avoid modulo bias.
        const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
        uint64_t v;
        do {
            v = next();
        } while (v >= limit);
        return lo + static_cast<int64_t>(v % span);
    }

    /** Bernoulli trial with probability @p p (clamped to [0,1]). */
    bool bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Exponentially distributed value with given mean (> 0). */
    double exponential(double mean);

    /**
     * Geometric number of failures before the first success with
     * success probability @p p in (0, 1]; returns 0 when p >= 1.
     */
    uint64_t geometric(double p);

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_RNG_HPP
