#include "sim/multisim.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "core/network.hpp"

namespace phastlane::sim {

bool
batchable(const Network &net)
{
    const auto *pl = dynamic_cast<const core::PhastlaneNetwork *>(&net);
    return pl != nullptr && core::NetworkBatch::eligible(*pl);
}

void
MultiSim::add(Job &job)
{
    PL_ASSERT(batchable(job.network()),
              "job network is not batch-eligible");
    jobs_.push_back(&job);
}

void
MultiSim::runAll()
{
    // Gang jobs of the same mesh size together (registration order is
    // preserved within a gang; jobs are independent, so cross-gang
    // execution order is unobservable). NetworkBatch keys shape on
    // the node count — that is all the shared scratch depends on.
    std::vector<Job *> pending = jobs_;
    while (!pending.empty()) {
        const int shape = pending.front()->network().nodeCount();
        std::vector<Job *> gang;
        std::vector<Job *> rest;
        for (Job *j : pending) {
            if (j->network().nodeCount() == shape &&
                static_cast<int>(gang.size()) < batchLimit_) {
                gang.push_back(j);
            } else {
                rest.push_back(j);
            }
        }
        runGang(gang);
        pending.swap(rest);
    }
    jobs_.clear();
}

void
MultiSim::runGang(const std::vector<Job *> &gang)
{
    core::NetworkBatch batch;
    for (Job *j : gang)
        batch.attach(j->network());

    // Round-robin in quanta of kCycleQuantum cycles per instance: the
    // gang still advances together (no instance runs ahead by more
    // than one quantum), but each instance's hot state stays
    // cache-resident for a whole quantum instead of being evicted by
    // the other B-1 instances between consecutive cycles. Jobs are
    // independent, so the interleaving is unobservable in the results.
    std::vector<uint8_t> live(gang.size(), 1);
    size_t live_count = gang.size();
    while (live_count > 0) {
        for (size_t i = 0; i < gang.size(); ++i) {
            if (!live[i])
                continue;
            Job &job = *gang[i];
            for (int q = 0; q < kCycleQuantum; ++q) {
                if (job.done()) {
                    live[i] = 0;
                    --live_count;
                    break;
                }
                job.preStep();
                batch.stepInstance(i);
                job.postStep();
            }
        }
    }
    batch.detachAll();
}

} // namespace phastlane::sim
