/**
 * @file
 * Bit-plane arithmetic for the word-parallel wavefront engine
 * (DESIGN.md §11).
 *
 * Per-(router, port) boolean state — claims, requests, grants — is
 * packed into planes of 64-bit words, one bit per router (row-major,
 * bit = y * width + x) and one plane per mesh port. On these planes:
 *
 *  - wavefront propagation is a shift/mask sweep: moving every packet
 *    one hop east is a 1-bit shift of the plane with the east-edge
 *    column masked out so no row bleeds into the next (shiftToward);
 *  - straight-over-turn priority resolution is AND/OR/ANDNOT algebra:
 *    a port grants in one word op per 64 routers when it has exactly
 *    one requester and no standing claim
 *    (grant = once & ~multi & ~claimed);
 *  - drop/contention detection and iteration are popcount/ctz scans
 *    in ascending router order, which is exactly the (router, port)
 *    order the scalar reference resolves contested ports in.
 *
 * The helpers here are deliberately branch-light and allocation-free;
 * PhastlaneNetwork's BitplaneFcfs engine composes them and must stay
 * bit-identical to the scalar SubstepFcfs reference (§7 oracle +
 * golden pins enforce this).
 *
 * The word-combining kernels have a portable scalar core and an AVX2
 * path compiled in with -DPL_ENABLE_AVX2=ON (256-bit ops, 4 plane
 * words per instruction); both produce identical planes, and the
 * portable path stays the CI-tested default.
 */

#ifndef PHASTLANE_CORE_BITPLANE_HPP
#define PHASTLANE_CORE_BITPLANE_HPP

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.hpp"

#if defined(PL_HAVE_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace phastlane::core {

/** 64-bit words needed for one bit per node. */
constexpr int
bitplaneWords(int node_count)
{
    return (node_count + 63) / 64;
}

namespace bitplane {

/** dst = a & ~b & ~c, @p words words (the grant formula). */
inline void
andnot2(const uint64_t *a, const uint64_t *b, const uint64_t *c,
        uint64_t *dst, int words)
{
    int i = 0;
#if defined(PL_HAVE_AVX2) && defined(__AVX2__)
    for (; i + 4 <= words; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i vc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(c + i));
        // andnot(x, y) = ~x & y.
        const __m256i r = _mm256_andnot_si256(
            vc, _mm256_andnot_si256(vb, va));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), r);
    }
#endif
    for (; i < words; ++i)
        dst[i] = a[i] & ~b[i] & ~c[i];
}

/** dst |= src, @p words words. */
inline void
orInto(const uint64_t *src, uint64_t *dst, int words)
{
    int i = 0;
#if defined(PL_HAVE_AVX2) && defined(__AVX2__)
    for (; i + 4 <= words; i += 4) {
        const __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i vd = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(vs, vd));
    }
#endif
    for (; i < words; ++i)
        dst[i] |= src[i];
}

/** dst = a & b, @p words words. */
inline void
andInto(const uint64_t *a, const uint64_t *b, uint64_t *dst, int words)
{
    int i = 0;
#if defined(PL_HAVE_AVX2) && defined(__AVX2__)
    for (; i + 4 <= words; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(va, vb));
    }
#endif
    for (; i < words; ++i)
        dst[i] = a[i] & b[i];
}

/** True when any of the @p words words is nonzero. */
inline bool
anySet(const uint64_t *p, int words)
{
    uint64_t acc = 0;
    for (int i = 0; i < words; ++i)
        acc |= p[i];
    return acc != 0;
}

/** Total set bits over @p words words. */
inline int
popcount(const uint64_t *p, int words)
{
    int total = 0;
    for (int i = 0; i < words; ++i)
        total += __builtin_popcountll(p[i]);
    return total;
}

} // namespace bitplane

/**
 * Geometry of bit planes over a width x height mesh: the valid-bit
 * mask, per-direction interior masks, and the masked-shift sweep that
 * moves a whole plane of packets one hop without wrapping between
 * rows or off the mesh.
 */
class BitPlaneMesh
{
  public:
    BitPlaneMesh(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int nodeCount() const { return width_ * height_; }
    int words() const { return words_; }

    /** Bits < nodeCount(). */
    const uint64_t *validMask() const { return valid_.data(); }

    /** Bits whose neighbor in @p dir exists (edge column/row off). */
    const uint64_t *interiorMask(Port dir) const
    {
        return interior_[portIndex(dir)].data();
    }

    /**
     * dst[neighbor(n, dir)] = src[n] for every n with a neighbor in
     * @p dir; source bits on the facing mesh edge are dropped, never
     * wrapped into the adjacent row/column. src and dst must not
     * alias. Each is words() long.
     */
    void shiftToward(Port dir, const uint64_t *src,
                     uint64_t *dst) const;

  private:
    /** Left-shift @p src by @p bits into dst (toward higher ids). */
    void shiftUp(const uint64_t *src, uint64_t *dst, int bits) const;
    /** Right-shift @p src by @p bits into dst (toward lower ids). */
    void shiftDown(const uint64_t *src, uint64_t *dst, int bits) const;

    int width_;
    int height_;
    int words_;
    std::vector<uint64_t> valid_;
    std::array<std::vector<uint64_t>, kMeshPorts> interior_;
    /** Reusable masked-copy buffer for multi-word shifts (sized once,
     *  never shrunk, so steady-state sweeps allocate nothing). */
    mutable std::vector<uint64_t> scratch_;
};

/**
 * kMeshPorts bit planes over one mesh — the packed form of a
 * per-(router, port) boolean table. Plane-major storage so one
 * plane's words are contiguous for the word-parallel kernels.
 */
class PortPlanes
{
  public:
    PortPlanes() = default;
    explicit PortPlanes(int node_count)
        : words_(bitplaneWords(node_count)),
          bits_(static_cast<size_t>(words_) * kMeshPorts, 0)
    {
    }

    int words() const { return words_; }

    uint64_t *plane(Port p)
    {
        return bits_.data() +
               static_cast<size_t>(portIndex(p)) * words_;
    }
    const uint64_t *plane(Port p) const
    {
        return bits_.data() +
               static_cast<size_t>(portIndex(p)) * words_;
    }

    bool test(NodeId n, Port p) const
    {
        return (plane(p)[n >> 6] >> (n & 63)) & 1u;
    }

    void set(NodeId n, Port p)
    {
        plane(p)[n >> 6] |= uint64_t{1} << (n & 63);
    }

    /**
     * Set bit (n, p); returns true when it was already set (the
     * one-op duplicate probe behind the once/multi request planes).
     */
    bool testAndSet(NodeId n, Port p)
    {
        uint64_t &w = plane(p)[n >> 6];
        const uint64_t m = uint64_t{1} << (n & 63);
        const bool was = (w & m) != 0;
        w |= m;
        return was;
    }

    /** Zero every plane (a handful of words, not bytes-per-port). */
    void clear() { std::memset(bits_.data(), 0, bits_.size() * 8); }

    /** Set bits across all four planes. */
    int popcount() const
    {
        return bitplane::popcount(bits_.data(),
                                  static_cast<int>(bits_.size()));
    }

  private:
    int words_ = 0;
    std::vector<uint64_t> bits_;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_BITPLANE_HPP
