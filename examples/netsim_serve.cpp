/**
 * @file
 * The simulation daemon and its tooling (DESIGN.md §15): a
 * long-running server that multiplexes binary workload streams from
 * concurrent clients over a local (Unix-domain) socket onto one live
 * network, plus the surrounding trace utilities. A served run is
 * byte-identical to an offline replay of the canonically merged
 * client traces.
 *
 *   # serve two clients on one Optical4 instance
 *   ./examples/netsim_serve --serve /tmp/pl.sock --clients 2 \
 *       --config Optical4 --metrics-out live_metrics.json \
 *       --snapshot-interval 4096
 *
 *   # stream a trace into the daemon (one process per client)
 *   ./examples/netsim_serve --connect /tmp/pl.sock --client-id 0 \
 *       --trace a.pltrace
 *
 *   # generate / merge / replay binary traces offline
 *   ./examples/netsim_serve --gen a.pltrace --records 1000000 \
 *       --rate 0.05 --seed 1
 *   ./examples/netsim_serve --merge all.pltrace --inputs a.pltrace,b.pltrace
 *   ./examples/netsim_serve --replay all.pltrace --config Optical4
 *
 * Wire protocol (framed over SOCK_STREAM):
 *   frame  := u32le length | u8 type | payload[length-1]
 *   HELLO  (1) c->s: varint clientId
 *   SUBMIT (2) c->s: varint seq | varint recordCount | chunk payload
 *              (trace_stream.hpp chunk encoding, self-contained)
 *   FIN    (3) c->s: varint seq
 *   ACK    (4) s->c: varint seq | u8 duplicateFlag
 *   RESULT (5) s->c: canonical replay report text
 *   ERROR  (6) s->c: error text
 *   BUSY   (7) s->c: keepalive -- an ack is deferred for
 *              backpressure, not lost; do not retransmit
 *
 * Clients run stop-and-wait with retransmission (the ReliableNic
 * idiom): a SUBMIT is resent until its ACK arrives; the server
 * deduplicates by per-client sequence number, so injection is
 * at-most-once no matter how often a chunk is retried. A BUSY frame
 * resets the client's retry budget: over the reliable local stream
 * the only reason an ack is late is deliberate deferral, so the
 * client just keeps waiting instead of resending the chunk.
 *
 * A connection that errors before a successful HELLO (stray extra
 * client, duplicate id, malformed frame) is sent an ERROR and
 * dropped without disturbing the round; a post-HELLO protocol error
 * still aborts the round (determinism is gone), but the ERROR frame
 * is drained first. A client that disconnects after its FIN was
 * accepted simply forfeits its copy of the RESULT.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "obs/observe.hpp"
#include "sim/configs.hpp"
#include "sim/replay.hpp"
#include "sim/server.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_stream.hpp"

using namespace phastlane;
using traffic::TraceRecord;

namespace {

constexpr uint8_t kMsgHello = 1;
constexpr uint8_t kMsgSubmit = 2;
constexpr uint8_t kMsgFin = 3;
constexpr uint8_t kMsgAck = 4;
constexpr uint8_t kMsgResult = 5;
constexpr uint8_t kMsgError = 6;
constexpr uint8_t kMsgBusy = 7;
constexpr uint32_t kMaxFrameBytes = 1u << 24;

std::string
frameMsg(uint8_t type, const std::string &payload)
{
    const uint32_t len = static_cast<uint32_t>(payload.size()) + 1;
    std::string f;
    f.reserve(5 + payload.size());
    f.push_back(static_cast<char>(len & 0xff));
    f.push_back(static_cast<char>((len >> 8) & 0xff));
    f.push_back(static_cast<char>((len >> 16) & 0xff));
    f.push_back(static_cast<char>((len >> 24) & 0xff));
    f.push_back(static_cast<char>(type));
    f += payload;
    return f;
}

/**
 * Pull complete frames out of @p buf (consumed in place). Returns
 * false when no complete frame is buffered. On an oversized or
 * zero-length frame: sets @p err and returns false when @p err is
 * given (the server drops just that connection), else fatal() (the
 * client has no one to keep serving).
 */
bool
popFrame(std::string &buf, uint8_t &type, std::string &payload,
         std::string *err = nullptr)
{
    if (buf.size() < 4)
        return false;
    const auto *b = reinterpret_cast<const uint8_t *>(buf.data());
    const uint32_t len = static_cast<uint32_t>(b[0]) |
                         (static_cast<uint32_t>(b[1]) << 8) |
                         (static_cast<uint32_t>(b[2]) << 16) |
                         (static_cast<uint32_t>(b[3]) << 24);
    if (len == 0 || len > kMaxFrameBytes) {
        if (err) {
            *err = detail::formatMsg("malformed frame length %u", len);
            return false;
        }
        fatal("malformed frame length %u", len);
    }
    if (buf.size() < 4u + len)
        return false;
    type = static_cast<uint8_t>(buf[4]);
    payload.assign(buf, 5, len - 1);
    buf.erase(0, 4u + len);
    return true;
}

/** Build the network for --serve/--replay from --config/--mesh. */
std::unique_ptr<Network>
buildNetwork(const Config &args)
{
    const sim::NetConfig cfg =
        sim::makeConfig(args.getString("config", "Optical4"));
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 42));
    auto net = cfg.make(seed);
    if (args.has("mesh")) {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            fatal("--mesh supports optical (Phastlane) "
                  "configurations only");
        const std::string spec = args.getString("mesh", "");
        const size_t x = spec.find('x');
        int w = 0;
        int h = 0;
        if (x != std::string::npos) {
            w = std::atoi(spec.substr(0, x).c_str());
            h = std::atoi(spec.substr(x + 1).c_str());
        }
        if (w < 1 || h < 1)
            fatal("--mesh expects WxH with positive dimensions "
                  "(got '%s')",
                  spec.c_str());
        core::PhastlaneParams p = pl->params();
        p.meshWidth = w;
        p.meshHeight = h;
        net = std::make_unique<core::PhastlaneNetwork>(p);
    }
    return net;
}

sim::ReplayOptions
replayOptions(const Config &args)
{
    sim::ReplayOptions opts;
    opts.maxCycles =
        static_cast<Cycle>(args.getInt("max-cycles", 10000000));
    opts.maxPending =
        static_cast<size_t>(args.getInt("max-pending", 4096));
    return opts;
}

/** Open @p path as a streaming TraceSource (binary streams directly;
 *  text loads once). */
struct OpenedTrace {
    std::unique_ptr<traffic::TraceStreamReader> stream;
    std::vector<TraceRecord> records;
    std::unique_ptr<traffic::VectorTraceSource> vec;
    traffic::TraceSource *src = nullptr;
};

OpenedTrace
openTrace(const std::string &path, int node_count)
{
    OpenedTrace t;
    if (traffic::isBinaryTraceFile(path)) {
        t.stream = std::make_unique<traffic::TraceStreamReader>(
            path, node_count);
        t.src = t.stream.get();
    } else {
        t.records = traffic::readTrace(path, node_count);
        t.vec = std::make_unique<traffic::VectorTraceSource>(
            t.records);
        t.src = t.vec.get();
    }
    return t;
}

// ---------------------------------------------------------------------
// --serve: the daemon
// ---------------------------------------------------------------------

struct ServeConn {
    int fd = -1;
    std::string in;
    std::string out;
    bool hello = false;
    uint64_t clientId = 0;
    bool finished = false;
};

/** Close and mark dead (fd -1). Dead entries stay in the conns
 *  vector so pollfd indices keep lining up; poll() ignores negative
 *  fds and every consumer skips them. */
void
closeConn(ServeConn &c)
{
    if (c.fd >= 0)
        ::close(c.fd);
    c.fd = -1;
    c.in.clear();
    c.out.clear();
}

/** Write as much of c.out as the socket accepts right now. A peer
 *  that is gone (EPIPE/ECONNRESET) just drops that connection -- a
 *  client bailing out must not kill the round for everyone else. */
void
flushConn(ServeConn &c)
{
    while (c.fd >= 0 && !c.out.empty()) {
        const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
        if (n > 0) {
            c.out.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
            warn("client %llu went away mid-write; dropping the "
                 "connection",
                 static_cast<unsigned long long>(c.clientId));
            closeConn(c);
            return;
        }
        fatal("write to client %llu failed: %s",
              static_cast<unsigned long long>(c.clientId),
              std::strerror(errno));
    }
}

/** Blocking drain of c.out, bounded by @p timeout_ms; drops the
 *  connection if the peer will not take the bytes in time. Used for
 *  the final RESULT and for ERROR frames that must reach the peer
 *  before we close or abort. */
void
drainConn(ServeConn &c, int timeout_ms)
{
    int waited = 0;
    for (;;) {
        flushConn(c);
        if (c.fd < 0 || c.out.empty())
            return;
        if (waited >= timeout_ms) {
            warn("client %llu did not drain %zu pending bytes; "
                 "dropping the connection",
                 static_cast<unsigned long long>(c.clientId),
                 c.out.size());
            closeConn(c);
            return;
        }
        pollfd pfd{c.fd, POLLOUT, 0};
        const int r = ::poll(&pfd, 1, 50);
        if (r < 0 && errno != EINTR)
            fatal("poll: %s", std::strerror(errno));
        waited += 50;
    }
}

int
serveMain(const Config &args)
{
    const std::string sock_path = args.getString("serve", "");
    const int clients =
        static_cast<int>(args.getInt("clients", 1));
    if (clients < 1)
        fatal("--clients must be >= 1");

    auto net = buildNetwork(args);

    sim::ServerOptions sopts;
    sopts.expectedSessions = static_cast<size_t>(clients);
    sopts.maxPending =
        static_cast<size_t>(args.getInt("max-pending", 4096));
    sopts.inboxSoftCap =
        static_cast<size_t>(args.getInt("inbox-cap", 8192));
    sopts.maxCycles =
        static_cast<Cycle>(args.getInt("max-cycles", 10000000));
    sopts.snapshotInterval =
        static_cast<Cycle>(args.getInt("snapshot-interval", 0));
    sim::SimServer server(*net, sopts);

    // Live observability: metrics/heatmap snapshots published through
    // the src/obs/ observers every --snapshot-interval cycles.
    const std::string metrics_path =
        args.getString("metrics-out", "");
    const std::string heatmap_path =
        args.getString("heatmap-csv", "");
    obs::MetricsRegistry registry;
    std::unique_ptr<obs::MetricsObserver> recorder;
    if (!metrics_path.empty() || !heatmap_path.empty()) {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            fatal("--metrics-out/--heatmap-csv support optical "
                  "(Phastlane) configurations only");
        obs::ObserveOptions oopts;
        oopts.heatmapInterval =
            heatmap_path.empty()
                ? 0
                : (sopts.snapshotInterval ? sopts.snapshotInterval
                                          : 4096);
        recorder = std::make_unique<obs::MetricsObserver>(*pl,
                                                          registry,
                                                          oopts);
        pl->setObserver(recorder.get());
    }
    auto publish = [&](Cycle) {
        if (!metrics_path.empty())
            registry.writeJson(metrics_path);
        if (recorder && !heatmap_path.empty()) {
            if (const auto *hm = recorder->heatmap())
                hm->writeCsv(heatmap_path);
        }
    };
    if (sopts.snapshotInterval && recorder)
        server.setSnapshotHook(publish);

    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", sock_path.c_str());
    std::strncpy(addr.sun_path, sock_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(sock_path.c_str());
    if (::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind %s: %s", sock_path.c_str(),
              std::strerror(errno));
    if (::listen(lfd, 16) != 0)
        fatal("listen: %s", std::strerror(errno));
    if (::fcntl(lfd, F_SETFL, O_NONBLOCK) != 0)
        fatal("fcntl: %s", std::strerror(errno));

    inform("serving on %s (config %s, %d client%s expected)",
           sock_path.c_str(),
           args.getString("config", "Optical4").c_str(), clients,
           clients == 1 ? "" : "s");

    std::vector<ServeConn> conns;
    char buf[1 << 16];

    while (!server.done()) {
        // fds[0] is the listener; fds[i + 1] mirrors conns[i] for the
        // first npolled connections. Connections accepted below join
        // the poll set on the next iteration; dead entries (fd -1)
        // stay in place -- poll() ignores negative fds -- so the
        // index correspondence never shifts.
        const size_t npolled = conns.size();
        std::vector<pollfd> fds;
        fds.push_back(pollfd{lfd, POLLIN, 0});
        for (const auto &c : conns) {
            short ev = POLLIN;
            if (!c.out.empty())
                ev |= POLLOUT;
            fds.push_back(pollfd{c.fd, ev, 0});
        }
        if (::poll(fds.data(), fds.size(), 100) < 0) {
            if (errno == EINTR)
                continue;
            fatal("poll: %s", std::strerror(errno));
        }

        if (fds[0].revents & POLLIN) {
            for (;;) {
                const int cfd = ::accept(lfd, nullptr, nullptr);
                if (cfd < 0)
                    break;
                if (::fcntl(cfd, F_SETFL, O_NONBLOCK) != 0)
                    fatal("fcntl: %s", std::strerror(errno));
                ServeConn c;
                c.fd = cfd;
                conns.push_back(c);
            }
        }

        for (size_t i = 0; i < npolled; ++i) {
            ServeConn &c = conns[i];
            if (c.fd < 0 ||
                !(fds[i + 1].revents & (POLLIN | POLLHUP)))
                continue;
            bool eof = false;
            for (;;) {
                const ssize_t n = ::read(c.fd, buf, sizeof(buf));
                if (n > 0) {
                    c.in.append(buf, static_cast<size_t>(n));
                    if (static_cast<size_t>(n) < sizeof(buf))
                        break; // drained the socket
                    continue;
                }
                if (n == 0) {
                    // Resolved below, after any frames that arrived
                    // ahead of the close (e.g. the FIN) are handled.
                    eof = true;
                    break;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                fatal("read from client: %s", std::strerror(errno));
            }

            uint8_t type = 0;
            std::string payload;
            std::string frame_err;
            while (c.fd >= 0 &&
                   popFrame(c.in, type, payload, &frame_err)) {
                const auto *p =
                    reinterpret_cast<const uint8_t *>(payload.data());
                const size_t n = payload.size();
                std::string err;
                if (type == kMsgHello) {
                    uint64_t id = 0;
                    const size_t u = traffic::getVarint(p, n, id);
                    if (u == 0)
                        err = "malformed HELLO";
                    else
                        err = server.openSession(id);
                    if (err.empty()) {
                        c.hello = true;
                        c.clientId = id;
                    }
                } else if (type == kMsgSubmit && c.hello) {
                    uint64_t seq = 0;
                    uint64_t nrec = 0;
                    size_t off = traffic::getVarint(p, n, seq);
                    const size_t u2 = off == 0
                        ? 0
                        : traffic::getVarint(p + off, n - off, nrec);
                    if (u2 == 0 || nrec == 0 ||
                        nrec > traffic::kMaxChunkRecords) {
                        err = "malformed SUBMIT header";
                    } else {
                        off += u2;
                        std::vector<TraceRecord> recs;
                        Cycle lc = 0;
                        err = traffic::decodeChunkPayload(
                            p + off, n - off,
                            static_cast<size_t>(nrec),
                            net->nodeCount(), lc, recs);
                        if (err.empty())
                            err = server.submit(c.clientId, seq,
                                                recs);
                    }
                } else if (type == kMsgFin && c.hello) {
                    uint64_t seq = 0;
                    if (traffic::getVarint(p, n, seq) == 0)
                        err = "malformed FIN";
                    else
                        err = server.finish(c.clientId, seq);
                    if (err.empty())
                        c.finished = true;
                } else {
                    err = detail::formatMsg(
                        "unexpected message type %u", type);
                }
                if (!err.empty()) {
                    // Before a session is established the round is
                    // untouched: reject just this connection (stray
                    // extra client, duplicate id, garbage) and keep
                    // serving. After HELLO the client is part of the
                    // deterministic round, so a protocol error from
                    // it aborts the round -- but its ERROR frame is
                    // drained first so the peer learns why.
                    const bool established = c.hello;
                    c.out += frameMsg(kMsgError, err);
                    drainConn(c, 2000);
                    if (!established) {
                        warn("rejecting connection: %s", err.c_str());
                        closeConn(c);
                        break;
                    }
                    fatal("protocol error from client %llu: %s",
                          static_cast<unsigned long long>(
                              c.clientId),
                          err.c_str());
                }
            }
            if (c.fd >= 0 && !frame_err.empty()) {
                c.out += frameMsg(kMsgError, frame_err);
                drainConn(c, 2000);
                if (!c.hello) {
                    warn("rejecting connection: %s",
                         frame_err.c_str());
                    closeConn(c);
                } else {
                    fatal("protocol error from client %llu: %s",
                          static_cast<unsigned long long>(c.clientId),
                          frame_err.c_str());
                }
            }
            if (eof && c.fd >= 0) {
                if (!c.hello) {
                    warn("dropping a connection that closed before "
                         "HELLO");
                    closeConn(c);
                } else if (c.finished) {
                    // Post-FIN disconnect: the client forfeits its
                    // RESULT copy; the round is unaffected. Closing
                    // here also stops the fd from reporting POLLHUP
                    // on every poll (a 100% CPU spin) and from
                    // taking an EPIPE on the final RESULT write.
                    closeConn(c);
                } else {
                    fatal("client %llu disconnected before FIN; "
                          "the round cannot complete "
                          "deterministically",
                          static_cast<unsigned long long>(
                              c.clientId));
                }
            }
        }

        server.pump();

        for (const auto &ack : server.takeReadyAcks()) {
            for (auto &c : conns) {
                if (c.fd >= 0 && c.hello &&
                    c.clientId == ack.clientId) {
                    std::string pl;
                    traffic::putVarint(pl, ack.seq);
                    pl.push_back(ack.duplicate ? 1 : 0);
                    c.out += frameMsg(kMsgAck, pl);
                    break;
                }
            }
        }
        // Keepalive: a client whose ack is deliberately withheld
        // (inbox backpressure, or the round waiting on other
        // sessions) is told so, so its retry timer never mistakes
        // the deferral for a lost ack. The 100ms poll timeout bounds
        // how stale this signal can get.
        for (auto &c : conns) {
            if (c.fd >= 0 && c.hello && !c.finished &&
                server.deferredAckCount(c.clientId) > 0)
                c.out += frameMsg(kMsgBusy, "");
        }
        for (auto &c : conns)
            flushConn(c);
    }

    publish(net->now());
    const std::string report =
        sim::formatReplayReport(server.stats(), *net);
    for (auto &c : conns) {
        if (c.fd < 0)
            continue; // disconnected after FIN: forfeits the RESULT
        c.out += frameMsg(kMsgResult, report);
        drainConn(c, 10000);
        closeConn(c);
    }
    ::close(lfd);
    ::unlink(sock_path.c_str());
    std::fputs(report.c_str(), stdout);
    for (const auto &c : conns) {
        if (!c.hello)
            continue;
        std::printf("client %llu: accepted %llu records\n",
                    static_cast<unsigned long long>(c.clientId),
                    static_cast<unsigned long long>(
                        server.acceptedRecords(c.clientId)));
    }
    return server.hitCycleLimit() ? 2 : 0;
}

// ---------------------------------------------------------------------
// --connect: the streaming client
// ---------------------------------------------------------------------

/** Blocking framed reader with a poll() timeout. */
struct FrameReader {
    int fd;
    std::string buf;

    /** false on timeout; fatal on EOF/error. */
    bool read(int timeout_ms, uint8_t &type, std::string &payload)
    {
        for (;;) {
            if (popFrame(buf, type, payload))
                return true;
            pollfd pfd{fd, POLLIN, 0};
            const int r = ::poll(&pfd, 1, timeout_ms);
            if (r == 0)
                return false;
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                fatal("poll: %s", std::strerror(errno));
            }
            char tmp[1 << 16];
            const ssize_t n = ::read(fd, tmp, sizeof(tmp));
            if (n == 0)
                fatal("server closed the connection");
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("read: %s", std::strerror(errno));
            }
            buf.append(tmp, static_cast<size_t>(n));
        }
    }
};

/** Write all of @p data; false if the peer vanished mid-send
 *  (EPIPE/ECONNRESET) so the caller can surface the server's
 *  parting ERROR frame instead of a bare broken-pipe message. */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return false;
            fatal("write: %s", std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** The server hung up on us mid-send. It drains an ERROR frame
 *  explaining why before closing (e.g. "client id already
 *  connected"), so read out the rest of the stream and report that
 *  reason rather than the broken pipe. */
[[noreturn]] void
dieServerClosed(FrameReader &reader)
{
    for (;;) {
        uint8_t type = 0;
        std::string payload;
        if (popFrame(reader.buf, type, payload)) {
            if (type == kMsgError)
                fatal("server error: %s", payload.c_str());
            continue; // skip stale acks/keepalives before the ERROR
        }
        char tmp[4096];
        const ssize_t n = ::read(reader.fd, tmp, sizeof(tmp));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            fatal("server closed the connection");
        reader.buf.append(tmp, static_cast<size_t>(n));
    }
}

int
connectMain(const Config &args)
{
    const std::string sock_path = args.getString("connect", "");
    const uint64_t client_id =
        static_cast<uint64_t>(args.getInt("client-id", 0));
    const std::string trace_path = args.getString("trace", "");
    if (trace_path.empty())
        fatal("--connect requires --trace <file>");
    const size_t chunk =
        static_cast<size_t>(args.getInt("chunk", 4096));
    const int ack_timeout_ms =
        static_cast<int>(args.getInt("ack-timeout-ms", 1000));
    const int retries =
        static_cast<int>(args.getInt("retries", 120));
    const int connect_wait_ms =
        static_cast<int>(args.getInt("connect-wait-ms", 10000));

    OpenedTrace trace = openTrace(trace_path, 0);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", sock_path.c_str());
    std::strncpy(addr.sun_path, sock_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The daemon may still be starting: retry the connect briefly.
    int waited = 0;
    while (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) != 0) {
        if (waited >= connect_wait_ms)
            fatal("cannot connect to %s: %s", sock_path.c_str(),
                  std::strerror(errno));
        ::usleep(100000);
        waited += 100;
    }

    FrameReader reader{fd, {}};
    std::string hello;
    traffic::putVarint(hello, client_id);
    if (!sendAll(fd, frameMsg(kMsgHello, hello)))
        dieServerClosed(reader);

    // Stop-and-wait with retransmission: resend until the matching
    // ACK arrives; the server dedups by sequence number, so a chunk
    // is injected at most once however often it is retried. A BUSY
    // keepalive means the ack is deliberately deferred (backpressure
    // or the round waiting on other clients), so it suppresses the
    // resend and resets the retry budget: the retry timer only
    // counts windows of total server silence.
    uint64_t retransmits = 0;
    auto sendChunkReliably = [&](const std::string &framed,
                                 uint64_t seq) {
        if (!sendAll(fd, framed))
            dieServerClosed(reader);
        int attempt = 0;
        for (;;) {
            bool saw_busy = false;
            uint8_t type = 0;
            std::string payload;
            while (reader.read(ack_timeout_ms, type, payload)) {
                if (type == kMsgError)
                    fatal("server error: %s", payload.c_str());
                if (type == kMsgBusy) {
                    saw_busy = true;
                    continue;
                }
                if (type != kMsgAck)
                    fatal("unexpected message type %u while waiting "
                          "for ack",
                          type);
                uint64_t got = 0;
                if (traffic::getVarint(
                        reinterpret_cast<const uint8_t *>(
                            payload.data()),
                        payload.size(), got) == 0)
                    fatal("malformed ACK");
                if (got == seq)
                    return;
                // A stale ack (earlier seq, or a duplicate of one we
                // already consumed) -- keep waiting.
            }
            // Timed out with no matching ack.
            if (saw_busy) {
                attempt = 0; // deferred, not lost: just keep waiting
                continue;
            }
            if (++attempt > retries)
                fatal("no ack for chunk %llu after %d attempts with "
                      "a silent server",
                      static_cast<unsigned long long>(seq),
                      retries + 1);
            if (!sendAll(fd, framed))
                dieServerClosed(reader);
            ++retransmits;
        }
    };

    uint64_t seq = 0;
    uint64_t sent_records = 0;
    std::vector<TraceRecord> chunk_buf;
    TraceRecord rec;
    bool have = trace.src->next(rec);
    while (have) {
        chunk_buf.clear();
        while (have && chunk_buf.size() < chunk) {
            chunk_buf.push_back(rec);
            have = trace.src->next(rec);
        }
        ++seq;
        std::string payload;
        traffic::putVarint(payload, seq);
        traffic::putVarint(payload, chunk_buf.size());
        traffic::encodeChunkPayload(chunk_buf.data(),
                                    chunk_buf.size(), payload);
        sendChunkReliably(frameMsg(kMsgSubmit, payload), seq);
        sent_records += chunk_buf.size();
    }
    ++seq;
    std::string fin;
    traffic::putVarint(fin, seq);
    sendChunkReliably(frameMsg(kMsgFin, fin), seq);
    inform("client %llu: streamed %llu records in %llu chunks "
           "(%llu retransmits); waiting for the round to complete",
           static_cast<unsigned long long>(client_id),
           static_cast<unsigned long long>(sent_records),
           static_cast<unsigned long long>(seq - 1),
           static_cast<unsigned long long>(retransmits));

    // Wait for the round's RESULT (other clients may still be
    // streaming; poll in result-timeout windows).
    const int result_timeout_ms =
        static_cast<int>(args.getInt("result-timeout-ms", 600000));
    int waited_result = 0;
    for (;;) {
        uint8_t type = 0;
        std::string payload;
        if (!reader.read(1000, type, payload)) {
            waited_result += 1000;
            if (waited_result >= result_timeout_ms)
                fatal("timed out waiting for the round result");
            continue;
        }
        if (type == kMsgError)
            fatal("server error: %s", payload.c_str());
        if (type == kMsgAck || type == kMsgBusy)
            continue; // stale duplicate ack / keepalive
        if (type != kMsgResult)
            fatal("unexpected message type %u", type);
        std::fputs(payload.c_str(), stdout);
        break;
    }
    ::close(fd);
    return 0;
}

// ---------------------------------------------------------------------
// --gen / --merge / --replay: offline tooling
// ---------------------------------------------------------------------

int
genMain(const Config &args)
{
    const std::string out = args.getString("gen", "");
    const uint64_t target =
        static_cast<uint64_t>(args.getInt("records", 100000));
    const int nodes = static_cast<int>(args.getInt("nodes", 64));
    const double rate = args.getDouble("rate", 0.05);
    const double bcast = args.getDouble("bcast", 0.0);
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 1));
    const int stride =
        static_cast<int>(args.getInt("src-stride", 1));
    const int offset =
        static_cast<int>(args.getInt("src-offset", 0));
    const std::string text_out = args.getString("text-out", "");
    if (nodes < 2 || rate <= 0.0 || rate > 1.0 || stride < 1 ||
        offset < 0 || offset >= stride)
        fatal("--gen needs --nodes >= 2, --rate in (0,1], and "
              "0 <= --src-offset < --src-stride");

    Rng rng(seed);
    traffic::TraceStreamOptions wopts;
    wopts.nodeCount = nodes;
    traffic::TraceStreamWriter w(out, wopts);
    std::vector<TraceRecord> text_records;
    uint64_t made = 0;
    uint64_t tag = 1;
    Cycle cycle = 0;
    while (made < target) {
        for (int n = offset; n < nodes && made < target;
             n += stride) {
            if (!rng.bernoulli(rate))
                continue;
            TraceRecord r;
            r.cycle = cycle;
            r.src = n;
            if (bcast > 0.0 && rng.bernoulli(bcast)) {
                r.dst = kInvalidNode;
            } else {
                do {
                    r.dst = static_cast<NodeId>(
                        rng.uniformInt(0, nodes - 1));
                } while (r.dst == r.src);
            }
            r.kind = MessageKind::Synthetic;
            r.tag = tag++;
            w.append(r);
            if (!text_out.empty())
                text_records.push_back(r);
            ++made;
        }
        ++cycle;
    }
    w.close();
    if (!text_out.empty())
        traffic::writeTrace(text_out, text_records);
    std::printf("generated %llu records over %llu cycles into %s\n",
                static_cast<unsigned long long>(made),
                static_cast<unsigned long long>(cycle),
                out.c_str());
    return 0;
}

int
mergeMain(const Config &args)
{
    const std::string out = args.getString("merge", "");
    const std::string inputs = args.getString("inputs", "");
    if (inputs.empty())
        fatal("--merge requires --inputs a.pltrace,b.pltrace,...");
    std::vector<std::string> paths;
    size_t start = 0;
    for (;;) {
        const size_t comma = inputs.find(',', start);
        paths.push_back(inputs.substr(start, comma - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }

    // Canonical merge order = (cycle, input index): input order must
    // be ascending client id for the result to match a served round.
    std::vector<OpenedTrace> traces;
    std::vector<TraceRecord> heads(paths.size());
    std::vector<bool> alive(paths.size());
    int max_nodes = 0;
    for (size_t i = 0; i < paths.size(); ++i) {
        traces.push_back(openTrace(paths[i], 0));
        if (traces[i].stream)
            max_nodes = std::max(max_nodes,
                                 traces[i].stream->headerNodeCount());
        alive[i] = traces[i].src->next(heads[i]);
    }
    traffic::TraceStreamOptions wopts;
    wopts.nodeCount =
        static_cast<int>(args.getInt("nodes", max_nodes));
    traffic::TraceStreamWriter w(out, wopts);
    uint64_t merged = 0;
    for (;;) {
        size_t best = paths.size();
        for (size_t i = 0; i < paths.size(); ++i) {
            if (!alive[i])
                continue;
            if (best == paths.size() ||
                heads[i].cycle < heads[best].cycle)
                best = i;
        }
        if (best == paths.size())
            break;
        w.append(heads[best]);
        ++merged;
        alive[best] = traces[best].src->next(heads[best]);
    }
    w.close();
    std::printf("merged %llu records from %zu traces into %s\n",
                static_cast<unsigned long long>(merged),
                paths.size(), out.c_str());
    return 0;
}

int
replayMain(const Config &args)
{
    const std::string path = args.getString("replay", "");
    auto net = buildNetwork(args);
    OpenedTrace trace = openTrace(path, net->nodeCount());
    const sim::ReplayStats stats =
        sim::replayTraceStream(*net, *trace.src,
                               replayOptions(args));
    std::fputs(sim::formatReplayReport(stats, *net).c_str(), stdout);
    return stats.hitCycleLimit ? 2 : 0;
}

std::vector<std::string>
knownFlags()
{
    return {
        "help",         "serve",          "connect",
        "replay",       "gen",            "merge",
        "inputs",       "config",         "mesh",
        "seed",         "clients",        "max-pending",
        "max-cycles",   "inbox-cap",      "snapshot-interval",
        "metrics-out",  "heatmap-csv",    "client-id",
        "trace",        "chunk",          "ack-timeout-ms",
        "retries",      "connect-wait-ms", "result-timeout-ms",
        "records",      "nodes",          "rate",
        "bcast",        "text-out",       "src-stride",
        "src-offset",
    };
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGPIPE, SIG_IGN);
    const Config args = Config::fromArgs(argc, argv);
    args.requireKnown(knownFlags());
    if (args.getBool("help", false)) {
        std::printf(
            "usage: netsim_serve <mode> [options]\n"
            "  --serve SOCK     run the simulation daemon on a unix "
            "socket\n"
            "    --clients N --config NAME [--mesh WxH] [--seed S]\n"
            "    [--max-pending N] [--inbox-cap N] [--max-cycles N]\n"
            "    [--snapshot-interval N --metrics-out F "
            "--heatmap-csv F]\n"
            "  --connect SOCK   stream a trace into the daemon\n"
            "    --client-id K --trace FILE [--chunk N]\n"
            "    [--ack-timeout-ms T --retries R]\n"
            "  --replay FILE    offline replay printing the same "
            "canonical\n"
            "                   report a served round emits\n"
            "  --gen FILE       generate a binary trace\n"
            "    --records N [--nodes N --rate R --bcast F --seed "
            "S]\n"
            "    [--src-stride K --src-offset O] [--text-out FILE]\n"
            "  --merge OUT --inputs A,B,...  canonical (cycle, "
            "client)\n"
            "                   merge; input order = ascending "
            "client id\n");
        return 0;
    }
    const int modes = (args.has("serve") ? 1 : 0) +
                      (args.has("connect") ? 1 : 0) +
                      (args.has("replay") ? 1 : 0) +
                      (args.has("gen") ? 1 : 0) +
                      (args.has("merge") ? 1 : 0);
    if (modes != 1)
        fatal("pick exactly one of --serve/--connect/--replay/"
              "--gen/--merge (see --help)");
    if (args.has("serve"))
        return serveMain(args);
    if (args.has("connect"))
        return connectMain(args);
    if (args.has("replay"))
        return replayMain(args);
    if (args.has("gen"))
        return genMain(args);
    return mergeMain(args);
}
