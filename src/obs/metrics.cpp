#include "obs/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/log.hpp"

namespace phastlane::obs {

HdrHistogram::HdrHistogram()
    : buckets_(static_cast<size_t>(kTiers) * kSubBuckets, 0)
{
}

size_t
HdrHistogram::bucketOf(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<size_t>(value);
    const int msb = std::bit_width(value) - 1; // >= 4 here
    int tier = msb - 3;
    if (tier >= kTiers) {
        // Values beyond the covered range land in the last bucket.
        return static_cast<size_t>(kTiers) * kSubBuckets - 1;
    }
    const uint64_t sub = (value >> (msb - 4)) & (kSubBuckets - 1);
    return static_cast<size_t>(tier) * kSubBuckets +
           static_cast<size_t>(sub);
}

uint64_t
HdrHistogram::bucketUpperEdge(size_t b)
{
    const size_t tier = b / kSubBuckets;
    const uint64_t sub = b % kSubBuckets;
    if (tier == 0)
        return sub;
    return ((kSubBuckets + sub + 1) << (tier - 1)) - 1;
}

void
HdrHistogram::record(uint64_t value)
{
    recordN(value, 1);
}

void
HdrHistogram::recordN(uint64_t value, uint64_t times)
{
    if (times == 0)
        return;
    buckets_[bucketOf(value)] += times;
    count_ += times;
    sum_ += value * times;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

double
HdrHistogram::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

uint64_t
HdrHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= target) {
            // Clamp the bucket edge to the observed extremes so small
            // sample sets report exact values.
            const uint64_t edge = bucketUpperEdge(b);
            return edge > max_ ? max_ : edge;
        }
    }
    return max_;
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
}

namespace {

template <typename T>
T &
getOrCreate(std::deque<T> &store, std::map<std::string, size_t> &index,
            std::vector<std::string> &order, const std::string &name)
{
    const auto it = index.find(name);
    if (it != index.end())
        return store[it->second];
    index.emplace(name, store.size());
    order.push_back(name);
    store.emplace_back();
    return store.back();
}

template <typename T>
const T *
find(const std::deque<T> &store,
     const std::map<std::string, size_t> &index,
     const std::string &name)
{
    const auto it = index.find(name);
    return it == index.end() ? nullptr : &store[it->second];
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return getOrCreate(counters_, counterIndex_, counterOrder_, name);
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return getOrCreate(gauges_, gaugeIndex_, gaugeOrder_, name);
}

HdrHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    return getOrCreate(histograms_, histogramIndex_, histogramOrder_,
                       name);
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    return find(counters_, counterIndex_, name);
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    return find(gauges_, gaugeIndex_, name);
}

const HdrHistogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    return find(histograms_, histogramIndex_, name);
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &name : other.counterOrder_)
        counter(name).merge(*other.findCounter(name));
    for (const auto &name : other.gaugeOrder_)
        gauge(name).merge(*other.findGauge(name));
    for (const auto &name : other.histogramOrder_)
        histogram(name).merge(*other.findHistogram(name));
}

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &name : counterOrder_) {
        appendF(out, "%s\n    \"", first ? "" : ",");
        appendEscaped(out, name);
        appendF(out, "\": %" PRIu64, findCounter(name)->value());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &name : gaugeOrder_) {
        const Gauge *g = findGauge(name);
        appendF(out, "%s\n    \"", first ? "" : ",");
        appendEscaped(out, name);
        appendF(out, "\": {\"value\": %lld, \"max\": %lld}",
                static_cast<long long>(g->value()),
                static_cast<long long>(g->max()));
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &name : histogramOrder_) {
        const HdrHistogram *h = findHistogram(name);
        appendF(out, "%s\n    \"", first ? "" : ",");
        appendEscaped(out, name);
        appendF(out,
                "\": {\"count\": %" PRIu64 ", \"min\": %" PRIu64
                ", \"max\": %" PRIu64
                ", \"mean\": %.3f, \"p50\": %" PRIu64
                ", \"p90\": %" PRIu64 ", \"p99\": %" PRIu64
                ", \"p999\": %" PRIu64 "}",
                h->count(), h->min(), h->max(), h->mean(),
                h->quantile(0.50), h->quantile(0.90),
                h->quantile(0.99), h->quantile(0.999));
        first = false;
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

std::string
MetricsRegistry::toCsv() const
{
    std::string out = "name,type,field,value\n";
    for (const auto &name : counterOrder_) {
        appendF(out, "%s,counter,value,%" PRIu64 "\n", name.c_str(),
                findCounter(name)->value());
    }
    for (const auto &name : gaugeOrder_) {
        const Gauge *g = findGauge(name);
        appendF(out, "%s,gauge,value,%lld\n", name.c_str(),
                static_cast<long long>(g->value()));
        appendF(out, "%s,gauge,max,%lld\n", name.c_str(),
                static_cast<long long>(g->max()));
    }
    for (const auto &name : histogramOrder_) {
        const HdrHistogram *h = findHistogram(name);
        appendF(out, "%s,histogram,count,%" PRIu64 "\n", name.c_str(),
                h->count());
        appendF(out, "%s,histogram,min,%" PRIu64 "\n", name.c_str(),
                h->min());
        appendF(out, "%s,histogram,max,%" PRIu64 "\n", name.c_str(),
                h->max());
        appendF(out, "%s,histogram,mean,%.3f\n", name.c_str(),
                h->mean());
        appendF(out, "%s,histogram,p50,%" PRIu64 "\n", name.c_str(),
                h->quantile(0.50));
        appendF(out, "%s,histogram,p99,%" PRIu64 "\n", name.c_str(),
                h->quantile(0.99));
    }
    return out;
}

namespace {

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace

void
MetricsRegistry::writeJson(const std::string &path) const
{
    writeFile(path, toJson());
}

void
MetricsRegistry::writeCsv(const std::string &path) const
{
    writeFile(path, toCsv());
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    return counterOrder_;
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    return gaugeOrder_;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    return histogramOrder_;
}

} // namespace phastlane::obs
