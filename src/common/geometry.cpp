#include "common/geometry.hpp"

#include "common/log.hpp"

namespace phastlane {

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("mesh dimensions must be positive (got %dx%d)",
              width, height);
}

std::vector<Port>
MeshTopology::xyRoute(NodeId src, NodeId dst) const
{
    const Coord s = coordOf(src);
    const Coord d = coordOf(dst);
    std::vector<Port> route;
    route.reserve(static_cast<size_t>(hopDistance(src, dst)));
    // X first.
    for (int x = s.x; x < d.x; ++x)
        route.push_back(Port::East);
    for (int x = s.x; x > d.x; --x)
        route.push_back(Port::West);
    // Then Y.
    for (int y = s.y; y < d.y; ++y)
        route.push_back(Port::North);
    for (int y = s.y; y > d.y; --y)
        route.push_back(Port::South);
    return route;
}

std::vector<NodeId>
MeshTopology::xyPath(NodeId src, NodeId dst) const
{
    std::vector<NodeId> path;
    NodeId at = src;
    for (Port dir : xyRoute(src, dst)) {
        at = neighbor(at, dir);
        PL_ASSERT(at != kInvalidNode, "XY route left the mesh");
        path.push_back(at);
    }
    return path;
}

} // namespace phastlane
