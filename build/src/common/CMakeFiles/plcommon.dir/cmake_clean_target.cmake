file(REMOVE_RECURSE
  "libplcommon.a"
)
