/**
 * @file
 * Optical NIC tests: broadcast expansion, capacity accounting, branch
 * id uniqueness.
 */

#include <gtest/gtest.h>
#include <set>

#include "core/nic.hpp"

namespace phastlane::core {
namespace {

class OpticalNicTest : public ::testing::Test
{
  protected:
    OpticalNicTest() : mesh_(8, 8), nic_(27, params_, mesh_) {}

    PhastlaneParams params_;
    MeshTopology mesh_;
    OpticalNic nic_;
    uint64_t nextBranch_ = 1;
};

TEST_F(OpticalNicTest, UnicastTakesOneSlot)
{
    Packet p;
    p.id = 1;
    p.src = 27;
    p.dst = 3;
    ASSERT_TRUE(nic_.hasSpaceFor(p));
    nic_.accept(p, 5, nextBranch_);
    EXPECT_EQ(nic_.occupancy(), 1u);
    EXPECT_EQ(nic_.head().finalDst, 3);
    EXPECT_FALSE(nic_.head().multicast);
    EXPECT_EQ(nic_.head().acceptedAt, 5u);
}

TEST_F(OpticalNicTest, BroadcastExpandsToBranches)
{
    Packet p;
    p.id = 1;
    p.src = 27; // interior: 16 branches
    p.broadcast = true;
    nic_.accept(p, 0, nextBranch_);
    EXPECT_EQ(nic_.occupancy(), 16u);
    // Branch ids are unique and the taps cover all 63 nodes.
    std::set<uint64_t> ids;
    std::multiset<NodeId> taps;
    while (!nic_.empty()) {
        const OpticalPacket op = nic_.popHead();
        EXPECT_TRUE(op.multicast);
        ids.insert(op.branchId);
        taps.insert(op.taps.begin(), op.taps.end());
        EXPECT_EQ(op.finalDst, op.taps.back());
    }
    EXPECT_EQ(ids.size(), 16u);
    EXPECT_EQ(taps.size(), 63u);
}

TEST_F(OpticalNicTest, SpaceAccountsForWholeBroadcast)
{
    PhastlaneParams params;
    params.nicQueueEntries = 20;
    OpticalNic nic(27, params, mesh_);
    Packet b;
    b.id = 1;
    b.src = 27;
    b.broadcast = true;
    nic.accept(b, 0, nextBranch_); // 16 branches
    Packet b2 = b;
    b2.id = 2;
    EXPECT_FALSE(nic.hasSpaceFor(b2)); // needs 16, only 4 left
    Packet u;
    u.id = 3;
    u.src = 27;
    u.dst = 1;
    EXPECT_TRUE(nic.hasSpaceFor(u));
}

TEST_F(OpticalNicTest, EdgeSourceBroadcastsEightBranches)
{
    OpticalNic nic(3, params_, mesh_); // bottom row
    Packet b;
    b.id = 1;
    b.src = 3;
    b.broadcast = true;
    nic.accept(b, 0, nextBranch_);
    EXPECT_EQ(nic.occupancy(), 8u);
}

TEST_F(OpticalNicTest, BranchIdsContinueAcrossMessages)
{
    Packet u;
    u.id = 1;
    u.src = 27;
    u.dst = 2;
    nic_.accept(u, 0, nextBranch_);
    Packet u2 = u;
    u2.id = 2;
    u2.dst = 4;
    nic_.accept(u2, 0, nextBranch_);
    EXPECT_EQ(nextBranch_, 3u);
    const uint64_t first = nic_.popHead().branchId;
    const uint64_t second = nic_.popHead().branchId;
    EXPECT_NE(first, second);
}

} // namespace
} // namespace phastlane::core
