/**
 * @file
 * Packet/Delivery basics and the electrical NIC's tree-state
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include "electrical/nic.hpp"
#include "net/packet.hpp"

namespace phastlane {
namespace {

TEST(Packet, DeliveryCount)
{
    Packet p;
    p.src = 3;
    p.dst = 9;
    EXPECT_EQ(p.deliveryCount(64), 1);
    p.broadcast = true;
    EXPECT_EQ(p.deliveryCount(64), 63);
    EXPECT_EQ(p.deliveryCount(16), 15);
}

TEST(Packet, KindNames)
{
    EXPECT_STREQ(messageKindName(MessageKind::Request), "request");
    EXPECT_STREQ(messageKindName(MessageKind::Response), "response");
    EXPECT_STREQ(messageKindName(MessageKind::Invalidate),
                 "invalidate");
    EXPECT_STREQ(messageKindName(MessageKind::Writeback),
                 "writeback");
    EXPECT_STREQ(messageKindName(MessageKind::Synthetic),
                 "synthetic");
}

TEST(Packet, SizeIsTheEightyBytePaperPacket)
{
    EXPECT_EQ(Packet::kSizeBytes, 80);
}

TEST(ElectricalNicTest, QueueDiscipline)
{
    electrical::ElectricalParams params;
    params.nicQueueEntries = 2;
    electrical::ElectricalNic nic(4, params);
    EXPECT_TRUE(nic.empty());
    EXPECT_TRUE(nic.hasSpace());

    Packet a;
    a.id = 1;
    a.src = 4;
    a.dst = 7;
    nic.accept(a, 10);
    Packet b = a;
    b.id = 2;
    nic.accept(b, 11);
    EXPECT_FALSE(nic.hasSpace());
    EXPECT_EQ(nic.occupancy(), 2u);

    EXPECT_EQ(nic.head().msg->id, 1u);
    EXPECT_EQ(nic.head().acceptedAt, 10u);
    nic.popHead();
    EXPECT_EQ(nic.head().msg->id, 2u);
    EXPECT_TRUE(nic.hasSpace());
}

TEST(ElectricalNicTest, TreeStateMachine)
{
    electrical::ElectricalParams params;
    electrical::ElectricalNic nic(0, params);
    EXPECT_EQ(nic.treeState(), electrical::TreeState::NotBuilt);
    nic.setTreeState(electrical::TreeState::Building);
    nic.pendingSetupDeliveries() = 3;
    nic.startSetupStream({5, 6, 7},
                         std::make_shared<const Packet>(), 42);
    EXPECT_EQ(nic.setupTargets().size(), 3u);
    EXPECT_EQ(nic.setupAcceptedAt(), 42u);
    nic.setupTargets().pop_back();
    EXPECT_EQ(nic.setupTargets().size(), 2u);
    nic.setTreeState(electrical::TreeState::Ready);
    EXPECT_EQ(nic.treeState(), electrical::TreeState::Ready);
}

} // namespace
} // namespace phastlane
