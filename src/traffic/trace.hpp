/**
 * @file
 * Trace file support. The paper drives both simulators from the same
 * per-node packet-injection trace files (Section 4); we provide a
 * plain-text format that either network driver can replay, plus a
 * recorder that captures a workload into a trace.
 *
 * Format: one record per line,
 *   <cycle> <src> <dst|-1 for broadcast> <kind> <tag>
 * sorted by cycle; '#' starts a comment.
 */

#ifndef PHASTLANE_TRAFFIC_TRACE_HPP
#define PHASTLANE_TRAFFIC_TRACE_HPP

#include <string>
#include <vector>

#include "net/network.hpp"

namespace phastlane::traffic {

/** One trace record. */
struct TraceRecord {
    Cycle cycle = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode; ///< kInvalidNode encodes broadcast
    MessageKind kind = MessageKind::Synthetic;
    uint64_t tag = 0;

    bool broadcast() const { return dst == kInvalidNode; }
    bool operator==(const TraceRecord &) const = default;
};

/** Write @p records to @p path; fatal() on I/O errors. */
void writeTrace(const std::string &path,
                const std::vector<TraceRecord> &records);

/** Read a trace file; fatal() on parse errors. */
std::vector<TraceRecord> readTrace(const std::string &path);

/** Results of a trace replay. */
struct TraceReplayResult {
    Cycle completionCycle = 0; ///< all deliveries done
    uint64_t messages = 0;
    uint64_t deliveries = 0;
    double avgLatency = 0.0; ///< creation -> delivery
};

/**
 * Replay a trace against a network: each record is offered at its
 * cycle (or as soon afterwards as the NIC has room) and the run
 * continues until every delivery completes.
 */
TraceReplayResult replayTrace(Network &net,
                              const std::vector<TraceRecord> &records,
                              Cycle max_cycles = 10000000);

/**
 * A transparent Network decorator that records every accepted
 * injection as a trace record -- the paper's methodology of driving
 * both simulators from the same trace files, applied to any workload
 * driver: run the workload once through a recorder, write the trace,
 * then replay it bit-identically on every configuration.
 */
class RecordingNetwork : public Network
{
  public:
    explicit RecordingNetwork(Network &inner) : inner_(inner) {}

    int nodeCount() const override { return inner_.nodeCount(); }
    const MeshTopology &mesh() const override { return inner_.mesh(); }
    Cycle now() const override { return inner_.now(); }
    bool nicHasSpace(NodeId n) const override
    {
        return inner_.nicHasSpace(n);
    }
    bool inject(const Packet &pkt) override;
    void step() override { inner_.step(); }
    const std::vector<Delivery> &deliveries() const override
    {
        return inner_.deliveries();
    }
    uint64_t inFlight() const override { return inner_.inFlight(); }
    const NetworkCounters &counters() const override
    {
        return inner_.counters();
    }

    /** Everything accepted so far, in injection order. */
    const std::vector<TraceRecord> &recorded() const
    {
        return records_;
    }

  private:
    Network &inner_;
    std::vector<TraceRecord> records_;
};

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_TRACE_HPP
