file(REMOVE_RECURSE
  "libplsim.a"
)
