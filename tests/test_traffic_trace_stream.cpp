/**
 * @file
 * Binary trace codec tests (DESIGN.md §15): varint properties,
 * text<->binary round trips, streaming access, the compression-ratio
 * claim, and a corpus of malformed/truncated streams that must fail
 * loudly instead of replaying as a shorter workload.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_stream.hpp"

namespace phastlane::traffic {
namespace {

std::vector<TraceRecord>
randomTrace(size_t n, int nodes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceRecord> t;
    Cycle cycle = 0;
    for (size_t i = 0; i < n; ++i) {
        cycle += static_cast<Cycle>(rng.uniformInt(0, 3));
        TraceRecord r;
        r.cycle = cycle;
        r.src = static_cast<NodeId>(rng.uniformInt(0, nodes - 1));
        if (rng.bernoulli(0.1)) {
            r.dst = kInvalidNode;
        } else {
            do {
                r.dst = static_cast<NodeId>(
                    rng.uniformInt(0, nodes - 1));
            } while (r.dst == r.src);
        }
        r.kind = static_cast<MessageKind>(rng.uniformInt(
            0, static_cast<int64_t>(MessageKind::Synthetic)));
        r.tag = static_cast<uint64_t>(rng.uniformInt(0, 1 << 20));
        t.push_back(r);
    }
    return t;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    std::fclose(f);
    return data;
}

void
spit(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f),
              data.size());
    ASSERT_EQ(std::fclose(f), 0);
}

TEST(Varint, RoundTripBoundaries)
{
    const uint64_t values[] = {0,
                               1,
                               127,
                               128,
                               129,
                               16383,
                               16384,
                               (1ull << 32) - 1,
                               1ull << 32,
                               (1ull << 63) - 1,
                               1ull << 63,
                               ~0ull};
    for (uint64_t v : values) {
        std::string buf;
        putVarint(buf, v);
        EXPECT_LE(buf.size(), 10u);
        uint64_t got = 0;
        const size_t used = getVarint(
            reinterpret_cast<const uint8_t *>(buf.data()),
            buf.size(), got);
        EXPECT_EQ(used, buf.size()) << v;
        EXPECT_EQ(got, v);
    }
}

TEST(Varint, RandomRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        // Bias toward varied magnitudes.
        const int shift = static_cast<int>(rng.uniformInt(0, 63));
        const uint64_t v =
            static_cast<uint64_t>(rng.uniformInt(0, 1 << 30))
            << shift;
        std::string buf;
        putVarint(buf, v);
        uint64_t got = 0;
        EXPECT_EQ(getVarint(
                      reinterpret_cast<const uint8_t *>(buf.data()),
                      buf.size(), got),
                  buf.size());
        EXPECT_EQ(got, v);
    }
}

TEST(Varint, TruncationReturnsZero)
{
    std::string buf;
    putVarint(buf, 1ull << 40);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
        uint64_t got = 0;
        EXPECT_EQ(getVarint(
                      reinterpret_cast<const uint8_t *>(buf.data()),
                      cut, got),
                  0u);
    }
}

TEST(Varint, OverlongEncodingRejected)
{
    // 11 continuation bytes cannot be a valid 64-bit varint.
    const uint8_t bad[11] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                             0x80, 0x80, 0x80, 0x80, 0x01};
    uint64_t got = 0;
    EXPECT_EQ(getVarint(bad, sizeof(bad), got), 0u);
    // A 10th byte with more than the top bit set overflows 64 bits.
    const uint8_t over[10] = {0x80, 0x80, 0x80, 0x80, 0x80,
                              0x80, 0x80, 0x80, 0x80, 0x02};
    EXPECT_EQ(getVarint(over, sizeof(over), got), 0u);
}

TEST(TraceStream, BinaryRoundTripMatchesText)
{
    const auto original = randomTrace(5000, 64, 11);
    const std::string bpath = "/tmp/pl_ts_roundtrip.pltrace";
    const std::string tpath = "/tmp/pl_ts_roundtrip.txt";
    writeTraceBinary(bpath, original, 64);
    writeTrace(tpath, original);
    const auto from_binary = readTraceBinary(bpath, 64);
    const auto from_text = readTrace(tpath, 64);
    EXPECT_EQ(from_binary, original);
    EXPECT_EQ(from_binary, from_text);
    std::remove(bpath.c_str());
    std::remove(tpath.c_str());
}

TEST(TraceStream, StreamingReaderMatchesBulkRead)
{
    const auto original = randomTrace(3000, 32, 5);
    const std::string path = "/tmp/pl_ts_stream.pltrace";
    // A small chunk size forces many chunk boundaries.
    TraceStreamOptions opts;
    opts.nodeCount = 32;
    opts.chunkRecords = 17;
    TraceStreamWriter w(path, opts);
    for (const auto &r : original)
        w.append(r);
    w.close();
    EXPECT_EQ(w.recordsWritten(), original.size());

    TraceStreamReader reader(path);
    EXPECT_EQ(reader.headerNodeCount(), 32);
    std::vector<TraceRecord> streamed;
    TraceRecord r;
    while (reader.next(r))
        streamed.push_back(r);
    EXPECT_EQ(streamed, original);
    EXPECT_EQ(reader.recordsRead(), original.size());
    std::remove(path.c_str());
}

TEST(TraceStream, EmptyTraceRoundTrips)
{
    const std::string path = "/tmp/pl_ts_empty.pltrace";
    writeTraceBinary(path, {}, 16);
    const auto loaded = readTraceBinary(path);
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceStream, BinaryAtLeastFourTimesSmallerThanText)
{
    // The acceptance claim: a representative synthetic trace must
    // compress >= 4x against its text form. Representative means
    // sequential message tags (what the generator and the recording
    // network emit), not adversarially random ones.
    auto trace = randomTrace(20000, 64, 3);
    uint64_t tag = 1;
    for (auto &r : trace)
        r.tag = tag++;
    const std::string bpath = "/tmp/pl_ts_size.pltrace";
    const std::string tpath = "/tmp/pl_ts_size.txt";
    writeTraceBinary(bpath, trace, 64);
    writeTrace(tpath, trace);
    const size_t bsize = slurp(bpath).size();
    const size_t tsize = slurp(tpath).size();
    EXPECT_GE(tsize, 4u * bsize)
        << "text " << tsize << " bytes vs binary " << bsize;
    std::remove(bpath.c_str());
    std::remove(tpath.c_str());
}

TEST(TraceStream, AutoDetectsFormat)
{
    const auto trace = randomTrace(100, 16, 9);
    const std::string bpath = "/tmp/pl_ts_auto.pltrace";
    const std::string tpath = "/tmp/pl_ts_auto.txt";
    writeTraceBinary(bpath, trace, 16);
    writeTrace(tpath, trace);
    EXPECT_TRUE(isBinaryTraceFile(bpath));
    EXPECT_FALSE(isBinaryTraceFile(tpath));
    EXPECT_EQ(readTraceAuto(bpath), trace);
    EXPECT_EQ(readTraceAuto(tpath), trace);
    std::remove(bpath.c_str());
    std::remove(tpath.c_str());
}

TEST(TraceStream, ChunkPayloadRoundTrip)
{
    const auto trace = randomTrace(500, 64, 13);
    std::string payload;
    encodeChunkPayload(trace.data(), trace.size(), payload);
    std::vector<TraceRecord> decoded;
    Cycle last = 0;
    const std::string err = decodeChunkPayload(
        reinterpret_cast<const uint8_t *>(payload.data()),
        payload.size(), trace.size(), 64, last, decoded);
    EXPECT_EQ(err, "");
    EXPECT_EQ(decoded, trace);
    EXPECT_EQ(last, trace.back().cycle);
}

TEST(TraceStream, ChunkPayloadRejectsRegressionAcrossChunks)
{
    // A chunk whose first record predates the previous chunk's last
    // cycle must be rejected (the server relies on this to keep the
    // watermark promise honest).
    std::vector<TraceRecord> recs;
    recs.push_back({5, 0, 1, MessageKind::Synthetic, 1});
    std::string payload;
    encodeChunkPayload(recs.data(), recs.size(), payload);
    std::vector<TraceRecord> decoded;
    Cycle last = 10; // previous chunk ended at cycle 10
    const std::string err = decodeChunkPayload(
        reinterpret_cast<const uint8_t *>(payload.data()),
        payload.size(), recs.size(), 64, last, decoded);
    EXPECT_NE(err, "");
}

TEST(TraceStream, ChunkPayloadRejectsTruncation)
{
    const auto trace = randomTrace(50, 64, 17);
    std::string payload;
    encodeChunkPayload(trace.data(), trace.size(), payload);
    // Every proper prefix must fail (mid-varint EOF included).
    for (size_t cut = 0; cut < payload.size();
         cut += 1 + cut / 8) {
        std::vector<TraceRecord> decoded;
        Cycle last = 0;
        EXPECT_NE(decodeChunkPayload(
                      reinterpret_cast<const uint8_t *>(
                          payload.data()),
                      cut, trace.size(), 64, last, decoded),
                  "")
            << "prefix of " << cut << " bytes decoded";
    }
    // Trailing garbage must fail too.
    std::string padded = payload;
    padded.push_back('\0');
    std::vector<TraceRecord> decoded;
    Cycle last = 0;
    EXPECT_NE(decodeChunkPayload(
                  reinterpret_cast<const uint8_t *>(padded.data()),
                  padded.size(), trace.size(), 64, last, decoded),
              "");
}

TEST(TraceStream, ChunkPayloadRejectsBadNodes)
{
    std::vector<TraceRecord> recs;
    recs.push_back({0, 63, 1, MessageKind::Synthetic, 1});
    std::string payload;
    encodeChunkPayload(recs.data(), recs.size(), payload);
    std::vector<TraceRecord> decoded;
    Cycle last = 0;
    // src 63 is out of range for a 16-node network.
    EXPECT_NE(decodeChunkPayload(
                  reinterpret_cast<const uint8_t *>(payload.data()),
                  payload.size(), recs.size(), 16, last, decoded),
              "");
}

// ---------------------------------------------------------------------
// Malformed-file corpus: every corruption must fatal(), loudly.
// ---------------------------------------------------------------------

using TraceStreamDeathTest = ::testing::Test;

std::string
validFile()
{
    const std::string path = "/tmp/pl_ts_death_src.pltrace";
    writeTraceBinary(path, randomTrace(300, 64, 23), 64);
    return path;
}

TEST(TraceStreamDeathTest, BadMagic)
{
    const std::string path = validFile();
    std::string data = slurp(path);
    data[0] = 'X';
    const std::string bad = "/tmp/pl_ts_bad_magic.pltrace";
    spit(bad, data);
    EXPECT_DEATH(readTraceBinary(bad), "magic");
    std::remove(path.c_str());
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, UnsupportedVersion)
{
    const std::string path = validFile();
    std::string data = slurp(path);
    data[4] = 99;
    const std::string bad = "/tmp/pl_ts_bad_version.pltrace";
    spit(bad, data);
    EXPECT_DEATH(readTraceBinary(bad), "version");
    std::remove(path.c_str());
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, TruncationAnywhereIsDetected)
{
    // Chop the file at several byte offsets, including mid-varint
    // and mid-chunk: a truncated stream must never load as a valid
    // (shorter) trace.
    const std::string path = validFile();
    const std::string data = slurp(path);
    const std::string bad = "/tmp/pl_ts_truncated.pltrace";
    for (size_t cut = 1; cut < data.size();
         cut += 1 + data.size() / 11) {
        spit(bad, data.substr(0, cut));
        EXPECT_DEATH(readTraceBinary(bad), "");
    }
    // Dropping just the end marker must also die.
    spit(bad, data.substr(0, data.size() - 2));
    EXPECT_DEATH(readTraceBinary(bad), "");
    std::remove(path.c_str());
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, TrailingBytesAfterEndMarker)
{
    const std::string path = validFile();
    std::string data = slurp(path);
    data += "junk";
    const std::string bad = "/tmp/pl_ts_trailing.pltrace";
    spit(bad, data);
    EXPECT_DEATH(readTraceBinary(bad), "");
    std::remove(path.c_str());
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, OversizedChunkFraming)
{
    // header + a chunk claiming an absurd payload size.
    std::string data(kTraceMagic, sizeof(kTraceMagic));
    data.push_back(static_cast<char>(kTraceVersion));
    data.push_back('\0'); // flags
    putVarint(data, 0);   // nodeCount
    putVarint(data, kMaxChunkBytes + 1);
    putVarint(data, 1);
    const std::string bad = "/tmp/pl_ts_oversized.pltrace";
    spit(bad, data);
    EXPECT_DEATH(readTraceBinary(bad), "");
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, OutOfOrderCyclesAcrossChunks)
{
    // Two hand-built chunks whose cycles regress between them.
    std::vector<TraceRecord> first;
    first.push_back({10, 0, 1, MessageKind::Synthetic, 1});
    std::vector<TraceRecord> second;
    second.push_back({5, 0, 1, MessageKind::Synthetic, 2});
    std::string data(kTraceMagic, sizeof(kTraceMagic));
    data.push_back(static_cast<char>(kTraceVersion));
    data.push_back('\0');
    putVarint(data, 0);
    for (const auto *chunk : {&first, &second}) {
        std::string payload;
        encodeChunkPayload(chunk->data(), chunk->size(), payload);
        putVarint(data, payload.size());
        putVarint(data, chunk->size());
        data += payload;
    }
    putVarint(data, 0);
    putVarint(data, 0);
    const std::string bad = "/tmp/pl_ts_regress.pltrace";
    spit(bad, data);
    EXPECT_DEATH(readTraceBinary(bad), "");
    std::remove(bad.c_str());
}

TEST(TraceStreamDeathTest, WriterRejectsOutOfOrderAppend)
{
    const std::string path = "/tmp/pl_ts_writer_order.pltrace";
    EXPECT_DEATH(
        {
            TraceStreamWriter w(path);
            w.append({10, 0, 1, MessageKind::Synthetic, 1});
            w.append({5, 0, 1, MessageKind::Synthetic, 2});
        },
        "");
    std::remove(path.c_str());
}

TEST(TraceStreamDeathTest, WriterRejectsInvalidRecord)
{
    const std::string path = "/tmp/pl_ts_writer_node.pltrace";
    TraceStreamOptions opts;
    opts.nodeCount = 16;
    EXPECT_DEATH(
        {
            TraceStreamWriter w(path, opts);
            w.append({0, 99, 1, MessageKind::Synthetic, 1});
        },
        "");
    std::remove(path.c_str());
}

TEST(TraceStreamDeathTest, ReaderEnforcesNodeCount)
{
    // File written for 64 nodes, replayed against a 16-node target.
    const std::string path = "/tmp/pl_ts_reader_nodes.pltrace";
    std::vector<TraceRecord> recs;
    recs.push_back({0, 40, 1, MessageKind::Synthetic, 1});
    writeTraceBinary(path, recs, 64);
    EXPECT_DEATH(readTraceBinary(path, 16), "");
    std::remove(path.c_str());
}

} // namespace
} // namespace phastlane::traffic
