/**
 * @file
 * Synthetic traffic patterns (paper Fig 9 uses Bit Complement, Bit
 * Reverse, Shuffle and Transpose; Uniform, Tornado, Neighbor and
 * Hotspot are provided for completeness).
 *
 * The bit-permutation patterns operate on the log2(N)-bit node index;
 * Transpose and Tornado operate on mesh coordinates.
 */

#ifndef PHASTLANE_TRAFFIC_PATTERNS_HPP
#define PHASTLANE_TRAFFIC_PATTERNS_HPP

#include <string>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace phastlane::traffic {

/** Synthetic destination pattern. */
enum class Pattern {
    UniformRandom,
    BitComplement,
    BitReverse,
    Shuffle,
    Transpose,
    Tornado,
    Neighbor,
    Hotspot,
};

/** Display name ("bitcomp", "transpose", ...). */
const char *patternName(Pattern p);

/** Parse a pattern name; fatal() on unknown names. */
Pattern parsePattern(const std::string &name);

/**
 * Stateless destination function for deterministic patterns; for
 * UniformRandom/Hotspot the RNG picks the destination. Self-addressed
 * results are remapped to (self+1) mod N for deterministic patterns
 * whose permutation maps a node to itself, and re-drawn for random
 * patterns.
 */
NodeId destination(Pattern p, NodeId src, const MeshTopology &mesh,
                   Rng &rng);

/** True when @p p needs a power-of-two node count. */
bool needsPowerOfTwo(Pattern p);

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_PATTERNS_HPP
