#include "common/geometry.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane {

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("mesh dimensions must be positive (got %dx%d)",
              width, height);
}

std::vector<Port>
MeshTopology::xyRoute(NodeId src, NodeId dst) const
{
    const Coord s = coordOf(src);
    const Coord d = coordOf(dst);
    std::vector<Port> route;
    route.reserve(static_cast<size_t>(hopDistance(src, dst)));
    // X first.
    for (int x = s.x; x < d.x; ++x)
        route.push_back(Port::East);
    for (int x = s.x; x > d.x; --x)
        route.push_back(Port::West);
    // Then Y.
    for (int y = s.y; y < d.y; ++y)
        route.push_back(Port::North);
    for (int y = s.y; y > d.y; --y)
        route.push_back(Port::South);
    return route;
}

std::vector<NodeId>
MeshTopology::xyPath(NodeId src, NodeId dst) const
{
    std::vector<NodeId> path;
    NodeId at = src;
    for (Port dir : xyRoute(src, dst)) {
        at = neighbor(at, dir);
        PL_ASSERT(at != kInvalidNode, "XY route left the mesh");
        path.push_back(at);
    }
    return path;
}

ShardGrid::ShardGrid(const MeshTopology &mesh, int cols, int rows)
    : cols_(std::min(std::max(cols, 1), mesh.width())),
      rows_(std::min(std::max(rows, 1), mesh.height()))
{
    const int w = mesh.width();
    const int h = mesh.height();
    rects_.reserve(static_cast<size_t>(count()));
    for (int sy = 0; sy < rows_; ++sy) {
        const int y0 = sy * h / rows_;
        const int y1 = (sy + 1) * h / rows_;
        for (int sx = 0; sx < cols_; ++sx) {
            const int x0 = sx * w / cols_;
            const int x1 = (sx + 1) * w / cols_;
            rects_.push_back(Rect{x0, y0, x1 - x0, y1 - y0});
        }
    }
    shardOfNode_.resize(static_cast<size_t>(mesh.nodeCount()));
    localIdOfNode_.resize(static_cast<size_t>(mesh.nodeCount()));
    for (int s = 0; s < count(); ++s) {
        const Rect &r = rects_[static_cast<size_t>(s)];
        PL_ASSERT(r.width > 0 && r.height > 0, "empty shard rect");
        for (int y = r.y0; y < r.y0 + r.height; ++y) {
            for (int x = r.x0; x < r.x0 + r.width; ++x) {
                const size_t n =
                    static_cast<size_t>(mesh.nodeAt({x, y}));
                shardOfNode_[n] = s;
                localIdOfNode_[n] = (y - r.y0) * r.width + (x - r.x0);
            }
        }
    }
}

} // namespace phastlane
