# Empty compiler generated dependencies file for test_optical_loss.
# This may be replaced when dependencies are built.
