#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace phastlane {

int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PL_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<int>(std::min<long>(v, 1024));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

uint64_t
derivePointSeed(uint64_t base, uint64_t index)
{
    // SplitMix64 finalizer over (base advanced by index): the same
    // mixing the Rng seeding uses, so per-point streams never overlap
    // even for adjacent indices.
    uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ThreadPool::ThreadPool(int threads)
    : workerCount_(std::max(1, threads > 0 ? threads
                                           : resolveThreadCount(0)))
{
    queues_.reserve(static_cast<size_t>(workerCount_));
    for (int i = 0; i < workerCount_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(static_cast<size_t>(workerCount_) - 1);
    for (int i = 1; i < workerCount_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

bool
ThreadPool::popOrSteal(int self, Chunk &out)
{
    // Own queue first (front: cache-friendly sequential order) ...
    {
        auto &q = *queues_[static_cast<size_t>(self)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.chunks.empty()) {
            out = q.chunks.front();
            q.chunks.pop_front();
            return true;
        }
    }
    // ... then steal from the back of the other workers' queues.
    for (int d = 1; d < workerCount_; ++d) {
        const int victim = (self + d) % workerCount_;
        auto &q = *queues_[static_cast<size_t>(victim)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.chunks.empty()) {
            out = q.chunks.back();
            q.chunks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::runChunks(int self)
{
    Chunk c;
    while (popOrSteal(self, c)) {
        for (size_t i = c.begin; i < c.end; ++i) {
            try {
                (*body_)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
        }
        if (remaining_.fetch_sub(c.end - c.begin,
                                 std::memory_order_acq_rel) ==
            c.end - c.begin) {
            std::lock_guard<std::mutex> lock(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop(int self)
{
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
        }
        runChunks(self);
    }
}

void
ThreadPool::run(size_t n, const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    if (workerCount_ == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Chunk small enough that stealing can balance uneven task costs
    // (simulation points vary wildly near saturation), large enough to
    // amortize queue traffic.
    const size_t per =
        std::max<size_t>(1, n / (4 * static_cast<size_t>(
                                         workerCount_)));
    {
        std::lock_guard<std::mutex> lock(mu_);
        body_ = &body;
        firstError_ = nullptr;
        remaining_.store(n, std::memory_order_relaxed);
        size_t begin = 0;
        int w = 0;
        while (begin < n) {
            const size_t end = std::min(n, begin + per);
            auto &q = *queues_[static_cast<size_t>(w)];
            std::lock_guard<std::mutex> qlock(q.mu);
            q.chunks.push_back(Chunk{begin, end});
            begin = end;
            w = (w + 1) % workerCount_;
        }
        ++generation_;
    }
    wake_.notify_all();

    // The caller works too.
    runChunks(0);
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
        body_ = nullptr;
    }
    if (firstError_)
        std::rethrow_exception(firstError_);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &body,
            int threads)
{
    const int t = resolveThreadCount(threads);
    if (t <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ThreadPool pool(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(t), n)));
    pool.run(n, body);
}

} // namespace phastlane
