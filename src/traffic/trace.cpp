#include "traffic/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace phastlane::traffic {

std::string
validateTraceRecord(const TraceRecord &r, int node_count)
{
    if (r.src < 0)
        return detail::formatMsg("src %d is not a node", r.src);
    if (r.dst < kInvalidNode)
        return detail::formatMsg(
            "dst %d is neither a node nor the broadcast sentinel %d",
            r.dst, kInvalidNode);
    if (node_count > 0) {
        if (r.src >= node_count)
            return detail::formatMsg(
                "src %d outside the %d-node network", r.src,
                node_count);
        if (!r.broadcast() && r.dst >= node_count)
            return detail::formatMsg(
                "dst %d outside the %d-node network", r.dst,
                node_count);
    }
    if (!r.broadcast() && r.dst == r.src)
        return detail::formatMsg("unicast from node %d to itself",
                                 r.src);
    if (static_cast<unsigned>(r.kind) >
        static_cast<unsigned>(MessageKind::Synthetic))
        return detail::formatMsg("unknown message kind %u",
                                 static_cast<unsigned>(r.kind));
    return "";
}

void
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    // Every write is checked: a full disk used to produce a silently
    // truncated trace that later replayed as a shorter workload.
    if (std::fprintf(f, "# cycle src dst kind tag\n") < 0) {
        std::fclose(f);
        fatal("write error on trace file '%s'", path.c_str());
    }
    for (const auto &r : records) {
        if (std::fprintf(f, "%" PRIu64 " %d %d %d %" PRIu64 "\n",
                         r.cycle, r.src, r.dst,
                         static_cast<int>(r.kind), r.tag) < 0) {
            std::fclose(f);
            fatal("write error on trace file '%s'", path.c_str());
        }
    }
    if (std::fclose(f) != 0)
        fatal("close/flush error on trace file '%s' (disk full?)",
              path.c_str());
}

std::vector<TraceRecord>
readTrace(const std::string &path, int node_count)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    std::vector<TraceRecord> records;
    std::string line;
    char buf[256];
    int lineno = 0;
    Cycle last_cycle = 0;
    bool eof = false;
    while (!eof) {
        // Accumulate one full line regardless of length: the fixed
        // 256-byte fgets buffer used to split over-long lines, letting
        // the tail fragment parse as a bogus extra record.
        line.clear();
        bool have = false;
        for (;;) {
            if (!std::fgets(buf, sizeof(buf), f)) {
                eof = true;
                break;
            }
            have = true;
            line += buf;
            if (!line.empty() && line.back() == '\n')
                break;
        }
        if (!have)
            break;
        ++lineno;
        if (line[0] == '#' || line[0] == '\n')
            continue;
        TraceRecord r;
        int kind = 0;
        int consumed = 0;
        if (std::sscanf(line.c_str(),
                        "%" SCNu64 " %d %d %d %" SCNu64 " %n",
                        &r.cycle, &r.src, &r.dst, &kind, &r.tag,
                        &consumed) != 5) {
            std::fclose(f);
            fatal("malformed trace record at %s:%d", path.c_str(),
                  lineno);
        }
        // Reject trailing garbage after the five fields.
        for (const char *p = line.c_str() + consumed; *p; ++p) {
            if (*p != ' ' && *p != '\t' && *p != '\r' && *p != '\n') {
                std::fclose(f);
                fatal("trailing garbage in trace record at %s:%d",
                      path.c_str(), lineno);
            }
        }
        r.kind = static_cast<MessageKind>(kind);
        const std::string err = validateTraceRecord(r, node_count);
        if (!err.empty()) {
            std::fclose(f);
            fatal("invalid trace record at %s:%d: %s", path.c_str(),
                  lineno, err.c_str());
        }
        if (r.cycle < last_cycle) {
            std::fclose(f);
            fatal("trace records out of order at %s:%d", path.c_str(),
                  lineno);
        }
        last_cycle = r.cycle;
        records.push_back(r);
    }
    if (std::ferror(f)) {
        std::fclose(f);
        fatal("read error on trace file '%s'", path.c_str());
    }
    std::fclose(f);
    return records;
}

TraceReplayResult
replayTrace(Network &net, const std::vector<TraceRecord> &records,
            Cycle max_cycles)
{
    const int node_count = net.nodeCount();
    for (size_t i = 0; i < records.size(); ++i) {
        const std::string err =
            validateTraceRecord(records[i], node_count);
        if (!err.empty())
            fatal("invalid trace record %zu: %s", i, err.c_str());
    }

    std::deque<Packet> pending;
    size_t next = 0;
    RunningStat latency;
    uint64_t deliveries = 0;
    uint64_t next_id = 1;
    const Cycle deadline = net.now() + max_cycles;
    bool done = false;

    while (net.now() < deadline) {
        // Release due records into the pending queue.
        while (next < records.size() &&
               records[next].cycle <= net.now()) {
            const TraceRecord &r = records[next++];
            Packet pkt;
            pkt.id = next_id++;
            pkt.src = r.src;
            pkt.dst = r.dst;
            pkt.broadcast = r.broadcast();
            pkt.kind = r.kind;
            pkt.tag = r.tag;
            pkt.createdAt = net.now();
            pending.push_back(pkt);
        }
        // Offer pending packets in order (head-of-line per trace).
        while (!pending.empty() && net.inject(pending.front()))
            pending.pop_front();

        if (next >= records.size() && pending.empty() &&
            net.inFlight() == 0) {
            done = true;
            break;
        }
        net.step();
        for (const auto &d : net.deliveries()) {
            latency.add(static_cast<double>(d.at - d.packet.createdAt));
            ++deliveries;
        }
    }

    TraceReplayResult res;
    res.completionCycle = net.now();
    res.messages = records.size();
    res.deliveries = deliveries;
    res.avgLatency = latency.mean();
    res.hitCycleLimit = !done;
    if (!done) {
        res.outstanding = net.inFlight() + pending.size() +
                          (records.size() - next);
        warn("trace replay hit the cycle limit with %llu outstanding",
             static_cast<unsigned long long>(res.outstanding));
    }
    return res;
}

bool
RecordingNetwork::inject(const Packet &pkt)
{
    if (!inner_.inject(pkt))
        return false;
    TraceRecord r;
    r.cycle = inner_.now();
    r.src = pkt.src;
    r.dst = pkt.broadcast ? kInvalidNode : pkt.dst;
    r.kind = pkt.kind;
    r.tag = pkt.tag;
    records_.push_back(r);
    return true;
}

} // namespace phastlane::traffic
