#include "power/cacti_lite.hpp"

#include <cmath>

#include "common/log.hpp"

namespace phastlane::power {

BufferEnergyModel::BufferEnergyModel(int entries, int bits_per_entry)
    : entries_(entries), bits_(bits_per_entry)
{
    if (entries <= 0 || bits_per_entry <= 0)
        fatal("buffer model needs positive entries and width");
}

double
BufferEnergyModel::readPj() const
{
    const double per_bit_fj =
        kAccessBaseFjPerBit +
        kAccessSlopeFjPerBit * std::sqrt(static_cast<double>(entries_));
    return per_bit_fj * static_cast<double>(bits_) * 1e-3;
}

double
BufferEnergyModel::writePj() const
{
    return readPj() * kWriteFactor;
}

double
BufferEnergyModel::leakageW() const
{
    return kLeakagePwPerBit * 1e-12 * static_cast<double>(entries_) *
           static_cast<double>(bits_);
}

} // namespace phastlane::power
