/**
 * @file
 * Link-utilization report tests.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "sim/report.hpp"
#include "traffic/synthetic.hpp"

namespace phastlane::sim {
namespace {

TEST(Report, EdgePortsAreExcluded)
{
    MeshTopology mesh(8, 8);
    std::vector<uint64_t> counts(64 * kMeshPorts, 0);
    UtilizationReport r(mesh, counts, 100);
    // 2 * (w*(h-1) + h*(w-1)) directed links in an 8x8 mesh = 224.
    EXPECT_EQ(r.links().size(), 224u);
}

TEST(Report, UtilizationArithmetic)
{
    MeshTopology mesh(2, 2);
    std::vector<uint64_t> counts(4 * kMeshPorts, 0);
    // Node 0's East port used 50 of 100 cycles.
    counts[0 * kMeshPorts + portIndex(Port::East)] = 50;
    UtilizationReport r(mesh, counts, 100);
    EXPECT_DOUBLE_EQ(r.peakUtilization(), 0.5);
    // 8 directed links in a 2x2 mesh.
    EXPECT_EQ(r.links().size(), 8u);
    EXPECT_DOUBLE_EQ(r.meanUtilization(), 0.5 / 8.0);
    const auto hot = r.hottest(1);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0].router, 0);
    EXPECT_EQ(hot[0].out, Port::East);
}

TEST(Report, HottestIsSortedAndTruncated)
{
    MeshTopology mesh(2, 2);
    std::vector<uint64_t> counts(4 * kMeshPorts, 0);
    counts[0 * kMeshPorts + portIndex(Port::East)] = 10;
    counts[0 * kMeshPorts + portIndex(Port::North)] = 30;
    counts[3 * kMeshPorts + portIndex(Port::West)] = 20;
    UtilizationReport r(mesh, counts, 100);
    const auto hot = r.hottest(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].traversals, 30u);
    EXPECT_EQ(hot[1].traversals, 20u);
}

TEST(Report, HeatmapShapeAndScale)
{
    MeshTopology mesh(4, 4);
    std::vector<uint64_t> counts(16 * kMeshPorts, 0);
    // Saturate every outgoing link of node 5.
    for (Port p : kMeshDirections)
        counts[5 * kMeshPorts + portIndex(p)] = 100;
    UtilizationReport r(mesh, counts, 100);
    const std::string map = r.heatmap();
    // 4 rows of "c c c c \n".
    EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 4);
    EXPECT_NE(map.find('9'), std::string::npos);
    EXPECT_NE(map.find('.'), std::string::npos);
}

TEST(Report, FromPhastlaneNetworkUnderTraffic)
{
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    traffic::SyntheticConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 1000;
    traffic::SyntheticDriver(net, cfg).run();
    const auto r = UtilizationReport::fromNetwork(net, net.now());
    EXPECT_GT(r.meanUtilization(), 0.0);
    EXPECT_LE(r.peakUtilization(), 1.0);
}

TEST(Report, FromElectricalNetworkUnderTraffic)
{
    electrical::ElectricalNetwork net(
        electrical::ElectricalParams{});
    traffic::SyntheticConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 1000;
    traffic::SyntheticDriver(net, cfg).run();
    const auto r = UtilizationReport::fromNetwork(net, net.now());
    EXPECT_GT(r.meanUtilization(), 0.0);
    EXPECT_LE(r.peakUtilization(), 1.0);
}

TEST(Report, LinkCapacityInvariant)
{
    // No link can carry more than one flit per cycle in either
    // network, so utilization never exceeds 1.
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    traffic::SyntheticConfig cfg;
    cfg.pattern = traffic::Pattern::Transpose;
    cfg.injectionRate = 0.4; // deep saturation
    cfg.warmupCycles = 100;
    cfg.measureCycles = 1500;
    traffic::SyntheticDriver(net, cfg).run();
    const auto r = UtilizationReport::fromNetwork(net, net.now());
    for (const auto &l : r.links())
        EXPECT_LE(l.utilization, 1.0)
            << "router " << l.router << " port " << portName(l.out);
}

} // namespace
} // namespace phastlane::sim
