#include "check/differential.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <memory>
#include <sstream>
#include <tuple>

#include "check/invariants.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/observe.hpp"

namespace phastlane::check {

namespace {

/** Delivery key for order-independent comparison: within one cycle
 *  the two implementations may emit deliveries in different orders. */
using DeliveryKey = std::tuple<PacketId, NodeId, Cycle, Cycle>;

std::vector<DeliveryKey>
deliveryKeys(const std::vector<Delivery> &ds)
{
    std::vector<DeliveryKey> keys;
    keys.reserve(ds.size());
    for (const auto &d : ds)
        keys.emplace_back(d.packet.id, d.node, d.acceptedAt,
                          d.injectedAt);
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::string
diffCounter(const char *name, uint64_t opt, uint64_t ref)
{
    if (opt == ref)
        return "";
    return detail::formatMsg("%s: optimized %llu, reference %llu",
                             name,
                             static_cast<unsigned long long>(opt),
                             static_cast<unsigned long long>(ref));
}

} // namespace

std::vector<Injection>
makeStream(const core::PhastlaneParams &params,
           const StreamConfig &cfg)
{
    const MeshTopology mesh(params.meshWidth, params.meshHeight);
    Rng rng(cfg.seed);
    std::vector<Injection> stream;
    PacketId next_id = 1;
    for (Cycle c = 0; c < cfg.cycles; ++c) {
        for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
            // One bernoulli per node regardless of the adversarial
            // mix (None keeps legacy streams bit-identical).
            const double rate = std::min(
                1.0, cfg.rate * traffic::rateScale(cfg.adversarial, n,
                                                   mesh.nodeCount()));
            if (!rng.bernoulli(rate))
                continue;
            Injection inj;
            inj.at = c;
            inj.pkt.id = next_id++;
            inj.pkt.src = n;
            inj.pkt.kind = MessageKind::Synthetic;
            inj.pkt.createdAt = c;
            if (rng.bernoulli(cfg.broadcastFraction)) {
                inj.pkt.broadcast = true;
            } else {
                const NodeId pinned = traffic::mixDestination(
                    cfg.adversarial, n, mesh);
                inj.pkt.dst =
                    pinned != kInvalidNode
                        ? pinned
                        : traffic::destination(cfg.pattern, n, mesh,
                                               rng, cfg.patternOpts);
            }
            stream.push_back(std::move(inj));
        }
    }
    return stream;
}

std::string
diffNetworks(const core::PhastlaneNetwork &optimized,
             const ReferenceNetwork &reference)
{
    // Per-cycle deliveries, compared as multisets.
    const auto a = deliveryKeys(optimized.deliveries());
    const auto b = deliveryKeys(reference.deliveries());
    if (a != b) {
        std::ostringstream os;
        os << "deliveries differ (" << a.size() << " vs " << b.size()
           << ")";
        for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
            if (i < a.size() && i < b.size() && a[i] == b[i])
                continue;
            if (i < a.size()) {
                os << "; optimized: msg " << std::get<0>(a[i])
                   << " at node " << std::get<1>(a[i]);
            }
            if (i < b.size()) {
                os << "; reference: msg " << std::get<0>(b[i])
                   << " at node " << std::get<1>(b[i]);
            }
            break; // first divergence is enough
        }
        return os.str();
    }

    const auto &oc = optimized.counters();
    const auto &rc = reference.counters();
    const auto &op = optimized.phastlaneCounters();
    const auto &rp = reference.phastlaneCounters();
    const auto &oe = optimized.events();
    const auto &re = reference.events();

    struct Pair {
        const char *name;
        uint64_t opt;
        uint64_t ref;
    };
    const Pair pairs[] = {
        {"messagesAccepted", oc.messagesAccepted, rc.messagesAccepted},
        {"packetsInjected", oc.packetsInjected, rc.packetsInjected},
        {"deliveries", oc.deliveries, rc.deliveries},
        {"drops", op.drops, rp.drops},
        {"retransmissions", op.retransmissions, rp.retransmissions},
        {"blockedBuffered", op.blockedBuffered, rp.blockedBuffered},
        {"interimAccepts", op.interimAccepts, rp.interimAccepts},
        {"launches", op.launches, rp.launches},
        {"passTraversals", oe.passTraversals, re.passTraversals},
        {"receives", oe.receives, re.receives},
        {"tapReceives", oe.tapReceives, re.tapReceives},
        {"bufferWrites", oe.bufferWrites, re.bufferWrites},
        {"bufferReads", oe.bufferReads, re.bufferReads},
        {"dropSignalHops", oe.dropSignalHops, re.dropSignalHops},
        {"lostUnits", oe.lostUnits, re.lostUnits},
        {"dropSignalsLost", oe.dropSignalsLost, re.dropSignalsLost},
        {"faultMisTurns", oe.faultMisTurns, re.faultMisTurns},
        {"faultMissedReceives", oe.faultMissedReceives,
         re.faultMissedReceives},
        {"faultCorruptions", oe.faultCorruptions, re.faultCorruptions},
        {"faultDeadArrivals", oe.faultDeadArrivals,
         re.faultDeadArrivals},
        {"duplicatesSuppressed", oe.duplicatesSuppressed,
         re.duplicatesSuppressed},
        {"inFlight", optimized.inFlight(), reference.inFlight()},
        {"bufferedPackets", optimized.bufferedPackets(),
         reference.bufferedPackets()},
        {"nicQueuedPackets", optimized.nicQueuedPackets(),
         reference.nicQueuedPackets()},
    };
    for (const auto &p : pairs) {
        std::string d = diffCounter(p.name, p.opt, p.ref);
        if (!d.empty())
            return d;
    }
    return "";
}

DiffResult
runLockstep(const core::PhastlaneParams &params,
            const std::vector<Injection> &stream, Cycle max_cycles)
{
    if (!ReferenceNetwork::supports(params))
        fatal("runLockstep: configuration has no reference model");

    core::PhastlaneNetwork optimized(params);
    ReferenceNetwork reference(params);
    InvariantChecker checker(optimized, /*abort_on_violation=*/false);
    optimized.setObserver(&checker);

    // PL_CHECK_METRICS=1 composes the metrics/tracing observers of
    // src/obs/ with the checker through an ObserverMux on every
    // lockstep run — CI uses it to prove the observer stack neither
    // perturbs the simulation nor the checker. Results must be
    // identical with or without it (observers are read-only).
    obs::MetricsRegistry metricsRegistry;
    std::unique_ptr<obs::MetricsObserver> metricsObserver;
    std::unique_ptr<obs::TraceObserver> traceObserver;
    core::ObserverMux mux;
    if (const char *v = std::getenv("PL_CHECK_METRICS");
        v && v[0] != '\0' && v[0] != '0') {
        obs::ObserveOptions opts;
        opts.heatmapInterval = 32;
        opts.traceCapacity = 1u << 16;
        metricsObserver = std::make_unique<obs::MetricsObserver>(
            optimized, metricsRegistry, opts);
        traceObserver =
            std::make_unique<obs::TraceObserver>(optimized, opts);
        mux.add(&checker);
        mux.add(metricsObserver.get());
        mux.add(traceObserver.get());
        optimized.setObserver(&mux);
    }

    std::vector<Injection> pending(stream.begin(), stream.end());
    DiffResult result;
    for (Cycle c = 0; c < max_cycles; ++c) {
        // Attempt every due injection on both networks; a full NIC
        // retries next cycle. Acceptance itself must agree.
        size_t keep = 0;
        for (size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].at > optimized.now()) {
                pending[keep++] = pending[i];
                continue;
            }
            const bool a = optimized.inject(pending[i].pkt);
            const bool b = reference.inject(pending[i].pkt);
            if (a != b) {
                result.ok = false;
                result.failCycle = optimized.now();
                result.message = detail::formatMsg(
                    "inject of message %llu %s by the optimized "
                    "network but %s by the reference",
                    static_cast<unsigned long long>(pending[i].pkt.id),
                    a ? "accepted" : "rejected",
                    b ? "accepted" : "rejected");
                return result;
            }
            if (!a)
                pending[keep++] = pending[i];
        }
        pending.resize(keep);

        optimized.step();
        reference.step();

        std::string diff = diffNetworks(optimized, reference);
        if (!diff.empty()) {
            result.ok = false;
            result.failCycle = optimized.now() - 1;
            result.message = diff;
            return result;
        }
        if (!checker.ok()) {
            result.ok = false;
            result.failCycle = optimized.now() - 1;
            result.message =
                "invariant violation: " + checker.violations().front();
            return result;
        }

        if (pending.empty() && optimized.inFlight() == 0 &&
            optimized.bufferedPackets() == 0 &&
            optimized.nicQueuedPackets() == 0) {
            checker.checkQuiescent();
            if (!checker.ok()) {
                result.ok = false;
                result.failCycle = optimized.now() - 1;
                result.message = "at quiescence: " +
                                 checker.violations().front();
            }
            return result;
        }
    }
    result.ok = false;
    result.failCycle = max_cycles;
    result.message = detail::formatMsg(
        "networks did not drain within %llu cycles (%llu still in "
        "flight)",
        static_cast<unsigned long long>(max_cycles),
        static_cast<unsigned long long>(optimized.inFlight()));
    return result;
}

std::vector<Injection>
shrinkStream(const core::PhastlaneParams &params,
             const std::vector<Injection> &stream, Cycle max_cycles,
             int max_evaluations)
{
    int evaluations = 0;
    const auto fails = [&](const std::vector<Injection> &s) {
        ++evaluations;
        return !runLockstep(params, s, max_cycles).ok;
    };
    if (stream.empty() || !fails(stream))
        return stream;

    // ddmin: remove ever-finer complements while the failure persists.
    std::vector<Injection> current = stream;
    size_t granularity = 2;
    while (current.size() >= 2 && evaluations < max_evaluations) {
        const size_t chunk =
            (current.size() + granularity - 1) / granularity;
        bool reduced = false;
        for (size_t start = 0;
             start < current.size() && evaluations < max_evaluations;
             start += chunk) {
            std::vector<Injection> complement;
            complement.reserve(current.size());
            for (size_t i = 0; i < current.size(); ++i) {
                if (i < start || i >= start + chunk)
                    complement.push_back(current[i]);
            }
            if (complement.size() < current.size() &&
                fails(complement)) {
                current = std::move(complement);
                granularity = std::max<size_t>(granularity - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (granularity >= current.size())
                break;
            granularity = std::min(current.size(), granularity * 2);
        }
    }
    return current;
}

std::string
reproTestCase(const core::PhastlaneParams &params,
              const std::vector<Injection> &stream)
{
    std::ostringstream os;
    os << "// Auto-generated by phastlane::check::reproTestCase from "
          "a shrunk\n"
          "// differential failure. Paste into "
          "tests/test_check_differential.cpp.\n"
          "TEST(CheckDifferentialRepro, Shrunk)\n"
          "{\n"
          "    phastlane::core::PhastlaneParams p;\n";
    os << "    p.meshWidth = " << params.meshWidth << ";\n";
    os << "    p.meshHeight = " << params.meshHeight << ";\n";
    os << "    p.maxHopsPerCycle = " << params.maxHopsPerCycle
       << ";\n";
    os << "    p.routerBufferEntries = " << params.routerBufferEntries
       << ";\n";
    os << "    p.nicQueueEntries = " << params.nicQueueEntries
       << ";\n";
    os << "    p.nicTransfersPerCycle = "
       << params.nicTransfersPerCycle << ";\n";
    os << "    p.launchesPerQueue = " << params.launchesPerQueue
       << ";\n";
    os << "    p.backoffBase = " << params.backoffBase << ";\n";
    os << "    p.exponentialBackoff = "
       << (params.exponentialBackoff ? "true" : "false") << ";\n";
    os << "    p.backoffCap = " << params.backoffCap << ";\n";
    os << "    p.sharedBufferPool = "
       << (params.sharedBufferPool ? "true" : "false") << ";\n";
    os << "    p.seed = " << params.seed << "u;\n";
    if (params.bufferArbitration ==
        core::BufferArbitration::OldestFirst) {
        os << "    p.bufferArbitration = "
              "phastlane::core::BufferArbitration::OldestFirst;\n";
    }
    if (params.opticalArbitration ==
        core::OpticalArbitration::RoundRobin) {
        os << "    p.opticalArbitration = "
              "phastlane::core::OpticalArbitration::RoundRobin;\n";
    }
    // Admission knobs are hand-emitted (no X-macro list for general
    // params); emit all of them whenever a policy is active so the
    // repro never depends on the defaults staying put.
    if (params.admission != core::AdmissionPolicy::None) {
        os << "    p.admission = phastlane::core::AdmissionPolicy::"
           << (params.admission == core::AdmissionPolicy::TokenBucket
                   ? "TokenBucket"
                   : "AgeBoost")
           << ";\n";
        os << "    p.admissionBurst = " << params.admissionBurst
           << ";\n";
        os << "    p.admissionPeriod = " << params.admissionPeriod
           << ";\n";
        os << "    p.admissionAgeThreshold = "
           << params.admissionAgeThreshold << ";\n";
    }
    // Every FaultInjection field is emitted via the X-macro lists in
    // params.hpp, so a knob added there cannot silently desynchronize
    // emitted repros. (An earlier version hand-listed only
    // invertStraightPriority.)
#define PL_EMIT_FAULT_BOOL(field)                                      \
    if (params.faults.field)                                           \
        os << "    p.faults." #field " = true;\n";
    PL_FAULT_BOOL_FIELDS(PL_EMIT_FAULT_BOOL)
#undef PL_EMIT_FAULT_BOOL
#define PL_EMIT_FAULT_RATE(field)                                      \
    if (params.faults.field != 0.0) {                                  \
        os << "    p.faults." #field " = "                             \
           << std::setprecision(17) << params.faults.field << ";\n";   \
    }
    PL_FAULT_RATE_FIELDS(PL_EMIT_FAULT_RATE)
#undef PL_EMIT_FAULT_RATE
#define PL_EMIT_FAULT_SEED(field)                                      \
    if (params.faults.field != 0)                                      \
        os << "    p.faults." #field " = " << params.faults.field      \
           << "u;\n";
    PL_FAULT_SEED_FIELDS(PL_EMIT_FAULT_SEED)
#undef PL_EMIT_FAULT_SEED

    os << "    std::vector<phastlane::check::Injection> stream;\n"
          "    const auto inj = [&](phastlane::Cycle at,\n"
          "                         phastlane::PacketId id,\n"
          "                         phastlane::NodeId src,\n"
          "                         phastlane::NodeId dst,\n"
          "                         bool broadcast) {\n"
          "        phastlane::Packet k;\n"
          "        k.id = id;\n"
          "        k.src = src;\n"
          "        k.dst = dst;\n"
          "        k.broadcast = broadcast;\n"
          "        k.createdAt = at;\n"
          "        stream.push_back({at, k});\n"
          "    };\n";
    for (const auto &i : stream) {
        os << "    inj(" << i.at << ", " << i.pkt.id << ", "
           << i.pkt.src << ", " << i.pkt.dst << ", "
           << (i.pkt.broadcast ? "true" : "false") << ");\n";
    }
    os << "    const auto r =\n"
          "        phastlane::check::runLockstep(p, stream, 50000);\n"
          "    EXPECT_TRUE(r.ok) << \"cycle \" << r.failCycle << "
          "\": \" << r.message;\n"
          "}\n";
    return os.str();
}

std::vector<CampaignCell>
defaultCampaign(int seeds_per_cell, Cycle cycles)
{
    std::vector<CampaignCell> cells;
    uint64_t seed = 1000;
    const auto addMix = [&](const std::string &name, int w, int h,
                            int hops, int depth, traffic::Pattern pat,
                            double rate, double bcast,
                            const auto &tweak,
                            const auto &stream_tweak) {
        for (int s = 0; s < seeds_per_cell; ++s) {
            CampaignCell cell;
            cell.name = name + "/s" + std::to_string(s);
            cell.params.meshWidth = w;
            cell.params.meshHeight = h;
            cell.params.maxHopsPerCycle = hops;
            cell.params.routerBufferEntries = depth;
            tweak(cell.params);
            cell.stream.pattern = pat;
            cell.stream.rate = rate;
            cell.stream.broadcastFraction = bcast;
            cell.stream.cycles = cycles;
            cell.stream.seed = seed++;
            cell.params.seed = cell.stream.seed;
            stream_tweak(cell.stream);
            cells.push_back(std::move(cell));
        }
    };
    const auto streamNoop = [](StreamConfig &) {};
    const auto add = [&](const std::string &name, int w, int h,
                         int hops, int depth, traffic::Pattern pat,
                         double rate, double bcast,
                         const auto &tweak) {
        addMix(name, w, h, hops, depth, pat, rate, bcast, tweak,
               streamNoop);
    };
    const auto noop = [](core::PhastlaneParams &) {};
    using traffic::Pattern;

    // Patterns x shapes x hop limits x depths. Depth 1-2 cells force
    // heavy drop/retransmit traffic; rates sit near saturation.
    add("uniform-4x4-h4-d10", 4, 4, 4, 10, Pattern::UniformRandom,
        0.30, 0.10, noop);
    add("transpose-4x4-h4-d2", 4, 4, 4, 2, Pattern::Transpose, 0.40,
        0.00, noop);
    add("tornado-4x4-h5-d1", 4, 4, 5, 1, Pattern::Tornado, 0.50, 0.05,
        noop);
    add("uniform-8x8-h5-d10", 8, 8, 5, 10, Pattern::UniformRandom,
        0.20, 0.10, noop);
    add("transpose-8x8-h8-d10", 8, 8, 8, 10, Pattern::Transpose, 0.30,
        0.05, noop);
    add("hotspot-8x8-h4-d2", 8, 8, 4, 2, Pattern::Hotspot, 0.15, 0.20,
        noop);
    add("uniform-4x2-h4-d2", 4, 2, 4, 2, Pattern::UniformRandom, 0.40,
        0.30, noop);
    add("neighbor-8x4-h5-d1", 8, 4, 5, 1, Pattern::Neighbor, 0.60,
        0.00, noop);
    add("uniform-4x4-shared", 4, 4, 4, 10, Pattern::UniformRandom,
        0.35, 0.10,
        [](core::PhastlaneParams &p) { p.sharedBufferPool = true; });
    add("uniform-8x8-oldest", 8, 8, 4, 10, Pattern::UniformRandom,
        0.25, 0.10, [](core::PhastlaneParams &p) {
            p.bufferArbitration = core::BufferArbitration::OldestFirst;
        });
    add("tornado-4x4-rr", 4, 4, 4, 2, Pattern::Tornado, 0.40, 0.05,
        [](core::PhastlaneParams &p) {
            p.opticalArbitration = core::OpticalArbitration::RoundRobin;
        });
    add("uniform-4x4-backoff", 4, 4, 4, 1, Pattern::UniformRandom,
        0.40, 0.10, [](core::PhastlaneParams &p) {
            p.exponentialBackoff = true;
            p.backoffBase = 1;
        });

    // Fault-injection cells (DESIGN.md §10): every stochastic fault
    // knob exercised under the lockstep oracle, which mirrors each
    // stateless draw, and under the invariant checker's
    // exactly-once-or-accounted-lost ledger. Shallow buffers force
    // the drop traffic the drop-signal faults need.
    add("fault-sigloss-4x4-d2", 4, 4, 4, 2, Pattern::UniformRandom,
        0.35, 0.10, [](core::PhastlaneParams &p) {
            p.faults.dropSignalLossRate = 0.25;
            p.faults.faultSeed = 7;
        });
    add("fault-misturn-4x4", 4, 4, 4, 10, Pattern::UniformRandom,
        0.25, 0.10, [](core::PhastlaneParams &p) {
            p.faults.misTurnRate = 0.05;
            p.faults.faultSeed = 11;
        });
    add("fault-missrecv-4x4", 4, 4, 4, 10, Pattern::UniformRandom,
        0.25, 0.20, [](core::PhastlaneParams &p) {
            p.faults.missedReceiveRate = 0.05;
            p.faults.faultSeed = 13;
        });
    add("fault-corrupt-4x4-d1", 4, 4, 4, 1, Pattern::UniformRandom,
        0.30, 0.30, [](core::PhastlaneParams &p) {
            p.faults.dropperIdCorruptRate = 0.50;
            p.faults.faultSeed = 17;
        });
    add("fault-routerfail-4x4", 4, 4, 4, 10, Pattern::UniformRandom,
        0.20, 0.10, [](core::PhastlaneParams &p) {
            p.faults.routerFailRate = 0.08;
            p.faults.faultSeed = 19;
        });
    add("fault-combined-4x4-d2", 4, 4, 4, 2, Pattern::UniformRandom,
        0.30, 0.15, [](core::PhastlaneParams &p) {
            p.faults.misTurnRate = 0.02;
            p.faults.missedReceiveRate = 0.02;
            p.faults.dropSignalLossRate = 0.10;
            p.faults.dropperIdCorruptRate = 0.20;
            p.faults.routerFailRate = 0.05;
            p.faults.faultSeed = 23;
        });

    // Admission-control cells (DESIGN.md §14): both policies under
    // the oracle, on turn-heavy patterns where the boost/throttle
    // actually changes behavior, plus combinations with adversarial
    // mixes and injected faults.
    add("admit-token-4x4-transpose", 4, 4, 4, 2, Pattern::Transpose,
        0.40, 0.00, [](core::PhastlaneParams &p) {
            p.admission = core::AdmissionPolicy::TokenBucket;
            p.admissionBurst = 2;
            p.admissionPeriod = 3;
        });
    add("admit-token-8x8-uniform", 8, 8, 5, 10,
        Pattern::UniformRandom, 0.25, 0.10,
        [](core::PhastlaneParams &p) {
            p.admission = core::AdmissionPolicy::TokenBucket;
            p.admissionBurst = 4;
            p.admissionPeriod = 2;
        });
    add("admit-age-4x4-tornado", 4, 4, 4, 2, Pattern::Tornado, 0.40,
        0.05, [](core::PhastlaneParams &p) {
            p.admission = core::AdmissionPolicy::AgeBoost;
            p.admissionAgeThreshold = 8;
        });
    add("admit-age-8x8-oldest", 8, 8, 4, 10, Pattern::UniformRandom,
        0.25, 0.10, [](core::PhastlaneParams &p) {
            p.admission = core::AdmissionPolicy::AgeBoost;
            p.admissionAgeThreshold = 16;
            p.bufferArbitration = core::BufferArbitration::OldestFirst;
        });
    add("admit-age-4x4-rr", 4, 4, 4, 2, Pattern::Transpose, 0.40,
        0.00, [](core::PhastlaneParams &p) {
            p.admission = core::AdmissionPolicy::AgeBoost;
            p.admissionAgeThreshold = 4;
            p.opticalArbitration = core::OpticalArbitration::RoundRobin;
        });

    // Adversarial-traffic cells: configurable hotspot, elephants,
    // tenants — alone and combined with admission and faults.
    addMix("adv-hotspot-8x8-corner", 8, 8, 4, 2, Pattern::Hotspot,
           0.15, 0.10, noop, [](StreamConfig &s) {
               s.patternOpts.hotspotFraction = 0.4;
               s.patternOpts.hotspotNode = 0;
           });
    addMix("adv-elephant-4x4-token", 4, 4, 4, 2,
           Pattern::UniformRandom, 0.20, 0.05,
           [](core::PhastlaneParams &p) {
               p.admission = core::AdmissionPolicy::TokenBucket;
               p.admissionBurst = 3;
               p.admissionPeriod = 2;
           },
           [](StreamConfig &s) {
               s.adversarial.mix = traffic::AdversarialMix::ElephantMice;
           });
    addMix("adv-tenant-8x4-age", 8, 4, 5, 2, Pattern::UniformRandom,
           0.20, 0.00,
           [](core::PhastlaneParams &p) {
               p.admission = core::AdmissionPolicy::AgeBoost;
               p.admissionAgeThreshold = 8;
           },
           [](StreamConfig &s) {
               s.adversarial.mix = traffic::AdversarialMix::Tenants;
               s.adversarial.tenantCount = 4;
           });
    addMix("adv-elephant-fault-4x4", 4, 4, 4, 2,
           Pattern::UniformRandom, 0.25, 0.10,
           [](core::PhastlaneParams &p) {
               p.admission = core::AdmissionPolicy::TokenBucket;
               p.admissionBurst = 2;
               p.admissionPeriod = 2;
               p.faults.dropSignalLossRate = 0.10;
               p.faults.faultSeed = 29;
           },
           [](StreamConfig &s) {
               s.adversarial.mix = traffic::AdversarialMix::ElephantMice;
               s.adversarial.elephantBoost = 3.0;
           });
    addMix("adv-hotspot-fault-4x4", 4, 4, 4, 2, Pattern::Hotspot,
           0.25, 0.10,
           [](core::PhastlaneParams &p) {
               p.admission = core::AdmissionPolicy::AgeBoost;
               p.admissionAgeThreshold = 6;
               p.faults.misTurnRate = 0.02;
               p.faults.dropperIdCorruptRate = 0.20;
               p.faults.faultSeed = 31;
           },
           [](StreamConfig &s) {
               s.patternOpts.hotspotFraction = 0.5;
           });
    return cells;
}

CampaignResult
runCampaign(const std::vector<CampaignCell> &cells, Cycle max_cycles)
{
    CampaignResult result;
    for (const auto &cell : cells) {
        ++result.runs;
        const auto stream = makeStream(cell.params, cell.stream);
        const DiffResult r =
            runLockstep(cell.params, stream, max_cycles);
        if (r.ok)
            continue;
        ++result.failures;
        const auto shrunk =
            shrinkStream(cell.params, stream, max_cycles);
        result.reports.push_back(
            cell.name + " failed at cycle " +
            std::to_string(r.failCycle) + ": " + r.message +
            "\nminimal repro (" + std::to_string(shrunk.size()) +
            " of " + std::to_string(stream.size()) +
            " injections):\n" +
            reproTestCase(cell.params, shrunk));
    }
    return result;
}

} // namespace phastlane::check
