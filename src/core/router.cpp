#include "core/router.hpp"

#include <algorithm>
#include <climits>

#include "common/log.hpp"

namespace phastlane::core {

RouterBuffers::RouterBuffers(NodeId self, const PhastlaneParams &params)
    : self_(self),
      capacity_(params.routerBufferEntries),
      launchesPerQueue_(params.launchesPerQueue),
      sharedPool_(params.sharedBufferPool),
      policy_(params.bufferArbitration)
{
}

bool
RouterBuffers::hasSpace(Port q) const
{
    return freeSlots(q) > 0;
}

int
RouterBuffers::freeSlots(Port q) const
{
    if (capacity_ <= 0)
        return INT_MAX;
    const int occ = static_cast<int>(queues_[portIndex(q)].size());
    if (!sharedPool_)
        return capacity_ - occ;
    // DAMQ with reserved slots: each queue is guaranteed half of its
    // partition; the remaining halves form a shared pool any queue
    // may borrow from.
    const int guaranteed = std::max(1, capacity_ / 2);
    const int shared_size =
        kAllPorts * (capacity_ - guaranteed);
    int shared_used = 0;
    for (const auto &queue : queues_) {
        shared_used += std::max(
            0, static_cast<int>(queue.size()) - guaranteed);
    }
    const int own_reserved = std::max(0, guaranteed - occ);
    return own_reserved + std::max(0, shared_size - shared_used);
}

size_t
RouterBuffers::occupancy(Port q) const
{
    return queues_[portIndex(q)].size();
}

size_t
RouterBuffers::totalOccupancy() const
{
    size_t total = 0;
    for (const auto &q : queues_)
        total += q.size();
    return total;
}

void
RouterBuffers::push(Port q, OpticalPacket pkt, Cycle eligible_at)
{
    PL_ASSERT(hasSpace(q), "pushing into a full router buffer");
    BufferEntry e;
    e.pkt = std::move(pkt);
    e.state = EntryState::Waiting;
    e.eligibleAt = eligible_at;
    e.seq = nextSeq_++;
    queues_[portIndex(q)].push_back(std::move(e));
}

BufferEntry *
RouterBuffers::findLaunched(PacketId id, Port *queue_out)
{
    for (Port q : kAllPortList) {
        for (auto &entry : queues_[portIndex(q)]) {
            if (entry.state == EntryState::Launched &&
                entry.pkt.branchId == id) {
                if (queue_out)
                    *queue_out = q;
                return &entry;
            }
        }
    }
    return nullptr;
}

void
RouterBuffers::releaseLaunched(PacketId id)
{
    for (auto &queue : queues_) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->state == EntryState::Launched &&
                it->pkt.branchId == id) {
                queue.erase(it);
                return;
            }
        }
    }
    panic("releaseLaunched: packet %llu not found at router %d",
          static_cast<unsigned long long>(id), self_);
}

void
RouterBuffers::restoreDropped(PacketId id, OpticalPacket updated,
                              Cycle eligible_at)
{
    BufferEntry *entry = findLaunched(id);
    if (!entry)
        panic("restoreDropped: packet %llu not found at router %d",
              static_cast<unsigned long long>(id), self_);
    entry->pkt = std::move(updated);
    entry->state = EntryState::Waiting;
    entry->eligibleAt = eligible_at;
    ++entry->attempts;
}

} // namespace phastlane::core
