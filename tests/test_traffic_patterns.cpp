/**
 * @file
 * Synthetic traffic pattern tests: permutation properties and the
 * paper's four Fig 9 patterns.
 */

#include <gtest/gtest.h>
#include <set>

#include "traffic/patterns.hpp"

namespace phastlane::traffic {
namespace {

class DeterministicPatterns : public ::testing::TestWithParam<Pattern>
{
  protected:
    MeshTopology mesh_{8, 8};
    Rng rng_{1};
};

TEST_P(DeterministicPatterns, NoSelfTraffic)
{
    for (NodeId s = 0; s < 64; ++s)
        EXPECT_NE(destination(GetParam(), s, mesh_, rng_), s);
}

TEST_P(DeterministicPatterns, DestinationsInRange)
{
    for (NodeId s = 0; s < 64; ++s) {
        const NodeId d = destination(GetParam(), s, mesh_, rng_);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 64);
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, DeterministicPatterns,
    ::testing::Values(Pattern::BitComplement, Pattern::BitReverse,
                      Pattern::Shuffle, Pattern::Transpose,
                      Pattern::Tornado, Pattern::Neighbor),
    [](const auto &info) {
        return std::string(patternName(info.param));
    });

TEST(Patterns, BitComplementValues)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    EXPECT_EQ(destination(Pattern::BitComplement, 0, mesh, rng), 63);
    EXPECT_EQ(destination(Pattern::BitComplement, 63, mesh, rng), 0);
    EXPECT_EQ(destination(Pattern::BitComplement, 0b101010, mesh,
                          rng), 0b010101);
}

TEST(Patterns, BitReverseValues)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    // 6-bit reversal: 0b000001 -> 0b100000.
    EXPECT_EQ(destination(Pattern::BitReverse, 1, mesh, rng), 32);
    EXPECT_EQ(destination(Pattern::BitReverse, 0b110100, mesh, rng),
              0b001011);
}

TEST(Patterns, ShuffleIsRotateLeft)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    EXPECT_EQ(destination(Pattern::Shuffle, 0b000011, mesh, rng),
              0b000110);
    EXPECT_EQ(destination(Pattern::Shuffle, 0b100000, mesh, rng),
              0b000001);
}

TEST(Patterns, TransposeSwapsCoordinates)
{
    MeshTopology mesh(8, 8);
    Rng rng(1);
    const NodeId src = mesh.nodeAt({2, 5});
    EXPECT_EQ(destination(Pattern::Transpose, src, mesh, rng),
              mesh.nodeAt({5, 2}));
}

TEST(Patterns, BitPatternsArePermutationsModuloFixedPoints)
{
    // Excluding self-remapped fixed points, the deterministic
    // patterns must hit distinct destinations.
    MeshTopology mesh(8, 8);
    Rng rng(1);
    for (Pattern p : {Pattern::BitComplement, Pattern::BitReverse,
                      Pattern::Transpose}) {
        std::set<NodeId> dsts;
        int fixed = 0;
        for (NodeId s = 0; s < 64; ++s) {
            const NodeId d = destination(p, s, mesh, rng);
            if (d == static_cast<NodeId>((s + 1) % 64))
                ++fixed; // remapped self-hit
            else
                dsts.insert(d);
        }
        EXPECT_GE(static_cast<int>(dsts.size()), 64 - 2 * fixed - 1);
    }
}

TEST(Patterns, UniformExcludesSelfAndCoversAll)
{
    MeshTopology mesh(8, 8);
    Rng rng(7);
    std::set<NodeId> seen;
    for (int i = 0; i < 20000; ++i) {
        const NodeId d =
            destination(Pattern::UniformRandom, 5, mesh, rng);
        EXPECT_NE(d, 5);
        seen.insert(d);
    }
    EXPECT_EQ(seen.size(), 63u);
}

TEST(Patterns, HotspotConcentratesTraffic)
{
    MeshTopology mesh(8, 8);
    Rng rng(7);
    const NodeId hot = mesh.nodeAt({4, 4});
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (destination(Pattern::Hotspot, 2, mesh, rng) == hot)
            ++hits;
    }
    // 20% direct + uniform share.
    EXPECT_GT(hits, n / 6);
}

TEST(Patterns, ParseRoundTrip)
{
    for (Pattern p : {Pattern::UniformRandom, Pattern::BitComplement,
                      Pattern::BitReverse, Pattern::Shuffle,
                      Pattern::Transpose, Pattern::Tornado,
                      Pattern::Neighbor, Pattern::Hotspot}) {
        EXPECT_EQ(parsePattern(patternName(p)), p);
    }
}

TEST(Patterns, PowerOfTwoRequirementFlag)
{
    EXPECT_TRUE(needsPowerOfTwo(Pattern::BitComplement));
    EXPECT_TRUE(needsPowerOfTwo(Pattern::Shuffle));
    EXPECT_FALSE(needsPowerOfTwo(Pattern::Transpose));
    EXPECT_FALSE(needsPowerOfTwo(Pattern::UniformRandom));
}

} // namespace
} // namespace phastlane::traffic
