#include "traffic/synthetic.hpp"

#include "common/log.hpp"

namespace phastlane::traffic {

SyntheticDriver::SyntheticDriver(Network &net,
                                 const SyntheticConfig &cfg)
    : net_(net),
      cfg_(cfg),
      rng_(cfg.seed),
      sourceQueues_(static_cast<size_t>(net.nodeCount()))
{
    if (cfg_.injectionRate < 0.0 || cfg_.injectionRate > 1.0)
        fatal("injection rate must be in [0, 1]");
}

void
SyntheticDriver::generate(Cycle now)
{
    const bool measuring = now >= measureStart_ && now < measureEnd_;
    for (NodeId n = 0; n < net_.nodeCount(); ++n) {
        if (!rng_.bernoulli(cfg_.injectionRate))
            continue;
        Packet pkt;
        pkt.id = nextPacketId_++;
        pkt.src = n;
        pkt.kind = MessageKind::Synthetic;
        pkt.createdAt = now;
        if (cfg_.broadcastFraction > 0.0 &&
            rng_.bernoulli(cfg_.broadcastFraction)) {
            pkt.broadcast = true;
        } else {
            pkt.dst = destination(cfg_.pattern, n,
                                  // Patterns only need geometry.
                                  net_.mesh(), rng_);
        }
        sourceQueues_[static_cast<size_t>(n)].push_back(pkt);
        if (measuring)
            ++offeredMeasured_;
    }
}

void
SyntheticDriver::pumpSourceQueues()
{
    for (auto &q : sourceQueues_) {
        while (!q.empty() && net_.inject(q.front()))
            q.pop_front();
    }
}

void
SyntheticDriver::harvest(bool measuring)
{
    for (const auto &d : net_.deliveries()) {
        if (!measuring)
            continue;
        if (d.packet.createdAt < measureStart_ ||
            d.packet.createdAt >= measureEnd_) {
            continue;
        }
        const double lat =
            static_cast<double>(d.at - d.packet.createdAt);
        const double net_lat =
            static_cast<double>(d.at - d.injectedAt);
        latency_.add(lat);
        netLatency_.add(net_lat);
        latencyHist_.add(lat);
        ++measuredDeliveries_;
    }
}

SyntheticResult
SyntheticDriver::run()
{
    const int nodes = net_.nodeCount();
    measureStart_ = net_.now() + cfg_.warmupCycles;
    measureEnd_ = measureStart_ + cfg_.measureCycles;

    bool saturated = false;
    const uint64_t backlog_limit =
        static_cast<uint64_t>(nodes) * 200;

    // Warmup + measurement.
    while (net_.now() < measureEnd_) {
        generate(net_.now());
        pumpSourceQueues();
        net_.step();
        harvest(net_.now() - 1 >= measureStart_);

        uint64_t backlog = 0;
        for (const auto &q : sourceQueues_)
            backlog += q.size();
        if (backlog > backlog_limit) {
            saturated = true;
            break;
        }
    }

    // Drain: stop generating, let in-flight traffic finish.
    if (!saturated) {
        const Cycle drain_deadline = net_.now() + cfg_.maxDrainCycles;
        while (net_.now() < drain_deadline) {
            bool idle = net_.inFlight() == 0;
            for (const auto &q : sourceQueues_)
                idle = idle && q.empty();
            if (idle)
                break;
            pumpSourceQueues();
            net_.step();
            harvest(true);
        }
        if (net_.inFlight() > 0)
            saturated = true;
    }

    SyntheticResult r;
    r.offeredRate = static_cast<double>(offeredMeasured_) /
                    (static_cast<double>(nodes) *
                     static_cast<double>(cfg_.measureCycles));
    r.acceptedRate = static_cast<double>(measuredDeliveries_) /
                     (static_cast<double>(nodes) *
                      static_cast<double>(cfg_.measureCycles));
    r.avgLatency = latency_.mean();
    r.avgNetLatency = netLatency_.mean();
    r.p99Latency = latencyHist_.quantile(0.99);
    r.measuredPackets = measuredDeliveries_;
    r.saturated = saturated || latency_.mean() > kSaturationLatency;
    return r;
}

} // namespace phastlane::traffic
