#include "sim/server.hpp"

#include "common/log.hpp"

namespace phastlane::sim {

SimServer::SimServer(Network &net, const ServerOptions &opts)
    : net_(net), opts_(opts), core_(net, opts.maxPending)
{
    PL_ASSERT(opts_.expectedSessions >= 1,
              "server needs at least one session");
    deadline_ = net_.now() + opts_.maxCycles;
    nextSnapshot_ = opts_.snapshotInterval
                        ? net_.now() + opts_.snapshotInterval
                        : kNeverCycle;
}

std::string
SimServer::openSession(uint64_t client_id)
{
    if (done_)
        return "server already completed its round";
    if (sessions_.count(client_id))
        return detail::formatMsg("client id %llu already connected",
                                 static_cast<unsigned long long>(
                                     client_id));
    if (sessions_.size() >= opts_.expectedSessions)
        return detail::formatMsg(
            "all %zu expected sessions already open",
            opts_.expectedSessions);
    sessions_[client_id];
    return "";
}

std::string
SimServer::submit(uint64_t client_id, uint64_t seq,
                  const std::vector<traffic::TraceRecord> &records)
{
    auto it = sessions_.find(client_id);
    if (it == sessions_.end())
        return "unknown client id";
    Session &s = it->second;
    if (seq <= s.lastSeq) {
        // Retransmit of an already-accepted chunk (our ack was lost
        // or is being withheld): never re-inject (at-most-once). If
        // the ack is deferred for backpressure, stay silent -- it
        // will go out when the inbox drains; re-acking here would
        // bypass the cap.
        bool deferred = false;
        for (uint64_t d : s.deferredAcks)
            deferred |= d == seq;
        if (!deferred)
            readyAcks_.push_back(Ack{client_id, seq, true});
        return "";
    }
    if (s.finished)
        return "submit after finish";
    if (seq != s.lastSeq + 1)
        return detail::formatMsg(
            "sequence gap: got %llu, expected %llu",
            static_cast<unsigned long long>(seq),
            static_cast<unsigned long long>(s.lastSeq + 1));
    if (records.empty())
        return "empty chunk";
    Cycle prev = s.watermark;
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].cycle < prev)
            return detail::formatMsg(
                "record %zu out of order (cycle %llu after %llu)", i,
                static_cast<unsigned long long>(records[i].cycle),
                static_cast<unsigned long long>(prev));
        prev = records[i].cycle;
        const std::string err =
            traffic::validateTraceRecord(records[i],
                                         net_.nodeCount());
        if (!err.empty())
            return detail::formatMsg("record %zu invalid: %s", i,
                                     err.c_str());
    }
    s.lastSeq = seq;
    s.watermark = prev;
    s.accepted += records.size();
    s.inbox.insert(s.inbox.end(), records.begin(), records.end());
    if (s.inbox.size() > opts_.inboxSoftCap)
        s.deferredAcks.push_back(seq);
    else
        readyAcks_.push_back(Ack{client_id, seq, false});
    return "";
}

std::string
SimServer::finish(uint64_t client_id, uint64_t seq)
{
    auto it = sessions_.find(client_id);
    if (it == sessions_.end())
        return "unknown client id";
    Session &s = it->second;
    if (seq <= s.lastSeq) {
        readyAcks_.push_back(Ack{client_id, seq, true});
        return "";
    }
    if (seq != s.lastSeq + 1)
        return detail::formatMsg(
            "sequence gap on finish: got %llu, expected %llu",
            static_cast<unsigned long long>(seq),
            static_cast<unsigned long long>(s.lastSeq + 1));
    s.lastSeq = seq;
    s.finished = true;
    // End-of-stream lifts the session's watermark constraint; the
    // ack is never withheld (no records ride on it).
    readyAcks_.push_back(Ack{client_id, seq, false});
    return "";
}

bool
SimServer::allFinished() const
{
    if (!allSessionsOpen())
        return false;
    for (const auto &[id, s] : sessions_)
        if (!s.finished)
            return false;
    return true;
}

Cycle
SimServer::safeHorizon() const
{
    Cycle h = kNeverCycle;
    for (const auto &[id, s] : sessions_)
        if (!s.finished && s.watermark < h)
            h = s.watermark;
    return h;
}

void
SimServer::releaseDue()
{
    // K-way merge by (cycle, client id): always release the smallest
    // due head first -- the exact order `netsim_serve --merge` writes,
    // so offline replay of the merged trace injects identically.
    for (;;) {
        if (!core_.windowHasSpace())
            return;
        Session *best = nullptr;
        for (auto &[id, s] : sessions_) {
            if (s.inbox.empty())
                continue;
            if (!best ||
                s.inbox.front().cycle < best->inbox.front().cycle)
                best = &s;
        }
        if (!best || best->inbox.front().cycle > net_.now())
            return;
        core_.release(best->inbox.front());
        best->inbox.pop_front();
    }
}

void
SimServer::pump()
{
    while (!done_ && allSessionsOpen()) {
        if (net_.now() >= safeHorizon())
            break; // a record at the current cycle may still arrive
        if (net_.now() >= deadline_) {
            hitCycleLimit_ = true;
            done_ = true;
            warn("simulation server hit the cycle limit with %llu "
                 "outstanding",
                 static_cast<unsigned long long>(stats().outstanding));
            break;
        }
        releaseDue();
        core_.injectPending();
        if (allFinished() && core_.quiescent()) {
            bool empty = true;
            for (const auto &[id, s] : sessions_)
                if (!s.inbox.empty())
                    empty = false;
            if (empty) {
                done_ = true;
                break;
            }
        }
        core_.stepAndHarvest();
        if (net_.now() >= nextSnapshot_) {
            if (snapshotHook_)
                snapshotHook_(net_.now());
            nextSnapshot_ += opts_.snapshotInterval;
        }
    }
    promoteAcks();
}

void
SimServer::promoteAcks()
{
    const Cycle horizon = safeHorizon();
    for (auto &[id, s] : sessions_) {
        if (s.deferredAcks.empty())
            continue;
        // Promote when the inbox drained below the cap -- or when this
        // session IS the horizon: the simulation needs more of its
        // records to advance, so withholding its ack would deadlock.
        // Before every expected session has opened nothing can
        // advance, so only the cap rule applies (an early client must
        // not stream its whole trace into memory while waiting).
        if (s.inbox.size() <= opts_.inboxSoftCap ||
            (allSessionsOpen() && s.watermark == horizon) || done_) {
            for (uint64_t seq : s.deferredAcks)
                readyAcks_.push_back(Ack{id, seq, false});
            s.deferredAcks.clear();
        }
    }
}

std::vector<SimServer::Ack>
SimServer::takeReadyAcks()
{
    std::vector<Ack> out;
    out.swap(readyAcks_);
    return out;
}

ReplayStats
SimServer::stats() const
{
    ReplayStats s = core_.stats();
    s.hitCycleLimit = hitCycleLimit_;
    if (done_ && !hitCycleLimit_) {
        s.outstanding = 0;
    } else {
        for (const auto &[id, sess] : sessions_)
            s.outstanding += sess.inbox.size();
    }
    return s;
}

uint64_t
SimServer::acceptedRecords(uint64_t client_id) const
{
    const auto it = sessions_.find(client_id);
    return it == sessions_.end() ? 0 : it->second.accepted;
}

size_t
SimServer::deferredAckCount(uint64_t client_id) const
{
    const auto it = sessions_.find(client_id);
    return it == sessions_.end() ? 0
                                 : it->second.deferredAcks.size();
}

} // namespace phastlane::sim
