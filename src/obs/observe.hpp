/**
 * @file
 * StepObserver implementations feeding the observability layer
 * (DESIGN.md §8): TraceObserver pushes fixed-size records into a
 * TraceRing; MetricsObserver updates a MetricsRegistry and an
 * optional per-router HeatmapRecorder. Both resolve their metric
 * handles at construction and allocate nothing per event, and both
 * compose with the invariant checker through core::ObserverMux.
 *
 * The disabled path costs nothing beyond the network's existing
 * single null-observer branch per event: when no observer is
 * attached, PhastlaneNetwork::step never calls into this code.
 */

#ifndef PHASTLANE_OBS_OBSERVE_HPP
#define PHASTLANE_OBS_OBSERVE_HPP

#include <optional>

#include "core/network.hpp"
#include "core/observer.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phastlane::obs {

/** Knobs shared by the observers. */
struct ObserveOptions {
    /** Cycles between in-flight/occupancy samples (0 = never). */
    Cycle sampleInterval = 64;

    /** Cycles between heatmap snapshots (0 = no heatmap). */
    Cycle heatmapInterval = 0;

    /** Trace ring capacity (records). */
    size_t traceCapacity = 1u << 20;

    /** Register one fairness.src.<n>.delivered counter per node
     *  (O(nodes) registry entries, so opt-in). The aggregate
     *  fairness gauges are always maintained. */
    bool perSourceCounters = false;
};

/**
 * Records the per-packet event stream of one PhastlaneNetwork into a
 * TraceRing. Attach with net.setObserver (or through an ObserverMux);
 * must outlive the network or be detached first.
 */
class TraceObserver : public core::StepObserver
{
  public:
    TraceObserver(const core::PhastlaneNetwork &net,
                  const ObserveOptions &opts = {});

    const TraceRing &ring() const { return ring_; }

    void onAccept(const Packet &pkt, int branches,
                  int delivery_units) override;
    void onLaunch(const core::OpticalPacket &pkt, NodeId router,
                  Port out, int attempts) override;
    void onPass(const core::OpticalPacket &pkt, NodeId router) override;
    void onDeliver(const Delivery &d) override;
    void onTap(const core::OpticalPacket &pkt, NodeId router) override;
    void onBranchFinal(const core::OpticalPacket &pkt,
                       NodeId router) override;
    void onBufferReceive(const core::OpticalPacket &pkt, NodeId router,
                         Port queue, bool interim) override;
    void onDrop(const core::OpticalPacket &pkt, NodeId router,
                NodeId launch_router, int signal_hops,
                bool signal_lost) override;
    void onLost(const Packet &pkt, uint64_t branch_id, NodeId router,
                int units, core::LostCause cause) override;
    void onDuplicate(const core::OpticalPacket &pkt,
                     NodeId router) override;
    void onCycleEnd(Cycle cycle) override;

  private:
    const core::PhastlaneNetwork &net_;
    TraceRing ring_;
    Cycle sampleInterval_;
};

/**
 * Updates a caller-owned MetricsRegistry (counters, latency/backoff/
 * occupancy histograms, in-flight gauges) and, when
 * opts.heatmapInterval > 0, an internal per-router HeatmapRecorder.
 */
class MetricsObserver : public core::StepObserver
{
  public:
    MetricsObserver(const core::PhastlaneNetwork &net,
                    MetricsRegistry &registry,
                    const ObserveOptions &opts = {});

    /** The heatmap recorder, or nullptr when disabled. */
    const HeatmapRecorder *heatmap() const
    {
        return heatmap_ ? &*heatmap_ : nullptr;
    }

    void onAccept(const Packet &pkt, int branches,
                  int delivery_units) override;
    void onLaunch(const core::OpticalPacket &pkt, NodeId router,
                  Port out, int attempts) override;
    void onPass(const core::OpticalPacket &pkt, NodeId router) override;
    void onDeliver(const Delivery &d) override;
    void onTap(const core::OpticalPacket &pkt, NodeId router) override;
    void onBufferReceive(const core::OpticalPacket &pkt, NodeId router,
                         Port queue, bool interim) override;
    void onDrop(const core::OpticalPacket &pkt, NodeId router,
                NodeId launch_router, int signal_hops,
                bool signal_lost) override;
    void onLost(const Packet &pkt, uint64_t branch_id, NodeId router,
                int units, core::LostCause cause) override;
    void onDuplicate(const core::OpticalPacket &pkt,
                     NodeId router) override;
    void onCycleEnd(Cycle cycle) override;

  private:
    const core::PhastlaneNetwork &net_;
    Cycle sampleInterval_;
    Cycle heatmapInterval_;
    std::optional<HeatmapRecorder> heatmap_;

    /** Per-source delivered counts backing the Jain gauge; the
     *  registry counters exist only with opts.perSourceCounters. */
    std::vector<uint64_t> perSourceDelivered_;
    std::vector<Counter *> perSourceCounters_;

    // Handles resolved once against the registry.
    Counter &accepts_;
    Counter &deliveries_;
    Counter &launches_;
    Counter &retransmissions_;
    Counter &drops_;
    Counter &taps_;
    Counter &passes_;
    Counter &blocked_;
    Counter &interim_;
    Counter &dropSignalHops_;
    Counter &lostUnits_;
    Counter &lostSignals_;
    Counter &duplicates_;
    Gauge &inFlight_;
    Gauge &buffered_;
    Gauge &nicQueued_;
    /** Jain index over per-source delivered counts, in parts per
     *  million (gauges are integral). */
    Gauge &fairnessJainPpm_;
    /** Worst max-consecutive-losing-arbitrations across routers. */
    Gauge &starvationMax_;
    HdrHistogram &latencyTotal_;
    HdrHistogram &latencyNetwork_;
    HdrHistogram &backoffAttempts_;
    HdrHistogram &occupancy_;
    HdrHistogram &signalHops_;
};

} // namespace phastlane::obs

#endif // PHASTLANE_OBS_OBSERVE_HPP
