#include "optical/area_model.hpp"

#include "common/log.hpp"

namespace phastlane::optical {

AreaModel::AreaModel(const PacketFormat &format,
                     const WaveguideConstants &wg,
                     const ChipGeometry &geometry)
    : format_(format), wg_(wg), geometry_(geometry)
{
}

RouterArea
AreaModel::evaluate(int wavelengths) const
{
    PL_ASSERT(wavelengths > 0, "wavelength count must be positive");
    RouterArea a;
    a.wavelengths = wavelengths;
    a.waveguides = format_.totalWaveguides(wavelengths);
    a.portLengthMm = wg_.resonatorPitchMm * wavelengths;
    a.internalLengthMm = wg_.waveguideLanePitchMm * a.waveguides;
    a.edgeMm = a.portLengthMm + a.internalLengthMm;
    a.areaMm2 = a.edgeMm * a.edgeMm;
    return a;
}

bool
AreaModel::fitsNode(int wavelengths, double node_area_mm2) const
{
    return evaluate(wavelengths).areaMm2 <= node_area_mm2;
}

int
AreaModel::sweetSpot(const int *candidates, int count) const
{
    PL_ASSERT(count > 0, "need at least one candidate");
    int best = candidates[0];
    double best_area = evaluate(best).areaMm2;
    for (int i = 1; i < count; ++i) {
        const double area = evaluate(candidates[i]).areaMm2;
        if (area < best_area) {
            best = candidates[i];
            best_area = area;
        }
    }
    return best;
}

} // namespace phastlane::optical
