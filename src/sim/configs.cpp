#include "sim/configs.hpp"

#include "common/log.hpp"
#include "core/network.hpp"
#include "electrical/network.hpp"
#include "power/electrical_power.hpp"
#include "power/optical_power.hpp"

namespace phastlane::sim {

namespace {

NetConfig
opticalConfig(const std::string &name, int max_hops, int buffers)
{
    NetConfig c;
    c.name = name;
    c.optical = true;
    c.make = [max_hops, buffers](uint64_t seed) {
        core::PhastlaneParams p;
        p.maxHopsPerCycle = max_hops;
        p.routerBufferEntries = buffers;
        p.seed = seed;
        return std::make_unique<core::PhastlaneNetwork>(p);
    };
    c.power = [](const Network &net, uint64_t cycles) {
        const auto &pl =
            dynamic_cast<const core::PhastlaneNetwork &>(net);
        power::OpticalPowerModel model(pl.params());
        return model.report(pl.events(), cycles);
    };
    return c;
}

NetConfig
electricalConfig(const std::string &name, int router_delay)
{
    NetConfig c;
    c.name = name;
    c.optical = false;
    c.make = [router_delay](uint64_t seed) {
        electrical::ElectricalParams p;
        p.routerDelay = router_delay;
        p.seed = seed;
        return std::make_unique<electrical::ElectricalNetwork>(p);
    };
    c.power = [](const Network &net, uint64_t cycles) {
        const auto &el =
            dynamic_cast<const electrical::ElectricalNetwork &>(net);
        power::ElectricalPowerModel model(el.params());
        return model.report(el.events(), cycles);
    };
    return c;
}

} // namespace

NetConfig
makeConfig(const std::string &name)
{
    if (name == "Optical4")
        return opticalConfig(name, 4, 10);
    if (name == "Optical5")
        return opticalConfig(name, 5, 10);
    if (name == "Optical8")
        return opticalConfig(name, 8, 10);
    if (name == "Optical4B32")
        return opticalConfig(name, 4, 32);
    if (name == "Optical4B64")
        return opticalConfig(name, 4, 64);
    if (name == "Optical4IB")
        return opticalConfig(name, 4, 0); // infinite
    if (name == "Electrical2")
        return electricalConfig(name, 2);
    if (name == "Electrical3")
        return electricalConfig(name, 3);
    fatal("unknown network configuration '%s'", name.c_str());
}

std::vector<NetConfig>
standardConfigs()
{
    std::vector<NetConfig> out;
    for (const char *n :
         {"Optical4", "Optical5", "Optical8", "Optical4B32",
          "Optical4B64", "Optical4IB", "Electrical2", "Electrical3"}) {
        out.push_back(makeConfig(n));
    }
    return out;
}

std::vector<NetConfig>
fig9Configs()
{
    std::vector<NetConfig> out;
    for (const char *n : {"Optical4", "Optical5", "Optical8",
                          "Electrical2", "Electrical3"}) {
        out.push_back(makeConfig(n));
    }
    return out;
}

} // namespace phastlane::sim
