#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace phastlane {

namespace {

LogLevel gLevel = LogLevel::Info;

/** vsnprintf into a std::string. */
std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    const std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

namespace detail {

std::string
formatMsg()
{
    return "";
}

std::string
formatMsg(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

} // namespace detail

} // namespace phastlane
