file(REMOVE_RECURSE
  "CMakeFiles/plnet.dir/packet.cpp.o"
  "CMakeFiles/plnet.dir/packet.cpp.o.d"
  "libplnet.a"
  "libplnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
