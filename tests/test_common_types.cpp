/**
 * @file
 * Port/turn algebra tests: the direction arithmetic underlying the
 * whole router model.
 */

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace phastlane {
namespace {

TEST(Types, OppositeIsInvolution)
{
    for (Port p : kMeshDirections)
        EXPECT_EQ(opposite(opposite(p)), p);
}

TEST(Types, OppositePairs)
{
    EXPECT_EQ(opposite(Port::North), Port::South);
    EXPECT_EQ(opposite(Port::South), Port::North);
    EXPECT_EQ(opposite(Port::East), Port::West);
    EXPECT_EQ(opposite(Port::West), Port::East);
    EXPECT_EQ(opposite(Port::Local), Port::Local);
}

TEST(Types, PortIndexRoundTrip)
{
    for (int i = 0; i < kAllPorts; ++i)
        EXPECT_EQ(portIndex(portFromIndex(i)), i);
}

TEST(Types, PortNamesDistinct)
{
    EXPECT_STREQ(portName(Port::North), "N");
    EXPECT_STREQ(portName(Port::East), "E");
    EXPECT_STREQ(portName(Port::South), "S");
    EXPECT_STREQ(portName(Port::West), "W");
    EXPECT_STREQ(portName(Port::Local), "L");
}

TEST(Types, StraightGoesToOppositePort)
{
    for (Port in : kMeshDirections)
        EXPECT_EQ(applyTurn(in, Turn::Straight), opposite(in));
}

TEST(Types, TurnsNeverExitTheEntryPort)
{
    for (Port in : kMeshDirections) {
        for (Turn t : {Turn::Straight, Turn::Left, Turn::Right}) {
            const Port out = applyTurn(in, t);
            EXPECT_NE(out, in) << "U-turn from " << portName(in);
            EXPECT_NE(out, Port::Local);
        }
    }
}

TEST(Types, LeftAndRightAreMirrors)
{
    // A packet entering S travels north: right = East, left = West.
    EXPECT_EQ(applyTurn(Port::South, Turn::Right), Port::East);
    EXPECT_EQ(applyTurn(Port::South, Turn::Left), Port::West);
    // Entering W travels east: right = South, left = North.
    EXPECT_EQ(applyTurn(Port::West, Turn::Right), Port::South);
    EXPECT_EQ(applyTurn(Port::West, Turn::Left), Port::North);
}

TEST(Types, TurnBetweenInvertsApplyTurn)
{
    for (Port in : kMeshDirections) {
        for (Turn t : {Turn::Straight, Turn::Left, Turn::Right}) {
            const Port out = applyTurn(in, t);
            EXPECT_EQ(turnBetween(in, out), t)
                << portName(in) << " -> " << portName(out);
        }
    }
}

TEST(Types, ThreeTurnsCoverThreeExits)
{
    // From any entry port the three turns reach exactly the three
    // other mesh ports.
    for (Port in : kMeshDirections) {
        bool seen[kMeshPorts] = {false, false, false, false};
        for (Turn t : {Turn::Straight, Turn::Left, Turn::Right})
            seen[portIndex(applyTurn(in, t))] = true;
        int count = 0;
        for (int i = 0; i < kMeshPorts; ++i)
            count += seen[i] ? 1 : 0;
        EXPECT_EQ(count, 3);
        EXPECT_FALSE(seen[portIndex(in)]);
    }
}

} // namespace
} // namespace phastlane
