#include "sim/fault_sweep.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "sim/multisim.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

std::vector<std::string>
faultRateFields()
{
    std::vector<std::string> names;
#define PL_FAULT_NAME(name) names.push_back(#name);
    PL_FAULT_RATE_FIELDS(PL_FAULT_NAME)
#undef PL_FAULT_NAME
    return names;
}

bool
setFaultRate(core::PhastlaneParams::FaultInjection &fi,
             const std::string &name, double value)
{
#define PL_FAULT_SET(field)                                            \
    if (name == #field) {                                              \
        fi.field = value;                                              \
        return true;                                                   \
    }
    PL_FAULT_RATE_FIELDS(PL_FAULT_SET)
#undef PL_FAULT_SET
    return false;
}

bool
applyFaultFlags(const Config &args,
                core::PhastlaneParams::FaultInjection &faults)
{
    bool any = false;
    const auto rate = [&](const char *key, double &field) {
        if (!args.has(key))
            return;
        const double v = args.getDouble(key, 0.0);
        if (v < 0.0 || v > 1.0)
            fatal("--%s must be in [0, 1], got %g", key, v);
        field = v;
        any = true;
    };
    rate("fault-mis-turn", faults.misTurnRate);
    rate("fault-missed-receive", faults.missedReceiveRate);
    rate("fault-signal-loss", faults.dropSignalLossRate);
    rate("fault-corrupt", faults.dropperIdCorruptRate);
    rate("fault-router-fail", faults.routerFailRate);
    if (args.has("fault-seed")) {
        faults.faultSeed =
            static_cast<uint64_t>(args.getInt("fault-seed", 0));
        any = true;
    }
    return any;
}

std::vector<std::string>
faultFlagNames()
{
    return {"fault-mis-turn",    "fault-missed-receive",
            "fault-signal-loss", "fault-corrupt",
            "fault-router-fail", "fault-seed"};
}

std::vector<double>
defaultFaultGrid()
{
    // Integer-generated so the grid is exact: 0, then a coarse ramp
    // covering the regimes where retransmission still wins, struggles,
    // and finally loses messages outright.
    std::vector<double> rates{0.0};
    for (int m : {1, 2, 5, 10, 20, 35, 50})
        rates.push_back(m / 100.0);
    return rates;
}

namespace {

/**
 * One sweep point as a step-wise job: Bernoulli traffic over its own
 * network (and optional ReliableNic), entirely self-contained so
 * points can run on any thread or under a NetworkBatch gang. Seeds
 * derive from (cfg.seed, index); the cycle structure — generate,
 * pump, step, harvest for measureCycles, then pump, step, harvest
 * until quiescent or the drain budget runs out — matches the original
 * serial loop exactly.
 */
class FaultPointJob final : public MultiSim::Job
{
  public:
    FaultPointJob(const FaultSweepConfig &cfg, size_t index)
        : cfg_(cfg)
    {
        core::PhastlaneParams params = cfg.params;
        if (!setFaultRate(params.faults, cfg.sweepField,
                          cfg.rates[index]))
            fatal("fault sweep: unknown fault rate field '%s'",
                  cfg.sweepField.c_str());
        const uint64_t pointSeed = derivePointSeed(cfg.seed, index);
        params.faults.faultSeed = pointSeed;
        params.seed = pointSeed;

        net_ = std::make_unique<core::PhastlaneNetwork>(params);
        rnic_ = std::make_unique<core::ReliableNic>(*net_,
                                                    cfg.reliableOpts);
        traffic_.emplace(derivePointSeed(pointSeed, 0x7261666654ull));
        sourceQueues_.resize(static_cast<size_t>(net_->nodeCount()));
        pt_.faultRate = cfg.rates[index];
        if (cfg_.measureCycles == 0)
            measuring_ = false;
    }

    core::PhastlaneNetwork &network() override { return *net_; }

    bool done() override
    {
        if (measuring_)
            return false; // the transition runs in postStep()
        return drainedCycles_ >= cfg_.maxDrainCycles || quiescent();
    }

    void preStep() override
    {
        if (measuring_)
            generate();
        pump();
    }

    void postStep() override
    {
        if (cfg_.reliable)
            rnic_->afterNetStep();
        harvest();
        if (measuring_) {
            if (++cycle_ == cfg_.measureCycles)
                measuring_ = false;
        } else {
            ++drainedCycles_;
        }
    }

    FaultSweepPoint finishPoint()
    {
        pt_.drained = quiescent();
        pt_.cycles = cycle_ + drainedCycles_;
        pt_.drops = net_->phastlaneCounters().drops;
        pt_.retransmissions =
            net_->phastlaneCounters().retransmissions;
        pt_.events = net_->events();
        if (cfg_.reliable)
            pt_.e2e = rnic_->stats();
        return pt_;
    }

  private:
    void generate()
    {
        const int nodes = net_->nodeCount();
        for (NodeId n = 0; n < nodes; ++n) {
            // One bernoulli per node regardless of the mix, so
            // AdversarialMix::None keeps the historical draw
            // sequence bit-identical.
            const double rate = std::min(
                1.0, cfg_.injectionRate *
                         traffic::rateScale(cfg_.adversarial, n,
                                            nodes));
            if (!traffic_->bernoulli(rate))
                continue;
            Packet pkt;
            pkt.id = nextId_++;
            pkt.src = n;
            pkt.broadcast =
                traffic_->bernoulli(cfg_.broadcastFraction);
            if (!pkt.broadcast) {
                const NodeId pinned = traffic::mixDestination(
                    cfg_.adversarial, n, net_->mesh());
                pkt.dst = pinned != kInvalidNode
                              ? pinned
                              : static_cast<NodeId>(
                                    traffic_->uniformInt(0,
                                                         nodes - 1));
            } else {
                pkt.dst = kInvalidNode;
            }
            if (!pkt.broadcast && pkt.dst == n)
                pkt.dst = static_cast<NodeId>((n + 1) % nodes);
            pkt.createdAt = cycle_;
            sourceQueues_[static_cast<size_t>(n)].push_back(pkt);
            ++pt_.messagesOffered;
        }
    }

    void pump()
    {
        const int nodes = net_->nodeCount();
        for (NodeId n = 0; n < nodes; ++n) {
            auto &q = sourceQueues_[static_cast<size_t>(n)];
            while (!q.empty() && net_->nicHasSpace(n)) {
                const bool ok = cfg_.reliable
                                    ? rnic_->send(q.front())
                                    : net_->inject(q.front());
                if (!ok)
                    break;
                pt_.unitsExpected += static_cast<uint64_t>(
                    q.front().deliveryCount(nodes));
                q.pop_front();
            }
        }
    }

    void harvest()
    {
        const auto &ds =
            cfg_.reliable ? rnic_->deliveries() : net_->deliveries();
        pt_.unitsDelivered += ds.size();
    }

    bool quiescent() const
    {
        if (net_->inFlight() != 0 || net_->bufferedPackets() != 0 ||
            net_->nicQueuedPackets() != 0)
            return false;
        if (cfg_.reliable && !rnic_->idle())
            return false;
        for (const auto &q : sourceQueues_)
            if (!q.empty())
                return false;
        return true;
    }

    const FaultSweepConfig &cfg_;
    std::unique_ptr<core::PhastlaneNetwork> net_;
    std::unique_ptr<core::ReliableNic> rnic_;
    std::optional<Rng> traffic_;
    std::vector<std::deque<Packet>> sourceQueues_;
    FaultSweepPoint pt_;
    uint64_t nextId_ = 1;
    Cycle cycle_ = 0;
    Cycle drainedCycles_ = 0;
    bool measuring_ = true;
};

/** Simulate one sweep point serially (the parallel-path worker). */
FaultSweepPoint
runFaultPoint(const FaultSweepConfig &cfg, size_t index)
{
    FaultPointJob job(cfg, index);
    while (!job.done()) {
        job.preStep();
        job.network().step();
        job.postStep();
    }
    return job.finishPoint();
}

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::vector<FaultSweepPoint>
runFaultSweep(const FaultSweepConfig &cfg)
{
    const size_t n = cfg.rates.size();
    std::vector<FaultSweepPoint> points(n);

    // Serial sweep: gang the points' networks through the batched
    // lockstep backend when the params allow it (bit-identical
    // results; see DESIGN.md §13). Fault rates and seeds differ per
    // point but never the mesh shape or engine configuration.
    if (resolveThreadCount(cfg.threads) <= 1 && cfg.batch != 1 &&
        n > 1) {
        std::vector<std::unique_ptr<FaultPointJob>> jobs;
        jobs.reserve(n);
        bool all_eligible = true;
        for (size_t i = 0; i < n && all_eligible; ++i) {
            jobs.push_back(std::make_unique<FaultPointJob>(cfg, i));
            all_eligible = batchable(jobs.back()->network());
        }
        if (all_eligible) {
            MultiSim ms(cfg.batch);
            for (auto &job : jobs)
                ms.add(*job);
            ms.runAll();
            for (size_t i = 0; i < n; ++i)
                points[i] = jobs[i]->finishPoint();
            return points;
        }
    }

    parallelFor(
        n, [&](size_t i) { points[i] = runFaultPoint(cfg, i); },
        cfg.threads);
    return points;
}

std::string
faultSweepToJson(const FaultSweepConfig &cfg,
                 const std::vector<FaultSweepPoint> &pts)
{
    std::string out;
    out.reserve(pts.size() * 512 + 512);
    appendF(out,
            "{\n\"sweep_field\": \"%s\",\n\"reliable\": %s,\n"
            "\"injection_rate\": %.6f,\n\"broadcast_fraction\": %.6f,\n"
            "\"seed\": %" PRIu64 ",\n\"points\": [\n",
            cfg.sweepField.c_str(), cfg.reliable ? "true" : "false",
            cfg.injectionRate, cfg.broadcastFraction, cfg.seed);
    for (size_t i = 0; i < pts.size(); ++i) {
        const FaultSweepPoint &p = pts[i];
        appendF(out,
                "{\"fault_rate\": %.6f, \"messages_offered\": %" PRIu64
                ", \"units_expected\": %" PRIu64
                ", \"units_delivered\": %" PRIu64
                ", \"cycles\": %" PRIu64 ", \"drained\": %s,\n"
                " \"drops\": %" PRIu64 ", \"retransmissions\": %" PRIu64
                ", \"lost_units\": %" PRIu64
                ", \"drop_signals_lost\": %" PRIu64
                ", \"duplicates_suppressed\": %" PRIu64 ",\n"
                " \"fault_mis_turns\": %" PRIu64
                ", \"fault_missed_receives\": %" PRIu64
                ", \"fault_corruptions\": %" PRIu64
                ", \"fault_dead_arrivals\": %" PRIu64 ",\n"
                " \"e2e\": {\"sends\": %" PRIu64
                ", \"retransmits\": %" PRIu64 ", \"timeouts\": %" PRIu64
                ", \"duplicates\": %" PRIu64 ", \"late\": %" PRIu64
                ", \"completed\": %" PRIu64 ", \"expired\": %" PRIu64
                ", \"lost_units\": %" PRIu64 "}}%s\n",
                p.faultRate, p.messagesOffered, p.unitsExpected,
                p.unitsDelivered, p.cycles,
                p.drained ? "true" : "false", p.drops,
                p.retransmissions, p.events.lostUnits,
                p.events.dropSignalsLost,
                p.events.duplicatesSuppressed, p.events.faultMisTurns,
                p.events.faultMissedReceives, p.events.faultCorruptions,
                p.events.faultDeadArrivals, p.e2e.sends,
                p.e2e.retransmits, p.e2e.timeouts, p.e2e.duplicates,
                p.e2e.late, p.e2e.completed, p.e2e.expired,
                p.e2e.lostUnits, i + 1 < pts.size() ? "," : "");
    }
    out += "]\n}\n";
    return out;
}

void
writeFaultSweepJson(const FaultSweepConfig &cfg,
                    const std::vector<FaultSweepPoint> &pts,
                    const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write fault sweep to %s", path.c_str());
    const std::string text = faultSweepToJson(cfg, pts);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace phastlane::sim
