file(REMOVE_RECURSE
  "CMakeFiles/test_optical_power.dir/test_optical_power.cpp.o"
  "CMakeFiles/test_optical_power.dir/test_optical_power.cpp.o.d"
  "test_optical_power"
  "test_optical_power.pdb"
  "test_optical_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
