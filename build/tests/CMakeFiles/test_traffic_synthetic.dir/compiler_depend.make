# Empty compiler generated dependencies file for test_traffic_synthetic.
# This may be replaced when dependencies are built.
