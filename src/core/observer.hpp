/**
 * @file
 * Observation hooks into the PhastlaneNetwork cycle (DESIGN.md §7).
 *
 * The optimized wavefront in network.cpp is the single source of truth
 * for the paper's trickiest semantics, so external checkers (the
 * invariant checker and the differential oracle in src/check/) need a
 * way to watch every semantically meaningful event without perturbing
 * the hot path. A StepObserver is attached with
 * PhastlaneNetwork::setObserver(); every callback site is guarded by a
 * single null check, so an unobserved network pays one predictable
 * branch per event.
 *
 * Callbacks fire in simulation order: onCycleBegin, then the launch /
 * propagation events of the cycle interleaved as they happen, then
 * onCycleEnd (still at the same cycle number, after all state for the
 * cycle is final but before the cycle counter advances).
 */

#ifndef PHASTLANE_CORE_OBSERVER_HPP
#define PHASTLANE_CORE_OBSERVER_HPP

#include <vector>

#include "common/types.hpp"
#include "core/packet.hpp"

namespace phastlane::core {

/** Why delivery units were permanently lost (DESIGN.md §10). */
enum class LostCause : uint8_t {
    /** Message injected at a hard-failed router; all units lost. */
    DeadSource,
    /** Packet arrived at a hard-failed router and black-holed. */
    DeadRouter,
    /** Receive/tap resonator missed the capture; one unit lost. */
    MissedReceive,
    /** Packet-Dropped return signal lost; remaining units lost. */
    SignalLost,
};

/**
 * Interface for watching a PhastlaneNetwork cycle-by-cycle. All
 * methods default to no-ops so checkers implement only what they need.
 */
class StepObserver
{
  public:
    virtual ~StepObserver() = default;

    /** step() entered; nothing for cycle @p cycle has happened yet. */
    virtual void onCycleBegin(Cycle cycle) { (void)cycle; }

    /**
     * A message was accepted into its source NIC. @p branches is the
     * number of branch packets enqueued (1 for unicast, one per
     * multicast branch for a broadcast); @p delivery_units the number
     * of per-node deliveries the message will eventually produce.
     */
    virtual void onAccept(const Packet &pkt, int branches,
                          int delivery_units)
    {
        (void)pkt;
        (void)branches;
        (void)delivery_units;
    }

    /**
     * A buffered packet was launched optically from @p router toward
     * @p out. @p attempts is the number of previously completed
     * (dropped) attempts: > 0 marks a retransmission.
     */
    virtual void onLaunch(const OpticalPacket &pkt, NodeId router,
                          Port out, int attempts)
    {
        (void)pkt;
        (void)router;
        (void)out;
        (void)attempts;
    }

    /** The packet won a pass-through claim and is exiting @p router. */
    virtual void onPass(const OpticalPacket &pkt, NodeId router)
    {
        (void)pkt;
        (void)router;
    }

    /** A delivery completed (unicast final or multicast tap copy). */
    virtual void onDeliver(const Delivery &d) { (void)d; }

    /**
     * A multicast power tap was served at @p router (the matching
     * delivery was reported through onDeliver just before).
     */
    virtual void onTap(const OpticalPacket &pkt, NodeId router)
    {
        (void)pkt;
        (void)router;
    }

    /**
     * The branch terminated at its final router this cycle; its buffer
     * slot at the responsible holder frees next cycle.
     */
    virtual void onBranchFinal(const OpticalPacket &pkt, NodeId router)
    {
        (void)pkt;
        (void)router;
    }

    /**
     * The packet was received into @p router 's @p queue input buffer,
     * either as an interim-node handoff (@p interim) or because it
     * lost a port claim.
     */
    virtual void onBufferReceive(const OpticalPacket &pkt,
                                 NodeId router, Port queue,
                                 bool interim)
    {
        (void)pkt;
        (void)router;
        (void)queue;
        (void)interim;
    }

    /**
     * The packet was dropped at @p router (blocked, buffer full). The
     * drop signal returns over @p signal_hops reverse links to the
     * holder at @p launch_router, which restores and later
     * retransmits. @p pkt carries the tap-reduced multicast state.
     * When @p signal_lost, an injected fault ate the return signal:
     * signal_hops is 0, the holder frees the slot under the "no signal
     * means success" rule, and the packet's remaining units are lost
     * (reported through onLost just after).
     */
    virtual void onDrop(const OpticalPacket &pkt, NodeId router,
                        NodeId launch_router, int signal_hops,
                        bool signal_lost)
    {
        (void)pkt;
        (void)router;
        (void)launch_router;
        (void)signal_hops;
        (void)signal_lost;
    }

    /**
     * Delivery units were permanently lost to an injected fault
     * (DESIGN.md §10); the loss is final the cycle it is reported.
     */
    virtual void onLost(const Packet &pkt, uint64_t branch_id,
                        NodeId router, int units, LostCause cause)
    {
        (void)pkt;
        (void)branch_id;
        (void)router;
        (void)units;
        (void)cause;
    }

    /**
     * A tap delivery at @p router was suppressed as a duplicate: the
     * tap sits below the packet's dedupBelow watermark, so an earlier
     * attempt already served it.
     */
    virtual void onDuplicate(const OpticalPacket &pkt, NodeId router)
    {
        (void)pkt;
        (void)router;
    }

    /**
     * step() finished for @p cycle: deliveries(), counters and buffer
     * state are final for the cycle and safe to inspect.
     */
    virtual void onCycleEnd(Cycle cycle) { (void)cycle; }
};

/**
 * Fans one network's observer slot out to several observers, in
 * attachment order. Lets the invariant checker run composed with the
 * tracing/metrics observers of src/obs/ (a PhastlaneNetwork carries
 * at most one StepObserver). The mux does not own its children; they
 * must outlive it or be removed first.
 */
class ObserverMux : public StepObserver
{
  public:
    void add(StepObserver *obs)
    {
        if (obs)
            children_.push_back(obs);
    }

    size_t size() const { return children_.size(); }

    void onCycleBegin(Cycle cycle) override
    {
        for (auto *o : children_)
            o->onCycleBegin(cycle);
    }
    void onAccept(const Packet &pkt, int branches,
                  int delivery_units) override
    {
        for (auto *o : children_)
            o->onAccept(pkt, branches, delivery_units);
    }
    void onLaunch(const OpticalPacket &pkt, NodeId router, Port out,
                  int attempts) override
    {
        for (auto *o : children_)
            o->onLaunch(pkt, router, out, attempts);
    }
    void onPass(const OpticalPacket &pkt, NodeId router) override
    {
        for (auto *o : children_)
            o->onPass(pkt, router);
    }
    void onDeliver(const Delivery &d) override
    {
        for (auto *o : children_)
            o->onDeliver(d);
    }
    void onTap(const OpticalPacket &pkt, NodeId router) override
    {
        for (auto *o : children_)
            o->onTap(pkt, router);
    }
    void onBranchFinal(const OpticalPacket &pkt,
                       NodeId router) override
    {
        for (auto *o : children_)
            o->onBranchFinal(pkt, router);
    }
    void onBufferReceive(const OpticalPacket &pkt, NodeId router,
                         Port queue, bool interim) override
    {
        for (auto *o : children_)
            o->onBufferReceive(pkt, router, queue, interim);
    }
    void onDrop(const OpticalPacket &pkt, NodeId router,
                NodeId launch_router, int signal_hops,
                bool signal_lost) override
    {
        for (auto *o : children_)
            o->onDrop(pkt, router, launch_router, signal_hops,
                      signal_lost);
    }
    void onLost(const Packet &pkt, uint64_t branch_id, NodeId router,
                int units, LostCause cause) override
    {
        for (auto *o : children_)
            o->onLost(pkt, branch_id, router, units, cause);
    }
    void onDuplicate(const OpticalPacket &pkt, NodeId router) override
    {
        for (auto *o : children_)
            o->onDuplicate(pkt, router);
    }
    void onCycleEnd(Cycle cycle) override
    {
        for (auto *o : children_)
            o->onCycleEnd(cycle);
    }

  private:
    std::vector<StepObserver *> children_;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_OBSERVER_HPP
