# Empty compiler generated dependencies file for test_optical_power.
# This may be replaced when dependencies are built.
