/**
 * @file
 * Mesh topology and dimension-order routing tests, parameterized over
 * several mesh shapes.
 */

#include <gtest/gtest.h>
#include <tuple>
#include <utility>
#include <vector>

#include "common/geometry.hpp"

namespace phastlane {
namespace {

TEST(Geometry, CoordRoundTrip8x8)
{
    MeshTopology mesh(8, 8);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n)
        EXPECT_EQ(mesh.nodeAt(mesh.coordOf(n)), n);
}

TEST(Geometry, RowMajorLayout)
{
    MeshTopology mesh(8, 8);
    EXPECT_EQ(mesh.nodeAt({0, 0}), 0);
    EXPECT_EQ(mesh.nodeAt({7, 0}), 7);
    EXPECT_EQ(mesh.nodeAt({0, 1}), 8);
    EXPECT_EQ(mesh.nodeAt({7, 7}), 63);
}

TEST(Geometry, EdgeNeighborsAreInvalid)
{
    MeshTopology mesh(8, 8);
    EXPECT_EQ(mesh.neighbor(0, Port::South), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(0, Port::West), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(63, Port::North), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(63, Port::East), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(0, Port::North), 8);
    EXPECT_EQ(mesh.neighbor(0, Port::East), 1);
}

TEST(Geometry, NeighborsAreSymmetric)
{
    MeshTopology mesh(8, 8);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        for (Port d : kMeshDirections) {
            const NodeId m = mesh.neighbor(n, d);
            if (m != kInvalidNode)
                EXPECT_EQ(mesh.neighbor(m, opposite(d)), n);
        }
    }
}

class MeshShapes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshShapes, XyRouteLengthEqualsHopDistance)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            EXPECT_EQ(static_cast<int>(mesh.xyRoute(a, b).size()),
                      mesh.hopDistance(a, b));
        }
    }
}

TEST_P(MeshShapes, XyRouteGoesXThenY)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            bool seen_y = false;
            for (Port p : mesh.xyRoute(a, b)) {
                const bool is_y =
                    p == Port::North || p == Port::South;
                if (is_y)
                    seen_y = true;
                else
                    EXPECT_FALSE(seen_y)
                        << "X move after a Y move on route " << a
                        << "->" << b;
            }
        }
    }
}

TEST_P(MeshShapes, XyPathEndsAtDestination)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            const auto path = mesh.xyPath(a, b);
            if (a == b) {
                EXPECT_TRUE(path.empty());
            } else {
                ASSERT_FALSE(path.empty());
                EXPECT_EQ(path.back(), b);
            }
        }
    }
}

TEST_P(MeshShapes, XyFirstHopMatchesRoute)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            const auto route = mesh.xyRoute(a, b);
            if (a == b)
                EXPECT_EQ(mesh.xyFirstHop(a, b), Port::Local);
            else
                EXPECT_EQ(mesh.xyFirstHop(a, b), route.front());
        }
    }
}

TEST_P(MeshShapes, XyPathStaysInsideMesh)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            for (NodeId n : mesh.xyPath(a, b))
                EXPECT_TRUE(mesh.valid(n));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshShapes,
    ::testing::Values(std::pair{2, 2}, std::pair{4, 4}, std::pair{8, 8},
                      std::pair{4, 8}, std::pair{8, 2},
                      std::pair{1, 8}, std::pair{8, 1},
                      std::pair{9, 7}, std::pair{13, 5},
                      std::pair{16, 16}));

TEST_P(MeshShapes, CoordRoundTripAndNeighborSymmetry)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        EXPECT_EQ(mesh.nodeAt(mesh.coordOf(n)), n);
        for (Port d : kMeshDirections) {
            const NodeId m = mesh.neighbor(n, d);
            if (m != kInvalidNode)
                EXPECT_EQ(mesh.neighbor(m, opposite(d)), n);
        }
    }
}

TEST(Geometry, HopDistanceIsAMetric)
{
    MeshTopology mesh(8, 8);
    for (NodeId a = 0; a < 64; a += 7) {
        for (NodeId b = 0; b < 64; b += 5) {
            EXPECT_EQ(mesh.hopDistance(a, b), mesh.hopDistance(b, a));
            EXPECT_EQ(mesh.hopDistance(a, a), 0);
            for (NodeId c = 0; c < 64; c += 11) {
                EXPECT_LE(mesh.hopDistance(a, c),
                          mesh.hopDistance(a, b) +
                              mesh.hopDistance(b, c));
            }
        }
    }
}

class ShardGridShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(ShardGridShapes, RectsPartitionTheMesh)
{
    const auto [w, h, cols, rows] = GetParam();
    MeshTopology mesh(w, h);
    ShardGrid grid(mesh, cols, rows);
    // Clamped to the mesh dimensions, never empty.
    EXPECT_GE(grid.cols(), 1);
    EXPECT_GE(grid.rows(), 1);
    EXPECT_LE(grid.cols(), w);
    EXPECT_LE(grid.rows(), h);
    // Every node belongs to exactly one shard, and shardOf agrees
    // with rect containment.
    std::vector<int> seen(static_cast<size_t>(mesh.nodeCount()), 0);
    int covered = 0;
    for (int s = 0; s < grid.count(); ++s) {
        const ShardGrid::Rect &r = grid.rect(s);
        EXPECT_GT(r.width, 0);
        EXPECT_GT(r.height, 0);
        covered += r.nodeCount();
        for (int y = r.y0; y < r.y0 + r.height; ++y) {
            for (int x = r.x0; x < r.x0 + r.width; ++x) {
                const NodeId n = mesh.nodeAt({x, y});
                ++seen[static_cast<size_t>(n)];
                EXPECT_TRUE(r.contains({x, y}));
                EXPECT_EQ(grid.shardOf(n), s);
            }
        }
    }
    EXPECT_EQ(covered, mesh.nodeCount());
    for (int c : seen)
        EXPECT_EQ(c, 1);
}

TEST_P(ShardGridShapes, LocalIdsAreDenseAndGloballyMonotone)
{
    const auto [w, h, cols, rows] = GetParam();
    MeshTopology mesh(w, h);
    ShardGrid grid(mesh, cols, rows);
    for (int s = 0; s < grid.count(); ++s) {
        const ShardGrid::Rect &r = grid.rect(s);
        std::vector<int> used(static_cast<size_t>(r.nodeCount()), 0);
        // Walk the shard's nodes in ascending GLOBAL id: local ids
        // must come out dense AND ascending — the monotonicity the
        // sharded engine's merge order relies on (DESIGN.md §12).
        int prev_local = -1;
        for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
            if (grid.shardOf(n) != s)
                continue;
            const int local = grid.localId(n);
            ASSERT_GE(local, 0);
            ASSERT_LT(local, r.nodeCount());
            ++used[static_cast<size_t>(local)];
            EXPECT_GT(local, prev_local)
                << "local id order broke at node " << n;
            prev_local = local;
        }
        for (int c : used)
            EXPECT_EQ(c, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ShardGridShapes,
    ::testing::Values(std::tuple{8, 8, 2, 2}, std::tuple{8, 8, 4, 4},
                      std::tuple{9, 7, 2, 2}, std::tuple{9, 7, 3, 2},
                      std::tuple{16, 16, 4, 4},
                      std::tuple{32, 32, 4, 4},
                      std::tuple{5, 3, 8, 8}, // clamps to 5x3
                      std::tuple{1, 8, 4, 4}, // clamps to 1x4
                      std::tuple{8, 8, 1, 1},
                      std::tuple{13, 5, 13, 5}));

TEST(ShardGrid, UnevenSplitSpreadsRemainder)
{
    // 9 columns over 2 shards: 4 + 5 (floor split), no empty rects.
    MeshTopology mesh(9, 7);
    ShardGrid grid(mesh, 2, 1);
    EXPECT_EQ(grid.rect(0).width, 4);
    EXPECT_EQ(grid.rect(1).width, 5);
    EXPECT_EQ(grid.rect(0).height, 7);
    EXPECT_EQ(grid.rect(1).height, 7);
}

TEST(Geometry, MaxDistanceIn8x8Is14)
{
    MeshTopology mesh(8, 8);
    int max_d = 0;
    for (NodeId a = 0; a < 64; ++a)
        for (NodeId b = 0; b < 64; ++b)
            max_d = std::max(max_d, mesh.hopDistance(a, b));
    EXPECT_EQ(max_d, 14);
}

} // namespace
} // namespace phastlane
