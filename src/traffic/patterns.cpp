#include "traffic/patterns.hpp"

#include <bit>

#include "common/log.hpp"

namespace phastlane::traffic {

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::UniformRandom: return "uniform";
      case Pattern::BitComplement: return "bitcomp";
      case Pattern::BitReverse: return "bitrev";
      case Pattern::Shuffle: return "shuffle";
      case Pattern::Transpose: return "transpose";
      case Pattern::Tornado: return "tornado";
      case Pattern::Neighbor: return "neighbor";
      case Pattern::Hotspot: return "hotspot";
    }
    return "?";
}

Pattern
parsePattern(const std::string &name)
{
    for (Pattern p :
         {Pattern::UniformRandom, Pattern::BitComplement,
          Pattern::BitReverse, Pattern::Shuffle, Pattern::Transpose,
          Pattern::Tornado, Pattern::Neighbor, Pattern::Hotspot}) {
        if (name == patternName(p))
            return p;
    }
    fatal("unknown traffic pattern '%s'", name.c_str());
}

bool
needsPowerOfTwo(Pattern p)
{
    return p == Pattern::BitComplement || p == Pattern::BitReverse ||
           p == Pattern::Shuffle;
}

std::string
validatePattern(Pattern p, const MeshTopology &mesh)
{
    const int n = mesh.nodeCount();
    if (needsPowerOfTwo(p) && (n <= 0 || (n & (n - 1)) != 0)) {
        return std::string("pattern '") + patternName(p) +
               "' requires a power-of-two node count (got " +
               std::to_string(n) + ")";
    }
    if (p == Pattern::Transpose && mesh.width() != mesh.height()) {
        return std::string("pattern 'transpose' requires a square "
                           "mesh (got ") +
               std::to_string(mesh.width()) + "x" +
               std::to_string(mesh.height()) + ")";
    }
    return {};
}

namespace {

int
log2Exact(int n)
{
    PL_ASSERT(n > 0 && (n & (n - 1)) == 0,
              "pattern requires a power-of-two node count (got %d)", n);
    return std::countr_zero(static_cast<unsigned>(n));
}

} // namespace

NodeId
destination(Pattern p, NodeId src, const MeshTopology &mesh, Rng &rng,
            const PatternOptions &opts)
{
    const int n = mesh.nodeCount();
    NodeId dst = src;
    switch (p) {
      case Pattern::UniformRandom:
        do {
            dst = static_cast<NodeId>(rng.uniformInt(0, n - 1));
        } while (dst == src);
        return dst;
      case Pattern::BitComplement: {
        const int bits = log2Exact(n);
        dst = static_cast<NodeId>(~static_cast<unsigned>(src) &
                                  ((1u << bits) - 1));
        break;
      }
      case Pattern::BitReverse: {
        const int bits = log2Exact(n);
        unsigned v = static_cast<unsigned>(src);
        unsigned r = 0;
        for (int i = 0; i < bits; ++i) {
            r = (r << 1) | (v & 1u);
            v >>= 1;
        }
        dst = static_cast<NodeId>(r);
        break;
      }
      case Pattern::Shuffle: {
        const int bits = log2Exact(n);
        const unsigned v = static_cast<unsigned>(src);
        dst = static_cast<NodeId>(
            ((v << 1) | (v >> (bits - 1))) & ((1u << bits) - 1));
        break;
      }
      case Pattern::Transpose: {
        const Coord c = mesh.coordOf(src);
        // Requires a square mesh; (x, y) -> (y, x).
        PL_ASSERT(mesh.width() == mesh.height(),
                  "transpose requires a square mesh");
        dst = mesh.nodeAt(Coord{c.y, c.x});
        break;
      }
      case Pattern::Tornado: {
        const Coord c = mesh.coordOf(src);
        dst = mesh.nodeAt(Coord{(c.x + mesh.width() / 2) %
                                    mesh.width(),
                                c.y});
        break;
      }
      case Pattern::Neighbor: {
        const Coord c = mesh.coordOf(src);
        dst = mesh.nodeAt(Coord{(c.x + 1) % mesh.width(), c.y});
        break;
      }
      case Pattern::Hotspot: {
        // hotspotFraction of traffic to the hot node, the rest
        // uniform over everyone else. The hot node is excluded from
        // the uniform remainder: re-selecting it there inflated the
        // realized hot fraction to f + (1-f)/(n-1).
        NodeId hot = opts.hotspotNode;
        if (hot == kInvalidNode)
            hot = mesh.nodeAt(
                Coord{mesh.width() / 2, mesh.height() / 2});
        PL_ASSERT(mesh.valid(hot), "hotspot node %d out of range",
                  hot);
        if (src != hot && rng.bernoulli(opts.hotspotFraction))
            return hot;
        do {
            dst = static_cast<NodeId>(rng.uniformInt(0, n - 1));
        } while (dst == src || dst == hot);
        return dst;
      }
    }
    if (dst == src)
        dst = static_cast<NodeId>((src + 1) % n);
    return dst;
}

} // namespace phastlane::traffic
