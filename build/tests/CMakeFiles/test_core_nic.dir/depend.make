# Empty dependencies file for test_core_nic.
# This may be replaced when dependencies are built.
