/**
 * @file
 * Lockstep differential campaign: the optimized wavefront network and
 * the ReferenceNetwork oracle must agree cycle-for-cycle over the
 * randomized matrix of patterns, mesh shapes, hop limits and buffer
 * depths — and a deliberately mutated network must be caught,
 * shrunk to a minimal repro, and rendered as a pasteable test.
 *
 * PL_CHECK_LONG=1 in the environment widens the campaign (more seeds,
 * longer streams) for soak runs; the tier-1 default keeps the suite
 * in seconds.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/differential.hpp"

namespace phastlane::check {
namespace {

bool
longMode()
{
    const char *v = std::getenv("PL_CHECK_LONG");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(CheckDifferential, CampaignAgreesAcrossMatrix)
{
    // Tier-1: 12 cells x 5 seeds = 60 lockstep runs over >= 5
    // patterns, 4 mesh shapes, H in {4,5,8}, depths {1,2,10}, shared
    // pools, both arbitrations and exponential backoff.
    const int seeds = longMode() ? 25 : 5;
    const Cycle cycles = longMode() ? 400 : 120;
    const auto cells = defaultCampaign(seeds, cycles);
    ASSERT_GE(cells.size(), 50u);
    const auto result = runCampaign(cells, 20000);
    EXPECT_EQ(result.runs, static_cast<int>(cells.size()));
    for (const auto &report : result.reports)
        ADD_FAILURE() << report;
    EXPECT_EQ(result.failures, 0);
}

TEST(CheckDifferential, LockstepIsDeterministic)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 2;
    StreamConfig sc;
    sc.rate = 0.4;
    sc.broadcastFraction = 0.2;
    sc.cycles = 80;
    sc.seed = 77;
    p.seed = sc.seed;
    const auto stream = makeStream(p, sc);
    ASSERT_FALSE(stream.empty());
    const auto first = runLockstep(p, stream, 20000);
    const auto second = runLockstep(p, stream, 20000);
    EXPECT_TRUE(first.ok) << first.message;
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.message, second.message);
}

TEST(CheckDifferential, ShrinkerLeavesPassingStreamAlone)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    StreamConfig sc;
    sc.rate = 0.2;
    sc.cycles = 40;
    sc.seed = 5;
    p.seed = sc.seed;
    const auto stream = makeStream(p, sc);
    ASSERT_TRUE(runLockstep(p, stream, 20000).ok);
    EXPECT_EQ(shrinkStream(p, stream, 20000).size(), stream.size());
}

TEST(CheckDifferential, MutationPriorityInversionIsCaught)
{
    // Acceptance demo: flip straight-over-turn priority in the
    // optimized network only (the oracle implements the paper). The
    // differential must catch it, the shrinker must produce a smaller
    // stream that still fails, and the repro must be a gtest case.
    core::PhastlaneParams p;
    p.routerBufferEntries = 1; // contention => priority matters
    StreamConfig sc;
    sc.rate = 0.5;
    sc.broadcastFraction = 0.2;
    sc.cycles = 80;

    bool caught = false;
    for (uint64_t seed = 1; seed <= 8 && !caught; ++seed) {
        sc.seed = seed;
        p.seed = seed;
        p.faults.invertStraightPriority = true;
        const auto stream = makeStream(p, sc);
        const auto result = runLockstep(p, stream, 20000);
        if (result.ok)
            continue;
        caught = true;
        EXPECT_FALSE(result.message.empty());

        const auto shrunk = shrinkStream(p, stream, 20000);
        EXPECT_LT(shrunk.size(), stream.size());
        EXPECT_FALSE(runLockstep(p, shrunk, 20000).ok);

        const auto repro = reproTestCase(p, shrunk);
        EXPECT_NE(repro.find("TEST("), std::string::npos);
        EXPECT_NE(repro.find("runLockstep"), std::string::npos);

        // Sanity: the same seed passes without the fault.
        p.faults.invertStraightPriority = false;
        EXPECT_TRUE(runLockstep(p, stream, 20000).ok);
    }
    EXPECT_TRUE(caught)
        << "priority inversion never diverged in 8 seeds";
}

TEST(CheckDifferential, MakeStreamHonoursRecipe)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    StreamConfig sc;
    sc.rate = 0.3;
    sc.broadcastFraction = 1.0;
    sc.cycles = 50;
    sc.seed = 9;
    const auto stream = makeStream(p, sc);
    ASSERT_FALSE(stream.empty());
    PacketId prev = 0;
    for (const auto &inj : stream) {
        EXPECT_LT(inj.at, sc.cycles);
        EXPECT_TRUE(inj.pkt.broadcast);
        EXPECT_EQ(inj.pkt.id, prev + 1) << "ids must be sequential";
        prev = inj.pkt.id;
    }
    // Same recipe, same stream.
    const auto again = makeStream(p, sc);
    ASSERT_EQ(again.size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(again[i].at, stream[i].at);
        EXPECT_EQ(again[i].pkt.id, stream[i].pkt.id);
        EXPECT_EQ(again[i].pkt.src, stream[i].pkt.src);
        EXPECT_EQ(again[i].pkt.dst, stream[i].pkt.dst);
    }
}

} // namespace
} // namespace phastlane::check
