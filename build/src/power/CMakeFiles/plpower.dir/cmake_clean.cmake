file(REMOVE_RECURSE
  "CMakeFiles/plpower.dir/cacti_lite.cpp.o"
  "CMakeFiles/plpower.dir/cacti_lite.cpp.o.d"
  "CMakeFiles/plpower.dir/electrical_power.cpp.o"
  "CMakeFiles/plpower.dir/electrical_power.cpp.o.d"
  "CMakeFiles/plpower.dir/optical_power.cpp.o"
  "CMakeFiles/plpower.dir/optical_power.cpp.o.d"
  "libplpower.a"
  "libplpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
