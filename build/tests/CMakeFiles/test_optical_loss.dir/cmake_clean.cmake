file(REMOVE_RECURSE
  "CMakeFiles/test_optical_loss.dir/test_optical_loss.cpp.o"
  "CMakeFiles/test_optical_loss.dir/test_optical_loss.cpp.o.d"
  "test_optical_loss"
  "test_optical_loss.pdb"
  "test_optical_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
