/**
 * @file
 * Link-utilization reporting: turns either network's per-(router,
 * output-port) traversal counters into a summary, a hottest-links
 * list, and a printable per-router heatmap -- useful for diagnosing
 * where the drop storms of Section 5 originate.
 */

#ifndef PHASTLANE_SIM_REPORT_HPP
#define PHASTLANE_SIM_REPORT_HPP

#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "net/network.hpp"

namespace phastlane::sim {

/** Utilization of one directed mesh link. */
struct LinkUtilization {
    NodeId router = kInvalidNode;
    Port out = Port::North;
    uint64_t traversals = 0;
    double utilization = 0.0; ///< traversals / cycles
};

/**
 * A network's link-utilization snapshot over a measured interval.
 */
class UtilizationReport
{
  public:
    /**
     * @param counts Per (router * 4 + portIndex) traversal counters.
     * @param cycles Interval length the counters cover.
     */
    UtilizationReport(const MeshTopology &mesh,
                      const std::vector<uint64_t> &counts,
                      Cycle cycles);

    /** Build from either concrete network type (dispatches on the
     *  dynamic type; fatal() for unknown networks). */
    static UtilizationReport fromNetwork(const Network &net,
                                         Cycle cycles);

    /** Mean utilization over links that exist (edge ports excluded). */
    double meanUtilization() const;

    /** Highest single-link utilization. */
    double peakUtilization() const;

    /** The @p n busiest links, descending. */
    std::vector<LinkUtilization> hottest(size_t n) const;

    /**
     * Text heatmap: one cell per router showing the mean utilization
     * of its outgoing links as a digit 0-9 ('.' for idle), laid out
     * north-up.
     */
    std::string heatmap() const;

    const std::vector<LinkUtilization> &links() const
    {
        return links_;
    }

  private:
    MeshTopology mesh_;
    std::vector<LinkUtilization> links_;
};

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_REPORT_HPP
