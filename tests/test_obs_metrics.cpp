/**
 * @file
 * Metrics registry unit tests: HDR histogram bucketing and bounded
 * relative error, quantiles, merge commutativity, and the registry's
 * deterministic shard merge (the property the parallel harnesses rely
 * on for thread-count-independent results).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace phastlane::obs {
namespace {

TEST(HdrHistogram, SmallValuesAreExact)
{
    // Values below kSubBuckets land in their own bucket: recording v
    // then asking for the max/quantile must give v back exactly.
    for (uint64_t v = 0; v < HdrHistogram::kSubBuckets; ++v) {
        HdrHistogram h;
        h.record(v);
        EXPECT_EQ(h.min(), v);
        EXPECT_EQ(h.max(), v);
        EXPECT_EQ(h.quantile(1.0), v);
        EXPECT_EQ(HdrHistogram::bucketUpperEdge(
                      HdrHistogram::bucketOf(v)),
                  v);
    }
}

TEST(HdrHistogram, BucketEdgesAreMonotonicAndCover)
{
    // Every bucket's upper edge maps back to the same bucket, and
    // edges strictly increase, so the value axis is partitioned.
    uint64_t prev = 0;
    for (size_t b = 0; b < 16 * 20; ++b) {
        const uint64_t edge = HdrHistogram::bucketUpperEdge(b);
        EXPECT_EQ(HdrHistogram::bucketOf(edge), b);
        if (b > 0) {
            EXPECT_GT(edge, prev);
            EXPECT_EQ(HdrHistogram::bucketOf(prev + 1), b)
                << "value just past bucket " << b - 1
                << " must land in bucket " << b;
        }
        prev = edge;
    }
}

TEST(HdrHistogram, RelativeErrorIsBounded)
{
    // The upper edge of a value's bucket overestimates it by at most
    // 1/kSubBuckets at any magnitude.
    for (uint64_t v = 1; v < (uint64_t{1} << 40);
         v = v * 3 / 2 + 1) {
        const uint64_t edge =
            HdrHistogram::bucketUpperEdge(HdrHistogram::bucketOf(v));
        ASSERT_GE(edge, v);
        EXPECT_LE(static_cast<double>(edge - v),
                  static_cast<double>(v) /
                      HdrHistogram::kSubBuckets);
    }
}

TEST(HdrHistogram, MeanAndCountAreExact)
{
    HdrHistogram h;
    uint64_t sum = 0;
    for (uint64_t v = 0; v < 1000; ++v) {
        h.record(v * 7);
        sum += v * 7;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 999u * 7);
}

TEST(HdrHistogram, QuantilesOfUniformRamp)
{
    HdrHistogram h;
    for (uint64_t v = 1; v <= 10000; ++v)
        h.record(v);
    // Bucketed quantiles may overestimate by the bucket width
    // (<= 1/16 relative); they must never underestimate.
    const double qs[] = {0.5, 0.9, 0.99};
    for (double q : qs) {
        const uint64_t got = h.quantile(q);
        const auto expected = static_cast<uint64_t>(q * 10000);
        EXPECT_GE(got, expected);
        EXPECT_LE(static_cast<double>(got),
                  expected * (1.0 + 1.0 / 16.0) + 1.0);
    }
    // quantile is clamped to the observed max, not the bucket edge.
    EXPECT_EQ(h.quantile(1.0), 10000u);
    EXPECT_EQ(h.quantile(0.0), 1u);
}

TEST(HdrHistogram, MergeMatchesCombinedRecording)
{
    HdrHistogram a, b, combined;
    for (uint64_t v = 0; v < 500; ++v) {
        a.record(v * 3);
        combined.record(v * 3);
    }
    for (uint64_t v = 0; v < 300; ++v) {
        b.record(v * 11 + 1);
        combined.record(v * 11 + 1);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    EXPECT_EQ(a.buckets(), combined.buckets());
}

TEST(MetricsRegistry, HandlesAreStableAcrossGrowth)
{
    MetricsRegistry r;
    Counter &first = r.counter("first");
    first.inc();
    // Force growth: the original reference must stay valid.
    for (int i = 0; i < 100; ++i)
        r.counter("c" + std::to_string(i)).inc(i);
    first.inc();
    EXPECT_EQ(r.findCounter("first")->value(), 2u);
    EXPECT_EQ(&first, r.findCounter("first"));
}

TEST(MetricsRegistry, MergeUnionsNamesAndSums)
{
    MetricsRegistry a, b;
    a.counter("shared").inc(3);
    a.counter("only_a").inc(1);
    a.gauge("g").set(5);
    a.histogram("h").record(10);

    b.counter("shared").inc(4);
    b.counter("only_b").inc(2);
    b.gauge("g").set(2); // lower value, lower max
    b.histogram("h").record(20);
    b.histogram("only_b_h").record(7);

    a.merge(b);
    EXPECT_EQ(a.findCounter("shared")->value(), 7u);
    EXPECT_EQ(a.findCounter("only_a")->value(), 1u);
    EXPECT_EQ(a.findCounter("only_b")->value(), 2u);
    EXPECT_EQ(a.findGauge("g")->max(), 5);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
    EXPECT_EQ(a.findHistogram("h")->max(), 20u);
    EXPECT_EQ(a.findHistogram("only_b_h")->count(), 1u);
}

TEST(MetricsRegistry, ShardMergeOrderIsDeterministic)
{
    // Merging the same shards in the same (index) order must be
    // byte-identical no matter how the shards were produced; this is
    // what makes sweep metrics thread-count independent.
    const auto makeShard = [](uint64_t salt) {
        MetricsRegistry r;
        r.counter("events").inc(salt * 10);
        r.gauge("depth").set(static_cast<int64_t>(salt));
        for (uint64_t v = 0; v < salt * 5; ++v)
            r.histogram("lat").record(v + salt);
        return r;
    };
    MetricsRegistry once, twice;
    for (uint64_t s = 1; s <= 4; ++s)
        once.merge(makeShard(s));
    for (uint64_t s = 1; s <= 4; ++s)
        twice.merge(makeShard(s));
    EXPECT_EQ(once.toJson(), twice.toJson());
    EXPECT_EQ(once.toCsv(), twice.toCsv());
    EXPECT_EQ(once.findCounter("events")->value(), 100u);
    EXPECT_EQ(once.findGauge("depth")->max(), 4);
}

TEST(MetricsRegistry, JsonListsEveryMetric)
{
    MetricsRegistry r;
    r.counter("net.accepts").inc(42);
    r.gauge("net.in_flight").set(9);
    r.histogram("latency").record(100);
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"net.accepts\""), std::string::npos);
    EXPECT_NE(json.find("42"), std::string::npos);
    EXPECT_NE(json.find("\"net.in_flight\""), std::string::npos);
    EXPECT_NE(json.find("\"latency\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

} // namespace
} // namespace phastlane::obs
