file(REMOVE_RECURSE
  "CMakeFiles/test_optical_scaling.dir/test_optical_scaling.cpp.o"
  "CMakeFiles/test_optical_scaling.dir/test_optical_scaling.cpp.o.d"
  "test_optical_scaling"
  "test_optical_scaling.pdb"
  "test_optical_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
