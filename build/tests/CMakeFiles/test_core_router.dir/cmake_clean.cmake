file(REMOVE_RECURSE
  "CMakeFiles/test_core_router.dir/test_core_router.cpp.o"
  "CMakeFiles/test_core_router.dir/test_core_router.cpp.o.d"
  "test_core_router"
  "test_core_router.pdb"
  "test_core_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
