/**
 * @file
 * ReferenceNetwork unit tests: the oracle must itself implement the
 * paper's semantics correctly on cases simple enough to verify by
 * hand, and its independently rewritten broadcast split must agree
 * with the production one everywhere.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/reference_network.hpp"
#include "core/control.hpp"

namespace phastlane::check {
namespace {

core::PhastlaneParams
smallParams(int w = 4, int h = 4)
{
    core::PhastlaneParams p;
    p.meshWidth = w;
    p.meshHeight = h;
    return p;
}

Packet
unicast(PacketId id, NodeId src, NodeId dst)
{
    Packet k;
    k.id = id;
    k.src = src;
    k.dst = dst;
    return k;
}

TEST(CheckReference, BroadcastSplitMatchesProductionEverywhere)
{
    // The oracle's split is rewritten from the paper text; it must
    // agree with core::splitBroadcast for every source on square,
    // wide, tall and degenerate meshes.
    const std::pair<int, int> shapes[] = {
        {8, 8}, {4, 4}, {5, 3}, {2, 7}, {8, 1}, {1, 8}, {2, 2}};
    for (const auto &[w, h] : shapes) {
        const MeshTopology mesh(w, h);
        for (NodeId src = 0; src < mesh.nodeCount(); ++src) {
            const auto production = core::splitBroadcast(mesh, src);
            const auto reference =
                referenceBroadcastBranches(mesh, src);
            ASSERT_EQ(production.size(), reference.size())
                << w << "x" << h << " src " << src;
            for (size_t b = 0; b < production.size(); ++b) {
                EXPECT_EQ(production[b].taps, reference[b])
                    << w << "x" << h << " src " << src << " branch "
                    << b;
            }
        }
    }
}

TEST(CheckReference, BroadcastSplitShape)
{
    // Section 2.1.4: at most 2*width branches, exactly width for a
    // top/bottom-row source; every non-source node exactly once.
    const MeshTopology mesh(8, 8);
    for (NodeId src : {NodeId{0}, NodeId{27}, NodeId{63}}) {
        const auto branches = referenceBroadcastBranches(mesh, src);
        EXPECT_LE(branches.size(), static_cast<size_t>(2 * 8));
        std::set<NodeId> covered;
        size_t total = 0;
        for (const auto &b : branches) {
            total += b.size();
            covered.insert(b.begin(), b.end());
        }
        EXPECT_EQ(total, covered.size()) << "duplicate tap";
        EXPECT_EQ(covered.size(), 63u);
        EXPECT_FALSE(covered.count(src));
    }
    EXPECT_EQ(referenceBroadcastBranches(mesh, 0).size(), 8u);
    EXPECT_EQ(referenceBroadcastBranches(mesh, 60).size(), 8u);
}

TEST(CheckReference, UnicastDeliversWithCorrectTiming)
{
    // src 0 -> dst 3 on a 4x4 mesh: accept at cycle 0, one cycle of
    // NIC-to-router transfer, launch at cycle 1, three hops <= H=4 in
    // one wavefront: delivery at cycle 1.
    ReferenceNetwork net(smallParams());
    ASSERT_TRUE(net.inject(unicast(1, 0, 3)));
    EXPECT_EQ(net.inFlight(), 1u);
    net.step(); // NIC -> local queue; not yet launchable
    EXPECT_TRUE(net.deliveries().empty());
    net.step(); // launch + wavefront
    ASSERT_EQ(net.deliveries().size(), 1u);
    EXPECT_EQ(net.deliveries()[0].node, 3);
    EXPECT_EQ(net.deliveries()[0].packet.id, 1u);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(net.counters().deliveries, 1u);
    EXPECT_EQ(net.events().passTraversals, 2u);
    EXPECT_EQ(net.phastlaneCounters().drops, 0u);
}

TEST(CheckReference, LongRouteUsesInterimNodes)
{
    // 8x8, corner to corner: 14 hops at H=4 needs interim buffering
    // (Section 2.1.3); the packet must still arrive exactly once.
    core::PhastlaneParams p = smallParams(8, 8);
    ReferenceNetwork net(p);
    ASSERT_TRUE(net.inject(unicast(1, 0, 63)));
    for (int i = 0; i < 40 && net.inFlight() > 0; ++i)
        net.step();
    ASSERT_EQ(net.deliveries().size(), 1u);
    EXPECT_EQ(net.deliveries()[0].node, 63);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_GT(net.phastlaneCounters().interimAccepts, 0u);
}

TEST(CheckReference, BroadcastDeliversEverywhereOnce)
{
    ReferenceNetwork net(smallParams());
    Packet b;
    b.id = 9;
    b.src = 5;
    b.broadcast = true;
    ASSERT_TRUE(net.inject(b));
    EXPECT_EQ(net.inFlight(), 15u);
    for (int i = 0; i < 60 && net.inFlight() > 0; ++i)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(net.counters().deliveries, 15u);
}

TEST(CheckReference, DropsRetransmitUnderTinyBuffers)
{
    core::PhastlaneParams p = smallParams();
    p.routerBufferEntries = 1;
    ReferenceNetwork net(p);
    PacketId id = 1;
    for (NodeId src = 0; src < net.nodeCount(); ++src) {
        Packet b;
        b.id = id++;
        b.src = src;
        b.broadcast = true;
        ASSERT_TRUE(net.inject(b));
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 20000)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_GT(net.phastlaneCounters().drops, 0u);
    EXPECT_EQ(net.phastlaneCounters().drops,
              net.phastlaneCounters().retransmissions);
}

TEST(CheckReference, SupportsRejectsGlobalPriority)
{
    core::PhastlaneParams p = smallParams();
    EXPECT_TRUE(ReferenceNetwork::supports(p));
    p.wavefront = core::WavefrontModel::GlobalPriority;
    EXPECT_FALSE(ReferenceNetwork::supports(p));
}

} // namespace
} // namespace phastlane::check
