/**
 * @file
 * Differential tests of the two intra-cycle contention models
 * (DESIGN.md 3.1): sub-step FCFS finalizes claims in arrival order,
 * while global priority lets a late-arriving straight packet evict an
 * earlier turning packet's claim, as the paper's combinational
 * hardware description suggests.
 */

#include <gtest/gtest.h>
#include <map>

#include "common/rng.hpp"
#include "core/network.hpp"

namespace phastlane::core {
namespace {

/**
 * Scenario: router R = (3,3).
 *  - Turn packet T launches one hop away at (2,3), enters R at
 *    sub-step 1 and turns north.
 *  - Straight packet S launches at (3,0), reaches R at sub-step 3
 *    going straight north.
 * Both want R's North port in the same cycle. Under sub-step FCFS the
 * earlier T keeps the port and completes its single-segment route in
 * cycle 1; under global priority S evicts T, which is buffered and
 * delivered a cycle later.
 */
std::map<PacketId, Cycle>
runScenario(WavefrontModel model)
{
    PhastlaneParams p;
    p.wavefront = model;
    PhastlaneNetwork net(p);
    Packet turn;
    turn.id = 1;
    turn.src = 8 * 3 + 2; // (2,3)
    turn.dst = 8 * 6 + 3; // (3,6)
    Packet straight;
    straight.id = 2;
    straight.src = 3;          // (3,0)
    straight.dst = 8 * 6 + 3;  // (3,6)
    EXPECT_TRUE(net.inject(turn));
    EXPECT_TRUE(net.inject(straight));
    std::map<PacketId, Cycle> delivered;
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 1000) {
        net.step();
        for (const auto &d : net.deliveries())
            delivered[d.packet.id] = d.at;
    }
    EXPECT_EQ(delivered.size(), 2u);
    return delivered;
}

TEST(WavefrontModelsDiff, FcfsLetsTheEarlierTurnThrough)
{
    const auto delivered = runScenario(WavefrontModel::SubstepFcfs);
    // T covers its 4-hop route in the launch cycle.
    EXPECT_EQ(delivered.at(1), 1u);
    // S is blocked at (3,3) and needs a relaunch.
    EXPECT_EQ(delivered.at(2), 2u);
}

TEST(WavefrontModelsDiff, GlobalPriorityEvictsTheTurn)
{
    const auto delivered =
        runScenario(WavefrontModel::GlobalPriority);
    // T loses the North port to the straight packet despite arriving
    // first, so its delivery slips behind the single-cycle transit it
    // gets under FCFS (it may be blocked again by S's relaunch on the
    // shared column).
    EXPECT_GT(delivered.at(1), 1u);
}

TEST(WavefrontModelsDiff, BitplaneMatchesFcfsOnTheScenario)
{
    // The bit-plane engine is an execution strategy for the FCFS
    // semantics, not a third model: same winners, same cycles.
    const auto delivered = runScenario(WavefrontModel::BitplaneFcfs);
    EXPECT_EQ(delivered.at(1), 1u);
    EXPECT_EQ(delivered.at(2), 2u);
}

TEST(WavefrontModelsDiff, ModelsAgreeWithoutContention)
{
    for (auto model : {WavefrontModel::SubstepFcfs,
                       WavefrontModel::BitplaneFcfs,
                       WavefrontModel::GlobalPriority}) {
        PhastlaneParams p;
        p.wavefront = model;
        PhastlaneNetwork net(p);
        Packet pkt;
        pkt.id = 1;
        pkt.src = 0;
        pkt.dst = 63;
        ASSERT_TRUE(net.inject(pkt));
        Cycle delivered = 0;
        while (net.inFlight() > 0) {
            net.step();
            for (const auto &d : net.deliveries())
                delivered = d.at;
        }
        EXPECT_EQ(delivered, 4u);
    }
}

/**
 * Randomized many-cycle equivalence check of the claim-resolution
 * rewrite: 400 cycles of mixed unicast/broadcast traffic (8% load, 5%
 * broadcasts) on a 4-entry-buffer network, plus full drain. The
 * golden event counters were captured from the seed std::map-based
 * implementation; the flat-array resolver must reproduce every one of
 * them exactly, for both wavefront models.
 */
struct GoldenEvents {
    uint64_t deliveries, drops, launches, tapReceives, receives,
        passTraversals, retransmissions, blockedBuffered,
        interimAccepts, messagesAccepted;
};

GoldenEvents
runRandomizedWorkload(WavefrontModel model)
{
    PhastlaneParams p;
    p.wavefront = model;
    p.routerBufferEntries = 4;
    p.seed = 99;
    PhastlaneNetwork net(p);
    Rng rng(2024);
    PacketId id = 1;
    for (int cyc = 0; cyc < 400; ++cyc) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (rng.bernoulli(0.08)) {
                Packet pkt;
                pkt.id = id++;
                pkt.src = n;
                if (rng.bernoulli(0.05)) {
                    pkt.broadcast = true;
                } else {
                    NodeId d = static_cast<NodeId>(
                        rng.uniformInt(0, net.nodeCount() - 1));
                    pkt.dst = d == n ? (d + 1) % net.nodeCount()
                                     : d;
                }
                net.inject(pkt); // NIC-full rejections are part of
                                 // the deterministic workload
            }
        }
        net.step();
    }
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < 200000)
        net.step();
    EXPECT_EQ(net.inFlight(), 0u);
    const auto &ev = net.events();
    const auto &pl = net.phastlaneCounters();
    return GoldenEvents{net.counters().deliveries,
                        ev.drops,
                        ev.launches,
                        ev.tapReceives,
                        ev.receives,
                        ev.passTraversals,
                        ev.retransmissions,
                        pl.blockedBuffered,
                        pl.interimAccepts,
                        net.counters().messagesAccepted};
}

void
expectGolden(const GoldenEvents &g, const GoldenEvents &want)
{
    EXPECT_EQ(g.deliveries, want.deliveries);
    EXPECT_EQ(g.drops, want.drops);
    EXPECT_EQ(g.launches, want.launches);
    EXPECT_EQ(g.tapReceives, want.tapReceives);
    EXPECT_EQ(g.receives, want.receives);
    EXPECT_EQ(g.passTraversals, want.passTraversals);
    EXPECT_EQ(g.retransmissions, want.retransmissions);
    EXPECT_EQ(g.blockedBuffered, want.blockedBuffered);
    EXPECT_EQ(g.interimAccepts, want.interimAccepts);
    EXPECT_EQ(g.messagesAccepted, want.messagesAccepted);
}

TEST(WavefrontGolden, FcfsMatchesSeedImplementation)
{
    expectGolden(
        runRandomizedWorkload(WavefrontModel::SubstepFcfs),
        GoldenEvents{7918, 6, 7097, 5922, 7091, 12254, 6, 1624,
                     2207, 2090});
}

TEST(WavefrontGolden, BitplaneMatchesFcfsGoldenExactly)
{
    // Same golden as the scalar FCFS run: the word-parallel engine
    // must be bit-identical, not merely statistically equivalent.
    expectGolden(
        runRandomizedWorkload(WavefrontModel::BitplaneFcfs),
        GoldenEvents{7918, 6, 7097, 5922, 7091, 12254, 6, 1624,
                     2207, 2090});
}

TEST(WavefrontGolden, GlobalPriorityMatchesSeedImplementation)
{
    expectGolden(
        runRandomizedWorkload(WavefrontModel::GlobalPriority),
        GoldenEvents{7918, 6, 8527, 5922, 8521, 10824, 6, 3339,
                     1922, 2090});
}

TEST(WavefrontModelsDiff, BothModelsConserveUnderLoad)
{
    for (auto model : {WavefrontModel::SubstepFcfs,
                       WavefrontModel::BitplaneFcfs,
                       WavefrontModel::GlobalPriority}) {
        PhastlaneParams p;
        p.wavefront = model;
        p.routerBufferEntries = 2;
        PhastlaneNetwork net(p);
        PacketId id = 1;
        uint64_t expected = 0;
        for (NodeId src = 0; src < 64; src += 2) {
            Packet b;
            b.id = id++;
            b.src = src;
            b.broadcast = true;
            ASSERT_TRUE(net.inject(b));
            expected += 63;
        }
        int guard = 0;
        while (net.inFlight() > 0 && guard++ < 200000)
            net.step();
        EXPECT_EQ(net.counters().deliveries, expected);
    }
}

} // namespace
} // namespace phastlane::core
