/**
 * @file
 * PRNG tests: determinism, distribution sanity, and stream
 * independence.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace phastlane {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng r(11);
    int counts[10] = {};
    for (int i = 0; i < 100000; ++i) {
        const int64_t v = r.uniformInt(3, 12);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 12);
        ++counts[v - 3];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(42, 42), 42);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-0.5));
        EXPECT_TRUE(r.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.exponential(25.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(Rng, GeometricMean)
{
    Rng r(19);
    // Mean failures before success = (1-p)/p = 4 for p = 0.2.
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.2));
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, GeometricCertainSuccess)
{
    Rng r(21);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(31);
    Rng child = parent.fork();
    // Parent and child should not track each other.
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(77), b(77);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace
} // namespace phastlane
