# Empty dependencies file for test_common_config.
# This may be replaced when dependencies are built.
