/**
 * @file
 * The electrical baseline's network-interface controller: a finite
 * queue of logical messages plus the VCTM tree-building state of the
 * node's broadcast tree.
 */

#ifndef PHASTLANE_ELECTRICAL_NIC_HPP
#define PHASTLANE_ELECTRICAL_NIC_HPP

#include <deque>
#include <memory>
#include <vector>

#include "electrical/flit.hpp"
#include "electrical/params.hpp"

namespace phastlane::electrical {

/** A message waiting in the NIC. */
struct NicEntry {
    std::shared_ptr<const Packet> msg;
    Cycle acceptedAt = 0;
};

/** Life-cycle of a source's broadcast tree. */
enum class TreeState : uint8_t {
    NotBuilt, ///< no setup traffic sent yet
    Building, ///< setup unicasts in flight
    Ready,    ///< every router on the tree has its entry
};

/**
 * Outbound message queue of one node (Table 2: 50 entries).
 */
class ElectricalNic
{
  public:
    ElectricalNic(NodeId self, const ElectricalParams &params);

    NodeId self() const { return self_; }

    bool hasSpace() const { return queue_.size() < capacity_; }
    bool empty() const { return queue_.empty(); }
    size_t occupancy() const { return queue_.size(); }

    void accept(const Packet &pkt, Cycle now);
    const NicEntry &head() const;
    void popHead();

    TreeState treeState() const { return tree_; }
    void setTreeState(TreeState s) { tree_ = s; }

    /**
     * Remaining setup-unicast targets of the broadcast currently being
     * streamed (consumed from the back).
     */
    std::vector<NodeId> &setupTargets() { return setupTargets_; }

    /** Setup deliveries still pending before the tree is Ready. */
    int &pendingSetupDeliveries() { return pendingSetup_; }

    /** Begin streaming a broadcast as tree-installing clones. */
    void startSetupStream(std::vector<NodeId> targets,
                          std::shared_ptr<const Packet> msg,
                          Cycle accepted_at)
    {
        setupTargets_ = std::move(targets);
        setupMsg_ = std::move(msg);
        setupAcceptedAt_ = accepted_at;
    }

    const std::shared_ptr<const Packet> &setupMsg() const
    {
        return setupMsg_;
    }
    Cycle setupAcceptedAt() const { return setupAcceptedAt_; }

  private:
    NodeId self_;
    size_t capacity_;
    std::deque<NicEntry> queue_;
    TreeState tree_ = TreeState::NotBuilt;
    std::vector<NodeId> setupTargets_;
    std::shared_ptr<const Packet> setupMsg_;
    Cycle setupAcceptedAt_ = 0;
    int pendingSetup_ = 0;
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_NIC_HPP
