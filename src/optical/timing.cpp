#include "optical/timing.hpp"

#include "common/log.hpp"

namespace phastlane::optical {

double
CriticalPath::totalPs() const
{
    double sum = 0.0;
    for (const auto &c : components)
        sum += c.ps;
    return sum;
}

RouterTimingModel::RouterTimingModel(Scaling scaling, int wavelengths,
                                     const PacketFormat &format,
                                     const ChipGeometry &geometry,
                                     const WaveguideConstants &wg)
{
    if (wavelengths <= 0)
        fatal("wavelength count must be positive (got %d)", wavelengths);

    const DeviceScalingModel devices;
    rx_ = devices.rxDelayPs(scaling, kNodeNm);
    tx_ = devices.txDelayPs(scaling, kNodeNm);

    const int n_wg = format.totalWaveguides(wavelengths);
    // Fan-out penalty: the driver sees one ring per waveguide; the
    // factor is normalized to the 64-wavelength (12 waveguide)
    // configuration.
    drive_ = baseDrivePs(scaling) * (0.97 + 0.0025 * n_wg);

    traverse_ = static_cast<double>(n_wg) * wg.waveguideLanePitchMm *
                wg.propagationPsPerMm;
    hop_wire_ = geometry.nodePitchMm() * wg.propagationPsPerMm;
}

double
RouterTimingModel::baseDrivePs(Scaling s)
{
    switch (s) {
      case Scaling::Optimistic: return 3.5;
      case Scaling::Average: return 10.0;
      case Scaling::Pessimistic: return 15.0;
    }
    panic("unknown scaling scenario");
}

CriticalPath
RouterTimingModel::packetPass() const
{
    return CriticalPath{
        "PP",
        {{"receive control bits", rx_},
         {"drive blocked-packet C0 resonators", drive_},
         {"drive blocked-packet receive resonators", drive_},
         {"traverse switch", traverse_}}};
}

CriticalPath
RouterTimingModel::packetBlock() const
{
    return CriticalPath{
        "PB",
        {{"receive control bits", rx_},
         {"drive blocked-packet C0 resonators", drive_},
         {"drive blocked-packet receive resonators", drive_},
         {"receive blocked packet", rx_}}};
}

CriticalPath
RouterTimingModel::packetAccept() const
{
    return CriticalPath{
        "PA",
        {{"receive control bits", rx_},
         {"drive receive resonators", drive_},
         {"receive packet", rx_}}};
}

CriticalPath
RouterTimingModel::packetInterimAccept() const
{
    CriticalPath p = packetAccept();
    p.name = "PIA";
    return p;
}

double
RouterTimingModel::pathDelayPs(int hops) const
{
    PL_ASSERT(hops >= 1, "path needs at least one hop");
    // Non-wire parts of PP/PA: the internal traverse distance is part
    // of the per-hop node pitch and must not be double counted.
    const double pp_logic = rx_ + 2.0 * drive_;
    const double pa_logic = 2.0 * rx_ + drive_;
    const int pass_routers = hops - 1;
    return tx_ + pass_routers * pp_logic +
           static_cast<double>(hops) * hop_wire_ + pa_logic +
           kOverheadPs;
}

int
RouterTimingModel::maxHopsPerCycle(double freq_ghz) const
{
    PL_ASSERT(freq_ghz > 0.0, "frequency must be positive");
    const double period_ps = 1000.0 / freq_ghz;
    // The control fields hold groups for at most 14 routers.
    constexpr int kControlGroupLimit = 14;
    int best = 0;
    for (int h = 1; h <= kControlGroupLimit; ++h) {
        if (pathDelayPs(h) <= period_ps)
            best = h;
        else
            break;
    }
    return best;
}

} // namespace phastlane::optical
