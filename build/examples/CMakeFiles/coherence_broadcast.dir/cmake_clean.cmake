file(REMOVE_RECURSE
  "CMakeFiles/coherence_broadcast.dir/coherence_broadcast.cpp.o"
  "CMakeFiles/coherence_broadcast.dir/coherence_broadcast.cpp.o.d"
  "coherence_broadcast"
  "coherence_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
