/**
 * @file
 * Load sweep: measure the latency-versus-load curve of any named
 * configuration on any synthetic pattern and report the saturation
 * throughput.
 *
 *   ./examples/saturation_sweep --config Optical4 --pattern transpose
 *       [--max-rate 0.5] [--steps 12] [--measure 4000]
 *       [--threads N]   (default: PL_THREADS env, else all cores;
 *                        results are identical at any thread count)
 *       [--check]       (every sweep point runs under the invariant
 *                        checker and the differential oracle; slower)
 *       [--metrics-out F.json]  (per-point obs metrics merged in
 *                        rate order -- identical at any thread count)
 */

#include <cstdio>

#include "check/checked_network.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/fault_sweep.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"

using namespace phastlane;
using namespace phastlane::sim;

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    {
        std::vector<std::string> flags = {
            "config", "pattern", "max-rate", "steps",
            "warmup", "measure", "seed",     "threads",
            "check",  "csv",     "metrics-out", "batch",
        };
        for (const auto &f : faultFlagNames())
            flags.push_back(f);
        for (const auto &f : admissionFlagNames())
            flags.push_back(f);
        for (const auto &f : trafficFlagNames())
            flags.push_back(f);
        args.requireKnown(flags);
    }
    const std::string config_name =
        args.getString("config", "Optical4");
    const traffic::Pattern pattern = traffic::parsePattern(
        args.getString("pattern", "uniform"));
    const double max_rate = args.getDouble("max-rate", 0.5);
    const int steps = static_cast<int>(args.getInt("steps", 12));

    SweepConfig sc;
    sc.pattern = pattern;
    sc.warmupCycles =
        static_cast<Cycle>(args.getInt("warmup", 1000));
    sc.measureCycles =
        static_cast<Cycle>(args.getInt("measure", 4000));
    sc.seed = static_cast<uint64_t>(args.getInt("seed", 42));
    sc.threads = static_cast<int>(args.getInt("threads", 0));
    // --batch B gangs the serial sweep's points through the batched
    // lockstep backend (DESIGN.md §13); 0 = auto, 1 = disable.
    sc.batch = static_cast<int>(args.getInt("batch", 0));
    const std::string metrics_path =
        args.getString("metrics-out", "");
    sc.collectMetrics = !metrics_path.empty();
    for (int i = 1; i <= steps; ++i)
        sc.rates.push_back(max_rate * i / steps);
    // --hotspot-* / --mix flags shape every point's traffic.
    applyTrafficFlags(args, sc.patternOpts, sc.adversarial);

    std::printf("sweeping %s on %s up to %.3f pkt/node/cycle "
                "(%d threads)\n",
                config_name.c_str(), traffic::patternName(pattern),
                max_rate, resolveThreadCount(sc.threads));

    NetConfig cfg = makeConfig(config_name);

    // Reject pattern/mesh mismatches up front with a clean error
    // instead of an assert deep inside a sweep point.
    {
        const auto probe = cfg.make(sc.seed);
        const std::string err =
            traffic::validatePattern(pattern, probe->mesh());
        if (!err.empty())
            fatal("%s", err.c_str());
    }

    // --admission* flags rebuild each sweep point's optical network
    // with the requested admission policy (applied before the
    // --check wrapper so the checker's networks inherit it too).
    {
        core::PhastlaneParams adm;
        if (applyAdmissionFlags(args, adm)) {
            const auto inner = cfg.make;
            cfg.make =
                [inner, adm](uint64_t seed) -> std::unique_ptr<Network> {
                auto net = inner(seed);
                auto *pl =
                    dynamic_cast<core::PhastlaneNetwork *>(net.get());
                if (!pl)
                    panic("admission control supports optical "
                          "(Phastlane) configurations only");
                core::PhastlaneParams p = pl->params();
                p.admission = adm.admission;
                p.admissionBurst = adm.admissionBurst;
                p.admissionPeriod = adm.admissionPeriod;
                p.admissionAgeThreshold = adm.admissionAgeThreshold;
                return std::make_unique<core::PhastlaneNetwork>(p);
            };
        }
    }

    // --fault-* flags rebuild each sweep point's optical network with
    // the requested injection rates (applied before the --check
    // wrapper so the checker's networks inherit them too).
    {
        core::PhastlaneParams::FaultInjection faults;
        if (applyFaultFlags(args, faults)) {
            const auto inner = cfg.make;
            cfg.make =
                [inner,
                 faults](uint64_t seed) -> std::unique_ptr<Network> {
                auto net = inner(seed);
                auto *pl =
                    dynamic_cast<core::PhastlaneNetwork *>(net.get());
                if (!pl)
                    panic("fault injection supports optical "
                          "(Phastlane) configurations only");
                core::PhastlaneParams p = pl->params();
                p.faults = faults;
                return std::make_unique<core::PhastlaneNetwork>(p);
            };
        }
    }

    if (args.getBool("check", false)) {
        const auto inner = cfg.make;
        cfg.make = [inner](uint64_t seed) -> std::unique_ptr<Network> {
            auto net = inner(seed);
            auto *pl =
                dynamic_cast<core::PhastlaneNetwork *>(net.get());
            if (!pl)
                panic("--check supports optical (Phastlane) "
                      "configurations only");
            return std::make_unique<check::CheckedNetwork>(
                pl->params());
        };
        std::printf("checking enabled: invariants + lockstep oracle "
                    "on every point\n");
        if (sc.collectMetrics) {
            warn("--metrics-out is skipped under --check (the "
                 "checker wrapper hides the optical network; use "
                 "PL_CHECK_METRICS=1 on the campaign instead)");
            sc.collectMetrics = false;
        }
    }

    const auto points = runSweep(cfg, sc);

    TextTable t({"rate", "avg latency [cyc]", "p99 [cyc]",
                 "accepted", "saturated"});
    for (const auto &pt : points) {
        t.addRow({TextTable::num(pt.injectionRate, 3),
                  TextTable::num(pt.result.avgLatency, 1),
                  TextTable::num(pt.result.p99Latency, 1),
                  TextTable::num(pt.result.acceptedRate, 4),
                  pt.result.saturated ? "yes" : "no"});
    }
    t.print();
    std::printf("saturation throughput: %.3f pkt/node/cycle\n",
                saturationThroughput(points));

    const std::string csv = args.getString("csv");
    if (!csv.empty()) {
        t.writeCsv(csv);
        std::printf("csv written to %s\n", csv.c_str());
    }
    if (sc.collectMetrics) {
        mergedMetrics(points).writeJson(metrics_path);
        std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    return 0;
}
