file(REMOVE_RECURSE
  "CMakeFiles/plcommon.dir/config.cpp.o"
  "CMakeFiles/plcommon.dir/config.cpp.o.d"
  "CMakeFiles/plcommon.dir/geometry.cpp.o"
  "CMakeFiles/plcommon.dir/geometry.cpp.o.d"
  "CMakeFiles/plcommon.dir/log.cpp.o"
  "CMakeFiles/plcommon.dir/log.cpp.o.d"
  "CMakeFiles/plcommon.dir/rng.cpp.o"
  "CMakeFiles/plcommon.dir/rng.cpp.o.d"
  "CMakeFiles/plcommon.dir/stats.cpp.o"
  "CMakeFiles/plcommon.dir/stats.cpp.o.d"
  "CMakeFiles/plcommon.dir/table.cpp.o"
  "CMakeFiles/plcommon.dir/table.cpp.o.d"
  "CMakeFiles/plcommon.dir/types.cpp.o"
  "CMakeFiles/plcommon.dir/types.cpp.o.d"
  "libplcommon.a"
  "libplcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
