/**
 * @file
 * The network-visible message unit shared by the Phastlane network and
 * the electrical baseline.
 *
 * Both networks transfer single-flit, cache-line-sized (80-byte)
 * packets; a broadcast is a single logical message that each network
 * expands with its own mechanism (<=16 multicast branches for
 * Phastlane, Virtual Circuit Tree Multicasting for the electrical
 * baseline).
 */

#ifndef PHASTLANE_NET_PACKET_HPP
#define PHASTLANE_NET_PACKET_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace phastlane {

/** Coherence-level message class, used by workloads and statistics. */
enum class MessageKind : uint8_t {
    Request,    ///< L2 miss request (broadcast in the snoopy system)
    Response,   ///< data response (unicast, cache line)
    Invalidate, ///< coherence invalidate (broadcast)
    Writeback,  ///< dirty eviction to a memory controller (unicast)
    Synthetic,  ///< synthetic-pattern traffic
};

/** Name of a message kind. */
const char *messageKindName(MessageKind k);

/**
 * One logical message handed to a network for delivery.
 *
 * A Packet is immutable once injected; network simulators keep their
 * own per-copy routing state. The 80-byte size (Table 1) is fixed:
 * 64B cache line + address/type/source + ECC + router control.
 */
struct Packet {
    PacketId id = 0;

    NodeId src = kInvalidNode;

    /** Unicast destination; ignored when broadcast is true. */
    NodeId dst = kInvalidNode;

    /** Broadcast to every node except src. */
    bool broadcast = false;

    MessageKind kind = MessageKind::Synthetic;

    /** Workload-defined correlation tag (e.g., transaction id). */
    uint64_t tag = 0;

    /** Cycle the workload created the message (pre-NIC queueing). */
    Cycle createdAt = 0;

    /** Total packet size; one flit in both networks. */
    static constexpr int kSizeBytes = 80;

    /** Number of deliveries this message produces on an
     *  @p node_count -node network. */
    int deliveryCount(int node_count) const;
};

/** A completed delivery of @p packet at @p node. */
struct Delivery {
    Packet packet;
    NodeId node = kInvalidNode;

    /** Cycle the delivery completed. */
    Cycle at = 0;

    /** Cycle the message first entered a NIC queue. */
    Cycle acceptedAt = 0;

    /** Cycle the message first left the NIC into the network. */
    Cycle injectedAt = 0;
};

} // namespace phastlane

#endif // PHASTLANE_NET_PACKET_HPP
