#include "common/table.hpp"

#include <algorithm>
#include <cinttypes>

#include "common/log.hpp"

namespace phastlane {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

std::string
TextTable::render() const
{
    size_t cols = headers_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(headers_);
    for (const auto &r : rows_)
        widen(r);

    auto emitRow = [&](const std::vector<std::string> &row,
                       std::string &out) {
        for (size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            out += cell;
            if (c + 1 < cols)
                out += std::string(width[c] - cell.size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emitRow(headers_, out);
    size_t total = 0;
    for (size_t c = 0; c < cols; ++c)
        total += width[c] + (c + 1 < cols ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto &r : rows_)
        emitRow(r, out);
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    const std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

namespace {

/** Quote a CSV cell when it contains separators or quotes. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TextTable::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open CSV output file '%s'", path.c_str());
    auto writeRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            const std::string cell = csvCell(row[c]);
            std::fwrite(cell.data(), 1, cell.size(), f);
            if (c + 1 < row.size())
                std::fputc(',', f);
        }
        std::fputc('\n', f);
    };
    writeRow(headers_);
    for (const auto &r : rows_)
        writeRow(r);
    std::fclose(f);
}

} // namespace phastlane
