/**
 * @file
 * General-purpose simulator CLI: run any named configuration on a
 * synthetic pattern, a SPLASH2-like benchmark, or a trace file, and
 * report latency metrics, power, and link utilization.
 *
 *   # synthetic open loop
 *   ./examples/netsim_cli --config Optical4 --workload uniform \
 *       --rate 0.05 --measure 5000 --power --heatmap
 *
 *   # closed-loop coherence benchmark
 *   ./examples/netsim_cli --config Electrical3 --workload splash:Ocean \
 *       --txns 100 --metrics
 *
 *   # trace replay
 *   ./examples/netsim_cli --config Optical5 \
 *       --workload trace:/tmp/phastlane.trace
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "check/checked_network.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "core/network.hpp"
#include "core/observer.hpp"
#include "core/reliability.hpp"
#include "obs/observe.hpp"
#include "sim/configs.hpp"
#include "sim/fault_sweep.hpp"
#include "sim/metrics.hpp"
#include "sim/multisim.hpp"
#include "sim/replay.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/synthetic.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_stream.hpp"

using namespace phastlane;

namespace {

/**
 * Forwards the Network interface and feeds each step's deliveries to
 * a LatencyCollector, so --metrics reports what actually ran (the
 * collector used to be declared but never fed on the synthetic path).
 */
class CollectingNetwork : public Network
{
  public:
    CollectingNetwork(Network &inner, sim::LatencyCollector &metrics,
                      sim::FairnessCollector *fairness = nullptr)
        : inner_(inner), metrics_(metrics), fairness_(fairness)
    {
    }

    int nodeCount() const override { return inner_.nodeCount(); }
    const MeshTopology &mesh() const override { return inner_.mesh(); }
    Cycle now() const override { return inner_.now(); }
    bool nicHasSpace(NodeId n) const override
    {
        return inner_.nicHasSpace(n);
    }
    bool inject(const Packet &pkt) override
    {
        return inner_.inject(pkt);
    }
    void step() override
    {
        inner_.step();
        metrics_.addAll(inner_.deliveries());
        if (fairness_)
            fairness_->addAll(inner_.deliveries());
    }
    const std::vector<Delivery> &deliveries() const override
    {
        return inner_.deliveries();
    }
    uint64_t inFlight() const override { return inner_.inFlight(); }
    const NetworkCounters &counters() const override
    {
        return inner_.counters();
    }

  private:
    Network &inner_;
    sim::LatencyCollector &metrics_;
    sim::FairnessCollector *fairness_;
};

/** Per-source max-consecutive-losing-arbitrations, for the fairness
 *  report/CSV; empty for non-Phastlane networks. */
std::vector<uint64_t>
starvationCounters(Network &net)
{
    auto *pl = dynamic_cast<core::PhastlaneNetwork *>(&net);
    if (!pl)
        return {};
    std::vector<uint64_t> s;
    s.reserve(static_cast<size_t>(pl->nodeCount()));
    for (NodeId n = 0; n < pl->nodeCount(); ++n)
        s.push_back(pl->sourceStarvation(n));
    return s;
}

void
printCommonReports(const Config &args, const sim::NetConfig &cfg,
                   Network &net, Cycle active_cycles,
                   const sim::LatencyCollector *metrics,
                   const sim::FairnessCollector *fairness = nullptr)
{
    if (metrics && args.getBool("metrics", false))
        std::printf("\n%s", metrics->report().c_str());
    if (fairness && args.getBool("metrics", false))
        std::printf("%s",
                    fairness->report(starvationCounters(net)).c_str());

    if (args.getBool("power", false)) {
        const auto p = cfg.power(net, active_cycles);
        std::printf("\naverage power: %.2f W (buffers %.2f, "
                    "laser %.2f, xbar+link %.2f, static %.2f)\n",
                    p.totalW, p.bufferDynamicW + p.bufferLeakageW,
                    p.laserW + p.modulatorW + p.receiverW,
                    p.crossbarW + p.linkW,
                    p.staticW);
    }

    if (args.getBool("heatmap", false)) {
        const auto rep =
            sim::UtilizationReport::fromNetwork(net, active_cycles);
        std::printf("\nlink utilization (mean %.3f, peak %.3f):\n%s",
                    rep.meanUtilization(), rep.peakUtilization(),
                    rep.heatmap().c_str());
        std::printf("hottest links:");
        for (const auto &l : rep.hottest(5)) {
            std::printf(" %d->%s:%.2f", l.router, portName(l.out),
                        l.utilization);
        }
        std::printf("\n");
    }

    if (auto *pl = dynamic_cast<core::PhastlaneNetwork *>(&net)) {
        const auto &c = pl->phastlaneCounters();
        std::printf("\noptical: launches=%llu drops=%llu "
                    "retransmissions=%llu interim=%llu "
                    "blocked=%llu\n",
                    static_cast<unsigned long long>(c.launches),
                    static_cast<unsigned long long>(c.drops),
                    static_cast<unsigned long long>(
                        c.retransmissions),
                    static_cast<unsigned long long>(c.interimAccepts),
                    static_cast<unsigned long long>(
                        c.blockedBuffered));
    }
}

/**
 * Network adapter over core::ReliableNic so the existing drivers can
 * run with end-to-end reliability enabled (--reliable): inject() goes
 * through send(), step() runs the retransmit timers, deliveries() is
 * the deduplicated exactly-once stream.
 */
class ReliableNetwork : public Network
{
  public:
    explicit ReliableNetwork(Network &inner,
                             const core::ReliableNicOptions &opts = {})
        : inner_(inner), rnic_(inner, opts)
    {
    }

    int nodeCount() const override { return inner_.nodeCount(); }
    const MeshTopology &mesh() const override { return inner_.mesh(); }
    Cycle now() const override { return inner_.now(); }
    bool nicHasSpace(NodeId n) const override
    {
        return inner_.nicHasSpace(n);
    }
    bool inject(const Packet &pkt) override { return rnic_.send(pkt); }
    void step() override { rnic_.step(); }
    const std::vector<Delivery> &deliveries() const override
    {
        return rnic_.deliveries();
    }
    uint64_t inFlight() const override { return rnic_.inFlight(); }
    const NetworkCounters &counters() const override
    {
        return inner_.counters();
    }

    core::ReliableNic &nic() { return rnic_; }
    Network &inner() { return inner_; }

  private:
    Network &inner_;
    core::ReliableNic rnic_;
};

/**
 * One replicated synthetic instance under --batch: its own network
 * (seed offset into the replica index) and step-wise SyntheticDriver
 * (DESIGN.md §13).
 */
class BatchSyntheticJob final : public sim::MultiSim::Job
{
  public:
    BatchSyntheticJob(std::unique_ptr<core::PhastlaneNetwork> net,
                      const traffic::SyntheticConfig &sc)
        : net_(std::move(net)), driver_(*net_, sc)
    {
        driver_.begin();
    }

    core::PhastlaneNetwork &network() override { return *net_; }
    bool done() override { return driver_.done(); }
    void preStep() override { driver_.preStep(); }
    void postStep() override { driver_.postStep(); }

    traffic::SyntheticResult finish() { return driver_.finish(); }

  private:
    std::unique_ptr<core::PhastlaneNetwork> net_;
    traffic::SyntheticDriver driver_;
};

std::vector<std::string>
knownFlags()
{
    std::vector<std::string> flags = {
        "help",        "config",          "workload",
        "rate",        "bcast",           "warmup",
        "measure",     "txns",            "seed",
        "metrics",     "power",           "heatmap",
        "trace",       "trace-cap",       "metrics-out",
        "heatmap-csv", "heatmap-interval", "check",
        "reliable",    "fault-sweep-out", "fault-field",
        "fault-max",   "fault-steps",     "threads",
        "wavefront",   "mesh",            "shards",
        "batch",       "fairness-csv",    "max-cycles",
    };
    for (const auto &f : sim::faultFlagNames())
        flags.push_back(f);
    for (const auto &f : sim::admissionFlagNames())
        flags.push_back(f);
    for (const auto &f : sim::trafficFlagNames())
        flags.push_back(f);
    return flags;
}

} // namespace

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    args.requireKnown(knownFlags());
    if (args.getBool("help", false)) {
        std::printf(
            "usage: netsim_cli --config <name> --workload "
            "<uniform|bitcomp|bitrev|shuffle|transpose|tornado|"
            "neighbor|hotspot|splash:<bench>|trace:<file>>\n"
            "  synthetic: --rate R --bcast F --warmup N --measure N\n"
            "  trace: text or binary (.pltrace) format, sniffed by "
            "magic; binary\n"
            "            traces stream in O(chunk) memory. "
            "--max-cycles N bounds the\n"
            "            replay (default 10000000).\n"
            "  splash: --txns N --seed S\n"
            "  reports: --metrics --power --heatmap\n"
            "  observability (optical configs):\n"
            "    --trace F.json    per-packet Chrome trace "
            "(chrome://tracing, Perfetto)\n"
            "    --trace-cap N     trace ring capacity "
            "(default 1048576 records)\n"
            "    --metrics-out F   counters/gauges/histograms as "
            "JSON\n"
            "    --heatmap-csv F   per-router heatmap snapshots as "
            "CSV\n"
            "    --heatmap-interval N   cycles between snapshots "
            "(default 64)\n"
            "  engine (optical configs): --wavefront "
            "bitplane|fcfs|global\n"
            "            (word-parallel bit-plane engine [default], "
            "the scalar FCFS\n"
            "            reference, or the eviction-priority "
            "ablation)\n"
            "    --mesh WxH        override the mesh dimensions "
            "(e.g. 32x32, 9x7)\n"
            "    --shards N|CxR    shard the step() spatially and "
            "run shard-parallel\n"
            "            (bit-identical to --shards 1; DESIGN.md "
            "§12). --threads caps\n"
            "            the worker count.\n"
            "    --batch B         synthetic workloads: run B "
            "instances with seeds\n"
            "            seed..seed+B-1 in one lockstep gang "
            "(DESIGN.md §13) and print\n"
            "            per-seed plus aggregate results. "
            "Incompatible with --check,\n"
            "            --reliable, --shards, observability sinks, "
            "and --wavefront\n"
            "            global. In fault-sweep mode, sets the "
            "sweep's gang size.\n"
            "  checking: --check (run under the invariant checker "
            "and, where supported,\n"
            "            in lockstep with the reference oracle; "
            "aborts on divergence)\n"
            "  fault injection (optical configs; DESIGN.md §10):\n"
            "    --fault-mis-turn R --fault-missed-receive R\n"
            "    --fault-signal-loss R --fault-corrupt R\n"
            "    --fault-router-fail R --fault-seed S\n"
            "    --reliable        end-to-end retransmission layer\n"
            "  admission control (optical configs; DESIGN.md §14):\n"
            "    --admission none|token|age\n"
            "    --admission-burst N --admission-period N "
            "(token bucket)\n"
            "    --admission-age N (age-boost threshold, cycles)\n"
            "  adversarial traffic (synthetic workloads):\n"
            "    --hotspot-fraction F --hotspot-node N "
            "(hotspot pattern)\n"
            "    --mix none|elephant|tenant\n"
            "    --elephant-fraction F --elephant-boost X\n"
            "    --tenant-count N --tenant-boost X\n"
            "    --fairness-csv F  per-source "
            "delivered/latency/starvation CSV\n"
            "  fault sweep (writes JSON and exits):\n"
            "    --fault-sweep-out F.json [--fault-field NAME]\n"
            "    [--fault-max R --fault-steps N] [--threads N]\n"
            "  configs: Optical4/5/8, Optical4B32/B64/IB, "
            "Electrical2/3\n");
        return 0;
    }

    const std::string config_name =
        args.getString("config", "Optical4");
    const std::string workload =
        args.getString("workload", "uniform");
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 42));

    const sim::NetConfig cfg = sim::makeConfig(config_name);

    // Fault-sweep campaign mode: run the fault-rate sweep and exit.
    const std::string fault_sweep_path =
        args.getString("fault-sweep-out", "");
    if (!fault_sweep_path.empty()) {
        auto probe = cfg.make(seed);
        auto *pl =
            dynamic_cast<core::PhastlaneNetwork *>(probe.get());
        if (!pl)
            panic("--fault-sweep-out supports optical (Phastlane) "
                  "configurations only");
        sim::FaultSweepConfig fs;
        fs.params = pl->params();
        probe.reset();
        sim::applyFaultFlags(args, fs.params.faults);
        fs.sweepField =
            args.getString("fault-field", "dropSignalLossRate");
        if (args.has("fault-max") || args.has("fault-steps")) {
            const double max = args.getDouble("fault-max", 0.5);
            const int steps =
                static_cast<int>(args.getInt("fault-steps", 7));
            if (max < 0.0 || max > 1.0 || steps < 1)
                fatal("--fault-max must be in [0, 1] and "
                      "--fault-steps >= 1");
            fs.rates.push_back(0.0);
            for (int i = 1; i <= steps; ++i)
                fs.rates.push_back(max * i / steps);
        } else {
            fs.rates = sim::defaultFaultGrid();
        }
        sim::applyAdmissionFlags(args, fs.params);
        {
            traffic::PatternOptions ignored;
            sim::applyTrafficFlags(args, ignored, fs.adversarial);
        }
        fs.injectionRate = args.getDouble("rate", 0.05);
        fs.broadcastFraction = args.getDouble("bcast", 0.1);
        fs.measureCycles =
            static_cast<Cycle>(args.getInt("measure", 2000));
        fs.seed = seed;
        fs.threads = static_cast<int>(args.getInt("threads", 0));
        fs.batch = static_cast<int>(args.getInt("batch", 0));
        fs.reliable = args.getBool("reliable", true);
        const auto points = sim::runFaultSweep(fs);
        for (const auto &p : points) {
            std::printf(
                "fault %.4f: offered=%llu delivered=%llu/%llu "
                "lost=%llu retx(optical)=%llu retx(e2e)=%llu "
                "dup=%llu%s\n",
                p.faultRate,
                static_cast<unsigned long long>(p.messagesOffered),
                static_cast<unsigned long long>(p.unitsDelivered),
                static_cast<unsigned long long>(p.unitsExpected),
                static_cast<unsigned long long>(p.events.lostUnits),
                static_cast<unsigned long long>(p.retransmissions),
                static_cast<unsigned long long>(p.e2e.retransmits),
                static_cast<unsigned long long>(
                    p.events.duplicatesSuppressed),
                p.drained ? "" : " [not drained]");
        }
        sim::writeFaultSweepJson(fs, points, fault_sweep_path);
        std::printf("fault sweep: wrote %s\n",
                    fault_sweep_path.c_str());
        return 0;
    }

    auto net = cfg.make(seed);

    // --wavefront selects the contention engine (DESIGN.md §11):
    // bitplane (word-parallel FCFS, default), fcfs (the scalar
    // reference), or global (the eviction-priority ablation).
    if (args.has("wavefront")) {
        const std::string name = args.getString("wavefront", "");
        core::WavefrontModel model;
        if (name == "bitplane")
            model = core::WavefrontModel::BitplaneFcfs;
        else if (name == "fcfs")
            model = core::WavefrontModel::SubstepFcfs;
        else if (name == "global")
            model = core::WavefrontModel::GlobalPriority;
        else
            panic("--wavefront expects bitplane, fcfs or global "
                  "(got '%s')",
                  name.c_str());
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            panic("--wavefront supports optical (Phastlane) "
                  "configurations only");
        core::PhastlaneParams p = pl->params();
        p.wavefront = model;
        net = std::make_unique<core::PhastlaneNetwork>(p);
    }

    // --mesh WxH resizes the router grid; --shards N (auto-factored)
    // or CxR turns on the topology-parallel sharded step() (DESIGN.md
    // §12). Both rebuild the network before any observer attaches.
    if (args.has("mesh") || args.has("shards")) {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            panic("--mesh/--shards support optical (Phastlane) "
                  "configurations only");
        core::PhastlaneParams p = pl->params();
        if (args.has("mesh")) {
            const std::string spec = args.getString("mesh", "");
            const size_t x = spec.find('x');
            int w = 0;
            int h = 0;
            if (x != std::string::npos) {
                w = std::atoi(spec.substr(0, x).c_str());
                h = std::atoi(spec.substr(x + 1).c_str());
            }
            if (w < 1 || h < 1)
                panic("--mesh expects WxH with positive dimensions "
                      "(got '%s')",
                      spec.c_str());
            p.meshWidth = w;
            p.meshHeight = h;
        }
        if (args.has("shards")) {
            const std::string spec = args.getString("shards", "");
            const size_t x = spec.find('x');
            int cols = 0;
            int rows = 0;
            if (x != std::string::npos) {
                cols = std::atoi(spec.substr(0, x).c_str());
                rows = std::atoi(spec.substr(x + 1).c_str());
            } else {
                // --shards N: factor into the most square CxR grid.
                const int n = std::atoi(spec.c_str());
                if (n >= 1) {
                    for (int c = 1; c * c <= n; ++c) {
                        if (n % c == 0) {
                            cols = c;
                            rows = n / c;
                        }
                    }
                }
            }
            if (cols < 1 || rows < 1)
                panic("--shards expects a positive count N or CxR "
                      "(got '%s')",
                      spec.c_str());
            p.shardCols = cols;
            p.shardRows = rows;
            p.shardThreads =
                static_cast<int>(args.getInt("threads", 0));
        }
        net = std::make_unique<core::PhastlaneNetwork>(p);
    }

    // Fault flags rebuild the optical network with the requested
    // injection rates before any checker/observer attaches.
    {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        core::PhastlaneParams::FaultInjection faults =
            pl ? pl->params().faults
               : core::PhastlaneParams::FaultInjection{};
        if (sim::applyFaultFlags(args, faults)) {
            if (!pl)
                panic("fault injection supports optical (Phastlane) "
                      "configurations only");
            core::PhastlaneParams p = pl->params();
            p.faults = faults;
            net = std::make_unique<core::PhastlaneNetwork>(p);
        }
    }

    // Admission-control flags rebuild the optical network the same
    // way (DESIGN.md §14), still before any checker/observer.
    {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        core::PhastlaneParams p =
            pl ? pl->params() : core::PhastlaneParams{};
        if (sim::applyAdmissionFlags(args, p)) {
            if (!pl)
                panic("--admission supports optical (Phastlane) "
                      "configurations only");
            net = std::make_unique<core::PhastlaneNetwork>(p);
        }
    }

    std::unique_ptr<check::CheckedNetwork> checked;
    if (args.getBool("check", false)) {
        auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
        if (!pl)
            panic("--check supports optical (Phastlane) "
                  "configurations only");
        checked =
            std::make_unique<check::CheckedNetwork>(pl->params());
        net.reset();
    }
    // The workload drives `drive`; reports read `report`, which stays
    // the PhastlaneNetwork so their dynamic_casts keep working when
    // --check interposes the wrapper.
    Network &report =
        checked ? static_cast<Network &>(checked->primary()) : *net;
    sim::LatencyCollector metrics(report.mesh());
    sim::FairnessCollector fairness(report.nodeCount());
    Network &driven =
        checked ? static_cast<Network &>(*checked) : *net;
    std::unique_ptr<ReliableNetwork> reliable;
    if (args.getBool("reliable", false))
        reliable = std::make_unique<ReliableNetwork>(driven);
    CollectingNetwork drive(reliable ? *reliable : driven, metrics,
                            &fairness);

    // Observability (src/obs/): per-packet trace ring, metrics
    // registry, and per-router heatmap, composed with the invariant
    // checker through an ObserverMux when --check is on.
    const std::string trace_path = args.getString("trace", "");
    const std::string metrics_path =
        args.getString("metrics-out", "");
    const std::string heatmap_path =
        args.getString("heatmap-csv", "");
    obs::ObserveOptions oopts;
    oopts.traceCapacity = static_cast<size_t>(
        args.getInt("trace-cap", 1 << 20));
    oopts.heatmapInterval = static_cast<Cycle>(
        args.getInt("heatmap-interval", 64));
    std::unique_ptr<obs::TraceObserver> tracer;
    std::unique_ptr<obs::MetricsObserver> recorder;
    obs::MetricsRegistry registry;
    core::ObserverMux mux;
    auto *pl_report =
        dynamic_cast<core::PhastlaneNetwork *>(&report);
    if (!trace_path.empty() || !metrics_path.empty() ||
        !heatmap_path.empty()) {
        if (!pl_report)
            panic("--trace/--metrics-out/--heatmap-csv support "
                  "optical (Phastlane) configurations only");
        if (heatmap_path.empty())
            oopts.heatmapInterval = 0;
        if (!trace_path.empty())
            tracer = std::make_unique<obs::TraceObserver>(*pl_report,
                                                          oopts);
        if (!metrics_path.empty() || !heatmap_path.empty())
            recorder = std::make_unique<obs::MetricsObserver>(
                *pl_report, registry, oopts);
        if (checked) {
            if (recorder)
                checked->addObserver(recorder.get());
            if (tracer)
                checked->addObserver(tracer.get());
        } else {
            if (recorder)
                mux.add(recorder.get());
            if (tracer)
                mux.add(tracer.get());
            pl_report->setObserver(&mux);
        }
    }

    std::printf("config %s, workload %s\n", config_name.c_str(),
                workload.c_str());

    if (workload.rfind("splash:", 0) == 0) {
        traffic::SplashProfile prof =
            traffic::splashProfile(workload.substr(7));
        prof.txnsPerNode =
            static_cast<int>(args.getInt("txns", 100));
        const auto streams =
            traffic::generateStreams(prof, drive.nodeCount(), seed);
        traffic::RecordingNetwork rec(drive);
        traffic::CoherenceDriver driver(rec, streams,
                                        prof.mshrLimit);
        // Run manually so every delivery feeds the collector.
        const auto result = driver.run();
        std::printf("completed %llu transactions in %llu cycles "
                    "(msg latency %.1f, round trip %.1f)\n",
                    static_cast<unsigned long long>(
                        result.transactions),
                    static_cast<unsigned long long>(
                        result.completionCycles),
                    result.avgMessageLatency, result.avgRoundTrip);
        printCommonReports(args, cfg, report, result.completionCycles,
                           &metrics, &fairness);
    } else if (workload.rfind("trace:", 0) == 0) {
        const std::string tpath = workload.substr(6);
        sim::ReplayOptions ropts;
        ropts.maxCycles = static_cast<Cycle>(
            args.getInt("max-cycles", 10000000));
        sim::ReplayStats result;
        if (traffic::isBinaryTraceFile(tpath)) {
            // Binary traces stream one chunk at a time, so a
            // multi-billion-record trace replays in O(chunk) memory.
            traffic::TraceStreamReader src(tpath,
                                           drive.nodeCount());
            result = sim::replayTraceStream(drive, src, ropts);
        } else {
            const auto records =
                traffic::readTrace(tpath, drive.nodeCount());
            traffic::VectorTraceSource src(records);
            result = sim::replayTraceStream(drive, src, ropts);
        }
        std::printf("replayed %llu messages (%llu deliveries) in "
                    "%llu cycles, avg latency %.1f\n",
                    static_cast<unsigned long long>(result.messages),
                    static_cast<unsigned long long>(
                        result.deliveries),
                    static_cast<unsigned long long>(
                        result.completionCycle),
                    result.avgLatency);
        if (result.hitCycleLimit)
            std::printf("cycle limit hit with %llu messages "
                        "outstanding (raise --max-cycles)\n",
                        static_cast<unsigned long long>(
                            result.outstanding));
        printCommonReports(args, cfg, report, result.completionCycle,
                           &metrics, &fairness);
    } else {
        traffic::SyntheticConfig sc;
        sc.pattern = traffic::parsePattern(workload);
        // Validate the pattern/mesh combination upfront: a transpose
        // on a non-square mesh (or a bit permutation on a
        // non-power-of-two node count) used to abort mid-run via
        // PL_ASSERT deep in the pattern code.
        const std::string perr =
            traffic::validatePattern(sc.pattern, drive.mesh());
        if (!perr.empty())
            panic("%s", perr.c_str());
        sim::applyTrafficFlags(args, sc.patternOpts, sc.adversarial);
        sc.injectionRate = args.getDouble("rate", 0.05);
        sc.broadcastFraction = args.getDouble("bcast", 0.0);
        sc.warmupCycles =
            static_cast<Cycle>(args.getInt("warmup", 1000));
        sc.measureCycles =
            static_cast<Cycle>(args.getInt("measure", 5000));
        sc.seed = seed;
        // --batch B: replicate the run B times with seeds
        // seed..seed+B-1 and advance every replica in lockstep
        // through the batched engine (DESIGN.md §13). Each replica's
        // results are bit-identical to running it alone.
        const int batch =
            static_cast<int>(args.getInt("batch", 1));
        if (batch > 1) {
            if (checked || reliable)
                panic("--batch is incompatible with --check and "
                      "--reliable");
            if (tracer || recorder)
                panic("--batch is incompatible with "
                      "--trace/--metrics-out/--heatmap-csv");
            auto *pl =
                dynamic_cast<core::PhastlaneNetwork *>(net.get());
            if (!pl || !sim::batchable(*pl))
                panic("--batch requires a batch-eligible optical "
                      "configuration (no --shards, no --wavefront "
                      "global)");
            if (args.getBool("metrics", false) ||
                args.getBool("power", false) ||
                args.getBool("heatmap", false))
                warn("--batch reports per-seed summaries only; "
                     "--metrics/--power/--heatmap are skipped");
            std::vector<std::unique_ptr<BatchSyntheticJob>> jobs;
            sim::MultiSim ms(batch);
            for (int i = 0; i < batch; ++i) {
                core::PhastlaneParams p = pl->params();
                p.seed = seed + static_cast<uint64_t>(i);
                traffic::SyntheticConfig si = sc;
                si.seed = seed + static_cast<uint64_t>(i);
                jobs.push_back(
                    std::make_unique<BatchSyntheticJob>(
                        std::make_unique<core::PhastlaneNetwork>(p),
                        si));
                ms.add(*jobs.back());
            }
            ms.runAll();
            double offered = 0.0;
            double accepted = 0.0;
            double latency = 0.0;
            int saturated = 0;
            for (int i = 0; i < batch; ++i) {
                const auto r = jobs[i]->finish();
                std::printf(
                    "seed %llu: offered %.4f accepted %.4f "
                    "pkt/node/cycle, avg latency %.1f (p99 %.1f)%s\n",
                    static_cast<unsigned long long>(
                        seed + static_cast<uint64_t>(i)),
                    r.offeredRate, r.acceptedRate, r.avgLatency,
                    r.p99Latency,
                    r.saturated ? " [saturated]" : "");
                offered += r.offeredRate;
                accepted += r.acceptedRate;
                latency += r.avgLatency;
                saturated += r.saturated ? 1 : 0;
            }
            std::printf(
                "batch %d aggregate: offered %.4f accepted %.4f "
                "pkt/node/cycle, mean latency %.1f "
                "(%d/%d saturated)\n",
                batch, offered / batch, accepted / batch,
                latency / batch, saturated, batch);
            return 0;
        }
        traffic::SyntheticDriver driver(drive, sc);
        const auto result = driver.run();
        std::printf("offered %.4f accepted %.4f pkt/node/cycle, avg "
                    "latency %.1f (p99 %.1f)%s\n",
                    result.offeredRate, result.acceptedRate,
                    result.avgLatency, result.p99Latency,
                    result.saturated ? " [saturated]" : "");
        printCommonReports(args, cfg, report, drive.now(), &metrics,
                           &fairness);
    }

    const std::string fairness_path =
        args.getString("fairness-csv", "");
    if (!fairness_path.empty()) {
        const std::string csv =
            fairness.csv(starvationCounters(report));
        std::FILE *f = std::fopen(fairness_path.c_str(), "w");
        if (!f)
            fatal("cannot write fairness CSV to %s",
                  fairness_path.c_str());
        std::fwrite(csv.data(), 1, csv.size(), f);
        std::fclose(f);
        std::printf("fairness: wrote %s\n", fairness_path.c_str());
    }

    if (reliable) {
        // Run the retransmit timers until every tracked message
        // completes or exhausts its retries.
        for (int i = 0;
             i < 200000 &&
             !(reliable->nic().idle() && driven.inFlight() == 0);
             ++i)
            drive.step();
        const auto &st = reliable->nic().stats();
        std::printf(
            "reliable: sends=%llu completed=%llu expired=%llu "
            "retransmits=%llu duplicates=%llu late=%llu "
            "lost_units=%llu\n",
            static_cast<unsigned long long>(st.sends),
            static_cast<unsigned long long>(st.completed),
            static_cast<unsigned long long>(st.expired),
            static_cast<unsigned long long>(st.retransmits),
            static_cast<unsigned long long>(st.duplicates),
            static_cast<unsigned long long>(st.late),
            static_cast<unsigned long long>(st.lostUnits));
    }

    if (checked) {
        // Drain so the quiescence invariants (all units delivered,
        // every drop retransmitted) can be asserted too.
        auto &pl = checked->primary();
        for (int i = 0;
             i < 200000 &&
             (pl.inFlight() > 0 || pl.bufferedPackets() > 0 ||
              pl.nicQueuedPackets() > 0);
             ++i)
            checked->step();
        checked->checkQuiescent();
        std::printf("check: ok (%s)\n",
                    checked->hasOracle()
                        ? "invariants + differential oracle"
                        : "invariants only");
    }

    if (tracer) {
        const auto &ring = tracer->ring();
        const auto &oc = pl_report->phastlaneCounters();
        std::printf(
            "trace: %llu records retained (%llu shed); deliver "
            "events %llu vs counter %llu, drop events %llu vs "
            "counter %llu\n",
            static_cast<unsigned long long>(ring.size()),
            static_cast<unsigned long long>(ring.shedRecords()),
            static_cast<unsigned long long>(
                ring.kindCount(obs::TraceEvent::Deliver)),
            static_cast<unsigned long long>(
                report.counters().deliveries),
            static_cast<unsigned long long>(
                ring.kindCount(obs::TraceEvent::Drop)),
            static_cast<unsigned long long>(oc.drops));
        obs::writeChromeTrace(ring, report.mesh(), trace_path);
        std::printf("trace: wrote %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        registry.writeJson(metrics_path);
        std::printf("metrics: wrote %s\n", metrics_path.c_str());
    }
    if (recorder && !heatmap_path.empty()) {
        if (const auto *hm = recorder->heatmap()) {
            hm->writeCsv(heatmap_path);
            std::printf("heatmap: wrote %s\n", heatmap_path.c_str());
        }
    }
    return 0;
}
