#include "core/bitplane.hpp"

#include "common/log.hpp"

namespace phastlane::core {

BitPlaneMesh::BitPlaneMesh(int width, int height)
    : width_(width), height_(height),
      words_(bitplaneWords(width * height))
{
    PL_ASSERT(width > 0 && height > 0, "bad mesh dims %dx%d", width,
              height);
    valid_.assign(static_cast<size_t>(words_), 0);
    for (auto &plane : interior_)
        plane.assign(static_cast<size_t>(words_), 0);

    const int n = nodeCount();
    for (NodeId id = 0; id < n; ++id) {
        const uint64_t m = uint64_t{1} << (id & 63);
        const size_t w = static_cast<size_t>(id >> 6);
        valid_[w] |= m;
        const int x = static_cast<int>(id) % width_;
        const int y = static_cast<int>(id) / width_;
        // A bit may shift toward a direction iff the neighbor exists;
        // masking BEFORE the shift is what keeps the east edge of row
        // k from bleeding into the west edge of row k+1.
        if (y + 1 < height_)
            interior_[portIndex(Port::North)][w] |= m;
        if (y > 0)
            interior_[portIndex(Port::South)][w] |= m;
        if (x + 1 < width_)
            interior_[portIndex(Port::East)][w] |= m;
        if (x > 0)
            interior_[portIndex(Port::West)][w] |= m;
    }
}

void
BitPlaneMesh::shiftUp(const uint64_t *src, uint64_t *dst,
                      int bits) const
{
    const int wshift = bits >> 6;
    const int bshift = bits & 63;
    for (int i = words_ - 1; i >= 0; --i) {
        uint64_t v = 0;
        const int j = i - wshift;
        if (j >= 0) {
            v = src[j] << bshift;
            if (bshift != 0 && j > 0)
                v |= src[j - 1] >> (64 - bshift);
        }
        dst[i] = v;
    }
}

void
BitPlaneMesh::shiftDown(const uint64_t *src, uint64_t *dst,
                        int bits) const
{
    const int wshift = bits >> 6;
    const int bshift = bits & 63;
    for (int i = 0; i < words_; ++i) {
        uint64_t v = 0;
        const int j = i + wshift;
        if (j < words_) {
            v = src[j] >> bshift;
            if (bshift != 0 && j + 1 < words_)
                v |= src[j + 1] << (64 - bshift);
        }
        dst[i] = v;
    }
}

void
BitPlaneMesh::shiftToward(Port dir, const uint64_t *src,
                          uint64_t *dst) const
{
    PL_ASSERT(dir != Port::Local, "shiftToward needs a mesh direction");
    PL_ASSERT(src != dst, "shiftToward cannot operate in place");
    // Mask to the bits that have a neighbor, then displace by the
    // row-major id delta of that direction. The pre-mask guarantees no
    // row/column wraparound; the post-mask drops any bit the shift
    // pushed past the last partial word.
    const uint64_t *inter = interiorMask(dir);
    const int delta = (dir == Port::North || dir == Port::South)
                          ? width_
                          : 1;
    // Masked copy into dst is not possible in place for the carry
    // logic, so mask on the fly via a small stack buffer when the
    // plane is one word (the 8x8 fast case), else a scratch walk.
    if (words_ == 1) {
        const uint64_t masked = src[0] & inter[0];
        // A 64-wide single-row mesh has delta == 64: every bit either
        // leaves the plane (N/S, where the interior mask is already
        // zero) or the shift would be undefined — handle it as the
        // all-dropped case instead of shifting by the word width.
        dst[0] = delta >= 64 ? 0
                 : (dir == Port::North || dir == Port::East)
                     ? (masked << delta)
                     : (masked >> delta);
        dst[0] &= valid_[0];
        return;
    }
    // Multi-word: mask into dst first (dst != src), then shift dst
    // through a second pass using the carry-aware word walk.
    // shiftUp/shiftDown read src ahead of writes in their iteration
    // order, so a masked temporary is required; reuse dst as the
    // temporary by shifting out of it into itself is unsafe, hence
    // the local scratch.
    scratch_.resize(static_cast<size_t>(words_));
    for (int i = 0; i < words_; ++i)
        scratch_[i] = src[i] & inter[i];
    if (dir == Port::North || dir == Port::East)
        shiftUp(scratch_.data(), dst, delta);
    else
        shiftDown(scratch_.data(), dst, delta);
    for (int i = 0; i < words_; ++i)
        dst[i] &= valid_[i];
}

} // namespace phastlane::core
