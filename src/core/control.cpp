#include "core/control.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::core {

bool
ControlGroup::hasDirection() const
{
    return (straight ? 1 : 0) + (left ? 1 : 0) + (right ? 1 : 0) == 1;
}

Turn
ControlGroup::turn() const
{
    PL_ASSERT(hasDirection(), "control group has no unique direction");
    if (straight)
        return Turn::Straight;
    if (left)
        return Turn::Left;
    return Turn::Right;
}

void
ControlGroup::setTurn(Turn t)
{
    straight = t == Turn::Straight;
    left = t == Turn::Left;
    right = t == Turn::Right;
}

uint8_t
ControlGroup::pack() const
{
    return static_cast<uint8_t>((straight ? 1 : 0) | (left ? 2 : 0) |
                                (right ? 4 : 0) | (local ? 8 : 0) |
                                (multicast ? 16 : 0));
}

ControlGroup
ControlGroup::unpack(uint8_t bits)
{
    ControlGroup g;
    g.straight = bits & 1;
    g.left = bits & 2;
    g.right = bits & 4;
    g.local = bits & 8;
    g.multicast = bits & 16;
    return g;
}

void
ControlProgram::append(const ControlGroup &g)
{
    if (groups_.size() - cursor_ >= kMaxGroups)
        fatal("control program exceeds %d groups", kMaxGroups);
    groups_.push_back(g);
}

const ControlGroup &
ControlProgram::front() const
{
    PL_ASSERT(!empty(), "reading Group 1 of an empty control program");
    return groups_[cursor_];
}

const ControlGroup &
ControlProgram::group(size_t i) const
{
    PL_ASSERT(cursor_ + i < groups_.size(),
              "control group index out of range");
    return groups_[cursor_ + i];
}

void
ControlProgram::translate()
{
    PL_ASSERT(!empty(), "translating an empty control program");
    ++cursor_;
}

std::string
ControlProgram::toString() const
{
    std::string out;
    for (size_t i = cursor_; i < groups_.size(); ++i) {
        const ControlGroup &g = groups_[i];
        out += '[';
        if (g.straight)
            out += 'S';
        if (g.left)
            out += '<';
        if (g.right)
            out += '>';
        if (g.local)
            out += 'L';
        if (g.multicast)
            out += '*';
        out += ']';
    }
    return out;
}

namespace {

/**
 * Shared group construction over an explicit dimension-order path.
 *
 * @param route Output directions taken at the source and each
 *        intermediate router.
 * @param nodes Routers entered (route applied), last = destination.
 * @param taps Nodes that must get their Multicast bit (path order).
 */
ControlProgram
buildProgram(const std::vector<Port> &route,
             const std::vector<NodeId> &nodes,
             const std::vector<NodeId> &taps, int max_hops)
{
    PL_ASSERT(route.size() == nodes.size(), "route/path length mismatch");
    PL_ASSERT(!nodes.empty(), "empty route");
    PL_ASSERT(max_hops >= 1, "hop limit must be at least 1");

    ControlProgram prog;
    size_t tap_idx = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        ControlGroup g;
        const Port in_port = opposite(route[i]);
        if (i + 1 < nodes.size()) {
            // Pass-through (possibly also an interim stop): the
            // direction bits select the output port and arm the
            // return path.
            g.setTurn(turnBetween(in_port, route[i + 1]));
            // Interim node every max_hops routers.
            if (static_cast<int>((i + 1) % static_cast<size_t>(
                                     max_hops)) == 0) {
                g.local = true;
            }
        } else {
            g.local = true;
        }
        if (tap_idx < taps.size() && taps[tap_idx] == nodes[i]) {
            g.multicast = true;
            ++tap_idx;
        }
        prog.append(g);
    }
    PL_ASSERT(tap_idx == taps.size(),
              "multicast tap not on the dimension-order route");
    return prog;
}

} // namespace

ControlProgram
buildUnicastProgram(const MeshTopology &mesh, NodeId from, NodeId dst,
                    int max_hops)
{
    PL_ASSERT(from != dst, "unicast to self");
    return buildProgram(mesh.xyRoute(from, dst), mesh.xyPath(from, dst),
                        {}, max_hops);
}

ControlProgram
buildMulticastProgram(const MeshTopology &mesh, NodeId from,
                      const MulticastBranch &branch, int max_hops)
{
    PL_ASSERT(!branch.taps.empty(), "multicast branch without taps");
    const NodeId final_dst = branch.finalDst();
    PL_ASSERT(from != final_dst || branch.taps.size() > 1,
              "multicast branch degenerates to self");
    return buildProgram(mesh.xyRoute(from, final_dst),
                        mesh.xyPath(from, final_dst), branch.taps,
                        max_hops);
}

std::vector<MulticastBranch>
splitBroadcast(const MeshTopology &mesh, NodeId src)
{
    const Coord s = mesh.coordOf(src);
    const int top = mesh.height() - 1;
    std::vector<MulticastBranch> branches;
    branches.reserve(static_cast<size_t>(2 * mesh.width()));

    for (int c = 0; c < mesh.width(); ++c) {
        // The turn router (c, s.y) belongs to the north branch unless
        // the source sits on the top row (then the south branch covers
        // the full column), so a top/bottom-row source issues exactly
        // `width` branches.
        MulticastBranch north;
        if (s.y < top) {
            for (int y = s.y; y <= top; ++y) {
                const NodeId n = mesh.nodeAt({c, y});
                if (n != src)
                    north.taps.push_back(n);
            }
        }
        MulticastBranch south;
        const int south_top = (s.y == top) ? top : s.y - 1;
        for (int y = south_top; y >= 0; --y) {
            const NodeId n = mesh.nodeAt({c, y});
            if (n != src)
                south.taps.push_back(n);
        }
        if (!north.taps.empty())
            branches.push_back(std::move(north));
        if (!south.taps.empty())
            branches.push_back(std::move(south));
    }
    return branches;
}

} // namespace phastlane::core
