/**
 * @file
 * Batched-vs-serial differential campaign (DESIGN.md §13): stepping N
 * independent networks in lockstep gangs through sim::MultiSim /
 * core::NetworkBatch must be bit-identical to running each instance
 * alone — same per-packet delivery cycles, same event counters, same
 * per-port claim tallies — across batch sizes (1/3/8/64), mixed mesh
 * shapes, seeds, fault configs, and both FCFS wavefront models.
 * PL_CHECK_LONG=1 widens the campaign (more seeds, longer 64-wide
 * soak).
 */

#include <gtest/gtest.h>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/network.hpp"
#include "core/observer.hpp"
#include "sim/multisim.hpp"

namespace phastlane::sim {
namespace {

bool
longCampaign()
{
    const char *v = std::getenv("PL_CHECK_LONG");
    return v && v[0] == '1';
}

/** Everything the campaign pins per instance: per-(packet, node)
 *  delivery cycles, the full counter set, and the cumulative
 *  port-claim tallies. */
struct RunResult {
    std::map<std::pair<PacketId, NodeId>, Cycle> delivered;
    core::OpticalEvents events;
    core::PhastlaneCounters pl;
    NetworkCounters counters;
    std::vector<uint64_t> portClaims;
    uint64_t inFlight = 0;
    Cycle endCycle = 0;
};

/**
 * One instance of the campaign workload as a MultiSim::Job: inject a
 * deterministic mixed unicast/broadcast stream for @p cycles network
 * cycles, then drain. The exact same object drives the serial
 * reference (runSerial below) and the batched runs, so the injection
 * stream per (params, seed) is identical by construction.
 */
class DiffJob final : public MultiSim::Job
{
  public:
    DiffJob(const core::PhastlaneParams &p, int cycles, int seed)
        : net_(p), rng_(500 + seed), cycles_(cycles)
    {
    }

    core::PhastlaneNetwork &network() override { return net_; }

    bool done() override
    {
        if (cyclesRun_ < cycles_)
            return false;
        return net_.inFlight() == 0 || guard_ >= 200000;
    }

    void preStep() override
    {
        if (cyclesRun_ >= cycles_)
            return;
        for (NodeId n = 0; n < net_.nodeCount(); ++n) {
            if (!rng_.bernoulli(0.10))
                continue;
            Packet pkt;
            pkt.id = id_++;
            pkt.src = n;
            if (rng_.bernoulli(0.06)) {
                pkt.broadcast = true;
            } else {
                NodeId d = static_cast<NodeId>(
                    rng_.uniformInt(0, net_.nodeCount() - 1));
                pkt.dst = d == n ? (d + 1) % net_.nodeCount() : d;
            }
            net_.inject(pkt);
        }
    }

    void postStep() override
    {
        for (const auto &d : net_.deliveries())
            result_.delivered[{d.packet.id, d.node}] = d.at;
        if (cyclesRun_ < cycles_)
            ++cyclesRun_;
        else
            ++guard_;
    }

    RunResult finish()
    {
        result_.events = net_.events();
        result_.pl = net_.phastlaneCounters();
        result_.counters = net_.counters();
        result_.portClaims = net_.portClaimCounts();
        result_.inFlight = net_.inFlight();
        result_.endCycle = net_.now();
        return result_;
    }

  private:
    core::PhastlaneNetwork net_;
    Rng rng_;
    int cycles_;
    int cyclesRun_ = 0;
    int guard_ = 0;
    PacketId id_ = 1;
    RunResult result_;
};

/** The serial reference: the plain driver loop every batched gang
 *  must reproduce. */
RunResult
runSerial(const core::PhastlaneParams &p, int cycles, int seed)
{
    DiffJob job(p, cycles, seed);
    while (!job.done()) {
        job.preStep();
        job.network().step();
        job.postStep();
    }
    return job.finish();
}

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.delivered, b.delivered) << label;
    EXPECT_EQ(a.events.launches, b.events.launches) << label;
    EXPECT_EQ(a.events.passTraversals, b.events.passTraversals)
        << label;
    EXPECT_EQ(a.events.receives, b.events.receives) << label;
    EXPECT_EQ(a.events.tapReceives, b.events.tapReceives) << label;
    EXPECT_EQ(a.events.bufferWrites, b.events.bufferWrites) << label;
    EXPECT_EQ(a.events.bufferReads, b.events.bufferReads) << label;
    EXPECT_EQ(a.events.drops, b.events.drops) << label;
    EXPECT_EQ(a.events.dropSignalHops, b.events.dropSignalHops)
        << label;
    EXPECT_EQ(a.events.retransmissions, b.events.retransmissions)
        << label;
    EXPECT_EQ(a.events.routerCycles, b.events.routerCycles) << label;
    EXPECT_EQ(a.events.lostUnits, b.events.lostUnits) << label;
    EXPECT_EQ(a.events.faultMisTurns, b.events.faultMisTurns)
        << label;
    EXPECT_EQ(a.events.faultMissedReceives,
              b.events.faultMissedReceives)
        << label;
    EXPECT_EQ(a.events.faultCorruptions, b.events.faultCorruptions)
        << label;
    EXPECT_EQ(a.events.faultDeadArrivals, b.events.faultDeadArrivals)
        << label;
    EXPECT_EQ(a.events.duplicatesSuppressed,
              b.events.duplicatesSuppressed)
        << label;
    EXPECT_EQ(a.pl.drops, b.pl.drops) << label;
    EXPECT_EQ(a.pl.retransmissions, b.pl.retransmissions) << label;
    EXPECT_EQ(a.pl.blockedBuffered, b.pl.blockedBuffered) << label;
    EXPECT_EQ(a.pl.interimAccepts, b.pl.interimAccepts) << label;
    EXPECT_EQ(a.pl.launches, b.pl.launches) << label;
    EXPECT_EQ(a.counters.messagesAccepted,
              b.counters.messagesAccepted)
        << label;
    EXPECT_EQ(a.counters.packetsInjected, b.counters.packetsInjected)
        << label;
    EXPECT_EQ(a.counters.deliveries, b.counters.deliveries) << label;
    EXPECT_EQ(a.portClaims, b.portClaims) << label;
    EXPECT_EQ(a.inFlight, b.inFlight) << label;
    EXPECT_EQ(a.endCycle, b.endCycle) << label;
}

core::PhastlaneParams
baseParams(int w, int h, uint64_t seed)
{
    core::PhastlaneParams p;
    p.meshWidth = w;
    p.meshHeight = h;
    p.routerBufferEntries = 4;
    p.seed = seed;
    return p;
}

/**
 * The core campaign: for every mesh shape, pin each instance's serial
 * result, then require every batch limit to reproduce every instance
 * bit-for-bit. Instances within one shape differ by network seed and
 * traffic seed, so the gang genuinely holds divergent simulations.
 */
TEST(MultiSimDifferential, MatchesSerialAcrossBatchSizes)
{
    struct MeshCase {
        int w, h, cycles;
    };
    std::vector<MeshCase> meshes = {{4, 4, 120}, {8, 8, 100},
                                    {9, 7, 100}};
    if (longCampaign())
        meshes.push_back({16, 16, 60});
    const int instances = longCampaign() ? 12 : 8;
    for (const auto &mc : meshes) {
        std::vector<RunResult> serial(instances);
        for (int i = 0; i < instances; ++i) {
            serial[i] = runSerial(
                baseParams(mc.w, mc.h,
                           1000 + static_cast<uint64_t>(i)),
                mc.cycles, i + 1);
        }
        for (int limit : {1, 3, 8}) {
            MultiSim ms(limit);
            std::vector<std::unique_ptr<DiffJob>> jobs;
            for (int i = 0; i < instances; ++i) {
                jobs.push_back(std::make_unique<DiffJob>(
                    baseParams(mc.w, mc.h,
                               1000 + static_cast<uint64_t>(i)),
                    mc.cycles, i + 1));
                ms.add(*jobs.back());
            }
            ms.runAll();
            for (int i = 0; i < instances; ++i) {
                expectIdentical(
                    serial[i], jobs[i]->finish(),
                    std::to_string(mc.w) + "x" +
                        std::to_string(mc.h) + " batch " +
                        std::to_string(limit) + " instance " +
                        std::to_string(i));
            }
        }
    }
}

/** The perf-gate shape: a full 64-instance 8x8 gang, every instance
 *  pinned against its serial run. PL_CHECK_LONG=1 doubles the
 *  traffic window. */
TEST(MultiSimDifferential, Batch64Soak)
{
    const int cycles = longCampaign() ? 120 : 40;
    const int instances = 64;
    MultiSim ms(64);
    std::vector<std::unique_ptr<DiffJob>> jobs;
    for (int i = 0; i < instances; ++i) {
        jobs.push_back(std::make_unique<DiffJob>(
            baseParams(8, 8, 7000 + static_cast<uint64_t>(i)),
            cycles, i + 1));
        ms.add(*jobs.back());
    }
    ms.runAll();
    for (int i = 0; i < instances; ++i) {
        expectIdentical(
            runSerial(baseParams(8, 8,
                                 7000 + static_cast<uint64_t>(i)),
                      cycles, i + 1),
            jobs[i]->finish(),
            "batch64 instance " + std::to_string(i));
    }
}

/** Mixed mesh shapes registered interleaved in one MultiSim: the
 *  scheduler gangs by shape and every instance still matches its
 *  serial run. */
TEST(MultiSimDifferential, MixedMeshShapesGangByShape)
{
    struct Spec {
        int w, h, seed;
    };
    // Interleave three shapes so gang formation has to regroup them.
    const std::vector<Spec> specs = {
        {4, 4, 1}, {8, 8, 2}, {9, 7, 3}, {4, 4, 4}, {8, 8, 5},
        {9, 7, 6}, {4, 4, 7}, {8, 8, 8}, {9, 7, 9},
    };
    MultiSim ms(4);
    std::vector<std::unique_ptr<DiffJob>> jobs;
    for (const auto &s : specs) {
        jobs.push_back(std::make_unique<DiffJob>(
            baseParams(s.w, s.h, 3000 + static_cast<uint64_t>(s.seed)),
            90, s.seed));
        ms.add(*jobs.back());
    }
    ms.runAll();
    for (size_t i = 0; i < specs.size(); ++i) {
        const auto &s = specs[i];
        expectIdentical(
            runSerial(baseParams(s.w, s.h,
                                 3000 + static_cast<uint64_t>(s.seed)),
                      90, s.seed),
            jobs[i]->finish(),
            "mixed shape " + std::to_string(s.w) + "x" +
                std::to_string(s.h) + " seed " +
                std::to_string(s.seed));
    }
}

/** Fault injection (stateless per-event hashes) and exponential
 *  backoff stay bit-identical under batching, including gangs whose
 *  instances carry different fault seeds. */
TEST(MultiSimDifferential, FaultConfigsStayInLockstep)
{
    const int instances = longCampaign() ? 8 : 6;
    auto faulty = [](int i) {
        core::PhastlaneParams p = baseParams(
            9, 7, 4242 + static_cast<uint64_t>(i));
        p.routerBufferEntries = 2; // force drops and retries
        p.exponentialBackoff = true;
        p.backoffBase = 1;
        p.faults.misTurnRate = 0.02;
        p.faults.missedReceiveRate = 0.01;
        p.faults.dropSignalLossRate = 0.01;
        p.faults.dropperIdCorruptRate = 0.05;
        p.faults.routerFailRate = 0.02;
        p.faults.faultSeed = 99 + static_cast<uint64_t>(i);
        return p;
    };
    std::vector<RunResult> serial(instances);
    for (int i = 0; i < instances; ++i)
        serial[i] = runSerial(faulty(i), 120, i + 1);
    for (int limit : {3, 8}) {
        MultiSim ms(limit);
        std::vector<std::unique_ptr<DiffJob>> jobs;
        for (int i = 0; i < instances; ++i) {
            jobs.push_back(
                std::make_unique<DiffJob>(faulty(i), 120, i + 1));
            ms.add(*jobs.back());
        }
        ms.runAll();
        for (int i = 0; i < instances; ++i) {
            expectIdentical(serial[i], jobs[i]->finish(),
                            "faults batch " + std::to_string(limit) +
                                " instance " + std::to_string(i));
        }
    }
}

/** Both FCFS wavefront models batch; a gang may even mix them (the
 *  batch keys on mesh shape only — each instance steps its own
 *  engine). */
TEST(MultiSimDifferential, BothFcfsWavefrontModels)
{
    auto withModel = [](core::WavefrontModel m, int i) {
        core::PhastlaneParams p = baseParams(
            8, 8, 5000 + static_cast<uint64_t>(i));
        p.wavefront = m;
        return p;
    };
    const int per_model = 3;
    std::vector<RunResult> serial;
    std::vector<core::PhastlaneParams> params;
    for (int i = 0; i < per_model; ++i) {
        params.push_back(
            withModel(core::WavefrontModel::BitplaneFcfs, i));
        params.push_back(
            withModel(core::WavefrontModel::SubstepFcfs, i));
    }
    for (size_t i = 0; i < params.size(); ++i)
        serial.push_back(
            runSerial(params[i], 100, static_cast<int>(i) + 1));
    MultiSim ms(static_cast<int>(params.size()));
    std::vector<std::unique_ptr<DiffJob>> jobs;
    for (size_t i = 0; i < params.size(); ++i) {
        jobs.push_back(std::make_unique<DiffJob>(
            params[i], 100, static_cast<int>(i) + 1));
        ms.add(*jobs.back());
    }
    ms.runAll();
    for (size_t i = 0; i < params.size(); ++i) {
        expectIdentical(serial[i], jobs[i]->finish(),
                        "wavefront mix instance " +
                            std::to_string(i));
    }
}

/** Eligibility rules (DESIGN.md §13): sharded engines, attached
 *  observers, and the GlobalPriority ablation are not batchable and
 *  must fall back per-instance in the sweep drivers. */
TEST(MultiSimEligibility, RejectsShardsObserversAndGlobalPriority)
{
    core::PhastlaneNetwork plain(baseParams(4, 4, 1));
    EXPECT_TRUE(batchable(plain));
    EXPECT_TRUE(core::NetworkBatch::eligible(plain));

    core::PhastlaneParams sharded = baseParams(4, 4, 1);
    sharded.shardCols = 2;
    sharded.shardRows = 2;
    core::PhastlaneNetwork shardedNet(sharded);
    EXPECT_FALSE(batchable(shardedNet));

    core::PhastlaneParams global = baseParams(4, 4, 1);
    global.wavefront = core::WavefrontModel::GlobalPriority;
    core::PhastlaneNetwork globalNet(global);
    EXPECT_FALSE(batchable(globalNet));

    struct NullObserver : core::StepObserver {
    } obs;
    core::PhastlaneNetwork observed(baseParams(4, 4, 1));
    observed.setObserver(&obs);
    EXPECT_FALSE(batchable(observed));
    observed.setObserver(nullptr);
    EXPECT_TRUE(batchable(observed));
}

/** Gang compatibility keys on node count: same shape gangs together,
 *  different shapes never share a batch. */
TEST(MultiSimEligibility, CompatibilityKeysOnNodeCount)
{
    core::PhastlaneNetwork a(baseParams(4, 4, 1));
    core::PhastlaneNetwork b(baseParams(4, 4, 2));
    core::PhastlaneNetwork c(baseParams(8, 8, 3));
    core::NetworkBatch batch;
    EXPECT_TRUE(batch.compatible(a)); // empty batch accepts anything
    batch.attach(a);
    EXPECT_TRUE(batch.compatible(b));
    EXPECT_FALSE(batch.compatible(c));
    batch.detachAll();
}

/** A gang where some instances finish (drain) cycles before others:
 *  early-done jobs stop being stepped and their final state is
 *  untouched while the rest run on. Different traffic windows force
 *  staggered completion. */
TEST(MultiSimDifferential, StaggeredCompletionInOneGang)
{
    const std::vector<int> windows = {20, 60, 120, 40};
    std::vector<RunResult> serial;
    for (size_t i = 0; i < windows.size(); ++i) {
        serial.push_back(runSerial(
            baseParams(8, 8, 6000 + static_cast<uint64_t>(i)),
            windows[i], static_cast<int>(i) + 1));
    }
    MultiSim ms(static_cast<int>(windows.size()));
    std::vector<std::unique_ptr<DiffJob>> jobs;
    for (size_t i = 0; i < windows.size(); ++i) {
        jobs.push_back(std::make_unique<DiffJob>(
            baseParams(8, 8, 6000 + static_cast<uint64_t>(i)),
            windows[i], static_cast<int>(i) + 1));
        ms.add(*jobs.back());
    }
    ms.runAll();
    for (size_t i = 0; i < windows.size(); ++i) {
        expectIdentical(serial[i], jobs[i]->finish(),
                        "staggered window " +
                            std::to_string(windows[i]));
    }
}

} // namespace
} // namespace phastlane::sim
