#include "check/invariants.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/log.hpp"

namespace phastlane::check {

InvariantChecker::InvariantChecker(const core::PhastlaneNetwork &net,
                                   bool abort_on_violation)
    : net_(net), abort_(abort_on_violation)
{
}

void
InvariantChecker::violation(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::string msg = "cycle " + std::to_string(cycle_) + ": " + buf;
    if (abort_)
        panic("invariant violation: %s", msg.c_str());
    violations_.push_back(std::move(msg));
}

void
InvariantChecker::onCycleBegin(Cycle cycle)
{
    cycle_ = cycle;
    // Successes recorded in earlier cycles have had their holder
    // buffer slots released by this cycle's outcome resolution. Lost
    // drop signals and dead-router black holes release slots the same
    // way (the holder never learns anything went wrong).
    successesResolved_ = finals_ + bufferReceives_ + resolvedNoRetry_;
    hopsThisCycle_.clear();
}

void
InvariantChecker::onAccept(const Packet &pkt, int branches,
                           int delivery_units)
{
    ++acceptedMessages_;
    acceptedBranches_ += static_cast<uint64_t>(branches);
    acceptedUnits_ += static_cast<uint64_t>(delivery_units);
    // A dead source accepts the message without enqueuing any branch
    // (all units are accounted lost immediately); otherwise at least
    // one branch must exist.
    const bool dead_source =
        branches == 0 && net_.routerFailed(pkt.src);
    if ((branches < 1 && !dead_source) || delivery_units < branches) {
        violation("message %" PRIu64
                  " accepted with %d branches for %d delivery units",
                  pkt.id, branches, delivery_units);
    }
    perMessage_[pkt.id].addressed +=
        static_cast<uint64_t>(delivery_units);
}

void
InvariantChecker::onLaunch(const core::OpticalPacket &pkt,
                           NodeId router, Port out, int attempts)
{
    (void)out;
    (void)router;
    ++launches_;
    if (attempts > 0)
        ++retransmissions_;
    // The launch enters the first downstream router: one hop.
    hopsThisCycle_[pkt.branchId] = 1;
}

void
InvariantChecker::onPass(const core::OpticalPacket &pkt, NodeId router)
{
    (void)router;
    ++passes_;
    auto it = hopsThisCycle_.find(pkt.branchId);
    if (it == hopsThisCycle_.end()) {
        violation("branch %" PRIu64 " passed router %d without a "
                  "launch this cycle",
                  pkt.branchId, router);
        return;
    }
    ++it->second;
    if (it->second > net_.params().maxHopsPerCycle) {
        violation("branch %" PRIu64 " crossed %d routers, above the "
                  "per-cycle limit %d",
                  pkt.branchId, it->second,
                  net_.params().maxHopsPerCycle);
    }
}

void
InvariantChecker::onDeliver(const Delivery &d)
{
    ++deliveredUnits_;
    if (!delivered_.emplace(d.packet.id, d.node).second) {
        violation("duplicate delivery of message %" PRIu64
                  " at node %d",
                  d.packet.id, d.node);
    }
    auto &pm = perMessage_[d.packet.id];
    ++pm.delivered;
    if (pm.delivered + pm.lost > pm.addressed) {
        violation("message %" PRIu64 " delivered %" PRIu64 " + lost %"
                  PRIu64 " for %" PRIu64 " addressed units",
                  d.packet.id, pm.delivered, pm.lost, pm.addressed);
    }
}

void
InvariantChecker::onBranchFinal(const core::OpticalPacket &pkt,
                                NodeId router)
{
    ++finals_;
    if (pkt.multicast) {
        // The final router is the branch's last tap; after the tap on
        // arrival no target may remain unserved.
        if (!pkt.tapsDone()) {
            violation("multicast branch %" PRIu64 " finished at node "
                      "%d with %zu taps unserved",
                      pkt.branchId, router, pkt.remainingTaps().size());
        }
    } else if (router != pkt.finalDst) {
        violation("unicast branch %" PRIu64 " finished at node %d, "
                  "destination %d",
                  pkt.branchId, router, pkt.finalDst);
    }
}

void
InvariantChecker::onBufferReceive(const core::OpticalPacket &pkt,
                                  NodeId router, Port queue,
                                  bool interim)
{
    (void)pkt;
    (void)interim;
    ++bufferReceives_;
    const auto &rb = net_.routerBuffers(router);
    const int cap = net_.params().routerBufferEntries;
    if (cap > 0 && !net_.params().sharedBufferPool &&
        rb.occupancy(queue) > static_cast<size_t>(cap)) {
        violation("router %d queue %s holds %zu entries, depth %d",
                  router, portName(queue), rb.occupancy(queue), cap);
    }
}

void
InvariantChecker::onDrop(const core::OpticalPacket &pkt, NodeId router,
                         NodeId launch_router, int signal_hops,
                         bool signal_lost)
{
    (void)launch_router;
    ++drops_;
    dropSignalHops_ += static_cast<uint64_t>(signal_hops);
    if (signal_lost) {
        // The return signal was eaten by an injected fault: it covers
        // no links and the holder's slot frees as if it succeeded.
        ++dropSignalsLost_;
        ++resolvedNoRetry_;
        if (signal_hops != 0) {
            violation("branch %" PRIu64 " dropped at node %d with a "
                      "lost signal reporting %d hops",
                      pkt.branchId, router, signal_hops);
        }
        return;
    }
    const auto it = hopsThisCycle_.find(pkt.branchId);
    const int hops =
        it == hopsThisCycle_.end() ? 0 : it->second;
    if (signal_hops != hops) {
        // The signal retraces exactly the links the packet crossed
        // this cycle (launch link + passes).
        violation("branch %" PRIu64 " dropped at node %d: signal "
                  "travels %d hops, packet traveled %d",
                  pkt.branchId, router, signal_hops, hops);
    }
}

void
InvariantChecker::onLost(const Packet &pkt, uint64_t branch_id,
                         NodeId router, int units,
                         core::LostCause cause)
{
    (void)branch_id;
    (void)router;
    if (units < 0) {
        violation("message %" PRIu64 " lost a negative unit count %d",
                  pkt.id, units);
        return;
    }
    lostUnits_ += static_cast<uint64_t>(units);
    auto &pm = perMessage_[pkt.id];
    pm.lost += static_cast<uint64_t>(units);
    if (pm.delivered + pm.lost > pm.addressed) {
        violation("message %" PRIu64 " delivered %" PRIu64 " + lost %"
                  PRIu64 " for %" PRIu64 " addressed units",
                  pkt.id, pm.delivered, pm.lost, pm.addressed);
    }
    // A dead-router black hole frees the holder's slot without any
    // final or buffer receive; the other causes either have no slot
    // (dead source), keep the flight going (missed receive), or are
    // already counted through onDrop (lost signal).
    if (cause == core::LostCause::DeadRouter)
        ++resolvedNoRetry_;
}

void
InvariantChecker::onDuplicate(const core::OpticalPacket &pkt,
                              NodeId router)
{
    (void)router;
    ++duplicatesSuppressed_;
    // Suppression requires a corruption-replay watermark; a duplicate
    // on a packet without one is a protocol bug.
    if (pkt.dedupBelow == 0) {
        violation("branch %" PRIu64 " suppressed a duplicate without "
                  "a dedup watermark",
                  pkt.branchId);
    }
}

void
InvariantChecker::onCycleEnd(Cycle cycle)
{
    if (cycle != cycle_) {
        violation("cycle end %" PRIu64 " without matching begin",
                  cycle);
    }
    ++cyclesChecked_;
    const auto &pc = net_.phastlaneCounters();
    const auto &ev = net_.events();

    // Unit conservation: accepted == delivered + lost + in flight.
    if (acceptedUnits_ !=
        deliveredUnits_ + lostUnits_ + net_.inFlight()) {
        violation("unit conservation broken: accepted %" PRIu64
                  " != delivered %" PRIu64 " + lost %" PRIu64
                  " + in-flight %" PRIu64,
                  acceptedUnits_, deliveredUnits_, lostUnits_,
                  net_.inFlight());
    }

    // Buffer-slot conservation. Entries are created by NIC-to-local
    // transfers and buffer receives, and destroyed when a success
    // resolves (one cycle after the final/receive downstream); a
    // dropped branch keeps its slot for the retransmission.
    const int64_t nic_transfers =
        static_cast<int64_t>(acceptedBranches_) -
        static_cast<int64_t>(net_.nicQueuedPackets());
    const int64_t expected_buffered =
        nic_transfers + static_cast<int64_t>(bufferReceives_) -
        static_cast<int64_t>(successesResolved_);
    if (static_cast<int64_t>(net_.bufferedPackets()) !=
        expected_buffered) {
        violation("buffer-slot conservation broken: %" PRIu64
                  " buffered, ledger expects %lld",
                  net_.bufferedPackets(),
                  static_cast<long long>(expected_buffered));
    }

    // Buffer depth bound across every router.
    const int cap = net_.params().routerBufferEntries;
    if (cap > 0) {
        const size_t router_cap =
            static_cast<size_t>(cap) * kAllPorts;
        for (NodeId n = 0; n < net_.nodeCount(); ++n) {
            const auto &rb = net_.routerBuffers(n);
            if (rb.totalOccupancy() > router_cap) {
                violation("router %d holds %zu entries, capacity %zu",
                          n, rb.totalOccupancy(), router_cap);
            }
            if (net_.params().sharedBufferPool)
                continue;
            for (Port q : kAllPortList) {
                if (rb.occupancy(q) > static_cast<size_t>(cap)) {
                    violation("router %d queue %s holds %zu entries, "
                              "depth %d",
                              n, portName(q), rb.occupancy(q), cap);
                }
            }
        }
    }

    // The network's own counters must agree with the ledger.
    if (net_.counters().deliveries != deliveredUnits_)
        violation("delivery counter %" PRIu64 " != ledger %" PRIu64,
                  net_.counters().deliveries, deliveredUnits_);
    if (net_.counters().messagesAccepted != acceptedMessages_)
        violation("accept counter %" PRIu64 " != ledger %" PRIu64,
                  net_.counters().messagesAccepted, acceptedMessages_);
    if (pc.drops != drops_ || ev.drops != drops_)
        violation("drop counters %" PRIu64 "/%" PRIu64
                  " != ledger %" PRIu64,
                  pc.drops, ev.drops, drops_);
    if (pc.launches != launches_ || ev.launches != launches_)
        violation("launch counters %" PRIu64 "/%" PRIu64
                  " != ledger %" PRIu64,
                  pc.launches, ev.launches, launches_);
    if (pc.retransmissions != retransmissions_)
        violation("retransmission counter %" PRIu64
                  " != ledger %" PRIu64,
                  pc.retransmissions, retransmissions_);
    if (ev.passTraversals != passes_)
        violation("pass counter %" PRIu64 " != ledger %" PRIu64,
                  ev.passTraversals, passes_);
    if (ev.dropSignalHops != dropSignalHops_)
        violation("drop-signal-hop counter %" PRIu64
                  " != ledger %" PRIu64,
                  ev.dropSignalHops, dropSignalHops_);
    if (pc.interimAccepts + pc.blockedBuffered != bufferReceives_)
        violation("buffer-receive counters %" PRIu64 " + %" PRIu64
                  " != ledger %" PRIu64,
                  pc.interimAccepts, pc.blockedBuffered,
                  bufferReceives_);
    if (ev.lostUnits != lostUnits_)
        violation("lost-unit counter %" PRIu64 " != ledger %" PRIu64,
                  ev.lostUnits, lostUnits_);
    if (ev.dropSignalsLost != dropSignalsLost_)
        violation("lost-signal counter %" PRIu64 " != ledger %" PRIu64,
                  ev.dropSignalsLost, dropSignalsLost_);
    if (ev.duplicatesSuppressed != duplicatesSuppressed_)
        violation("duplicate counter %" PRIu64 " != ledger %" PRIu64,
                  ev.duplicatesSuppressed, duplicatesSuppressed_);

    // Every drop whose signal returned is eventually retransmitted,
    // never more than once per drop: retransmissions can lag drops
    // but not exceed them (lost signals never retransmit).
    if (retransmissions_ + dropSignalsLost_ > drops_)
        violation("%" PRIu64 " retransmissions + %" PRIu64
                  " lost signals for %" PRIu64 " drops",
                  retransmissions_, dropSignalsLost_, drops_);
}

void
InvariantChecker::checkQuiescent()
{
    if (net_.inFlight() != 0 || net_.bufferedPackets() != 0 ||
        net_.nicQueuedPackets() != 0) {
        violation("not quiescent: %" PRIu64 " in flight, %" PRIu64
                  " buffered, %" PRIu64 " NIC-queued",
                  net_.inFlight(), net_.bufferedPackets(),
                  net_.nicQueuedPackets());
        return;
    }
    if (deliveredUnits_ + lostUnits_ != acceptedUnits_) {
        violation("quiescent with %" PRIu64 " delivered + %" PRIu64
                  " lost of %" PRIu64 " units",
                  deliveredUnits_, lostUnits_, acceptedUnits_);
    }
    if (drops_ != retransmissions_ + dropSignalsLost_) {
        violation("quiescent with %" PRIu64 " drops but %" PRIu64
                  " retransmissions + %" PRIu64 " lost signals",
                  drops_, retransmissions_, dropSignalsLost_);
    }
    // Exactly once or accounted lost, per message: every addressed
    // unit either arrived (once; delivered_ catches duplicates) or
    // was reported lost.
    for (const auto &[id, pm] : perMessage_) {
        if (pm.delivered + pm.lost != pm.addressed) {
            violation("quiescent message %" PRIu64 ": %" PRIu64
                      " delivered + %" PRIu64 " lost != %" PRIu64
                      " addressed",
                      id, pm.delivered, pm.lost, pm.addressed);
        }
    }
}

} // namespace phastlane::check
