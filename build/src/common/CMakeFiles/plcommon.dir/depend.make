# Empty dependencies file for plcommon.
# This may be replaced when dependencies are built.
