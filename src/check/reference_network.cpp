#include "check/reference_network.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/log.hpp"
#include "core/control.hpp"

namespace phastlane::check {

std::vector<std::vector<NodeId>>
referenceBroadcastBranches(const MeshTopology &mesh, NodeId src)
{
    // Section 2.1.4: one multicast branch per column and Y-direction.
    // Every branch first travels east/west along the source row to its
    // column's turn router, then turns north or south; the turn router
    // itself is served by the north branch except for a top-row source
    // (whose single branch runs the full column southward). Branch
    // order: columns west to east, north before south.
    const Coord s = mesh.coordOf(src);
    const int top = mesh.height() - 1;
    std::vector<std::vector<NodeId>> branches;
    for (int x = 0; x < mesh.width(); ++x) {
        std::vector<NodeId> north;
        std::vector<NodeId> south;
        if (s.y < top) {
            for (int y = s.y; y <= top; ++y) {
                if (x == s.x && y == s.y)
                    continue; // the source serves itself
                north.push_back(mesh.nodeAt({x, y}));
            }
        }
        const int south_start = (s.y == top) ? top : s.y - 1;
        for (int y = south_start; y >= 0; --y) {
            if (x == s.x && y == s.y)
                continue;
            south.push_back(mesh.nodeAt({x, y}));
        }
        if (!north.empty())
            branches.push_back(std::move(north));
        if (!south.empty())
            branches.push_back(std::move(south));
    }
    return branches;
}

bool
ReferenceNetwork::supports(const core::PhastlaneParams &params)
{
    // GlobalPriority is an idealized ablation with intentionally
    // different intra-cycle semantics. SubstepFcfs and BitplaneFcfs
    // share one semantics (the bit-plane engine must be bit-identical
    // to the scalar one), so this single reference models both.
    return (params.wavefront == core::WavefrontModel::SubstepFcfs ||
            params.wavefront == core::WavefrontModel::BitplaneFcfs) &&
           params.maxHopsPerCycle >= 1;
}

ReferenceNetwork::ReferenceNetwork(const core::PhastlaneParams &params)
    : params_(params),
      mesh_(params.meshWidth, params.meshHeight),
      rng_(params.seed)
{
    if (!supports(params_))
        fatal("ReferenceNetwork does not model this configuration "
              "(GlobalPriority wavefront or invalid hop limit)");
    nics_.resize(static_cast<size_t>(mesh_.nodeCount()));
    routers_.resize(static_cast<size_t>(mesh_.nodeCount()));
    if (params_.admission == core::AdmissionPolicy::TokenBucket) {
        // Same starting state as the optimized RouterBuffers ctor:
        // a full bucket with the first refill due one period out.
        for (auto &rt : routers_)
            rt.bucket.reset(params_.admissionBurst,
                            params_.admissionPeriod, 0);
    }
    failed_.assign(static_cast<size_t>(mesh_.nodeCount()), 0);
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        if (core::faultRoll(params_.faults,
                            params_.faults.routerFailRate,
                            core::FaultKind::RouterFail,
                            static_cast<uint64_t>(n), 0, 0)) {
            failed_[static_cast<size_t>(n)] = 1;
        }
    }
}

bool
ReferenceNetwork::nicHasSpace(NodeId n) const
{
    PL_ASSERT(mesh_.valid(n), "invalid node %d", n);
    // Same conservative contract as the optimized NIC: space for a
    // full broadcast.
    const size_t needed = referenceBroadcastBranches(mesh_, n).size();
    return nics_[static_cast<size_t>(n)].size() + needed <=
           static_cast<size_t>(params_.nicQueueEntries);
}

bool
ReferenceNetwork::inject(const Packet &pkt)
{
    PL_ASSERT(mesh_.valid(pkt.src), "invalid source %d", pkt.src);
    auto &nic = nics_[static_cast<size_t>(pkt.src)];
    const size_t capacity =
        static_cast<size_t>(params_.nicQueueEntries);

    // Dead source: accepted but never transmitted; all units lost
    // immediately (mirror of PhastlaneNetwork::inject).
    const auto acceptLost = [&]() {
        ++counters_.messagesAccepted;
        events_.lostUnits += static_cast<uint64_t>(
            pkt.deliveryCount(mesh_.nodeCount()));
        return true;
    };

    if (pkt.broadcast) {
        auto branches = referenceBroadcastBranches(mesh_, pkt.src);
        if (nic.size() + branches.size() > capacity)
            return false;
        if (failed_[static_cast<size_t>(pkt.src)] != 0)
            return acceptLost();
        for (auto &targets : branches) {
            RefPacket rp;
            rp.base = pkt;
            rp.branchId = nextBranchId_++;
            rp.multicast = true;
            rp.finalDst = targets.back();
            rp.taps.assign(targets.begin(), targets.end());
            rp.acceptedAt = cycle_;
            nic.push_back(std::move(rp));
        }
    } else {
        PL_ASSERT(mesh_.valid(pkt.dst) && pkt.dst != pkt.src,
                  "invalid unicast destination");
        if (nic.size() + 1 > capacity)
            return false;
        if (failed_[static_cast<size_t>(pkt.src)] != 0)
            return acceptLost();
        RefPacket rp;
        rp.base = pkt;
        rp.branchId = nextBranchId_++;
        rp.finalDst = pkt.dst;
        rp.acceptedAt = cycle_;
        nic.push_back(std::move(rp));
    }
    ++counters_.messagesAccepted;
    outstanding_ +=
        static_cast<uint64_t>(pkt.deliveryCount(mesh_.nodeCount()));
    return true;
}

uint64_t
ReferenceNetwork::bufferedPackets() const
{
    uint64_t total = 0;
    for (const auto &rt : routers_)
        for (const auto &q : rt.queues)
            total += q.size();
    return total;
}

uint64_t
ReferenceNetwork::nicQueuedPackets() const
{
    uint64_t total = 0;
    for (const auto &nic : nics_)
        total += nic.size();
    return total;
}

int
ReferenceNetwork::freeSlots(NodeId router, Port q) const
{
    if (params_.infiniteBuffers())
        return std::numeric_limits<int>::max();
    const auto &rt = routers_[static_cast<size_t>(router)];
    const int cap = params_.routerBufferEntries;
    const int occ =
        static_cast<int>(rt.queues[static_cast<size_t>(portIndex(q))]
                             .size());
    if (!params_.sharedBufferPool)
        return cap - occ;
    // DAMQ with reserved slots (params.hpp): each queue keeps a
    // guaranteed half of its partition, the rest pools per router.
    const int guaranteed = std::max(1, cap / 2);
    int shared_used = 0;
    for (const auto &queue : rt.queues) {
        shared_used +=
            std::max(0, static_cast<int>(queue.size()) - guaranteed);
    }
    const int shared_size = kAllPorts * (cap - guaranteed);
    return std::max(0, guaranteed - occ) +
           std::max(0, shared_size - shared_used);
}

void
ReferenceNetwork::pushEntry(NodeId router, Port q, RefPacket pkt,
                            Cycle eligible_at)
{
    PL_ASSERT(hasSpace(router, q), "pushing into a full buffer");
    auto &rt = routers_[static_cast<size_t>(router)];
    RefEntry e;
    e.pkt = std::move(pkt);
    e.eligibleAt = eligible_at;
    e.enqueuedAt = eligible_at;
    e.seq = rt.nextSeq++;
    rt.queues[static_cast<size_t>(portIndex(q))].push_back(
        std::move(e));
}

Cycle
ReferenceNetwork::dropRetryCycle(int attempts)
{
    Cycle extra = static_cast<Cycle>(params_.backoffBase);
    const int64_t window = core::backoffWindow(params_, attempts);
    if (window > 0)
        extra += static_cast<Cycle>(rng_.uniformInt(0, window));
    return cycle_ + 1 + extra;
}

bool
ReferenceNetwork::claimed(NodeId router, Port out) const
{
    for (const auto &[r, p] : claimedPorts_) {
        if (r == router && p == portIndex(out))
            return true;
    }
    return false;
}

void
ReferenceNetwork::claim(NodeId router, Port out)
{
    claimedPorts_.emplace_back(router, portIndex(out));
}

void
ReferenceNetwork::deliver(const RefPacket &pkt, NodeId node)
{
    Delivery d;
    d.packet = pkt.base;
    d.node = node;
    d.at = cycle_;
    d.acceptedAt = pkt.acceptedAt;
    d.injectedAt = pkt.firstInjectedAt;
    deliveries_.push_back(std::move(d));
    ++counters_.deliveries;
    PL_ASSERT(outstanding_ > 0,
              "reference: delivery without outstanding message");
    --outstanding_;
}

void
ReferenceNetwork::resolveOutcomes()
{
    // Launch outcomes resolve one cycle after the launch, in event
    // order, before any buffer activity of the new cycle.
    for (auto &o : pendingOutcomes_) {
        auto &rt = routers_[static_cast<size_t>(o.holder)];
        bool found = false;
        for (auto &queue : rt.queues) {
            for (auto it = queue.begin(); it != queue.end(); ++it) {
                if (!it->launched || it->pkt.branchId != o.branchId)
                    continue;
                if (o.dropped &&
                    o.updated.multicast &&
                    core::faultRoll(
                        params_.faults,
                        params_.faults.dropperIdCorruptRate,
                        core::FaultKind::DropperIdCorrupt,
                        o.updated.branchId,
                        static_cast<uint64_t>(cycle_), 0)) {
                    // Corrupted dropper Node ID: keep the stored
                    // pre-launch branch state (the holder cannot
                    // clear the served Multicast bits) and record the
                    // taps the failed attempt served for duplicate
                    // suppression. The retry cycle draws exactly as
                    // in the clean path (RNG lockstep).
                    ++events_.faultCorruptions;
                    it->pkt.dedupBelow = std::max(
                        it->pkt.dedupBelow, o.updated.tapIndex);
                    it->eligibleAt = dropRetryCycle(it->attempts + 1);
                    it->launched = false;
                    ++it->attempts;
                } else if (o.dropped) {
                    // Restore in place: the entry keeps its queue
                    // position and age; the retransmission carries the
                    // tap-reduced state (served taps stay served).
                    it->eligibleAt = dropRetryCycle(it->attempts + 1);
                    it->pkt = std::move(o.updated);
                    it->launched = false;
                    ++it->attempts;
                } else {
                    queue.erase(it);
                }
                found = true;
                break;
            }
            if (found)
                break;
        }
        if (!found)
            fatal("reference: launch outcome lost its buffer entry");
    }
    pendingOutcomes_.clear();
}

void
ReferenceNetwork::nicToLocalQueues()
{
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        auto &nic = nics_[static_cast<size_t>(n)];
        for (int i = 0; i < params_.nicTransfersPerCycle &&
                        !nic.empty() && hasSpace(n, Port::Local);
             ++i) {
            // One cycle of electrical transfer: launchable next cycle.
            pushEntry(n, Port::Local, std::move(nic.front()),
                      cycle_ + 1);
            nic.pop_front();
        }
    }
}

std::vector<ReferenceNetwork::RefFlight>
ReferenceNetwork::launchPhase()
{
    std::vector<RefFlight> flights;
    for (NodeId r = 0; r < mesh_.nodeCount(); ++r) {
        auto &rt = routers_[static_cast<size_t>(r)];

        // Select up to four launches for distinct output ports among
        // the waiting eligible entries (Section 2.1.1).
        std::vector<std::pair<RefEntry *, Port>> launches;
        bool port_taken[kMeshPorts] = {false, false, false, false};
        auto try_launch = [&](RefEntry &e, Port q, int &budget) {
            if (budget <= 0 || e.launched || e.eligibleAt > cycle_)
                return;
            PL_ASSERT(e.pkt.finalDst != r,
                      "reference: buffered packet already at its "
                      "destination");
            const Port out = mesh_.xyFirstHop(r, e.pkt.finalDst);
            if (out == Port::Local || port_taken[portIndex(out)])
                return;
            // Admission gate (DESIGN.md §14): source-originated
            // launches take a token, consumed last so a blocked port
            // never drains the bucket. Same check order as the
            // optimized arbiter — the consume() sequence must match
            // token for token.
            if (params_.admission ==
                    core::AdmissionPolicy::TokenBucket &&
                q == Port::Local &&
                !rt.bucket.consume(params_.admissionBurst,
                                   params_.admissionPeriod, cycle_))
                return;
            port_taken[portIndex(out)] = true;
            e.launched = true;
            launches.emplace_back(&e, out);
            --budget;
        };

        if (params_.bufferArbitration ==
            core::BufferArbitration::OldestFirst) {
            std::vector<std::pair<uint64_t,
                                  std::pair<RefEntry *, Port>>>
                candidates;
            for (int qi = 0; qi < kAllPorts; ++qi) {
                const Port q = portFromIndex(qi);
                for (auto &e : rt.queues[static_cast<size_t>(qi)]) {
                    if (!e.launched && e.eligibleAt <= cycle_)
                        candidates.emplace_back(
                            e.seq, std::make_pair(&e, q));
                }
            }
            std::sort(candidates.begin(), candidates.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            int budget = kMeshPorts;
            for (auto &[seq, cand] : candidates)
                try_launch(*cand.first, cand.second, budget);
        } else {
            // Rotating pointer over the five queues, oldest-first
            // within a queue, at most launchesPerQueue per queue.
            for (int qi = 0; qi < kAllPorts; ++qi) {
                const int idx = (rt.rotate + qi) % kAllPorts;
                const Port q = portFromIndex(idx);
                auto &queue = rt.queues[static_cast<size_t>(idx)];
                int budget = params_.launchesPerQueue;
                for (auto &e : queue)
                    try_launch(e, q, budget);
            }
            rt.rotate = (rt.rotate + 1) % kAllPorts;
        }

        for (auto &[e, out] : launches) {
            ++events_.launches;
            ++events_.bufferReads;
            ++pl_.launches;
            if (e->attempts > 0) {
                ++events_.retransmissions;
                ++pl_.retransmissions;
            }
            if (e->pkt.firstInjectedAt == kNeverCycle) {
                e->pkt.firstInjectedAt = cycle_;
                ++counters_.packetsInjected;
            }

            RefFlight f;
            f.pkt = e->pkt;
            // AgeBoost is recomputed at every launch from residence
            // age (cycle the entry first became launchable), exactly
            // as the optimized launch paths do.
            f.pkt.boosted =
                params_.admission == core::AdmissionPolicy::AgeBoost &&
                cycle_ - e->enqueuedAt >=
                    static_cast<Cycle>(params_.admissionAgeThreshold);
            f.launchRouter = r;
            f.path = mesh_.xyPath(r, e->pkt.finalDst);
            f.dirs = mesh_.xyRoute(r, e->pkt.finalDst);
            PL_ASSERT(!f.path.empty() && f.dirs.front() == out,
                      "reference: route disagrees with launch port");
            f.idx = 0;
            // Stop at the next interim node (every maxHopsPerCycle
            // routers, Section 2.1.3; capped by the control-program
            // group budget on long routes) or at the final router.
            f.stopIdx = core::programStopHops(
                            f.path.size(), params_.maxHopsPerCycle) -
                        1;
            claim(r, out);
            flights.push_back(std::move(f));
        }
    }
    return flights;
}

int
ReferenceNetwork::unitsOutstanding(const RefPacket &pkt) const
{
    if (!pkt.multicast)
        return 1;
    // Remaining taps minus those the dedup watermark will suppress:
    // identical to the optimized network's
    // total - max(tapCursor, dedupBelow).
    const uint32_t suppressed =
        pkt.dedupBelow > pkt.tapIndex ? pkt.dedupBelow - pkt.tapIndex
                                      : 0;
    const uint32_t remaining = static_cast<uint32_t>(pkt.taps.size());
    return suppressed >= remaining
               ? 0
               : static_cast<int>(remaining - suppressed);
}

void
ReferenceNetwork::loseUnits(int units)
{
    if (units <= 0)
        return;
    events_.lostUnits += static_cast<uint64_t>(units);
    PL_ASSERT(outstanding_ >= static_cast<uint64_t>(units),
              "reference: lost more units than outstanding");
    outstanding_ -= static_cast<uint64_t>(units);
}

bool
ReferenceNetwork::handleArrival(RefFlight &f)
{
    const NodeId here = f.path[f.idx];

    if (failed_[static_cast<size_t>(here)] != 0) {
        // Hard-failed router: the packet black-holes and the holder's
        // slot frees as a success (no drop signal ever returns).
        ++events_.faultDeadArrivals;
        loseUnits(unitsOutstanding(f.pkt));
        pendingOutcomes_.push_back(
            RefOutcome{f.launchRouter, f.pkt.branchId, false, {}});
        return true;
    }

    if (f.pkt.multicast && !f.pkt.taps.empty() &&
        f.pkt.taps.front() == here) {
        // Broadcast tap: a copy splits off to this node (2.1.4). The
        // tap happens on arrival, before any blocking downstream, and
        // stays served across a later drop of this branch. It may be
        // suppressed as a duplicate (dropper-ID corruption replay) or
        // lost to a missed-receive fault.
        if (f.pkt.tapIndex < f.pkt.dedupBelow) {
            f.pkt.taps.pop_front();
            ++f.pkt.tapIndex;
            ++events_.duplicatesSuppressed;
        } else if (core::faultRoll(
                       params_.faults,
                       params_.faults.missedReceiveRate,
                       core::FaultKind::MissedReceive,
                       f.pkt.branchId, static_cast<uint64_t>(cycle_),
                       static_cast<uint64_t>(here))) {
            f.pkt.taps.pop_front();
            ++f.pkt.tapIndex;
            ++events_.faultMissedReceives;
            loseUnits(1);
        } else {
            deliver(f.pkt, here);
            f.pkt.taps.pop_front();
            ++f.pkt.tapIndex;
            ++events_.tapReceives;
        }
    }

    if (f.idx != f.stopIdx)
        return false;

    if (f.idx + 1 == f.path.size()) {
        // Final router of the packet/branch. A multicast final was
        // just delivered by its tap; a unicast delivers here.
        if (!f.pkt.multicast) {
            PL_ASSERT(here == f.pkt.finalDst,
                      "reference: unicast final at wrong node");
            if (core::faultRoll(params_.faults,
                                params_.faults.missedReceiveRate,
                                core::FaultKind::MissedReceive,
                                f.pkt.branchId,
                                static_cast<uint64_t>(cycle_),
                                static_cast<uint64_t>(here))) {
                ++events_.faultMissedReceives;
                loseUnits(1);
            } else {
                deliver(f.pkt, here);
            }
        }
        ++events_.receives;
        pendingOutcomes_.push_back(
            RefOutcome{f.launchRouter, f.pkt.branchId, false, {}});
        return true;
    }
    // Interim node: buffer here and assume responsibility.
    receiveOrDrop(f, true);
    return true;
}

void
ReferenceNetwork::receiveOrDrop(RefFlight &f, bool interim)
{
    const NodeId here = f.path[f.idx];
    const Port in = opposite(f.dirs[f.idx]);
    if (hasSpace(here, in)) {
        ++events_.receives;
        ++events_.bufferWrites;
        if (interim)
            ++pl_.interimAccepts;
        else
            ++pl_.blockedBuffered;
        pushEntry(here, in, f.pkt, cycle_ + 1);
        pendingOutcomes_.push_back(
            RefOutcome{f.launchRouter, f.pkt.branchId, false, {}});
    } else if (core::faultRoll(params_.faults,
                               params_.faults.dropSignalLossRate,
                               core::FaultKind::DropSignalLoss,
                               f.pkt.branchId,
                               static_cast<uint64_t>(cycle_),
                               static_cast<uint64_t>(here))) {
        // Drop with the return signal lost: no reverse links latch,
        // the holder frees the slot as a success, and the packet's
        // undelivered units are lost.
        ++events_.drops;
        ++pl_.drops;
        ++events_.dropSignalsLost;
        loseUnits(unitsOutstanding(f.pkt));
        pendingOutcomes_.push_back(
            RefOutcome{f.launchRouter, f.pkt.branchId, false, {}});
    } else {
        // Drop: the return signal retraces every link the packet
        // crossed this cycle plus the final link into this router.
        ++events_.drops;
        ++pl_.drops;
        const int signal_hops =
            static_cast<int>(f.crossed.size()) + 1;
        events_.dropSignalHops += static_cast<uint64_t>(signal_hops);
        for (const auto &[router, out] : f.crossed) {
            // Footnote 4: return paths of a cycle never overlap.
            for (const auto &[ur, up] : dropSignalLinks_) {
                if (ur == router && up == portIndex(out))
                    fatal("reference: overlapping drop-signal return "
                          "paths in one cycle");
            }
            dropSignalLinks_.emplace_back(router, portIndex(out));
        }
        pendingOutcomes_.push_back(
            RefOutcome{f.launchRouter, f.pkt.branchId, true, f.pkt});
    }
}

void
ReferenceNetwork::propagate(std::vector<RefFlight> flights)
{
    // The wavefront advances one hop per sub-step for every active
    // flight; contested output ports resolve per sub-step with
    // straight-over-turn priority (Section 2.2, footnote 3).
    std::vector<size_t> active(flights.size());
    for (size_t i = 0; i < flights.size(); ++i)
        active[i] = i;

    struct Req {
        size_t flight = 0;
        bool straight = false;
        bool boosted = false;
    };

    while (!active.empty()) {
        // Arrival-side actions (taps, interim stops, finals) first;
        // survivors request their next output port.
        std::map<std::pair<NodeId, int>, std::vector<Req>> groups;
        for (size_t i : active) {
            RefFlight &f = flights[i];
            if (handleArrival(f))
                continue;
            if (core::faultRoll(params_.faults,
                                params_.faults.misTurnRate,
                                core::FaultKind::MisTurn,
                                f.pkt.branchId,
                                static_cast<uint64_t>(cycle_),
                                static_cast<uint64_t>(f.path[f.idx]))) {
                // Mis-tuned pass resonator: the packet diverts into
                // this router's buffer (or drops) instead of passing.
                ++events_.faultMisTurns;
                receiveOrDrop(f, false);
                continue;
            }
            const NodeId router = f.path[f.idx];
            const Port out = f.dirs[f.idx + 1];
            groups[{router, portIndex(out)}].push_back(
                Req{i, f.dirs[f.idx + 1] == f.dirs[f.idx],
                    f.pkt.boosted});
        }

        // Resolve each contested (router, output port) in ascending
        // order; within a group, requests keep arrival order.
        std::vector<size_t> next;
        for (auto &[key, members] : groups) {
            const NodeId router = key.first;
            const Port out = portFromIndex(key.second);

            size_t winner = members.size(); // none
            if (!claimed(router, out)) {
                const auto rank = [&](const Req &r) {
                    const Port in = opposite(
                        flights[r.flight].dirs[flights[r.flight].idx]);
                    if (params_.opticalArbitration ==
                        core::OpticalArbitration::FixedPriority) {
                        // Straight beats turns; ties by port order.
                        // An AgeBoost-promoted packet ranks as
                        // straight (DESIGN.md §14).
                        return std::make_pair(
                            r.straight || r.boosted ? 0 : 1,
                            portIndex(in));
                    }
                    // Rotating input-port priority (ablation).
                    const int start =
                        static_cast<int>(cycle_ % kMeshPorts);
                    return std::make_pair(
                        0, (portIndex(in) - start + kMeshPorts) %
                               kMeshPorts);
                };
                winner = 0;
                for (size_t k = 1; k < members.size(); ++k) {
                    if (rank(members[k]) < rank(members[winner]))
                        winner = k;
                }
            }

            for (size_t k = 0; k < members.size(); ++k) {
                RefFlight &f = flights[members[k].flight];
                if (k == winner) {
                    claim(router, out);
                    ++events_.passTraversals;
                    f.crossed.emplace_back(router, out);
                    ++f.idx;
                    next.push_back(members[k].flight);
                } else {
                    receiveOrDrop(f, false);
                }
            }
        }
        active = std::move(next);
    }
}

void
ReferenceNetwork::step()
{
    deliveries_.clear();
    claimedPorts_.clear();
    dropSignalLinks_.clear();

    resolveOutcomes();
    nicToLocalQueues();
    propagate(launchPhase());

    events_.routerCycles += static_cast<uint64_t>(mesh_.nodeCount());
    ++cycle_;
}

} // namespace phastlane::check
