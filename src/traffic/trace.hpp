/**
 * @file
 * Trace file support. The paper drives both simulators from the same
 * per-node packet-injection trace files (Section 4); we provide a
 * plain-text format that either network driver can replay, plus a
 * recorder that captures a workload into a trace.
 *
 * Format: one record per line,
 *   <cycle> <src> <dst|-1 for broadcast> <kind> <tag>
 * sorted by cycle; '#' starts a comment.
 */

#ifndef PHASTLANE_TRAFFIC_TRACE_HPP
#define PHASTLANE_TRAFFIC_TRACE_HPP

#include <string>
#include <vector>

#include "net/network.hpp"

namespace phastlane::traffic {

/** One trace record. */
struct TraceRecord {
    Cycle cycle = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode; ///< kInvalidNode encodes broadcast
    MessageKind kind = MessageKind::Synthetic;
    uint64_t tag = 0;

    bool broadcast() const { return dst == kInvalidNode; }
    bool operator==(const TraceRecord &) const = default;
};

/**
 * Validate one record: src must be a real node, dst a real node or
 * the kInvalidNode broadcast sentinel, kind a defined MessageKind.
 * When @p node_count > 0 src/dst must also lie inside [0, node_count).
 * Returns an error description, or "" when the record is valid.
 */
std::string validateTraceRecord(const TraceRecord &r, int node_count);

/**
 * Write @p records to @p path; fatal() on I/O errors, including
 * short writes (full disk) detected via fprintf/fclose returns.
 */
void writeTrace(const std::string &path,
                const std::vector<TraceRecord> &records);

/**
 * Read a text trace file; fatal() (with the offending line number) on
 * parse errors, out-of-order cycles, trailing garbage, or records
 * failing validateTraceRecord() against @p node_count (pass the
 * target network's nodeCount(); 0 skips the range check but still
 * rejects structurally invalid ids such as dst < -1). Lines of any
 * length are handled.
 */
std::vector<TraceRecord> readTrace(const std::string &path,
                                   int node_count = 0);

/** Results of a trace replay. */
struct TraceReplayResult {
    Cycle completionCycle = 0; ///< cycle the replay loop stopped
    uint64_t messages = 0;
    uint64_t deliveries = 0;
    double avgLatency = 0.0; ///< creation -> delivery

    /** True when max_cycles elapsed before the network drained; the
     *  other fields then describe a truncated run, not a completed
     *  one. */
    bool hitCycleLimit = false;

    /** Delivery units still owed plus messages never injected or
     *  released when the limit was hit (0 on a completed replay). */
    uint64_t outstanding = 0;
};

/**
 * Replay a trace against a network: each record is offered at its
 * cycle (or as soon afterwards as the NIC has room) and the run
 * continues until every delivery completes or @p max_cycles elapse
 * (check TraceReplayResult::hitCycleLimit).
 *
 * Latency accounting: a packet's createdAt (the latency base) is the
 * cycle the record was *released* to the NIC queue, which is its trace
 * cycle unless the NIC back-pressured earlier records past it -- under
 * saturation avgLatency measures queueing from release, not from the
 * nominal trace timestamp.
 *
 * Records are validated against net.nodeCount() up front; fatal() on
 * out-of-range src/dst (a negative dst other than kInvalidNode used to
 * replay as a unicast to a negative node and index out of bounds).
 */
TraceReplayResult replayTrace(Network &net,
                              const std::vector<TraceRecord> &records,
                              Cycle max_cycles = 10000000);

/**
 * Pull-based record source consumed by streaming replay
 * (sim::replayTraceStream) and the simulation server: yields
 * cycle-sorted records one at a time so arbitrarily long traces never
 * materialize in memory.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record into @p out; false at end-of-stream. */
    virtual bool next(TraceRecord &out) = 0;
};

/** TraceSource over an in-memory record vector (not owned). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(const std::vector<TraceRecord> &records)
        : records_(records)
    {
    }

    bool next(TraceRecord &out) override
    {
        if (next_ >= records_.size())
            return false;
        out = records_[next_++];
        return true;
    }

  private:
    const std::vector<TraceRecord> &records_;
    size_t next_ = 0;
};

/**
 * A transparent Network decorator that records every accepted
 * injection as a trace record -- the paper's methodology of driving
 * both simulators from the same trace files, applied to any workload
 * driver: run the workload once through a recorder, write the trace,
 * then replay it bit-identically on every configuration.
 */
class RecordingNetwork : public Network
{
  public:
    explicit RecordingNetwork(Network &inner) : inner_(inner) {}

    int nodeCount() const override { return inner_.nodeCount(); }
    const MeshTopology &mesh() const override { return inner_.mesh(); }
    Cycle now() const override { return inner_.now(); }
    bool nicHasSpace(NodeId n) const override
    {
        return inner_.nicHasSpace(n);
    }
    bool inject(const Packet &pkt) override;
    void step() override { inner_.step(); }
    const std::vector<Delivery> &deliveries() const override
    {
        return inner_.deliveries();
    }
    uint64_t inFlight() const override { return inner_.inFlight(); }
    const NetworkCounters &counters() const override
    {
        return inner_.counters();
    }

    /** Everything accepted so far, in injection order. */
    const std::vector<TraceRecord> &recorded() const
    {
        return records_;
    }

  private:
    Network &inner_;
    std::vector<TraceRecord> records_;
};

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_TRACE_HPP
