# Empty compiler generated dependencies file for test_electrical_vctm.
# This may be replaced when dependencies are built.
