/**
 * @file
 * Fault-injection and graceful-degradation tests (DESIGN.md §10):
 * deterministic fault draws, zero-rate bit-identity, exactly-once-or-
 * accounted-lost delivery under every fault kind, drop-storm soaks
 * with single-entry buffers, multicast partial-drop retransmission
 * under lost drop signals, and the end-to-end reliability layer.
 */

#include <gtest/gtest.h>
#include <map>
#include <set>

#include "check/differential.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/observer.hpp"
#include "core/reliability.hpp"

namespace phastlane::core {
namespace {

Packet
unicast(PacketId id, NodeId src, NodeId dst)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

Packet
broadcast(PacketId id, NodeId src)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.broadcast = true;
    return p;
}

PhastlaneParams
smallMesh()
{
    PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    return p;
}

/** Drive random traffic for @p cycles, then drain; returns false on
 *  livelock (network never quiesced). Deliveries and accepted units
 *  are accumulated into the out-params. */
bool
soak(PhastlaneNetwork &net, double rate, double bcast_fraction,
     Cycle cycles, uint64_t seed, uint64_t &accepted_units,
     std::vector<Delivery> &deliveries, Cycle max_drain = 200000)
{
    Rng rng(seed);
    PacketId next_id = 1;
    const int nodes = net.nodeCount();
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (!rng.bernoulli(rate))
                continue;
            Packet p = rng.bernoulli(bcast_fraction)
                           ? broadcast(next_id, n)
                           : unicast(next_id, n,
                                     static_cast<NodeId>(rng.uniformInt(
                                         0, nodes - 1)));
            if (!p.broadcast && p.dst == p.src)
                p.dst = static_cast<NodeId>((p.src + 1) % nodes);
            if (net.inject(p)) {
                ++next_id;
                accepted_units += static_cast<uint64_t>(
                    p.deliveryCount(nodes));
            }
        }
        net.step();
        for (const auto &d : net.deliveries())
            deliveries.push_back(d);
    }
    for (Cycle c = 0; c < max_drain; ++c) {
        if (net.inFlight() == 0 && net.bufferedPackets() == 0 &&
            net.nicQueuedPackets() == 0)
            break;
        net.step();
        for (const auto &d : net.deliveries())
            deliveries.push_back(d);
    }
    return net.inFlight() == 0 && net.bufferedPackets() == 0 &&
           net.nicQueuedPackets() == 0;
}

/** No (message, node) pair may be served twice. */
void
expectExactlyOnce(const std::vector<Delivery> &deliveries)
{
    std::set<std::pair<PacketId, NodeId>> seen;
    for (const auto &d : deliveries) {
        EXPECT_TRUE(seen.insert({d.packet.id, d.node}).second)
            << "packet " << d.packet.id << " delivered twice at node "
            << d.node;
    }
}

TEST(FaultRoll, DeterministicAndRateEdges)
{
    PhastlaneParams::FaultInjection fi;
    fi.faultSeed = 1234;
    // Zero (and negative) rates never fire, regardless of the seed.
    EXPECT_FALSE(faultRoll(fi, 0.0, FaultKind::MisTurn, 1, 2, 3));
    EXPECT_FALSE(faultRoll(fi, -1.0, FaultKind::MisTurn, 1, 2, 3));
    // Rate 1 always fires.
    EXPECT_TRUE(faultRoll(fi, 1.0, FaultKind::MisTurn, 1, 2, 3));
    // Same key, same verdict; the draw is a pure function.
    const bool a = faultRoll(fi, 0.5, FaultKind::DropSignalLoss, 7,
                             100, 3);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(faultRoll(fi, 0.5, FaultKind::DropSignalLoss, 7,
                            100, 3),
                  a);
    // The empirical rate tracks the requested probability.
    int hits = 0;
    for (uint64_t k = 0; k < 10000; ++k)
        hits += faultRoll(fi, 0.3, FaultKind::MissedReceive, k, 5, 9);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(FaultInjectionNet, ZeroRatesAreBitIdenticalToFaultFree)
{
    // A nonzero faultSeed with all rates at zero must not perturb the
    // simulation in any way (no RNG draws, no event reordering).
    PhastlaneParams clean = smallMesh();
    PhastlaneParams seeded = smallMesh();
    seeded.faults.faultSeed = 0xdeadbeef;
    ASSERT_FALSE(seeded.faults.anyRate());

    PhastlaneNetwork a(clean), b(seeded);
    uint64_t units_a = 0, units_b = 0;
    std::vector<Delivery> dels_a, dels_b;
    ASSERT_TRUE(soak(a, 0.3, 0.2, 300, 11, units_a, dels_a));
    ASSERT_TRUE(soak(b, 0.3, 0.2, 300, 11, units_b, dels_b));

    ASSERT_EQ(dels_a.size(), dels_b.size());
    for (size_t i = 0; i < dels_a.size(); ++i) {
        EXPECT_EQ(dels_a[i].packet.id, dels_b[i].packet.id);
        EXPECT_EQ(dels_a[i].node, dels_b[i].node);
        EXPECT_EQ(dels_a[i].at, dels_b[i].at);
    }
    EXPECT_EQ(a.counters().deliveries, b.counters().deliveries);
    EXPECT_EQ(a.phastlaneCounters().drops,
              b.phastlaneCounters().drops);
    EXPECT_EQ(a.phastlaneCounters().launches,
              b.phastlaneCounters().launches);
    EXPECT_EQ(b.events().lostUnits, 0u);
    EXPECT_EQ(b.events().dropSignalsLost, 0u);
}

TEST(FaultInjectionNet, RouterFailuresAreDeterministic)
{
    PhastlaneParams p = smallMesh();
    p.faults.routerFailRate = 0.3;
    p.faults.faultSeed = 99;
    PhastlaneNetwork a(p), b(p);
    int failed = 0;
    for (NodeId n = 0; n < a.nodeCount(); ++n) {
        EXPECT_EQ(a.routerFailed(n), b.routerFailed(n));
        failed += a.routerFailed(n);
    }
    // Statistically certain for 16 nodes at rate 0.3 with this seed.
    EXPECT_GT(failed, 0);
    EXPECT_LT(failed, a.nodeCount());

    // A different seed draws a different failure set (for this pair
    // of seeds; checked, not assumed).
    PhastlaneParams q = p;
    q.faults.faultSeed = 100;
    PhastlaneNetwork c(q);
    bool any_difference = false;
    for (NodeId n = 0; n < a.nodeCount(); ++n)
        any_difference |= a.routerFailed(n) != c.routerFailed(n);
    EXPECT_TRUE(any_difference);
}

TEST(FaultInjectionNet, DeadSourceAcceptsAndAccountsLoss)
{
    PhastlaneParams p = smallMesh();
    p.faults.routerFailRate = 1.0; // every router dead
    PhastlaneNetwork net(p);
    ASSERT_TRUE(net.routerFailed(0));
    ASSERT_TRUE(net.inject(unicast(1, 0, 5)));
    ASSERT_TRUE(net.inject(broadcast(2, 3)));
    // Units are lost immediately at accept; nothing enters the NIC.
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(net.nicQueuedPackets(), 0u);
    EXPECT_EQ(net.counters().messagesAccepted, 2u);
    EXPECT_EQ(net.events().lostUnits,
              1u + static_cast<uint64_t>(net.nodeCount() - 1));
    net.step();
    EXPECT_TRUE(net.deliveries().empty());
}

TEST(FaultInjectionNet, DeadRouterBlackHolesTraffic)
{
    PhastlaneParams p = smallMesh();
    p.faults.routerFailRate = 0.25;
    p.faults.faultSeed = 7;
    PhastlaneNetwork net(p);
    uint64_t accepted_units = 0;
    std::vector<Delivery> dels;
    ASSERT_TRUE(soak(net, 0.2, 0.2, 400, 3, accepted_units, dels))
        << "network livelocked with dead routers";
    expectExactlyOnce(dels);
    EXPECT_GT(net.events().faultDeadArrivals, 0u);
    EXPECT_GT(net.events().lostUnits, 0u);
    // Unit conservation at quiescence: every accepted delivery unit
    // was either delivered or accounted lost.
    EXPECT_EQ(accepted_units,
              net.counters().deliveries + net.events().lostUnits);
}

TEST(FaultInjectionNet, DropStormSoakSingleEntryBuffers)
{
    // bufferEntries = 1 at high injection: drops and retransmissions
    // dominate. Assert no livelock and exact drop-signal accounting.
    PhastlaneParams p = smallMesh();
    p.routerBufferEntries = 1;
    PhastlaneNetwork net(p);
    uint64_t accepted_units = 0;
    std::vector<Delivery> dels;
    ASSERT_TRUE(soak(net, 0.5, 0.25, 500, 21, accepted_units, dels))
        << "drop storm livelocked";
    expectExactlyOnce(dels);
    EXPECT_GT(net.phastlaneCounters().drops, 0u);
    // Without signal loss every drop is exactly one retransmission.
    EXPECT_EQ(net.phastlaneCounters().drops,
              net.phastlaneCounters().retransmissions);
    EXPECT_EQ(accepted_units, net.counters().deliveries);
    EXPECT_EQ(net.events().lostUnits, 0u);
}

TEST(FaultInjectionNet, DropStormWithSignalLossAccountsEveryDrop)
{
    PhastlaneParams p = smallMesh();
    p.routerBufferEntries = 1;
    p.faults.dropSignalLossRate = 0.3;
    p.faults.faultSeed = 5;
    PhastlaneNetwork net(p);
    uint64_t accepted_units = 0;
    std::vector<Delivery> dels;
    ASSERT_TRUE(soak(net, 0.5, 0.25, 500, 22, accepted_units, dels))
        << "drop storm with lost signals livelocked";
    expectExactlyOnce(dels);
    EXPECT_GT(net.events().dropSignalsLost, 0u);
    // Exact drop accounting at quiescence: every drop either returned
    // a signal (and was retransmitted) or lost it (units accounted).
    EXPECT_EQ(net.phastlaneCounters().drops,
              net.phastlaneCounters().retransmissions +
                  net.events().dropSignalsLost);
    EXPECT_EQ(accepted_units,
              net.counters().deliveries + net.events().lostUnits);
}

TEST(FaultInjectionNet, MulticastPartialDropRetransmitUnderSignalLoss)
{
    // Broadcasts with tiny buffers: branches drop after serving some
    // taps; lost drop signals strand the remainder, which must be
    // accounted lost (never double-delivered on retransmit).
    PhastlaneParams p = smallMesh();
    p.routerBufferEntries = 2;
    p.faults.dropSignalLossRate = 0.5;
    p.faults.faultSeed = 17;
    PhastlaneNetwork net(p);
    uint64_t accepted_units = 0;
    std::vector<Delivery> dels;
    ASSERT_TRUE(soak(net, 0.35, 1.0, 400, 23, accepted_units, dels));
    expectExactlyOnce(dels);
    EXPECT_GT(net.events().dropSignalsLost, 0u);
    EXPECT_GT(net.events().lostUnits, 0u);
    EXPECT_GT(net.phastlaneCounters().retransmissions, 0u);
    EXPECT_EQ(accepted_units,
              net.counters().deliveries + net.events().lostUnits);

    // Per-message accounting: delivered units never exceed the
    // addressed count for any single message.
    std::map<PacketId, int> per_message;
    for (const auto &d : dels)
        ++per_message[d.packet.id];
    for (const auto &[id, served] : per_message)
        EXPECT_LE(served, net.nodeCount() - 1) << "message " << id;
}

TEST(FaultInjectionNet, LockstepOracleAgreesUnderEveryFaultKind)
{
    // The reference network mirrors every fault draw; the lockstep
    // diff (deliveries, counters, fault events) must stay empty.
    PhastlaneParams p = smallMesh();
    p.routerBufferEntries = 2;
    p.faults.misTurnRate = 0.02;
    p.faults.missedReceiveRate = 0.03;
    p.faults.dropSignalLossRate = 0.15;
    p.faults.dropperIdCorruptRate = 0.25;
    p.faults.routerFailRate = 0.05;
    p.faults.faultSeed = 41;
    check::StreamConfig sc;
    sc.rate = 0.3;
    sc.broadcastFraction = 0.25;
    sc.cycles = 150;
    sc.seed = 9;
    const auto stream = check::makeStream(p, sc);
    const auto result = check::runLockstep(p, stream, 60000);
    EXPECT_TRUE(result.ok) << result.message;
}

TEST(ReliableNic, RecoversMissedReceives)
{
    PhastlaneParams p = smallMesh();
    p.faults.missedReceiveRate = 0.2;
    p.faults.faultSeed = 3;
    PhastlaneNetwork net(p);
    ReliableNicOptions opts;
    opts.baseTimeout = 64;
    opts.maxRetries = 12;
    ReliableNic rnic(net, opts);

    Rng rng(77);
    PacketId next_id = 1;
    uint64_t sent = 0;
    std::vector<Delivery> dels;
    for (Cycle c = 0; c < 400; ++c) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (!rng.bernoulli(0.05))
                continue;
            Packet pkt = rng.bernoulli(0.2)
                             ? broadcast(next_id, n)
                             : unicast(next_id, n,
                                       static_cast<NodeId>(
                                           (n + 5) % net.nodeCount()));
            if (rnic.send(pkt)) {
                ++next_id;
                ++sent;
            }
        }
        rnic.step();
        for (const auto &d : rnic.deliveries())
            dels.push_back(d);
    }
    for (int i = 0; i < 100000 && !(rnic.idle() && net.inFlight() == 0);
         ++i) {
        rnic.step();
        for (const auto &d : rnic.deliveries())
            dels.push_back(d);
    }
    ASSERT_TRUE(rnic.idle());
    const auto &st = rnic.stats();
    EXPECT_EQ(st.sends, sent);
    // Network-level units were lost...
    EXPECT_GT(net.events().lostUnits, 0u);
    EXPECT_GT(st.retransmits, 0u);
    // ...yet the application saw every message exactly once.
    EXPECT_EQ(st.completed + st.expired, sent);
    EXPECT_EQ(st.completed, sent) << "retries exhausted unexpectedly";
    expectExactlyOnce(dels);
    EXPECT_EQ(rnic.inFlight(), 0u);
}

TEST(ReliableNic, ExpiresAfterBoundedRetries)
{
    PhastlaneParams p = smallMesh();
    p.faults.routerFailRate = 1.0; // nothing can ever be delivered
    PhastlaneNetwork net(p);
    ReliableNicOptions opts;
    opts.baseTimeout = 8;
    opts.maxRetries = 3;
    opts.backoffShiftCap = 2;
    ReliableNic rnic(net, opts);
    ASSERT_TRUE(rnic.send(unicast(1, 0, 9)));
    ASSERT_TRUE(rnic.send(broadcast(2, 4)));
    for (int i = 0; i < 500 && !rnic.idle(); ++i)
        rnic.step();
    ASSERT_TRUE(rnic.idle());
    const auto &st = rnic.stats();
    EXPECT_EQ(st.expired, 2u);
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.retransmits, 3u * 2u);
    EXPECT_EQ(st.lostUnits,
              1u + static_cast<uint64_t>(net.nodeCount() - 1));
}

TEST(ReliableNic, AggressiveTimeoutsAreSuppressedAsDuplicates)
{
    // A timeout far below the network latency forces spurious
    // retransmits on a fault-free network; dedup keeps the delivered
    // stream exactly-once anyway.
    PhastlaneParams p = smallMesh();
    PhastlaneNetwork net(p);
    ReliableNicOptions opts;
    opts.baseTimeout = 1;
    opts.maxRetries = 6;
    ReliableNic rnic(net, opts);
    std::vector<Delivery> dels;
    ASSERT_TRUE(rnic.send(broadcast(1, 0)));
    for (int i = 0; i < 2000 && !(rnic.idle() && net.inFlight() == 0);
         ++i) {
        rnic.step();
        for (const auto &d : rnic.deliveries())
            dels.push_back(d);
    }
    ASSERT_TRUE(rnic.idle());
    expectExactlyOnce(dels);
    EXPECT_EQ(dels.size(), static_cast<size_t>(net.nodeCount() - 1));
    EXPECT_EQ(rnic.stats().completed, 1u);
    EXPECT_GT(rnic.stats().retransmits, 0u);
    EXPECT_GT(rnic.stats().duplicates + rnic.stats().late, 0u);
    // Delivered ids are rewritten back to the original.
    for (const auto &d : dels)
        EXPECT_EQ(d.packet.id, 1u);
}

TEST(ReliableNic, PassesThroughNonWireTraffic)
{
    PhastlaneParams p = smallMesh();
    PhastlaneNetwork net(p);
    ReliableNic rnic(net);
    // Inject around the layer; harvest must forward it untouched.
    ASSERT_TRUE(net.inject(unicast(42, 1, 2)));
    std::vector<Delivery> dels;
    for (int i = 0; i < 50 && net.inFlight() > 0; ++i) {
        rnic.step();
        for (const auto &d : rnic.deliveries())
            dels.push_back(d);
    }
    ASSERT_EQ(dels.size(), 1u);
    EXPECT_EQ(dels[0].packet.id, 42u);
    EXPECT_EQ(rnic.stats().sends, 0u);
}

} // namespace
} // namespace phastlane::core
