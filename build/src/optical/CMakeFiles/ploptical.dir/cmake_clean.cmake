file(REMOVE_RECURSE
  "CMakeFiles/ploptical.dir/area_model.cpp.o"
  "CMakeFiles/ploptical.dir/area_model.cpp.o.d"
  "CMakeFiles/ploptical.dir/devices.cpp.o"
  "CMakeFiles/ploptical.dir/devices.cpp.o.d"
  "CMakeFiles/ploptical.dir/loss.cpp.o"
  "CMakeFiles/ploptical.dir/loss.cpp.o.d"
  "CMakeFiles/ploptical.dir/power_model.cpp.o"
  "CMakeFiles/ploptical.dir/power_model.cpp.o.d"
  "CMakeFiles/ploptical.dir/scaling.cpp.o"
  "CMakeFiles/ploptical.dir/scaling.cpp.o.d"
  "CMakeFiles/ploptical.dir/timing.cpp.o"
  "CMakeFiles/ploptical.dir/timing.cpp.o.d"
  "libploptical.a"
  "libploptical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ploptical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
