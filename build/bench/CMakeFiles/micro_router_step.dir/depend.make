# Empty dependencies file for micro_router_step.
# This may be replaced when dependencies are built.
