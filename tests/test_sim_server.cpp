/**
 * @file
 * SimServer and streaming-replay tests (DESIGN.md §15): the served
 * run must be byte-identical to an offline replay of the canonically
 * merged traces no matter how client submissions interleave, chunk,
 * or retransmit; acknowledgements implement at-most-once injection
 * and inbox backpressure.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "sim/replay.hpp"
#include "sim/server.hpp"
#include "traffic/trace.hpp"

namespace phastlane::sim {
namespace {

using traffic::TraceRecord;

core::PhastlaneNetwork
makeNet()
{
    return core::PhastlaneNetwork(core::PhastlaneParams{});
}

/** Deterministic per-client trace: client c sends from nodes
 *  {c, c+8, ...} every few cycles. */
std::vector<TraceRecord>
clientTrace(int client, size_t n)
{
    std::vector<TraceRecord> t;
    uint64_t tag = static_cast<uint64_t>(client) * 100000 + 1;
    Cycle cycle = 0;
    for (size_t i = 0; i < n; ++i) {
        TraceRecord r;
        r.cycle = cycle;
        r.src = static_cast<NodeId>((client + 8 * i) % 64);
        r.dst = static_cast<NodeId>((r.src + 7 + client) % 64);
        if (r.dst == r.src)
            r.dst = (r.dst + 1) % 64;
        r.kind = MessageKind::Synthetic;
        r.tag = tag++;
        t.push_back(r);
        if (i % 3 == 2)
            cycle += 2;
    }
    return t;
}

/** The canonical (cycle, client id) merge the server must emulate. */
std::vector<TraceRecord>
canonicalMerge(const std::vector<std::vector<TraceRecord>> &traces)
{
    std::vector<TraceRecord> merged;
    std::vector<size_t> next(traces.size(), 0);
    for (;;) {
        size_t best = traces.size();
        for (size_t c = 0; c < traces.size(); ++c) {
            if (next[c] >= traces[c].size())
                continue;
            if (best == traces.size() ||
                traces[c][next[c]].cycle <
                    traces[best][next[best]].cycle)
                best = c;
        }
        if (best == traces.size())
            break;
        merged.push_back(traces[best][next[best]++]);
    }
    return merged;
}

std::string
offlineReport(const std::vector<TraceRecord> &records)
{
    auto net = makeNet();
    traffic::VectorTraceSource src(records);
    const ReplayStats stats = replayTraceStream(net, src);
    return formatReplayReport(stats, net);
}

/** Feed traces to a SimServer in @p chunk-record chunks, submitting
 *  clients round-robin with @p skew extra chunks for client 0 first,
 *  pumping between submissions. Returns the final report. */
std::string
servedReport(const std::vector<std::vector<TraceRecord>> &traces,
             size_t chunk, size_t skew,
             const ServerOptions &base = {})
{
    auto net = makeNet();
    ServerOptions opts = base;
    opts.expectedSessions = traces.size();
    SimServer server(net, opts);
    std::vector<size_t> next(traces.size(), 0);
    std::vector<uint64_t> seq(traces.size(), 0);
    std::vector<bool> finished(traces.size(), false);
    for (size_t c = 0; c < traces.size(); ++c)
        EXPECT_EQ(server.openSession(c), "");

    auto submitOne = [&](size_t c) {
        if (finished[c])
            return;
        if (next[c] >= traces[c].size()) {
            EXPECT_EQ(server.finish(c, ++seq[c]), "");
            finished[c] = true;
            return;
        }
        const size_t n =
            std::min(chunk, traces[c].size() - next[c]);
        const std::vector<TraceRecord> recs(
            traces[c].begin() + next[c],
            traces[c].begin() + next[c] + n);
        EXPECT_EQ(server.submit(c, ++seq[c], recs), "");
        next[c] += n;
    };

    for (size_t i = 0; i < skew; ++i)
        submitOne(0);
    while (!server.done()) {
        bool all = true;
        for (size_t c = 0; c < traces.size(); ++c) {
            submitOne(c);
            all = all && finished[c];
        }
        server.pump();
        server.takeReadyAcks();
        if (all && !server.done()) {
            // Everything submitted: pump() must finish the round.
            server.pump();
            EXPECT_TRUE(server.done());
            if (!server.done())
                return "stuck";
        }
    }
    return formatReplayReport(server.stats(), server.net());
}

TEST(SimServer, SingleClientMatchesOfflineReplay)
{
    const auto trace = clientTrace(0, 500);
    EXPECT_EQ(servedReport({trace}, 64, 0), offlineReport(trace));
}

TEST(SimServer, TwoClientsMatchOfflineMergeRegardlessOfChunking)
{
    const std::vector<std::vector<TraceRecord>> traces = {
        clientTrace(0, 400), clientTrace(1, 300)};
    const std::string expected =
        offlineReport(canonicalMerge(traces));
    // Different chunk sizes and submission skews interleave the
    // arrivals differently; the result must not change.
    EXPECT_EQ(servedReport(traces, 32, 0), expected);
    EXPECT_EQ(servedReport(traces, 7, 0), expected);
    EXPECT_EQ(servedReport(traces, 64, 3), expected);
    EXPECT_EQ(servedReport(traces, 1, 5), expected);
}

TEST(SimServer, ThreeClientsMatchOfflineMerge)
{
    const std::vector<std::vector<TraceRecord>> traces = {
        clientTrace(0, 200), clientTrace(1, 150),
        clientTrace(2, 250)};
    const std::string expected =
        offlineReport(canonicalMerge(traces));
    EXPECT_EQ(servedReport(traces, 16, 0), expected);
    EXPECT_EQ(servedReport(traces, 5, 4), expected);
}

TEST(SimServer, DuplicateSubmitIsReackedNotReinjected)
{
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 1;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(9), "");
    const auto trace = clientTrace(0, 10);
    EXPECT_EQ(server.submit(9, 1, trace), "");
    EXPECT_EQ(server.acceptedRecords(9), 10u);
    // A retransmit (the ack was lost) must be re-acked, flagged as a
    // duplicate, and not double-inject.
    EXPECT_EQ(server.submit(9, 1, trace), "");
    EXPECT_EQ(server.acceptedRecords(9), 10u);
    const auto acks = server.takeReadyAcks();
    ASSERT_EQ(acks.size(), 2u);
    EXPECT_FALSE(acks[0].duplicate);
    EXPECT_TRUE(acks[1].duplicate);
    EXPECT_EQ(acks[1].seq, 1u);

    EXPECT_EQ(server.finish(9, 2), "");
    while (!server.done())
        server.pump();
    EXPECT_EQ(server.stats().messages, 10u);
}

TEST(SimServer, SequenceGapAndRegressionAreErrors)
{
    auto net = makeNet();
    SimServer server(net);
    EXPECT_EQ(server.openSession(1), "");
    const auto trace = clientTrace(0, 4);
    EXPECT_NE(server.submit(1, 2, trace), ""); // gap: expected 1
    EXPECT_EQ(server.submit(1, 1, trace), "");
    // Cycle regression across chunks violates the watermark promise.
    std::vector<TraceRecord> early;
    early.push_back({0, 0, 1, MessageKind::Synthetic, 99});
    if (trace.back().cycle > 0)
        EXPECT_NE(server.submit(1, 2, early), "");
    // Unknown client and double-open are rejected too.
    EXPECT_NE(server.submit(7, 1, trace), "");
    EXPECT_NE(server.openSession(1), "");
}

TEST(SimServer, InvalidRecordsAreRejected)
{
    auto net = makeNet();
    SimServer server(net);
    EXPECT_EQ(server.openSession(0), "");
    std::vector<TraceRecord> bad;
    bad.push_back({0, 1, 500, MessageKind::Synthetic, 1});
    EXPECT_NE(server.submit(0, 1, bad), "");
    bad[0] = {0, 1, -5, MessageKind::Synthetic, 1};
    EXPECT_NE(server.submit(0, 1, bad), "");
    std::vector<TraceRecord> unsorted;
    unsorted.push_back({5, 0, 1, MessageKind::Synthetic, 1});
    unsorted.push_back({2, 1, 2, MessageKind::Synthetic, 2});
    EXPECT_NE(server.submit(0, 1, unsorted), "");
}

TEST(SimServer, WatermarkGatesTheSimulation)
{
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 2;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(0), "");
    EXPECT_EQ(server.openSession(1), "");
    std::vector<TraceRecord> far;
    far.push_back({100, 0, 1, MessageKind::Synthetic, 1});
    EXPECT_EQ(server.submit(0, 1, far), "");
    // Client 1's watermark is still 0: the simulation must not
    // advance past cycle 0 (a cycle-0 record may still arrive).
    server.pump();
    EXPECT_EQ(net.now(), 0u);
    // Client 1 catches up to cycle 50: progress to there, no
    // further.
    std::vector<TraceRecord> mid;
    mid.push_back({50, 2, 3, MessageKind::Synthetic, 2});
    EXPECT_EQ(server.submit(1, 1, mid), "");
    server.pump();
    EXPECT_EQ(net.now(), 50u);
    // Both finish: the round drains.
    EXPECT_EQ(server.finish(0, 2), "");
    EXPECT_EQ(server.finish(1, 2), "");
    server.pump();
    EXPECT_TRUE(server.done());
    EXPECT_FALSE(server.hitCycleLimit());
    EXPECT_EQ(server.stats().deliveries, 2u);
    EXPECT_EQ(server.stats().outstanding, 0u);
}

TEST(SimServer, NothingAdvancesBeforeAllSessionsOpen)
{
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 2;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(0), "");
    std::vector<TraceRecord> recs;
    recs.push_back({0, 0, 1, MessageKind::Synthetic, 1});
    EXPECT_EQ(server.submit(0, 1, recs), "");
    EXPECT_EQ(server.finish(0, 2), "");
    server.pump();
    EXPECT_EQ(net.now(), 0u);
    EXPECT_FALSE(server.done());
}

TEST(SimServer, BackpressureDefersAcksUntilTheInboxDrains)
{
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 2;
    opts.inboxSoftCap = 4;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(0), "");
    EXPECT_EQ(server.openSession(1), "");
    // Client 0 floods records at future cycles; client 1 stays at
    // watermark 0, so nothing can release and the inbox grows.
    std::vector<TraceRecord> flood;
    for (int i = 0; i < 8; ++i)
        flood.push_back({static_cast<Cycle>(10 + i), 0,
                         static_cast<NodeId>(i + 1),
                         MessageKind::Synthetic,
                         static_cast<uint64_t>(i + 1)});
    EXPECT_EQ(server.submit(0, 1, flood), "");
    server.pump();
    auto acks = server.takeReadyAcks();
    EXPECT_TRUE(acks.empty()); // withheld: inbox over the soft cap
    // The withheld ack is visible to the transport so it can tell
    // the client "deferred, not lost" (the daemon's BUSY keepalive).
    EXPECT_EQ(server.deferredAckCount(0), 1u);
    EXPECT_EQ(server.deferredAckCount(99), 0u); // unknown client
    // A retransmit of the unacked chunk must stay silent (re-acking
    // would defeat the backpressure).
    EXPECT_EQ(server.submit(0, 1, flood), "");
    EXPECT_EQ(server.acceptedRecords(0), 8u);
    EXPECT_TRUE(server.takeReadyAcks().empty());
    // Client 1 advances past the flood; the inbox drains and the
    // deferred ack finally goes out.
    std::vector<TraceRecord> adv;
    adv.push_back({40, 2, 3, MessageKind::Synthetic, 100});
    EXPECT_EQ(server.submit(1, 1, adv), "");
    server.pump();
    acks = server.takeReadyAcks();
    bool acked0 = false;
    for (const auto &a : acks)
        acked0 |= a.clientId == 0 && a.seq == 1;
    EXPECT_TRUE(acked0);
    EXPECT_EQ(server.deferredAckCount(0), 0u);
}

TEST(SimServer, LaggardClientIsNeverDeadlockedByBackpressure)
{
    // A sole client whose inbox exceeds the cap is exactly the client
    // the simulation is waiting on: its ack must be promoted, not
    // withheld forever.
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 1;
    opts.inboxSoftCap = 2;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(0), "");
    std::vector<TraceRecord> flood;
    for (int i = 0; i < 6; ++i)
        flood.push_back({static_cast<Cycle>(100 + i), 0,
                         static_cast<NodeId>(i + 1),
                         MessageKind::Synthetic,
                         static_cast<uint64_t>(i + 1)});
    EXPECT_EQ(server.submit(0, 1, flood), "");
    server.pump();
    const auto acks = server.takeReadyAcks();
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0].seq, 1u);
}

TEST(SimServer, CycleLimitSurfacesOutstandingWork)
{
    auto net = makeNet();
    ServerOptions opts;
    opts.expectedSessions = 1;
    opts.maxCycles = 50;
    SimServer server(net, opts);
    EXPECT_EQ(server.openSession(0), "");
    std::vector<TraceRecord> recs;
    recs.push_back({0, 0, 1, MessageKind::Synthetic, 1});
    recs.push_back({500, 2, 3, MessageKind::Synthetic, 2});
    EXPECT_EQ(server.submit(0, 1, recs), "");
    EXPECT_EQ(server.finish(0, 2), "");
    while (!server.done())
        server.pump();
    EXPECT_TRUE(server.hitCycleLimit());
    const ReplayStats stats = server.stats();
    EXPECT_TRUE(stats.hitCycleLimit);
    EXPECT_GE(stats.outstanding, 1u); // the cycle-500 record
    EXPECT_EQ(stats.deliveries, 1u);
}

TEST(StreamingReplay, MatchesAcrossSourceKinds)
{
    // VectorTraceSource and chunk-at-a-time release must agree with
    // the legacy whole-vector replay on totals.
    const auto trace = clientTrace(0, 800);
    auto net1 = makeNet();
    traffic::VectorTraceSource src(trace);
    const ReplayStats s1 = replayTraceStream(net1, src);
    auto net2 = makeNet();
    const traffic::TraceReplayResult legacy =
        traffic::replayTrace(net2, trace);
    EXPECT_EQ(s1.messages, trace.size());
    EXPECT_EQ(s1.deliveries, legacy.deliveries);
    EXPECT_EQ(s1.completionCycle, legacy.completionCycle);
    EXPECT_DOUBLE_EQ(s1.avgLatency, legacy.avgLatency);
    EXPECT_FALSE(s1.hitCycleLimit);
}

TEST(StreamingReplay, SurfacesCycleLimit)
{
    std::vector<TraceRecord> trace;
    trace.push_back({0, 0, 1, MessageKind::Synthetic, 1});
    trace.push_back({5000, 2, 3, MessageKind::Synthetic, 2});
    auto net = makeNet();
    traffic::VectorTraceSource src(trace);
    ReplayOptions opts;
    opts.maxCycles = 100;
    const ReplayStats s = replayTraceStream(net, src, opts);
    EXPECT_TRUE(s.hitCycleLimit);
    EXPECT_GE(s.outstanding, 1u);
    EXPECT_EQ(s.deliveries, 1u);
}

} // namespace
} // namespace phastlane::sim
