#include "sim/experiment.hpp"

#include "common/log.hpp"
#include "core/network.hpp"

namespace phastlane::sim {

std::vector<BenchmarkRun>
runExperiment(const ExperimentSpec &spec)
{
    if (spec.configs.empty() || spec.benchmarks.empty())
        fatal("experiment needs at least one config and benchmark");

    std::vector<BenchmarkRun> runs;
    for (traffic::SplashProfile prof : spec.benchmarks) {
        if (spec.txnsPerNode > 0)
            prof.txnsPerNode = spec.txnsPerNode;
        const auto streams =
            traffic::generateStreams(prof, 64, spec.seed);
        for (const std::string &name : spec.configs) {
            const NetConfig cfg = makeConfig(name);
            auto net = cfg.make(spec.seed);
            traffic::CoherenceDriver driver(*net, streams,
                                            prof.mshrLimit);
            BenchmarkRun run;
            run.benchmark = prof.name;
            run.config = name;
            run.result = driver.run();
            run.power = cfg.power(
                *net, run.result.completionCycles
                          ? run.result.completionCycles
                          : 1);
            if (const auto *pl =
                    dynamic_cast<core::PhastlaneNetwork *>(
                        net.get())) {
                run.drops = pl->phastlaneCounters().drops;
            }
            runs.push_back(std::move(run));
        }
    }
    return runs;
}

const BenchmarkRun &
findRun(const std::vector<BenchmarkRun> &runs,
        const std::string &benchmark, const std::string &config)
{
    for (const auto &r : runs) {
        if (r.benchmark == benchmark && r.config == config)
            return r;
    }
    fatal("no run for benchmark '%s' and config '%s'",
          benchmark.c_str(), config.c_str());
}

double
speedupOf(const std::vector<BenchmarkRun> &runs,
          const std::string &benchmark, const std::string &config,
          const std::string &baseline)
{
    const BenchmarkRun &base = findRun(runs, benchmark, baseline);
    const BenchmarkRun &run = findRun(runs, benchmark, config);
    PL_ASSERT(run.result.completionCycles > 0, "zero-length run");
    return static_cast<double>(base.result.completionCycles) /
           static_cast<double>(run.result.completionCycles);
}

TextTable
speedupTable(const ExperimentSpec &spec,
             const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c);
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                speedupOf(runs, b.name, c, spec.baseline), 2));
        }
        t.addRow(std::move(row));
    }
    return t;
}

TextTable
powerTable(const ExperimentSpec &spec,
           const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c + " [W]");
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                findRun(runs, b.name, c).power.totalW, 1));
        }
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace phastlane::sim
