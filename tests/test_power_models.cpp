/**
 * @file
 * Power model tests: CACTI-lite behavior, breakdown consistency, and
 * the paper's optical-vs-electrical power relationships.
 */

#include <gtest/gtest.h>

#include "power/cacti_lite.hpp"
#include "power/electrical_power.hpp"
#include "power/optical_power.hpp"

namespace phastlane::power {
namespace {

TEST(CactiLite, AccessEnergyGrowsWithDepth)
{
    BufferEnergyModel small(1, 640);
    BufferEnergyModel mid(10, 640);
    BufferEnergyModel big(64, 640);
    EXPECT_LT(small.readPj(), mid.readPj());
    EXPECT_LT(mid.readPj(), big.readPj());
}

TEST(CactiLite, WriteCostsSlightlyMoreThanRead)
{
    BufferEnergyModel b(10, 640);
    EXPECT_GT(b.writePj(), b.readPj());
    EXPECT_LT(b.writePj(), 1.2 * b.readPj());
}

TEST(CactiLite, LeakageScalesWithCells)
{
    BufferEnergyModel a(10, 640);
    BufferEnergyModel b(20, 640);
    EXPECT_NEAR(b.leakageW() / a.leakageW(), 2.0, 1e-9);
    BufferEnergyModel c(10, 1280);
    EXPECT_NEAR(c.leakageW() / a.leakageW(), 2.0, 1e-9);
}

TEST(CactiLite, CalibrationPoint)
{
    // ~0.04 pJ/bit for a 10 x 640-bit buffer.
    BufferEnergyModel b(10, 640);
    EXPECT_NEAR(b.readPj() / 640.0, 0.04, 0.005);
}

double
sumParts(const PowerBreakdown &p)
{
    return p.bufferDynamicW + p.bufferLeakageW + p.crossbarW +
           p.linkW + p.allocW + p.ejectW + p.laserW + p.modulatorW +
           p.receiverW + p.resonatorW + p.staticW;
}

TEST(ElectricalPower, BreakdownSumsToTotal)
{
    electrical::ElectricalParams np;
    ElectricalPowerModel m(np);
    electrical::ElectricalEvents ev;
    ev.bufferWrites = 1000;
    ev.bufferReads = 900;
    ev.xbarTraversals = 900;
    ev.linkTraversals = 900;
    ev.vaGrants = 900;
    ev.saGrants = 900;
    ev.ejections = 200;
    const PowerBreakdown p = m.report(ev, 10000);
    EXPECT_NEAR(p.totalW, sumParts(p), 1e-12);
    EXPECT_GT(p.totalW, 0.0);
}

TEST(ElectricalPower, IdleNetworkStillLeaks)
{
    electrical::ElectricalParams np;
    ElectricalPowerModel m(np);
    const PowerBreakdown p = m.report({}, 10000);
    EXPECT_GT(p.staticW, 0.0);
    EXPECT_GT(p.bufferLeakageW, 0.0);
    EXPECT_EQ(p.crossbarW, 0.0);
    EXPECT_EQ(p.linkW, 0.0);
}

TEST(ElectricalPower, DynamicPowerScalesWithActivity)
{
    electrical::ElectricalParams np;
    ElectricalPowerModel m(np);
    electrical::ElectricalEvents lo, hi;
    lo.linkTraversals = 1000;
    hi.linkTraversals = 2000;
    const double plo = m.report(lo, 10000).linkW;
    const double phi = m.report(hi, 10000).linkW;
    EXPECT_NEAR(phi / plo, 2.0, 1e-9);
}

TEST(OpticalPower, BreakdownSumsToTotal)
{
    core::PhastlaneParams np;
    OpticalPowerModel m(np);
    core::OpticalEvents ev;
    ev.launches = 1000;
    ev.passTraversals = 2500;
    ev.receives = 800;
    ev.tapReceives = 600;
    ev.bufferWrites = 700;
    ev.bufferReads = 1000;
    ev.drops = 50;
    ev.dropSignalHops = 120;
    const PowerBreakdown p = m.report(ev, 10000);
    EXPECT_NEAR(p.totalW, sumParts(p), 1e-12);
}

TEST(OpticalPower, EightHopLaserCostsMore)
{
    // Paper Fig 11: the eight-hop network's transmit power rises
    // sharply relative to four/five hops.
    core::PhastlaneParams p4, p5, p8;
    p4.maxHopsPerCycle = 4;
    p5.maxHopsPerCycle = 5;
    p8.maxHopsPerCycle = 8;
    OpticalPowerModel m4(p4), m5(p5), m8(p8);
    EXPECT_LT(m4.laserFjPerBit(), m5.laserFjPerBit());
    EXPECT_LT(m5.laserFjPerBit(), m8.laserFjPerBit());
    EXPECT_GT(m8.laserFjPerBit() / m4.laserFjPerBit(), 2.0);
}

TEST(OpticalPower, BiggerBuffersLeakMore)
{
    core::PhastlaneParams p10, p64;
    p10.routerBufferEntries = 10;
    p64.routerBufferEntries = 64;
    OpticalPowerModel m10(p10), m64(p64);
    const PowerBreakdown b10 = m10.report({}, 1000);
    const PowerBreakdown b64 = m64.report({}, 1000);
    EXPECT_GT(b64.bufferLeakageW, b10.bufferLeakageW);
}

TEST(OpticalPower, ComparableTrafficUsesFarLessPowerThanElectrical)
{
    // Model the same unicast stream through both networks: N packets
    // over an average 5.33-hop path. Electrical: per-hop buffer
    // write+read, crossbar, link; optical: ~1.8 launches (segments)
    // with buffer ops at segment ends. The optical network must come
    // in far below the electrical one (paper: 80% less).
    const uint64_t n = 1000000;
    const uint64_t cycles = 100000;

    electrical::ElectricalParams ep;
    ElectricalPowerModel em(ep);
    electrical::ElectricalEvents ee;
    ee.bufferWrites = static_cast<uint64_t>(n * 5.33) + n;
    ee.bufferReads = static_cast<uint64_t>(n * 5.33);
    ee.xbarTraversals = static_cast<uint64_t>(n * 5.33);
    ee.linkTraversals = static_cast<uint64_t>(n * 5.33);
    ee.vaGrants = ee.saGrants = static_cast<uint64_t>(n * 5.33);
    ee.ejections = n;
    ee.routerCycles = 64 * cycles;

    core::PhastlaneParams op;
    OpticalPowerModel om(op);
    core::OpticalEvents oe;
    oe.launches = static_cast<uint64_t>(n * 1.8);
    oe.passTraversals = static_cast<uint64_t>(n * 3.5);
    oe.receives = static_cast<uint64_t>(n * 1.8);
    oe.bufferWrites = static_cast<uint64_t>(n * 1.8);
    oe.bufferReads = static_cast<uint64_t>(n * 1.8);
    oe.routerCycles = 64 * cycles;

    const double ew = em.report(ee, cycles).totalW;
    const double ow = om.report(oe, cycles).totalW;
    EXPECT_LT(ow, 0.35 * ew)
        << "optical " << ow << " W vs electrical " << ew << " W";
}

} // namespace
} // namespace phastlane::power
