# Empty compiler generated dependencies file for test_traffic_splash.
# This may be replaced when dependencies are built.
