# Empty dependencies file for ablation_wavefront.
# This may be replaced when dependencies are built.
