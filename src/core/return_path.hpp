/**
 * @file
 * The drop-signal return-path network (paper Section 2.1.2, Fig 2).
 *
 * As a packet moves through the network, every router it crosses
 * registers its translated Straight/Left/Right bits; in the next cycle
 * those latched bits configure a reverse optical connection from the
 * packet's output port back to its input port. A router that drops the
 * packet transmits an asserted Packet-Dropped signal plus its six-bit
 * Node ID along this pre-built path to the responsible source.
 *
 * The simulator resolves drop outcomes synchronously, so this module's
 * job is fidelity rather than control flow: it records each packet's
 * per-cycle reverse path, enforces the paper's footnote 4 invariant
 * ("each return path is unique and cannot overlap with the return path
 * of any other packet in the same cycle"), and accounts the signaling
 * hops for the power model.
 */

#ifndef PHASTLANE_CORE_RETURN_PATH_HPP
#define PHASTLANE_CORE_RETURN_PATH_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace phastlane::core {

/** One latched reverse connection at a router. */
struct ReturnHop {
    NodeId router = kInvalidNode;

    /** Port the packet entered by (the signal exits here). */
    Port packetIn = Port::Local;

    /** Port the packet left by (the signal enters here). */
    Port packetOut = Port::Local;
};

/**
 * Per-cycle registry of reverse paths.
 *
 * Usage per cycle: beginCycle(), then register every traversed hop
 * with registerHop() as the wavefront advances; signalDrop() walks a
 * dropped packet's path backwards, asserting that no reverse link is
 * claimed twice within the cycle.
 */
class ReturnPathRegistry
{
  public:
    explicit ReturnPathRegistry(int node_count);

    /** Reset the registry for a new cycle. */
    void beginCycle();

    /**
     * Latch the reverse connection for a packet that entered
     * @p router via @p in and left via @p out this cycle.
     */
    void registerHop(NodeId router, Port in, Port out);

    /**
     * Signal a drop back along the @p hops the packet took this cycle,
     * in traversal order (the drop happened at the router after the
     * last hop). Claims every reverse link; panics if any was already
     * claimed by another packet's drop signal this cycle (footnote 4
     * guarantees this cannot happen).
     *
     * @return the number of hops the 7-bit signal travels.
     */
    int signalDrop(const ReturnHop *hops, size_t count);

    int signalDrop(const std::vector<ReturnHop> &path)
    {
        return signalDrop(path.data(), path.size());
    }

    /** Reverse links claimed by drop signals this cycle. */
    uint64_t claimedLinks() const
    {
        return claimed_.load(std::memory_order_relaxed);
    }

    /** Reverse connections latched this cycle. */
    uint64_t latchedHops() const
    {
        return latched_.load(std::memory_order_relaxed);
    }

  private:
    size_t index(NodeId router, Port out) const;

    int nodeCount_;
    /**
     * Latched reverse connection per (router, packet-out port):
     * (epoch << 3) | (packetIn + 1). Entries from earlier cycles have
     * a stale epoch and read as unlatched, so beginCycle() is a
     * counter bump instead of a full-table fill (which showed up in
     * the step() hot path on large meshes).
     */
    std::vector<uint64_t> latch_;
    /** Epoch of the drop-signal claim per (router, packet-out port). */
    std::vector<uint64_t> used_;
    uint64_t epoch_ = 1;
    /**
     * Counters are relaxed atomics: under the sharded step(), hops are
     * latched and drops signaled concurrently from shard workers. The
     * table writes themselves are race-free (one packet per (router,
     * out) per cycle — footnote 4), but the tallies are shared sums.
     */
    std::atomic<uint64_t> claimed_{0};
    std::atomic<uint64_t> latched_{0};
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_RETURN_PATH_HPP
