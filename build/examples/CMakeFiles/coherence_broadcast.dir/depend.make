# Empty dependencies file for coherence_broadcast.
# This may be replaced when dependencies are built.
