file(REMOVE_RECURSE
  "CMakeFiles/test_common_config.dir/test_common_config.cpp.o"
  "CMakeFiles/test_common_config.dir/test_common_config.cpp.o.d"
  "test_common_config"
  "test_common_config.pdb"
  "test_common_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
