/**
 * @file
 * The flit type of the electrical baseline. Packets are single-flit
 * (head == tail), so a flit carries the whole message plus the
 * VCTM multicast routing state.
 */

#ifndef PHASTLANE_ELECTRICAL_FLIT_HPP
#define PHASTLANE_ELECTRICAL_FLIT_HPP

#include <memory>

#include "net/packet.hpp"

namespace phastlane::electrical {

/** Identifier of a VCTM multicast tree (one tree per source node). */
using TreeId = int32_t;

constexpr TreeId kNoTree = -1;

/**
 * One flit. Multicast replication copies the flit per branch; the
 * message payload is shared.
 */
struct EFlit {
    std::shared_ptr<const Packet> msg;

    /** Unique flit-instance id (replicas get fresh ids). */
    uint64_t flitId = 0;

    /** Unicast destination; kInvalidNode for tree multicast flits. */
    NodeId dst = kInvalidNode;

    /** Tree this flit belongs to (kNoTree for plain unicast). */
    TreeId tree = kNoTree;

    /**
     * True for a tree-setup unicast: it delivers its payload to dst
     * like a normal unicast but installs its output port into the
     * tree table at every router it leaves.
     */
    bool installsTree = false;

    /** True for a replicating tree-multicast flit. */
    bool treeMulticast = false;

    Cycle acceptedAt = 0;
    Cycle injectedAt = 0;
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_FLIT_HPP
