/**
 * @file
 * Technology energy constants at 16 nm / 1.0 V / 4 GHz.
 *
 * The paper models electrical dynamic + leakage power with CACTI for
 * buffers and the Balfour & Dally tiled-CMP component models, and
 * optical power in the manner of Kirman et al. We do not have those
 * tools' outputs, so we use analytic per-event energies of the same
 * functional form, calibrated so the relative results hold: the
 * electrical network lands in the tens of watts on SPLASH2-level
 * traffic and Phastlane's four/five-hop configurations consume ~80%
 * less (paper Section 5 / Fig 11). See DESIGN.md 3.3.
 */

#ifndef PHASTLANE_POWER_ENERGY_PARAMS_HPP
#define PHASTLANE_POWER_ENERGY_PARAMS_HPP

namespace phastlane::power {

/** Flit payload in bits (80-byte packet). */
constexpr double kFlitBits = 640.0;

/**
 * Electrical router/link per-event energies (pJ) and leakage.
 */
struct ElectricalEnergyParams {
    /** Crossbar traversal, pJ/bit (Balfour-Dally-style matrix
     *  crossbar with input speedup 4). */
    double xbarPjPerBit = 0.35;

    /** Inter-router link, pJ/bit/mm of optimally repeated wire. */
    double linkPjPerBitMm = 0.15;

    /** Link length = node pitch, mm (8x8 mesh of 3.5 mm^2 nodes). */
    double linkLengthMm = 1.87;

    /** VC / switch allocator energy per grant, pJ. */
    double allocPj = 8.0;

    /** Ejection path (no crossbar), pJ/bit. */
    double ejectPjPerBit = 0.08;

    /** Router control leakage (allocators, pipeline regs), W/router. */
    double controlLeakageW = 0.030;

    /** Clock distribution and misc per router, W. */
    double clockW = 0.020;
};

/**
 * Optical component energies.
 *
 * The laser term models the average optical input power per launch; it
 * grows with the network's provisioned hop limit because longer
 * maximum paths mean more worst-case crossings to overcome
 * (Fig 7 / Fig 11: the eight-hop network's transmit power rises
 * sharply). The average-power loss slope (dB per provisioned hop) is
 * gentler than the peak-provisioning slope because the laser power is
 * gated to the active wavelengths and most packets travel shorter
 * segments.
 */
struct OpticalEnergyParams {
    /** Modulator + driver energy, fJ/bit. */
    double modulatorFjPerBit = 20.0;

    /** Receiver + TIA energy, fJ/bit. */
    double receiverFjPerBit = 7.0;

    /** Laser wall-plug energy at zero loss, fJ/bit. */
    double laserBaseFjPerBit = 7.5;

    /** Effective average-power loss slope, dB per provisioned hop. */
    double avgLossDbPerHop = 1.2;

    /** Turn/receive resonator switching energy per pass, pJ. */
    double resonatorSwitchPj = 5.0;

    /** Drop-signal return path energy per hop, pJ (7-bit signal). */
    double dropSignalPjPerHop = 0.5;

    /** Ring trimming/heating static power per router, W. */
    double trimmingWPerRouter = 0.012;

    /** Electrical control (arbiters, SERDES bias) leakage, W/router. */
    double controlLeakageW = 0.005;
};

/**
 * A component-wise power report, in watts.
 */
struct PowerBreakdown {
    double bufferDynamicW = 0.0;
    double bufferLeakageW = 0.0;
    double crossbarW = 0.0;   ///< electrical crossbar (baseline only)
    double linkW = 0.0;       ///< electrical links (baseline only)
    double allocW = 0.0;      ///< allocators (baseline only)
    double ejectW = 0.0;
    double laserW = 0.0;      ///< optical only
    double modulatorW = 0.0;  ///< optical only
    double receiverW = 0.0;   ///< optical only
    double resonatorW = 0.0;  ///< optical only
    double staticW = 0.0;     ///< trimming/clock/control leakage
    double totalW = 0.0;
};

} // namespace phastlane::power

#endif // PHASTLANE_POWER_ENERGY_PARAMS_HPP
