#include "power/electrical_power.hpp"

#include "common/log.hpp"
#include "common/types.hpp"

namespace phastlane::power {

ElectricalPowerModel::ElectricalPowerModel(
    const electrical::ElectricalParams &net_params,
    const ElectricalEnergyParams &energy, double freq_ghz)
    : netParams_(net_params),
      energy_(energy),
      freqHz_(freq_ghz * 1e9),
      buffer_(net_params.vcDepth, static_cast<int>(kFlitBits))
{
}

PowerBreakdown
ElectricalPowerModel::report(const electrical::ElectricalEvents &ev,
                             uint64_t cycles) const
{
    PL_ASSERT(cycles > 0, "power report over zero cycles");
    const double seconds = static_cast<double>(cycles) / freqHz_;
    const auto pj_to_w = [&](double pj) {
        return pj * 1e-12 / seconds;
    };

    PowerBreakdown p;
    p.bufferDynamicW = pj_to_w(
        static_cast<double>(ev.bufferWrites) * buffer_.writePj() +
        static_cast<double>(ev.bufferReads) * buffer_.readPj());
    p.crossbarW = pj_to_w(static_cast<double>(ev.xbarTraversals) *
                          energy_.xbarPjPerBit * kFlitBits);
    p.linkW = pj_to_w(static_cast<double>(ev.linkTraversals) *
                      energy_.linkPjPerBitMm * energy_.linkLengthMm *
                      kFlitBits);
    p.allocW = pj_to_w(
        static_cast<double>(ev.vaGrants + ev.saGrants) *
        energy_.allocPj);
    p.ejectW = pj_to_w(static_cast<double>(ev.ejections) *
                       energy_.ejectPjPerBit * kFlitBits);

    // Leakage: VC buffers on every port plus router control/clock,
    // always on regardless of traffic.
    const int routers = netParams_.nodeCount();
    const double buffers_per_router =
        static_cast<double>(kAllPorts * netParams_.vcsPerPort);
    p.bufferLeakageW = buffer_.leakageW() * buffers_per_router *
                       static_cast<double>(routers);
    p.staticW = (energy_.controlLeakageW + energy_.clockW) *
                static_cast<double>(routers);

    p.totalW = p.bufferDynamicW + p.bufferLeakageW + p.crossbarW +
               p.linkW + p.allocW + p.ejectW + p.staticW;
    return p;
}

} // namespace phastlane::power
