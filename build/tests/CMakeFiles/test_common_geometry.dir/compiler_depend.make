# Empty compiler generated dependencies file for test_common_geometry.
# This may be replaced when dependencies are built.
