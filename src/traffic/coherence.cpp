#include "traffic/coherence.hpp"

#include "common/log.hpp"

namespace phastlane::traffic {

CoherenceDriver::CoherenceDriver(
    Network &net, const std::vector<std::vector<Txn>> &streams,
    int mshr_limit)
    : net_(net), streams_(streams), mshrLimit_(mshr_limit)
{
    if (mshr_limit < 1)
        fatal("MSHR limit must be at least 1");
    if (static_cast<int>(streams.size()) != net.nodeCount())
        fatal("stream count (%zu) does not match node count (%d)",
              streams.size(), net.nodeCount());
    nodes_.resize(streams.size());
}

bool
CoherenceDriver::allDone() const
{
    for (size_t n = 0; n < nodes_.size(); ++n) {
        const NodeState &st = nodes_[n];
        if (st.next < streams_[n].size() || st.outstanding > 0 ||
            !st.sendQueue.empty() || !st.responseQueue.empty()) {
            return false;
        }
    }
    return net_.inFlight() == 0;
}

CoherenceResult
CoherenceDriver::run(Cycle max_cycles)
{
    CoherenceResult res;
    RunningStat latency;
    RunningStat msg_latency;
    RunningStat req_latency;
    RunningStat round_trip;
    // Per-message completion tracking (message done at last delivery).
    struct MsgTrack {
        int remaining;
        Cycle createdAt;
    };
    std::unordered_map<uint64_t, MsgTrack> open_msgs;
    const Cycle start = net_.now();
    const Cycle deadline = start + max_cycles;

    while (net_.now() < deadline && !allDone()) {
        const Cycle now = net_.now();

        for (NodeId n = 0; n < net_.nodeCount(); ++n) {
            NodeState &st = nodes_[static_cast<size_t>(n)];
            const auto &stream = streams_[static_cast<size_t>(n)];

            // Release matured responses into the send queue (they
            // take priority over new transactions).
            while (!st.responseQueue.empty() &&
                   st.responseQueue.front().first <= now) {
                st.sendQueue.push_front(
                    std::move(st.responseQueue.front().second));
                st.responseQueue.pop_front();
            }

            // Issue the next transaction when the node is ready.
            if (st.next < stream.size() && now >= st.readyAt &&
                st.sendQueue.size() < kSendQueueLimit) {
                const Txn &t = stream[st.next];
                const bool is_request = t.type == TxnType::Request;
                if (!is_request || st.outstanding < mshrLimit_) {
                    Packet pkt;
                    pkt.id = nextPacketId_++;
                    pkt.src = n;
                    pkt.createdAt = now;
                    pkt.tag = nextTag_++;
                    switch (t.type) {
                      case TxnType::Request:
                        if (t.broadcastReq) {
                            pkt.broadcast = true;
                            ++res.broadcasts;
                        } else {
                            pkt.dst = t.peer;
                            ++res.unicasts;
                        }
                        pkt.kind = MessageKind::Request;
                        pending_[pkt.tag] = PendingRequest{
                            n, t.peer, t.serviceLatency, now};
                        ++st.outstanding;
                        break;
                      case TxnType::Invalidate:
                        pkt.broadcast = true;
                        pkt.kind = MessageKind::Invalidate;
                        ++res.broadcasts;
                        break;
                      case TxnType::Writeback:
                        pkt.dst = t.peer;
                        pkt.kind = MessageKind::Writeback;
                        ++res.unicasts;
                        break;
                    }
                    st.sendQueue.push_back(std::move(pkt));
                    st.readyAt = now + t.thinkAfter;
                    ++st.next;
                    ++res.transactions;
                }
            }

            // Pump the send queue into the NIC.
            while (!st.sendQueue.empty() &&
                   net_.inject(st.sendQueue.front())) {
                const Packet &pkt = st.sendQueue.front();
                open_msgs[pkt.id] = MsgTrack{
                    pkt.deliveryCount(net_.nodeCount()),
                    pkt.createdAt};
                st.sendQueue.pop_front();
            }
        }

        net_.step();

        for (const auto &d : net_.deliveries()) {
            latency.add(
                static_cast<double>(d.at - d.packet.createdAt));
            auto mt = open_msgs.find(d.packet.id);
            PL_ASSERT(mt != open_msgs.end(),
                      "delivery for untracked message");
            if (--mt->second.remaining == 0) {
                msg_latency.add(static_cast<double>(
                    d.at - mt->second.createdAt));
                open_msgs.erase(mt);
            }
            if (d.packet.kind == MessageKind::Request) {
                auto it = pending_.find(d.packet.tag);
                if (it != pending_.end() &&
                    it->second.home == d.node) {
                    // The home schedules the data response after its
                    // service latency.
                    req_latency.add(static_cast<double>(
                        d.at - it->second.createdAt));
                    Packet resp;
                    resp.id = nextPacketId_++;
                    resp.src = d.node;
                    resp.dst = it->second.requester;
                    resp.kind = MessageKind::Response;
                    resp.tag = d.packet.tag;
                    resp.createdAt = d.at;
                    nodes_[static_cast<size_t>(d.node)]
                        .responseQueue.emplace_back(
                            d.at + it->second.serviceLatency,
                            std::move(resp));
                    ++res.unicasts;
                }
            } else if (d.packet.kind == MessageKind::Response) {
                auto it = pending_.find(d.packet.tag);
                PL_ASSERT(it != pending_.end(),
                          "response for unknown request");
                PL_ASSERT(it->second.requester == d.node,
                          "response delivered to the wrong node");
                round_trip.add(static_cast<double>(
                    d.at - it->second.createdAt));
                --nodes_[static_cast<size_t>(d.node)].outstanding;
                pending_.erase(it);
            }
        }
    }

    res.completionCycles = net_.now() - start;
    res.avgLatency = latency.mean();
    res.avgMessageLatency = msg_latency.mean();
    res.avgRequestLatency = req_latency.mean();
    res.avgRoundTrip = round_trip.mean();
    res.timedOut = !allDone();
    if (res.timedOut)
        warn("coherence run timed out with %llu in flight",
             static_cast<unsigned long long>(net_.inFlight()));
    return res;
}

} // namespace phastlane::traffic
