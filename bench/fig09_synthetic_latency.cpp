/**
 * @file
 * Figure 9: average packet latency versus injection rate for the four
 * synthetic patterns (Bit Comp, Bit Reverse, Shuffle, Transpose) on
 * the optical 4/5/8-hop networks and the 2/3-cycle electrical
 * baselines.
 *
 * Expected shape (paper): the optical curves sit ~5-10X below the
 * electrical ones at low load with equal or slightly better
 * saturation bandwidth, and the 4/5/8-hop curves nearly overlap.
 */

#include "bench_util.hpp"
#include "sim/sweep.hpp"

using namespace phastlane;
using namespace phastlane::sim;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::vector<double> rates;
    if (opts.quick)
        rates = {0.02, 0.10, 0.20, 0.30};
    else
        rates = {0.01, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.25,
                 0.30, 0.35, 0.40};

    const traffic::Pattern patterns[] = {
        traffic::Pattern::BitComplement,
        traffic::Pattern::BitReverse, traffic::Pattern::Shuffle,
        traffic::Pattern::Transpose};

    for (traffic::Pattern pat : patterns) {
        TextTable t({"config", "rate [pkt/node/cyc]",
                     "avg latency [cyc]", "accepted",
                     "saturated"});
        std::string sat_summary;
        for (const NetConfig &cfg : fig9Configs()) {
            SweepConfig sc;
            sc.pattern = pat;
            sc.rates = rates;
            sc.warmupCycles = opts.quick ? 300 : 1000;
            sc.measureCycles = opts.quick ? 1500 : 4000;
            sc.seed = opts.seed;
            // The sweep points fan out across cores; results are
            // identical to a serial sweep (see sim/parallel.hpp).
            sc.threads = opts.threads;
            const auto pts = runSweep(cfg, sc);
            for (const auto &pt : pts) {
                t.addRow({cfg.name,
                          TextTable::num(pt.injectionRate, 3),
                          TextTable::num(pt.result.avgLatency, 1),
                          TextTable::num(pt.result.acceptedRate, 4),
                          pt.result.saturated ? "yes" : "no"});
            }
            sat_summary += cfg.name + "=" +
                           TextTable::num(saturationThroughput(pts),
                                          3) + " ";
        }
        bench::emit(opts,
                    std::string("Fig 9: latency vs injection rate, ") +
                        traffic::patternName(pat),
                    t, traffic::patternName(pat));
        std::printf("saturation throughput: %s\n",
                    sat_summary.c_str());
    }
    return 0;
}
