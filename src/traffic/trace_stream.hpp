/**
 * @file
 * Compact binary trace format with streaming access (DESIGN.md §15).
 *
 * The text trace format (trace.hpp) loads everything into a vector and
 * spends ~20-30 bytes per record; this codec stores varint-encoded
 * delta-cycle records in framed chunks so billions of injections
 * stream through O(chunk) memory at a fraction of the size.
 *
 * Wire format (all integers LEB128 base-128 varints, low 7 bits
 * first, at most 10 bytes):
 *
 *   file   := header chunk* end
 *   header := magic "PLTR" | version u8 (=1) | flags u8 (=0)
 *             | varint nodeCount        (0 = unspecified)
 *   chunk  := varint payloadBytes (>0) | varint recordCount (>0)
 *             | payload[payloadBytes]
 *   end    := varint 0 | varint 0
 *
 * Each chunk payload is self-contained (usable as a network message
 * body without file context):
 *
 *   payload := record[0..recordCount-1]
 *   record  := varint (deltaCycle << 3 | kind)
 *              | varint src | varint dst+1 (0 = broadcast)
 *              | varint zigzag(tag - previous tag)
 *
 * record[0]'s deltaCycle is its absolute cycle and its tag delta is
 * taken from 0. Packing the 3-bit kind into the (usually zero) cycle
 * delta and delta-encoding the (usually sequential) tags brings a
 * typical record to 4 bytes, ~5x smaller than its text form; cycles
 * above 2^61 - 1 do not fit the packed field and are rejected.
 *
 * Cycles must be non-decreasing across the whole stream; readers
 * validate monotonicity, node ranges (when a node count is known),
 * message kinds, framing lengths, and the explicit end marker, so a
 * truncated or corrupted stream fails loudly instead of replaying as
 * a shorter workload.
 */

#ifndef PHASTLANE_TRAFFIC_TRACE_STREAM_HPP
#define PHASTLANE_TRAFFIC_TRACE_STREAM_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "traffic/trace.hpp"

namespace phastlane::traffic {

/** Binary trace file magic ("PLTR") and current version. */
inline constexpr char kTraceMagic[4] = {'P', 'L', 'T', 'R'};
inline constexpr uint8_t kTraceVersion = 1;

/** Hard sanity caps on chunk framing (a malformed length must not
 *  drive a giant allocation). */
inline constexpr size_t kMaxChunkBytes = size_t{1} << 24;
inline constexpr size_t kMaxChunkRecords = size_t{1} << 20;

/** Largest cycle the packed deltaCycle|kind field can carry. */
inline constexpr Cycle kMaxEncodableCycle = (Cycle{1} << 61) - 1;

/** Append @p v to @p out as a LEB128 varint. */
void putVarint(std::string &out, uint64_t v);

/**
 * Decode a LEB128 varint from @p p (at most @p n bytes) into @p v.
 * Returns the bytes consumed, or 0 when the buffer ends mid-varint or
 * the encoding exceeds 10 bytes / overflows 64 bits.
 */
size_t getVarint(const uint8_t *p, size_t n, uint64_t &v);

/**
 * Encode @p n cycle-sorted records as one self-contained chunk
 * payload appended to @p out (no framing). @p n must be > 0.
 */
void encodeChunkPayload(const TraceRecord *recs, size_t n,
                        std::string &out);

/**
 * Decode a self-contained chunk payload of exactly @p expect records,
 * appending to @p out. Cycles must be non-decreasing and the first
 * record's cycle must be >= @p last_cycle (updated on success). Node
 * ids are validated against @p node_count when > 0.
 * Returns "" on success or an error description.
 */
std::string decodeChunkPayload(const uint8_t *p, size_t n,
                               size_t expect, int node_count,
                               Cycle &last_cycle,
                               std::vector<TraceRecord> &out);

/** Knobs for TraceStreamWriter. */
struct TraceStreamOptions {
    /** Node count stamped into the header (0 = unspecified); readers
     *  validate record ids against it. */
    int nodeCount = 0;

    /** Records buffered per chunk before a flush. */
    size_t chunkRecords = 4096;
};

/**
 * Streaming binary trace writer: append() records in cycle order;
 * chunks are flushed as they fill, so memory stays O(chunkRecords)
 * however long the trace grows. Every I/O call is checked; fatal() on
 * error. close() (or destruction) seals the stream with the end
 * marker -- a file without it is detectably truncated.
 */
class TraceStreamWriter
{
  public:
    explicit TraceStreamWriter(const std::string &path,
                               const TraceStreamOptions &opts = {});
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    /** Append one record; fatal() on out-of-order cycles or ids
     *  invalid for the configured node count. */
    void append(const TraceRecord &r);

    /** Flush pending records, write the end marker and close the
     *  file; fatal() on I/O errors. Idempotent. */
    void close();

    uint64_t recordsWritten() const { return records_; }

  private:
    void flushChunk();

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceStreamOptions opts_;
    std::vector<TraceRecord> buffer_;
    std::string scratch_;
    Cycle lastCycle_ = 0;
    uint64_t records_ = 0;
};

/**
 * Streaming binary trace reader: a TraceSource that decodes one chunk
 * at a time (O(chunk) memory). fatal() with byte/record context on
 * malformed input -- bad magic, unsupported version, mid-varint EOF,
 * bad framing, out-of-order cycles, invalid node ids, or a missing
 * end marker.
 */
class TraceStreamReader : public TraceSource
{
  public:
    /**
     * @param node_count Validation range for src/dst; when 0 the
     *        header's nodeCount (if any) is used instead.
     */
    explicit TraceStreamReader(const std::string &path,
                               int node_count = 0);
    ~TraceStreamReader();

    TraceStreamReader(const TraceStreamReader &) = delete;
    TraceStreamReader &operator=(const TraceStreamReader &) = delete;

    bool next(TraceRecord &out) override;

    /** Node count recorded in the file header (0 = unspecified). */
    int headerNodeCount() const { return headerNodeCount_; }

    uint64_t recordsRead() const { return records_; }

  private:
    bool readChunk(); ///< false at the end marker

    std::string path_;
    std::FILE *file_ = nullptr;
    int headerNodeCount_ = 0;
    int validateNodes_ = 0;
    std::vector<uint8_t> payload_;
    std::vector<TraceRecord> chunk_;
    size_t chunkNext_ = 0;
    Cycle lastCycle_ = 0;
    uint64_t records_ = 0;
    bool done_ = false;
};

/** Write @p records as a binary trace; fatal() on errors. */
void writeTraceBinary(const std::string &path,
                      const std::vector<TraceRecord> &records,
                      int node_count = 0);

/** Load a whole binary trace; fatal() on errors. Prefer the streaming
 *  reader for anything large. */
std::vector<TraceRecord> readTraceBinary(const std::string &path,
                                         int node_count = 0);

/** True when @p path starts with the binary trace magic. */
bool isBinaryTraceFile(const std::string &path);

/** Load a trace in either format (magic-sniffed); fatal() on
 *  errors. */
std::vector<TraceRecord> readTraceAuto(const std::string &path,
                                       int node_count = 0);

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_TRACE_STREAM_HPP
