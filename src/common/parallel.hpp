/**
 * @file
 * Parallel simulation dispatch: a small work-stealing thread pool and
 * a parallelFor helper used to spread independent simulation points
 * (sweep rates, experiment cells, benchmark grids) across cores.
 *
 * Determinism contract: every task owns its slot in a pre-sized result
 * vector and its own network/driver/RNG, so results are bit-identical
 * to serial execution regardless of the thread count or the order in
 * which indices happen to run. Nothing here introduces shared mutable
 * simulation state.
 *
 * Thread-count resolution (resolveThreadCount): an explicit request
 * wins; otherwise the PL_THREADS environment variable; otherwise the
 * hardware concurrency.
 */

#ifndef PHASTLANE_COMMON_PARALLEL_HPP
#define PHASTLANE_COMMON_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phastlane {

/**
 * A work-stealing thread pool for index-space parallelism.
 *
 * run(n, body) partitions [0, n) into chunks, deals them round-robin
 * to per-worker deques, and lets idle workers steal from the back of
 * busy ones. The calling thread participates as worker 0, so a pool
 * of size T uses T-1 background threads.
 */
class ThreadPool
{
  public:
    /** @param threads Total workers including the caller; <= 0 picks
     *  resolveThreadCount(0). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total worker count (background threads + the caller). */
    int size() const { return workerCount_; }

    /**
     * Invoke body(i) exactly once for every i in [0, n), across the
     * pool, returning when all indices completed. Exceptions thrown
     * by @p body are captured and the first one rethrown here. Must
     * not be called concurrently from multiple threads.
     */
    void run(size_t n, const std::function<void(size_t)> &body);

  private:
    /** A contiguous slice of the index space. */
    struct Chunk {
        size_t begin = 0;
        size_t end = 0;
    };

    /** One worker's deque; owner pops the front, thieves the back. */
    struct WorkerQueue {
        std::mutex mu;
        std::deque<Chunk> chunks;
    };

    void workerLoop(int self);
    bool popOrSteal(int self, Chunk &out);
    void runChunks(int self);

    int workerCount_;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(size_t)> *body_ = nullptr;
    std::atomic<size_t> remaining_{0};
    uint64_t generation_ = 0;
    bool stopping_ = false;

    std::mutex errorMu_;
    std::exception_ptr firstError_;
};

/**
 * Resolve an effective simulation thread count: @p requested when
 * positive, else the PL_THREADS environment variable when set to a
 * positive integer, else std::thread::hardware_concurrency() (at
 * least 1).
 */
int resolveThreadCount(int requested);

/**
 * One-shot parallel loop: body(i) for i in [0, n) over @p threads
 * workers (resolved via resolveThreadCount). threads == 1 (or n <= 1)
 * runs inline with no thread machinery at all.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body,
                 int threads = 0);

/**
 * Deterministic per-point seed derivation (SplitMix64 over the pair):
 * statistically independent streams for distinct indices, identical
 * on every platform and thread count.
 */
uint64_t derivePointSeed(uint64_t base, uint64_t index);

} // namespace phastlane

#endif // PHASTLANE_COMMON_PARALLEL_HPP
