#include "sim/sweep.hpp"

#include <algorithm>
#include <optional>

#include "core/network.hpp"
#include "obs/observe.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

std::vector<double>
defaultRateGrid()
{
    // Generated from integer counters so the endpoints are exact:
    // repeated floating-point accumulation (r += 0.01) drifts enough
    // that the grid's length and endpoints depend on rounding.
    std::vector<double> rates;
    for (int m = 1; m <= 9; ++m) // 0.01 .. 0.09 step 0.01
        rates.push_back(m / 100.0);
    for (int m = 100; m <= 500; m += 25) // 0.10 .. 0.50 step 0.025
        rates.push_back(m / 1000.0);
    return rates;
}

namespace {

/** Simulate one sweep point; self-contained and thread-safe (its own
 *  network, driver, and RNG). */
SweepPoint
runPoint(const NetConfig &config, const SweepConfig &sweep,
         double rate)
{
    auto net = config.make(sweep.seed);
    traffic::SyntheticConfig cfg;
    cfg.pattern = sweep.pattern;
    cfg.injectionRate = rate;
    cfg.warmupCycles = sweep.warmupCycles;
    cfg.measureCycles = sweep.measureCycles;
    cfg.seed = sweep.seed;
    traffic::SyntheticDriver driver(*net, cfg);
    SweepPoint pt;
    pt.injectionRate = rate;
    // Each point records into its own registry so parallel shards
    // never share observer state; runSweep merges them in rate order.
    std::optional<obs::MetricsObserver> observer;
    auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
    if (sweep.collectMetrics && pl) {
        observer.emplace(*pl, pt.metrics);
        pl->setObserver(&*observer);
    }
    pt.result = driver.run();
    if (pl && observer)
        pl->setObserver(nullptr);
    return pt;
}

} // namespace

std::vector<SweepPoint>
runSweep(const NetConfig &config, const SweepConfig &sweep)
{
    const size_t n = sweep.rates.size();
    const int threads = resolveThreadCount(sweep.threads);

    if (threads <= 1 || n <= 1) {
        std::vector<SweepPoint> points;
        for (double rate : sweep.rates) {
            points.push_back(runPoint(config, sweep, rate));
            if (sweep.stopAtSaturation && points.back().result.saturated)
                break;
        }
        return points;
    }

    std::vector<SweepPoint> points(n);
    if (!sweep.stopAtSaturation) {
        parallelFor(
            n,
            [&](size_t i) {
                points[i] =
                    runPoint(config, sweep, sweep.rates[i]);
            },
            threads);
        return points;
    }

    // Early exit must survive parallelism: simulate in thread-sized
    // waves and truncate at the first saturated point, matching the
    // serial result exactly (points up to and including it).
    size_t done = 0;
    while (done < n) {
        const size_t batch =
            std::min(n - done, static_cast<size_t>(threads));
        parallelFor(
            batch,
            [&](size_t i) {
                points[done + i] = runPoint(config, sweep,
                                            sweep.rates[done + i]);
            },
            threads);
        for (size_t i = 0; i < batch; ++i) {
            if (points[done + i].result.saturated) {
                points.resize(done + i + 1);
                return points;
            }
        }
        done += batch;
    }
    return points;
}

double
saturationThroughput(const std::vector<SweepPoint> &points)
{
    double best = 0.0;
    for (const auto &pt : points)
        best = std::max(best, pt.result.acceptedRate);
    return best;
}

obs::MetricsRegistry
mergedMetrics(const std::vector<SweepPoint> &points)
{
    obs::MetricsRegistry total;
    for (const auto &pt : points)
        total.merge(pt.metrics);
    return total;
}

} // namespace phastlane::sim
