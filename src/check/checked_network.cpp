#include "check/checked_network.hpp"

#include "check/differential.hpp"
#include "common/log.hpp"

namespace phastlane::check {

CheckedNetwork::CheckedNetwork(const core::PhastlaneParams &params)
    : primary_(params), checker_(primary_, /*abort_on_violation=*/true)
{
    primary_.setObserver(&checker_);
    if (ReferenceNetwork::supports(params)) {
        oracle_ = std::make_unique<ReferenceNetwork>(params);
    } else {
        warn("--check: no reference model for this configuration; "
             "running invariant checks only");
    }
}

void
CheckedNetwork::addObserver(core::StepObserver *obs)
{
    if (!obs)
        return;
    if (mux_.size() == 0) {
        // First extra observer: interpose the mux, checker first so
        // its diagnostics fire before any downstream recording.
        mux_.add(&checker_);
        primary_.setObserver(&mux_);
    }
    mux_.add(obs);
}

bool
CheckedNetwork::inject(const Packet &pkt)
{
    const bool accepted = primary_.inject(pkt);
    if (oracle_) {
        const bool ref_accepted = oracle_->inject(pkt);
        if (accepted != ref_accepted) {
            panic("check: inject of message %llu %s by the optimized "
                  "network but %s by the reference",
                  static_cast<unsigned long long>(pkt.id),
                  accepted ? "accepted" : "rejected",
                  ref_accepted ? "accepted" : "rejected");
        }
    }
    return accepted;
}

void
CheckedNetwork::step()
{
    primary_.step();
    if (!oracle_)
        return;
    oracle_->step();
    const std::string diff = diffNetworks(primary_, *oracle_);
    if (!diff.empty()) {
        panic("check: differential mismatch at cycle %llu: %s",
              static_cast<unsigned long long>(primary_.now() - 1),
              diff.c_str());
    }
}

} // namespace phastlane::check
