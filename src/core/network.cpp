#include "core/network.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>

#include "common/log.hpp"

namespace phastlane::core {

PhastlaneNetwork::PhastlaneNetwork(const PhastlaneParams &params)
    : params_(params),
      mesh_(params.meshWidth, params.meshHeight),
      rng_(params.seed),
      returnPaths_(mesh_.nodeCount())
{
    if (params_.maxHopsPerCycle < 1)
        fatal("maxHopsPerCycle must be at least 1");
    nics_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    routers_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        nics_.emplace_back(n, params_, mesh_);
        routers_.emplace_back(n, params_);
    }
    claims_.assign(static_cast<size_t>(mesh_.nodeCount()) * kMeshPorts,
                   0);
    portClaimCounts_.assign(
        static_cast<size_t>(mesh_.nodeCount()) * kMeshPorts, 0);
}

bool
PhastlaneNetwork::nicHasSpace(NodeId n) const
{
    PL_ASSERT(mesh_.valid(n), "invalid node %d", n);
    // Conservative: report space for a full broadcast so callers can
    // use the boolean for either message type.
    Packet probe;
    probe.src = n;
    probe.broadcast = true;
    return nics_[static_cast<size_t>(n)].hasSpaceFor(probe);
}

bool
PhastlaneNetwork::inject(const Packet &pkt)
{
    PL_ASSERT(mesh_.valid(pkt.src), "invalid source %d", pkt.src);
    auto &nic = nics_[static_cast<size_t>(pkt.src)];
    if (!nic.hasSpaceFor(pkt))
        return false;
    nic.accept(pkt, cycle_, nextBranchId_);
    ++counters_.messagesAccepted;
    outstanding_ +=
        static_cast<uint64_t>(pkt.deliveryCount(mesh_.nodeCount()));
    return true;
}

uint64_t
PhastlaneNetwork::bufferedPackets() const
{
    uint64_t total = 0;
    for (const auto &r : routers_)
        total += r.totalOccupancy();
    return total;
}

Port
PhastlaneNetwork::desiredPort(NodeId at, const OpticalPacket &pkt) const
{
    PL_ASSERT(at != pkt.finalDst,
              "buffered packet already at its destination");
    return mesh_.xyFirstHop(at, pkt.finalDst);
}

ControlProgram
PhastlaneNetwork::buildProgram(NodeId from, const OpticalPacket &pkt)
    const
{
    if (pkt.multicast) {
        MulticastBranch branch;
        branch.taps = pkt.taps;
        return buildMulticastProgram(mesh_, from, branch,
                                     params_.maxHopsPerCycle);
    }
    return buildUnicastProgram(mesh_, from, pkt.finalDst,
                               params_.maxHopsPerCycle);
}

Cycle
PhastlaneNetwork::dropRetryCycle(int attempts)
{
    // The drop signal arrives in the cycle being processed; the
    // earliest relaunch is the next one, plus any configured backoff.
    Cycle extra = static_cast<Cycle>(params_.backoffBase);
    if (params_.exponentialBackoff) {
        const int exp = std::min(attempts, 6);
        const int64_t window =
            std::min<int64_t>((int64_t{1} << exp) - 1,
                              params_.backoffCap);
        if (window > 0)
            extra += static_cast<Cycle>(rng_.uniformInt(0, window));
    }
    return cycle_ + 1 + extra;
}

bool
PhastlaneNetwork::claimed(NodeId router, Port out) const
{
    return claims_[static_cast<size_t>(router) * kMeshPorts +
                   portIndex(out)] != 0;
}

void
PhastlaneNetwork::setClaim(NodeId router, Port out)
{
    const size_t idx =
        static_cast<size_t>(router) * kMeshPorts + portIndex(out);
    claims_[idx] = 1;
    ++portClaimCounts_[idx];
}

void
PhastlaneNetwork::deliver(const OpticalPacket &pkt, NodeId node)
{
    Delivery d;
    d.packet = pkt.base;
    d.node = node;
    d.at = cycle_;
    d.acceptedAt = pkt.acceptedAt;
    d.injectedAt = pkt.firstInjectedAt;
    deliveries_.push_back(std::move(d));
    ++counters_.deliveries;
    PL_ASSERT(outstanding_ > 0, "delivery without outstanding message");
    --outstanding_;
}

void
PhastlaneNetwork::resolveOutcomes()
{
    for (auto &o : pendingOutcomes_) {
        auto &rb = routers_[static_cast<size_t>(o.ref.router)];
        if (o.dropped) {
            BufferEntry *e = rb.findLaunched(o.ref.packet);
            PL_ASSERT(e, "dropped launch lost its buffer entry");
            rb.restoreDropped(o.ref.packet, std::move(o.updated),
                              dropRetryCycle(e->attempts + 1));
        } else {
            rb.releaseLaunched(o.ref.packet);
        }
    }
    pendingOutcomes_.clear();
}

void
PhastlaneNetwork::nicToLocalQueues()
{
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        auto &nic = nics_[static_cast<size_t>(n)];
        auto &rb = routers_[static_cast<size_t>(n)];
        // The electrical NIC-to-router transfer costs one cycle; the
        // packet becomes launchable in the next arbitration.
        for (int i = 0; i < params_.nicTransfersPerCycle &&
                        !nic.empty() && rb.hasSpace(Port::Local);
             ++i) {
            rb.push(Port::Local, nic.popHead(), cycle_ + 1);
        }
    }
}

std::vector<PhastlaneNetwork::Flight>
PhastlaneNetwork::launchPhase()
{
    std::vector<Flight> flights;
    for (NodeId r = 0; r < mesh_.nodeCount(); ++r) {
        auto &rb = routers_[static_cast<size_t>(r)];
        auto launches = rb.arbitrate(
            cycle_,
            [&](const OpticalPacket &pkt) {
                return desiredPort(r, pkt);
            });
        for (auto &[entry, out] : launches) {
            ++events_.launches;
            ++events_.bufferReads;
            ++pl_.launches;
            if (entry->attempts > 0) {
                ++events_.retransmissions;
                ++pl_.retransmissions;
            }
            if (entry->pkt.firstInjectedAt == kNeverCycle) {
                entry->pkt.firstInjectedAt = cycle_;
                ++counters_.packetsInjected;
            }

            Flight f;
            f.pkt = entry->pkt;
            f.prog = buildProgram(r, entry->pkt);
            f.launchRouter = r;
            f.at = mesh_.neighbor(r, out);
            PL_ASSERT(f.at != kInvalidNode, "launch off the mesh edge");
            f.inPort = opposite(out);
            f.hops = 1;
            f.holder = EntryRef{r, Port::Local, entry->pkt.branchId};
            setClaim(r, out);
            flights.push_back(std::move(f));
        }
    }
    return flights;
}

bool
PhastlaneNetwork::handleArrival(Flight &f)
{
    const ControlGroup g = f.prog.front();
    PL_ASSERT(f.hops <= params_.maxHopsPerCycle,
              "flight exceeded the per-cycle hop limit");

    if (g.multicast) {
        // Broadcast tap: a fraction of the optical power is received
        // and a copy delivered to this node.
        PL_ASSERT(!f.pkt.taps.empty() && f.pkt.taps.front() == f.at,
                  "tap bookkeeping out of sync at node %d", f.at);
        deliver(f.pkt, f.at);
        f.pkt.taps.erase(f.pkt.taps.begin());
        ++events_.tapReceives;
    }

    if (g.local) {
        f.prog.translate();
        if (f.prog.empty()) {
            // Final router of this packet/branch.
            if (!g.multicast) {
                // Unicast destination: deliver through the local
                // receive resonators (multicast finals were already
                // delivered by the tap above).
                PL_ASSERT(f.at == f.pkt.finalDst,
                          "unicast final at wrong node");
                deliver(f.pkt, f.at);
            }
            ++events_.receives;
            pendingOutcomes_.push_back(
                LaunchOutcome{f.holder, false, {}});
            f.active = false;
        } else {
            // Interim node: buffer and assume responsibility.
            receiveOrDrop(f, true);
        }
        return true;
    }
    return false;
}

void
PhastlaneNetwork::receiveOrDrop(Flight &f, bool interim)
{
    auto &rb = routers_[static_cast<size_t>(f.at)];
    if (rb.hasSpace(f.inPort)) {
        ++events_.receives;
        ++events_.bufferWrites;
        if (interim)
            ++pl_.interimAccepts;
        else
            ++pl_.blockedBuffered;
        // Re-launchable from the next cycle's arbitration.
        rb.push(f.inPort, f.pkt, cycle_ + 1);
        pendingOutcomes_.push_back(LaunchOutcome{f.holder, false, {}});
    } else {
        // Dropped: the return path carries the Packet Dropped signal
        // and this router's Node ID back to the holder next cycle,
        // over the reverse connections latched behind the packet.
        ++events_.drops;
        ++pl_.drops;
        events_.dropSignalHops +=
            static_cast<uint64_t>(returnPaths_.signalDrop(f.path));
        pendingOutcomes_.push_back(
            LaunchOutcome{f.holder, true, f.pkt});
    }
    f.active = false;
}

void
PhastlaneNetwork::propagateSubstepFcfs(std::vector<Flight> &flights)
{
    std::vector<size_t> active;
    active.reserve(flights.size());
    for (size_t i = 0; i < flights.size(); ++i)
        active.push_back(i);

    std::vector<PassRequest> requests;
    while (!active.empty()) {
        requests.clear();
        std::vector<size_t> next;

        // Arrival-side actions; collect pass requests.
        for (size_t i : active) {
            Flight &f = flights[i];
            if (handleArrival(f))
                continue;
            const ControlGroup g = f.prog.front();
            PassRequest r;
            r.flight = i;
            r.router = f.at;
            const Turn t = g.turn();
            r.out = applyTurn(f.inPort, t);
            r.straight = (t == Turn::Straight);
            requests.push_back(r);
        }

        // Resolve claims per (router, output port).
        std::map<std::pair<NodeId, Port>, std::vector<size_t>> byPort;
        for (size_t ri = 0; ri < requests.size(); ++ri)
            byPort[{requests[ri].router, requests[ri].out}]
                .push_back(ri);

        for (auto &[key, idxs] : byPort) {
            const auto [router, out] = key;
            size_t winner = SIZE_MAX;
            if (!claimed(router, out)) {
                winner = idxs.front();
                if (params_.opticalArbitration ==
                    OpticalArbitration::FixedPriority) {
                    for (size_t ri : idxs) {
                        const auto &a = requests[ri];
                        const auto &b = requests[winner];
                        const auto rank =
                            [&](const PassRequest &r, size_t fi) {
                                return std::make_pair(
                                    r.straight ? 0 : 1,
                                    portIndex(flights[fi].inPort));
                            };
                        if (rank(a, a.flight) <
                            rank(b, b.flight)) {
                            winner = ri;
                        }
                    }
                } else {
                    // Rotating priority over input ports (ablation).
                    const int start =
                        static_cast<int>(cycle_ % kMeshPorts);
                    auto rrRank = [&](size_t ri) {
                        const int p = portIndex(
                            flights[requests[ri].flight].inPort);
                        return (p - start + kMeshPorts) % kMeshPorts;
                    };
                    for (size_t ri : idxs) {
                        if (rrRank(ri) < rrRank(winner))
                            winner = ri;
                    }
                }
            }
            for (size_t ri : idxs) {
                Flight &f = flights[requests[ri].flight];
                if (ri == winner) {
                    setClaim(router, out);
                    ++events_.passTraversals;
                    returnPaths_.registerHop(router, f.inPort, out);
                    f.path.push_back(
                        ReturnHop{router, f.inPort, out});
                    f.prog.translate();
                    f.at = mesh_.neighbor(router, out);
                    PL_ASSERT(f.at != kInvalidNode,
                              "route left the mesh");
                    f.inPort = opposite(out);
                    ++f.hops;
                    next.push_back(requests[ri].flight);
                } else {
                    receiveOrDrop(f, false);
                }
            }
        }
        active = std::move(next);
    }
}

void
PhastlaneNetwork::propagateGlobalPriority(std::vector<Flight> &flights)
{
    // Idealized intra-cycle priority (ablation): straight packets
    // evict turning packets' claims regardless of arrival order.
    // Resolved as a monotone fixed point: once blocked, a flight stays
    // blocked, which is conservative when its blocker is itself
    // blocked upstream.
    struct Claim {
        NodeId router;
        Port out;
        bool straight;
        Port inPort;
    };
    struct Itinerary {
        std::vector<Claim> claims; ///< pass claims after arrival i
        std::vector<NodeId> entered;
        std::vector<Port> inPorts;
        size_t stop; ///< index in entered of the local/final router
    };

    const size_t n = flights.size();
    std::vector<Itinerary> its(n);
    for (size_t i = 0; i < n; ++i) {
        Flight f = flights[i]; // walk a copy of the program
        Itinerary &it = its[i];
        while (true) {
            it.entered.push_back(f.at);
            it.inPorts.push_back(f.inPort);
            const ControlGroup g = f.prog.front();
            if (g.local) {
                it.stop = it.entered.size() - 1;
                break;
            }
            const Port out = applyTurn(f.inPort, g.turn());
            it.claims.push_back(Claim{f.at, out,
                                      g.turn() == Turn::Straight,
                                      f.inPort});
            f.prog.translate();
            f.at = mesh_.neighbor(f.at, out);
            PL_ASSERT(f.at != kInvalidNode, "route left the mesh");
            f.inPort = opposite(out);
        }
    }

    // blocked[i] = index of the first losing claim (SIZE_MAX: none).
    std::vector<size_t> blocked(n, SIZE_MAX);
    bool changed = true;
    while (changed) {
        changed = false;
        // Winner per (router, port) among still-active claims;
        // launches (claim index 0 at the launch router) outrank
        // everything, then straight, then turn, then input port.
        std::map<std::pair<NodeId, int>,
                 std::pair<std::tuple<int, int, size_t>, size_t>>
            best;
        for (size_t i = 0; i < n; ++i) {
            const auto &cl = its[i].claims;
            const size_t limit = std::min(blocked[i], cl.size());
            for (size_t k = 0; k < limit; ++k) {
                // Ports claimed in the launch phase (buffered-packet
                // launches) outrank every optical arrival and are
                // handled separately below.
                if (claimed(cl[k].router, cl[k].out))
                    continue;
                const auto key = std::make_pair(
                    cl[k].router, portIndex(cl[k].out));
                const auto rank = std::make_tuple(
                    cl[k].straight ? 0 : 1,
                    portIndex(cl[k].inPort), i);
                auto found = best.find(key);
                if (found == best.end() ||
                    rank < found->second.first) {
                    best[key] = {rank, i};
                }
            }
        }
        for (size_t i = 0; i < n; ++i) {
            const auto &cl = its[i].claims;
            const size_t limit = std::min(blocked[i], cl.size());
            for (size_t k = 0; k < limit; ++k) {
                const auto key = std::make_pair(
                    cl[k].router, portIndex(cl[k].out));
                const bool loses =
                    claimed(cl[k].router, cl[k].out) ||
                    best[key].second != i;
                if (loses) {
                    blocked[i] = k;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Apply the realized paths in flight order.
    for (size_t i = 0; i < n; ++i) {
        Flight &f = flights[i];
        const Itinerary &it = its[i];
        const size_t stop_idx =
            blocked[i] == SIZE_MAX ? it.stop : blocked[i];
        // Walk the flight to its stopping router, handling taps and
        // the terminal action through the same per-arrival logic.
        for (size_t k = 0;; ++k) {
            PL_ASSERT(f.at == it.entered[k], "itinerary mismatch");
            if (k == stop_idx && blocked[i] != SIZE_MAX) {
                // Tap (if any) still happens on arrival, then the
                // blocked packet is received or dropped.
                const ControlGroup g = f.prog.front();
                if (g.multicast) {
                    PL_ASSERT(!f.pkt.taps.empty() &&
                                  f.pkt.taps.front() == f.at,
                              "tap bookkeeping out of sync");
                    deliver(f.pkt, f.at);
                    f.pkt.taps.erase(f.pkt.taps.begin());
                    ++events_.tapReceives;
                }
                receiveOrDrop(f, false);
                break;
            }
            if (handleArrival(f))
                break;
            const ControlGroup g = f.prog.front();
            const Port out = applyTurn(f.inPort, g.turn());
            setClaim(f.at, out);
            ++events_.passTraversals;
            returnPaths_.registerHop(f.at, f.inPort, out);
            f.path.push_back(ReturnHop{f.at, f.inPort, out});
            f.prog.translate();
            f.at = mesh_.neighbor(f.at, out);
            f.inPort = opposite(out);
            ++f.hops;
        }
    }
}

void
PhastlaneNetwork::step()
{
    deliveries_.clear();
    std::fill(claims_.begin(), claims_.end(), 0);
    returnPaths_.beginCycle();

    resolveOutcomes();
    nicToLocalQueues();
    std::vector<Flight> flights = launchPhase();
    if (params_.wavefront == WavefrontModel::SubstepFcfs)
        propagateSubstepFcfs(flights);
    else
        propagateGlobalPriority(flights);

    events_.routerCycles += static_cast<uint64_t>(mesh_.nodeCount());
    ++cycle_;
}

} // namespace phastlane::core
