/**
 * @file
 * Experiment-harness tests on a reduced two-benchmark, three-config
 * matrix.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace phastlane::sim {
namespace {

ExperimentSpec
tinySpec()
{
    ExperimentSpec spec;
    spec.configs = {"Electrical3", "Optical4", "Optical4B64"};
    spec.benchmarks = {traffic::splashProfile("Raytrace"),
                       traffic::splashProfile("LU")};
    spec.txnsPerNode = 25;
    spec.seed = 5;
    return spec;
}

TEST(Experiment, ProducesOneRowPerCell)
{
    const auto spec = tinySpec();
    const auto runs = runExperiment(spec);
    EXPECT_EQ(runs.size(),
              spec.configs.size() * spec.benchmarks.size());
    for (const auto &r : runs) {
        EXPECT_FALSE(r.result.timedOut) << r.benchmark << "/"
                                        << r.config;
        EXPECT_GT(r.result.completionCycles, 0u);
        EXPECT_GT(r.power.totalW, 0.0);
    }
}

TEST(Experiment, BaselineSpeedupIsOne)
{
    const auto spec = tinySpec();
    const auto runs = runExperiment(spec);
    for (const auto &b : spec.benchmarks) {
        EXPECT_DOUBLE_EQ(
            speedupOf(runs, b.name, "Electrical3"), 1.0);
    }
}

TEST(Experiment, OpticalWinsOnTheLatencyBoundBenchmark)
{
    const auto spec = tinySpec();
    const auto runs = runExperiment(spec);
    EXPECT_GT(speedupOf(runs, "Raytrace", "Optical4"), 1.5);
    // And uses far less power.
    const auto &elec = findRun(runs, "Raytrace", "Electrical3");
    const auto &opt = findRun(runs, "Raytrace", "Optical4");
    EXPECT_LT(opt.power.totalW, elec.power.totalW);
}

TEST(Experiment, TablesHaveTheRightShape)
{
    const auto spec = tinySpec();
    const auto runs = runExperiment(spec);
    const TextTable sp = speedupTable(spec, runs);
    const TextTable pw = powerTable(spec, runs);
    EXPECT_EQ(sp.rowCount(), spec.benchmarks.size());
    EXPECT_EQ(pw.rowCount(), spec.benchmarks.size());
    const std::string rendered = sp.render();
    EXPECT_NE(rendered.find("Raytrace"), std::string::npos);
    EXPECT_NE(rendered.find("Optical4B64"), std::string::npos);
}

TEST(Experiment, FindRunRejectsUnknownCells)
{
    const auto spec = tinySpec();
    const auto runs = runExperiment(spec);
    EXPECT_DEATH(findRun(runs, "Raytrace", "NoSuchConfig"),
                 "no run");
}

TEST(Experiment, DeterministicAcrossInvocations)
{
    const auto spec = tinySpec();
    const auto a = runExperiment(spec);
    const auto b = runExperiment(spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result.completionCycles,
                  b[i].result.completionCycles);
        EXPECT_EQ(a[i].drops, b[i].drops);
    }
}

} // namespace
} // namespace phastlane::sim
