# Empty compiler generated dependencies file for netsim_cli.
# This may be replaced when dependencies are built.
