/**
 * @file
 * Cross-subsystem integration tests: the headline relationships the
 * paper reports must hold when the full stack runs together.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "optical/area_model.hpp"
#include "optical/power_model.hpp"
#include "optical/timing.hpp"
#include "sim/configs.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/synthetic.hpp"

namespace phastlane {
namespace {

TEST(Integration, HopConfigsMatchTimingModel)
{
    // The network configurations' hop limits are exactly what the
    // timing model derives for the three scaling scenarios at 4 GHz
    // and 64 wavelengths.
    using optical::RouterTimingModel;
    using optical::Scaling;
    EXPECT_EQ(RouterTimingModel(Scaling::Pessimistic, 64)
                  .maxHopsPerCycle(4.0), 4);
    EXPECT_EQ(RouterTimingModel(Scaling::Average, 64)
                  .maxHopsPerCycle(4.0), 5);
    EXPECT_EQ(RouterTimingModel(Scaling::Optimistic, 64)
                  .maxHopsPerCycle(4.0), 8);
}

TEST(Integration, DefaultConfigIsPeakPowerFeasible)
{
    // Table 1's 64-wavelength, four-hop default stays at the paper's
    // 32 W peak-power point at 98% crossing efficiency.
    optical::PeakPowerModel peak;
    core::PhastlaneParams p;
    EXPECT_LE(peak.peakPowerW(0.98, p.wavelengths,
                              p.maxHopsPerCycle), 32.5);
}

TEST(Integration, DefaultConfigFitsTheNode)
{
    optical::AreaModel area;
    optical::ChipGeometry geom;
    core::PhastlaneParams p;
    EXPECT_TRUE(area.fitsNode(p.wavelengths, geom.nodeAreaMm2));
}

TEST(Integration, LowLoadLatencyRatioMatchesFig9)
{
    traffic::SyntheticConfig cfg;
    cfg.pattern = traffic::Pattern::UniformRandom;
    cfg.injectionRate = 0.02;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 2000;

    auto opt = sim::makeConfig("Optical4").make(1);
    auto elec = sim::makeConfig("Electrical3").make(1);
    const auto ro = traffic::SyntheticDriver(*opt, cfg).run();
    const auto re = traffic::SyntheticDriver(*elec, cfg).run();
    const double ratio = re.avgLatency / ro.avgLatency;
    // Paper: ~5-10X lower latency (we allow a generous band).
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 25.0);
}

TEST(Integration, PowerAdvantageOnRealTraffic)
{
    // Paper headline: ~80% lower network power on SPLASH2 traffic
    // (>= 70% for every benchmark; spot-check one mid and one light).
    for (const char *bench : {"LU", "Raytrace"}) {
        const auto prof = traffic::splashProfile(bench);
        const auto streams = traffic::generateStreams(prof, 64, 9);

        auto ecfg = sim::makeConfig("Electrical3");
        auto enet = ecfg.make(1);
        const auto re =
            traffic::CoherenceDriver(*enet, streams,
                                     prof.mshrLimit).run();
        const double ew =
            ecfg.power(*enet, re.completionCycles).totalW;

        auto ocfg = sim::makeConfig("Optical4");
        auto onet = ocfg.make(1);
        const auto ro =
            traffic::CoherenceDriver(*onet, streams,
                                     prof.mshrLimit).run();
        const double ow =
            ocfg.power(*onet, ro.completionCycles).totalW;

        EXPECT_LT(ow, 0.31 * ew)
            << bench << ": optical " << ow << " W vs electrical "
            << ew << " W";
    }
}

TEST(Integration, SpeedupAdvantageOnLatencyBoundBenchmark)
{
    // One of the paper's >2.8X benchmarks.
    const auto prof = traffic::splashProfile("Raytrace");
    const auto streams = traffic::generateStreams(prof, 64, 9);
    auto run = [&](const char *name) {
        auto net = sim::makeConfig(name).make(1);
        return traffic::CoherenceDriver(*net, streams,
                                        prof.mshrLimit)
            .run().completionCycles;
    };
    const double speedup =
        static_cast<double>(run("Electrical3")) /
        static_cast<double>(run("Optical4"));
    EXPECT_GT(speedup, 2.3);
}

TEST(Integration, DropBoundBenchmarkRecoversWithBuffers)
{
    // Ocean: the four-hop network with 10 buffers falls behind the
    // electrical baseline; 64 buffers roughly match it (paper
    // Section 5). Reduced transaction count to keep the test fast.
    auto prof = traffic::splashProfile("Ocean");
    prof.txnsPerNode = 60;
    const auto streams = traffic::generateStreams(prof, 64, 9);
    auto run = [&](const char *name) {
        auto net = sim::makeConfig(name).make(1);
        return traffic::CoherenceDriver(*net, streams,
                                        prof.mshrLimit)
            .run().completionCycles;
    };
    const auto elec = run("Electrical3");
    const auto opt4 = run("Optical4");
    const auto opt4b64 = run("Optical4B64");
    EXPECT_GT(opt4, elec);          // 10 buffers: slower
    EXPECT_LT(opt4b64, opt4);       // buffers help
    EXPECT_LT(static_cast<double>(std::max(opt4b64, elec)) /
                  static_cast<double>(std::min(opt4b64, elec)),
              1.25);                // 64 buffers: roughly matched
}

TEST(Integration, BothNetworksAgreeOnWorkloadTotals)
{
    const auto prof = traffic::splashProfile("FFT");
    auto small = prof;
    small.txnsPerNode = 30;
    const auto streams = traffic::generateStreams(small, 64, 11);
    auto opt = sim::makeConfig("Optical4").make(1);
    auto elec = sim::makeConfig("Electrical3").make(1);
    const auto ro = traffic::CoherenceDriver(*opt, streams,
                                             small.mshrLimit).run();
    const auto re = traffic::CoherenceDriver(*elec, streams,
                                             small.mshrLimit).run();
    EXPECT_EQ(ro.transactions, re.transactions);
    EXPECT_EQ(opt->counters().deliveries,
              elec->counters().deliveries);
}

} // namespace
} // namespace phastlane
