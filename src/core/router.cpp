#include "core/router.hpp"

#include <algorithm>
#include <climits>

#include "common/log.hpp"

namespace phastlane::core {

RouterBuffers::RouterBuffers(NodeId self, const PhastlaneParams &params)
    : self_(self),
      capacity_(params.routerBufferEntries),
      launchesPerQueue_(params.launchesPerQueue),
      sharedPool_(params.sharedBufferPool),
      policy_(params.bufferArbitration),
      admission_(params.admission),
      admissionBurst_(params.admissionBurst),
      admissionPeriod_(params.admissionPeriod)
{
    if (admission_ == AdmissionPolicy::TokenBucket)
        bucket_.reset(admissionBurst_, admissionPeriod_, 0);
}

int
RouterBuffers::sharedPoolFreeSlots(int occ) const
{
    // DAMQ with reserved slots: each queue is guaranteed half of its
    // partition; the remaining halves form a shared pool any queue
    // may borrow from.
    const int guaranteed = std::max(1, capacity_ / 2);
    const int shared_size =
        kAllPorts * (capacity_ - guaranteed);
    int shared_used = 0;
    for (const auto &queue : queues_) {
        shared_used += std::max(
            0, static_cast<int>(queue.size()) - guaranteed);
    }
    const int own_reserved = std::max(0, guaranteed - occ);
    return own_reserved + std::max(0, shared_size - shared_used);
}

void
RouterBuffers::push(Port q, OpticalPacket pkt, Cycle eligible_at)
{
    PL_ASSERT(hasSpace(q), "pushing into a full router buffer");
    BufferEntry e;
    e.pkt = std::move(pkt);
    e.state = EntryState::Waiting;
    e.eligibleAt = eligible_at;
    e.enqueuedAt = eligible_at;
    e.seq = nextSeq_++;
    queues_[portIndex(q)].push_back(std::move(e));
    ++total_;
    noteEligible(eligible_at);
}

BufferEntry &
RouterBuffers::emplaceEntry(Port q, Cycle eligible_at)
{
    PL_ASSERT(hasSpace(q), "pushing into a full router buffer");
    BufferEntry &e = queues_[portIndex(q)].emplace_back();
    e.state = EntryState::Waiting;
    e.eligibleAt = eligible_at;
    e.enqueuedAt = eligible_at;
    e.seq = nextSeq_++;
    ++total_;
    noteEligible(eligible_at);
    return e;
}

BufferEntry *
RouterBuffers::findLaunchedIn(Port q, PacketId id)
{
    for (auto &entry : queues_[portIndex(q)]) {
        if (entry.state == EntryState::Launched &&
            entry.pkt.branchId == id) {
            return &entry;
        }
    }
    return nullptr;
}

BufferEntry *
RouterBuffers::findLaunched(PacketId id, Port *queue_out)
{
    for (Port q : kAllPortList) {
        for (auto &entry : queues_[portIndex(q)]) {
            if (entry.state == EntryState::Launched &&
                entry.pkt.branchId == id) {
                if (queue_out)
                    *queue_out = q;
                return &entry;
            }
        }
    }
    return nullptr;
}

void
RouterBuffers::releaseLaunched(Port q, PacketId id)
{
    auto &queue = queues_[portIndex(q)];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->state == EntryState::Launched &&
            it->pkt.branchId == id) {
            queue.erase(it);
            --total_;
            return;
        }
    }
    panic("releaseLaunched: packet %llu not in queue %d at router %d",
          static_cast<unsigned long long>(id), portIndex(q), self_);
}

void
RouterBuffers::releaseLaunched(PacketId id)
{
    for (auto &queue : queues_) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->state == EntryState::Launched &&
                it->pkt.branchId == id) {
                queue.erase(it);
                --total_;
                return;
            }
        }
    }
    panic("releaseLaunched: packet %llu not found at router %d",
          static_cast<unsigned long long>(id), self_);
}

void
RouterBuffers::restoreDropped(PacketId id, OpticalPacket updated,
                              Cycle eligible_at)
{
    BufferEntry *entry = findLaunched(id);
    if (!entry)
        panic("restoreDropped: packet %llu not found at router %d",
              static_cast<unsigned long long>(id), self_);
    // enqueuedAt is deliberately untouched: residence age accumulates
    // across drop/retry rounds so AgeBoost sees true starvation.
    entry->pkt = std::move(updated);
    entry->state = EntryState::Waiting;
    entry->eligibleAt = eligible_at;
    ++entry->attempts;
    noteEligible(eligible_at);
}

void
RouterBuffers::restoreDropped(Port q, PacketId id,
                              OpticalPacket updated, Cycle eligible_at)
{
    BufferEntry *entry = findLaunchedIn(q, id);
    if (!entry)
        panic("restoreDropped: packet %llu not in queue %d at router "
              "%d",
              static_cast<unsigned long long>(id), portIndex(q),
              self_);
    entry->pkt = std::move(updated);
    entry->state = EntryState::Waiting;
    entry->eligibleAt = eligible_at;
    ++entry->attempts;
    noteEligible(eligible_at);
}

} // namespace phastlane::core
