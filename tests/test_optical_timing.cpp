/**
 * @file
 * Router timing tests (paper Fig 5 and Fig 6): critical-path
 * structure and the per-cycle hop budgets.
 */

#include <gtest/gtest.h>

#include "optical/timing.hpp"

namespace phastlane::optical {
namespace {

class TimingAcrossWavelengths : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingAcrossWavelengths, PaperHopBudgetsAt4GHz)
{
    const int wl = GetParam();
    // Paper Fig 6: 8 / 5 / 4 hops per 4 GHz cycle for optimistic /
    // average / pessimistic scaling, independent of the wavelength
    // count.
    EXPECT_EQ(RouterTimingModel(Scaling::Optimistic, wl)
                  .maxHopsPerCycle(4.0), 8);
    EXPECT_EQ(RouterTimingModel(Scaling::Average, wl)
                  .maxHopsPerCycle(4.0), 5);
    EXPECT_EQ(RouterTimingModel(Scaling::Pessimistic, wl)
                  .maxHopsPerCycle(4.0), 4);
}

TEST_P(TimingAcrossWavelengths, CriticalPathOrdering)
{
    const int wl = GetParam();
    for (Scaling s : {Scaling::Optimistic, Scaling::Average,
                      Scaling::Pessimistic}) {
        RouterTimingModel m(s, wl);
        // Paper Fig 5: pass is the slowest, accept the fastest.
        EXPECT_GT(m.packetPass().totalPs(), m.packetBlock().totalPs());
        EXPECT_GT(m.packetBlock().totalPs(),
                  m.packetAccept().totalPs());
        EXPECT_DOUBLE_EQ(m.packetAccept().totalPs(),
                         m.packetInterimAccept().totalPs());
    }
}

TEST_P(TimingAcrossWavelengths, ResonatorDriveDominatesPass)
{
    const int wl = GetParam();
    for (Scaling s : {Scaling::Average, Scaling::Pessimistic}) {
        RouterTimingModel m(s, wl);
        // Paper: "most of the delay involves driving the resonators".
        EXPECT_GT(2.0 * m.resonatorDrivePs(),
                  0.5 * m.packetPass().totalPs());
    }
}

INSTANTIATE_TEST_SUITE_P(Wavelengths, TimingAcrossWavelengths,
                         ::testing::Values(32, 64, 128));

TEST(Timing, WavelengthsHaveLittleDelayImpact)
{
    // Paper Fig 5: the wavelength count barely changes the critical
    // paths. The swing between 32 and 128 lambda comes from the
    // internal traverse distance and is bounded in absolute terms; it
    // never changes the hop budget (checked above).
    for (Scaling s : {Scaling::Optimistic, Scaling::Average,
                      Scaling::Pessimistic}) {
        const double pp32 =
            RouterTimingModel(s, 32).packetPass().totalPs();
        const double pp128 =
            RouterTimingModel(s, 128).packetPass().totalPs();
        EXPECT_LT(std::abs(pp32 - pp128), 15.0);
    }
    // For the average and pessimistic scenarios (larger totals) the
    // relative impact is small as well.
    for (Scaling s : {Scaling::Average, Scaling::Pessimistic}) {
        const double pp32 =
            RouterTimingModel(s, 32).packetPass().totalPs();
        const double pp128 =
            RouterTimingModel(s, 128).packetPass().totalPs();
        EXPECT_LT(std::abs(pp32 - pp128) / pp32, 0.35);
    }
}

TEST(Timing, PathDelayIsMonotonicInHops)
{
    RouterTimingModel m(Scaling::Average, 64);
    double prev = 0.0;
    for (int h = 1; h <= 14; ++h) {
        const double d = m.pathDelayPs(h);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(Timing, MaxHopsUsesWholeBudget)
{
    for (Scaling s : {Scaling::Optimistic, Scaling::Average,
                      Scaling::Pessimistic}) {
        RouterTimingModel m(s, 64);
        const int h = m.maxHopsPerCycle(4.0);
        ASSERT_GE(h, 1);
        EXPECT_LE(m.pathDelayPs(h), 250.0);
        EXPECT_GT(m.pathDelayPs(h + 1), 250.0);
    }
}

TEST(Timing, SlowerClockAllowsMoreHops)
{
    RouterTimingModel m(Scaling::Pessimistic, 64);
    EXPECT_GE(m.maxHopsPerCycle(2.0), m.maxHopsPerCycle(4.0));
    EXPECT_GE(m.maxHopsPerCycle(4.0), m.maxHopsPerCycle(8.0));
}

TEST(Timing, HopBudgetCappedByControlGroups)
{
    RouterTimingModel m(Scaling::Optimistic, 64);
    // At a very slow clock the control-field limit (14 groups) caps
    // the reach.
    EXPECT_LE(m.maxHopsPerCycle(0.1), 14);
}

TEST(Timing, ComponentBreakdownSumsToTotal)
{
    RouterTimingModel m(Scaling::Average, 64);
    for (const CriticalPath &p :
         {m.packetPass(), m.packetBlock(), m.packetAccept(),
          m.packetInterimAccept()}) {
        double sum = 0.0;
        for (const auto &c : p.components) {
            EXPECT_GT(c.ps, 0.0) << p.name << "/" << c.name;
            sum += c.ps;
        }
        EXPECT_DOUBLE_EQ(sum, p.totalPs());
    }
}

TEST(Timing, ScenarioDelaysOrdered)
{
    RouterTimingModel opt(Scaling::Optimistic, 64);
    RouterTimingModel avg(Scaling::Average, 64);
    RouterTimingModel pess(Scaling::Pessimistic, 64);
    EXPECT_LT(opt.packetPass().totalPs(), avg.packetPass().totalPs());
    EXPECT_LT(avg.packetPass().totalPs(), pess.packetPass().totalPs());
}

} // namespace
} // namespace phastlane::optical
