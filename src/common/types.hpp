/**
 * @file
 * Fundamental scalar types and the router port direction enum shared by
 * every Phastlane subsystem.
 */

#ifndef PHASTLANE_COMMON_TYPES_HPP
#define PHASTLANE_COMMON_TYPES_HPP

#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace phastlane {

/** Identifier of a network node (0 .. nodeCount-1). */
using NodeId = int32_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = -1;

/** Simulation time in network clock cycles. */
using Cycle = uint64_t;

/** Sentinel for "never" / "not yet". */
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Unique packet identifier, assigned at creation and stable across
 *  retransmissions of the same payload. */
using PacketId = uint64_t;

/**
 * A router port. The four mesh directions plus the local (node) port.
 *
 * The numeric order (N, E, S, W) doubles as the fixed arbitration
 * priority used by the Phastlane optical switch for same-class
 * conflicts.
 */
enum class Port : uint8_t {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
};

/** Number of mesh-facing ports on a router. */
constexpr int kMeshPorts = 4;

/** Number of ports including the local ejection/injection port. */
constexpr int kAllPorts = 5;

/** All four mesh directions in fixed-priority order. */
constexpr std::array<Port, kMeshPorts> kMeshDirections = {
    Port::North, Port::East, Port::South, Port::West};

/** All five ports. */
constexpr std::array<Port, kAllPorts> kAllPortList = {
    Port::North, Port::East, Port::South, Port::West, Port::Local};

/** The direction a packet leaves by when it entered via @p p and goes
 *  straight through the router. */
constexpr Port
opposite(Port p)
{
    switch (p) {
      case Port::North: return Port::South;
      case Port::East: return Port::West;
      case Port::South: return Port::North;
      case Port::West: return Port::East;
      default: return Port::Local;
    }
}

/** Port as an array index. */
constexpr int
portIndex(Port p)
{
    return static_cast<int>(p);
}

/** Inverse of portIndex(). @p i must be in [0, kAllPorts). */
constexpr Port
portFromIndex(int i)
{
    return static_cast<Port>(i);
}

/** Short human-readable port name ("N", "E", "S", "W", "L"). */
const char *portName(Port p);

/**
 * Relative turn taken inside a router, as encoded in the Phastlane
 * per-router control group.
 */
enum class Turn : uint8_t {
    Straight = 0,
    Left = 1,
    Right = 2,
};

/** Name of a turn ("straight"/"left"/"right"). */
const char *turnName(Turn t);

/**
 * The output port reached when entering via @p in and taking turn @p t.
 *
 * "Left"/"right" are from the perspective of the traveling packet. A
 * packet entering the South input port travels northward; turning right
 * sends it out the East port.
 */
constexpr Port
applyTurn(Port in, Turn t)
{
    // Travel direction is opposite(in); left/right rotate it.
    const Port straight_out = opposite(in);
    if (t == Turn::Straight)
        return straight_out;
    // Clockwise order N->E->S->W. Right turn = clockwise step of the
    // travel direction; left = counter-clockwise.
    const int dir = portIndex(straight_out);
    if (t == Turn::Right)
        return portFromIndex((dir + 1) % kMeshPorts);
    return portFromIndex((dir + 3) % kMeshPorts);
}

/**
 * The turn needed to exit via @p out when entering via @p in, assuming
 * that is possible (U-turns are not representable and must not occur
 * under dimension-order routing).
 */
Turn turnBetween(Port in, Port out);

} // namespace phastlane

#endif // PHASTLANE_COMMON_TYPES_HPP
