/**
 * @file
 * Trace file round-trip and replay tests (the paper drives both
 * simulators from the same trace files).
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/trace.hpp"

namespace phastlane::traffic {
namespace {

std::vector<TraceRecord>
sampleTrace()
{
    std::vector<TraceRecord> t;
    t.push_back({0, 0, 63, MessageKind::Request, 1});
    t.push_back({0, 5, kInvalidNode, MessageKind::Invalidate, 2});
    t.push_back({3, 10, 20, MessageKind::Response, 3});
    t.push_back({7, 63, 0, MessageKind::Writeback, 4});
    t.push_back({7, 1, 2, MessageKind::Synthetic, 5});
    return t;
}

TEST(Trace, WriteReadRoundTrip)
{
    const std::string path = "/tmp/pl_trace_test.txt";
    const auto original = sampleTrace();
    writeTrace(path, original);
    const auto loaded = readTrace(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(Trace, BroadcastEncoding)
{
    TraceRecord r;
    r.dst = kInvalidNode;
    EXPECT_TRUE(r.broadcast());
    r.dst = 5;
    EXPECT_FALSE(r.broadcast());
}

TEST(Trace, CommentsAndBlankLinesIgnored)
{
    const std::string path = "/tmp/pl_trace_comment.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "# a comment\n\n1 2 3 0 9\n");
    std::fclose(f);
    const auto loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].cycle, 1u);
    EXPECT_EQ(loaded[0].src, 2);
    EXPECT_EQ(loaded[0].dst, 3);
    EXPECT_EQ(loaded[0].tag, 9u);
    std::remove(path.c_str());
}

TEST(Trace, ReplayDeliversEverything)
{
    const auto trace = sampleTrace();
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    const TraceReplayResult r = replayTrace(net, trace);
    EXPECT_EQ(r.messages, trace.size());
    // One broadcast (63 deliveries) + four unicasts.
    EXPECT_EQ(r.deliveries, 63u + 4u);
    EXPECT_GT(r.avgLatency, 0.0);
}

TEST(Trace, SameTraceRunsOnBothNetworks)
{
    // The defining property of the methodology: identical input to
    // both simulators.
    const auto trace = sampleTrace();
    core::PhastlaneNetwork opt(core::PhastlaneParams{});
    electrical::ElectricalNetwork elec(
        electrical::ElectricalParams{});
    const TraceReplayResult ro = replayTrace(opt, trace);
    const TraceReplayResult re = replayTrace(elec, trace);
    EXPECT_EQ(ro.deliveries, re.deliveries);
    EXPECT_LT(ro.avgLatency, re.avgLatency);
}

TEST(Trace, RespectsInjectionTimestamps)
{
    std::vector<TraceRecord> trace;
    trace.push_back({100, 0, 1, MessageKind::Synthetic, 1});
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    const TraceReplayResult r = replayTrace(net, trace);
    EXPECT_GE(r.completionCycle, 100u);
    EXPECT_EQ(r.deliveries, 1u);
}

TEST(Trace, RecorderCapturesInjections)
{
    core::PhastlaneNetwork inner(core::PhastlaneParams{});
    RecordingNetwork rec(inner);
    Packet a;
    a.id = 1;
    a.src = 0;
    a.dst = 5;
    a.kind = MessageKind::Writeback;
    a.tag = 77;
    ASSERT_TRUE(rec.inject(a));
    rec.step();
    Packet b;
    b.id = 2;
    b.src = 3;
    b.broadcast = true;
    b.kind = MessageKind::Request;
    ASSERT_TRUE(rec.inject(b));
    while (rec.inFlight() > 0)
        rec.step();

    const auto &records = rec.recorded();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].cycle, 0u);
    EXPECT_EQ(records[0].src, 0);
    EXPECT_EQ(records[0].dst, 5);
    EXPECT_EQ(records[0].kind, MessageKind::Writeback);
    EXPECT_EQ(records[0].tag, 77u);
    EXPECT_EQ(records[1].cycle, 1u);
    EXPECT_TRUE(records[1].broadcast());
}

TEST(Trace, RecorderRejectionsAreNotRecorded)
{
    core::PhastlaneParams p;
    p.nicQueueEntries = 1;
    core::PhastlaneNetwork inner(p);
    RecordingNetwork rec(inner);
    Packet a;
    a.id = 1;
    a.src = 0;
    a.dst = 5;
    ASSERT_TRUE(rec.inject(a));
    Packet b = a;
    b.id = 2;
    EXPECT_FALSE(rec.inject(b)); // NIC full
    EXPECT_EQ(rec.recorded().size(), 1u);
}

TEST(Trace, RecordedWorkloadReplaysOnTheOtherNetwork)
{
    // The full methodology round trip: record a closed-loop workload
    // on the optical network, write it out, read it back, and replay
    // it on the electrical baseline.
    SplashProfile prof;
    prof.name = "mini";
    prof.txnsPerNode = 5;
    prof.mshrLimit = 2;
    prof.interBurstGapMean = 30.0;
    const auto streams = generateStreams(prof, 64, 21);

    core::PhastlaneNetwork opt(core::PhastlaneParams{});
    RecordingNetwork rec(opt);
    CoherenceDriver driver(rec, streams, prof.mshrLimit);
    const CoherenceResult r = driver.run();
    ASSERT_FALSE(r.timedOut);
    ASSERT_GT(rec.recorded().size(), 0u);

    const std::string path = "/tmp/pl_recorded_trace.txt";
    writeTrace(path, rec.recorded());
    const auto loaded = readTrace(path);
    EXPECT_EQ(loaded.size(), rec.recorded().size());

    electrical::ElectricalNetwork elec(
        electrical::ElectricalParams{});
    const TraceReplayResult replay = replayTrace(elec, loaded);
    // Every recorded message is delivered on the other network.
    uint64_t expected = 0;
    for (const auto &rcd : loaded)
        expected += rcd.broadcast() ? 63 : 1;
    EXPECT_EQ(replay.deliveries, expected);
    std::remove(path.c_str());
}

TEST(Trace, LongLinesParseAsOneRecord)
{
    // A fixed 256-byte fgets buffer used to split over-long lines,
    // letting the tail fragment parse as a bogus extra record (or
    // fail). Pad a valid record far past the old buffer size.
    const std::string path = "/tmp/pl_trace_longline.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "1 2 3 0 9%s\n", std::string(600, ' ').c_str());
    std::fprintf(f, "#%s\n", std::string(1000, 'x').c_str());
    std::fprintf(f, "2%s4 5 0 10\n", std::string(400, ' ').c_str());
    std::fclose(f);
    const auto loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].tag, 9u);
    EXPECT_EQ(loaded[1].cycle, 2u);
    EXPECT_EQ(loaded[1].src, 4);
    std::remove(path.c_str());
}

TEST(Trace, ValidateTraceRecordFindsBadNodes)
{
    TraceRecord r{0, 0, 5, MessageKind::Request, 1};
    EXPECT_EQ(validateTraceRecord(r, 64), "");
    r.dst = -5; // below even the broadcast sentinel
    EXPECT_NE(validateTraceRecord(r, 64), "");
    r.dst = kInvalidNode; // broadcast is fine
    EXPECT_EQ(validateTraceRecord(r, 64), "");
    r.dst = 64; // one past the last node
    EXPECT_NE(validateTraceRecord(r, 64), "");
    r.dst = 5;
    r.src = -1;
    EXPECT_NE(validateTraceRecord(r, 64), "");
    r.src = 64;
    EXPECT_NE(validateTraceRecord(r, 64), "");
    r.src = 5; // unicast to self
    EXPECT_NE(validateTraceRecord(r, 64), "");
    r.src = 0;
    r.kind = static_cast<MessageKind>(99);
    EXPECT_NE(validateTraceRecord(r, 64), "");
}

using TraceDeathTest = ::testing::Test;

TEST(TraceDeathTest, ReadRejectsOutOfRangeDst)
{
    // dst -5 used to replay as a negative unicast and index node
    // arrays out of bounds.
    const std::string path = "/tmp/pl_trace_bad_dst.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "0 1 -5 0 1\n");
    std::fclose(f);
    EXPECT_DEATH(readTrace(path), "");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, ReadRejectsNodesOutsideTheNetwork)
{
    const std::string path = "/tmp/pl_trace_big_dst.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "0 1 70 0 1\n");
    std::fclose(f);
    EXPECT_DEATH(readTrace(path, 64), "");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, ReadRejectsTrailingGarbage)
{
    const std::string path = "/tmp/pl_trace_garbage.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "0 1 2 0 1 oops\n");
    std::fclose(f);
    EXPECT_DEATH(readTrace(path), "");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, ReadRejectsOutOfOrderCycles)
{
    const std::string path = "/tmp/pl_trace_order.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "5 1 2 0 1\n3 2 3 0 2\n");
    std::fclose(f);
    EXPECT_DEATH(readTrace(path), "");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, WriteSurfacesFullDisk)
{
    // /dev/full accepts the open but fails every flush: the old
    // unchecked fprintf/fclose path produced a silently truncated
    // trace here.
    std::vector<TraceRecord> t;
    t.push_back({0, 0, 1, MessageKind::Request, 1});
    EXPECT_DEATH(writeTrace("/dev/full", t), "");
}

TEST(TraceDeathTest, ReplayRejectsRecordsOutsideTheNetwork)
{
    std::vector<TraceRecord> t;
    t.push_back({0, 0, 500, MessageKind::Request, 1});
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    EXPECT_DEATH(replayTrace(net, t), "");
}

TEST(Trace, ReplaySurfacesCycleLimitExhaustion)
{
    // A record scheduled after the budget: the old code returned a
    // normal-looking result with no indication the replay was cut
    // short.
    std::vector<TraceRecord> t;
    t.push_back({0, 0, 1, MessageKind::Synthetic, 1});
    t.push_back({5000, 2, 3, MessageKind::Synthetic, 2});
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    const TraceReplayResult r = replayTrace(net, t, 100);
    EXPECT_TRUE(r.hitCycleLimit);
    EXPECT_EQ(r.outstanding, 1u); // the cycle-5000 record never ran
    EXPECT_EQ(r.deliveries, 1u);

    core::PhastlaneNetwork net2(core::PhastlaneParams{});
    const TraceReplayResult ok = replayTrace(net2, t);
    EXPECT_FALSE(ok.hitCycleLimit);
    EXPECT_EQ(ok.outstanding, 0u);
    EXPECT_EQ(ok.deliveries, 2u);
}

TEST(Trace, LargeGeneratedTraceReplays)
{
    std::vector<TraceRecord> trace;
    uint64_t tag = 1;
    for (Cycle c = 0; c < 200; c += 2) {
        trace.push_back({c, static_cast<NodeId>(c % 64),
                         static_cast<NodeId>((c + 13) % 64),
                         MessageKind::Synthetic, tag++});
    }
    electrical::ElectricalNetwork net(
        electrical::ElectricalParams{});
    const TraceReplayResult r = replayTrace(net, trace);
    EXPECT_EQ(r.deliveries, trace.size());
}

} // namespace
} // namespace phastlane::traffic
