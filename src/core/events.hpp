/**
 * @file
 * Event counters of the Phastlane network consumed by the optical
 * power model and the statistics reports.
 */

#ifndef PHASTLANE_CORE_EVENTS_HPP
#define PHASTLANE_CORE_EVENTS_HPP

#include <cstdint>

namespace phastlane::core {

/**
 * Cumulative activity counters; all are per whole-network totals.
 */
struct OpticalEvents {
    /** Optical launches (modulator bank activations), including
     *  retransmissions. */
    uint64_t launches = 0;

    /** Router pass-throughs (turn or straight transit). */
    uint64_t passTraversals = 0;

    /** Full packet receptions (blocked, interim, or final). */
    uint64_t receives = 0;

    /** Multicast power-tap deliveries. */
    uint64_t tapReceives = 0;

    /** Electrical buffer writes / reads. */
    uint64_t bufferWrites = 0;
    uint64_t bufferReads = 0;

    /** Packets dropped (buffer full). */
    uint64_t drops = 0;

    /** Return-path hops signaled for drops. */
    uint64_t dropSignalHops = 0;

    /** Launches that were retransmissions of a dropped packet. */
    uint64_t retransmissions = 0;

    /** Router-cycles elapsed (for static/leakage power). */
    uint64_t routerCycles = 0;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_EVENTS_HPP
