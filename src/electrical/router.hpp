/**
 * @file
 * One electrical input-queued VC router: input VC state, output VC
 * credit tracking, and the iSLIP-style separable VC and switch
 * allocators (paper Table 2).
 */

#ifndef PHASTLANE_ELECTRICAL_ROUTER_HPP
#define PHASTLANE_ELECTRICAL_ROUTER_HPP

#include <array>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "electrical/flit.hpp"
#include "electrical/params.hpp"
#include "electrical/vctm.hpp"

namespace phastlane::electrical {

/** State of one input virtual channel (depth 1). */
struct InputVc {
    std::optional<EFlit> flit;
    Cycle arrivedAt = 0;

    /** Mesh output ports this flit still has to be sent to (bitmask
     *  over portIndex; one bit for unicast, several for a VCTM
     *  fork). */
    uint8_t pendingMesh = 0;

    /** Pure ejection (or multicast leaf): VC frees one cycle after
     *  arrival without touching the crossbar. */
    bool ejecting = false;

    /**
     * Output VC held per pending branch (-1 = not yet allocated).
     * Branches allocate and traverse independently; the crossbar's
     * input speedup of 4 lets a VCTM fork replicate to several output
     * ports in the same cycle.
     */
    std::array<int, kMeshPorts> branchVc{-1, -1, -1, -1};

    bool busy() const { return flit.has_value(); }

    void
    resetBranches()
    {
        branchVc = {-1, -1, -1, -1};
    }
};

/** Credit state of one downstream (output-side) VC slot. */
struct OutputVc {
    enum class State : uint8_t {
        Free,       ///< allocatable once freeAt has passed
        Assigned,   ///< granted by VA, flit not yet departed
        Occupied,   ///< flit sits in the downstream buffer
    };
    State state = State::Free;
    Cycle freeAt = 0; ///< credit visibility time while Free
};

/** One switch-allocation winner. */
struct SaWinner {
    Port inPort;
    int inVc;
    Port outPort;
    int outVc;
};

/**
 * Router state plus allocation logic. Inter-router flit movement and
 * credit notification are orchestrated by ElectricalNetwork.
 */
class ElectricalRouter
{
  public:
    ElectricalRouter(NodeId self, const ElectricalParams &params);

    NodeId self() const { return self_; }

    InputVc &inputVc(Port p, int v);
    const InputVc &inputVc(Port p, int v) const;
    OutputVc &outputVc(Port p, int v);

    /** A free input VC index at @p p, or -1 when all are busy. */
    int freeInputVc(Port p) const;

    VctmTable &treeTable() { return table_; }

    /**
     * VC allocation (iSLIP-style, output-first, single iteration):
     * input VCs holding a flit whose VA stage has been reached and
     * that have an unserved branch request an output VC on the
     * branch's port; free output VCs are granted round-robin.
     * Returns the number of grants.
     */
    int allocateVcs(Cycle now);

    /**
     * Switch allocation (iSLIP): branches holding an output VC and
     * past their SA stage compete per output port through the
     * configured number of grant/accept iterations, limited by the
     * input speedup (output speedup 1). Round-robin grant and accept
     * pointers advance only on first-iteration matches, per the iSLIP
     * pointer-update rule. Winners' output VCs move to Occupied;
     * branch and input-VC release is handled by the caller.
     */
    std::vector<SaWinner> allocateSwitch(Cycle now);

    /** Earliest cycle a flit that arrived at @p arrival may do VA. */
    Cycle vaStage(Cycle arrival) const;

    /** Earliest cycle it may do SA (departure cycle; +1 link). */
    Cycle saStage(Cycle arrival) const;

  private:
    NodeId self_;
    const ElectricalParams &params_;
    std::vector<InputVc> inputs_;   ///< [port * V + vc]
    std::vector<OutputVc> outputs_; ///< [meshPort * V + vc]
    std::vector<int> vaPtr_;        ///< per output port
    std::vector<int> saPtr_;        ///< grant pointer per output port
    std::vector<int> acceptPtr_;    ///< accept pointer per input port
    VctmTable table_;
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_ROUTER_HPP
