
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/netsim_cli.cpp" "examples/CMakeFiles/netsim_cli.dir/netsim_cli.cpp.o" "gcc" "examples/CMakeFiles/netsim_cli.dir/netsim_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/plsim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pltraffic.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/plpower.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/plcore.dir/DependInfo.cmake"
  "/root/repo/build/src/electrical/CMakeFiles/plelectrical.dir/DependInfo.cmake"
  "/root/repo/build/src/optical/CMakeFiles/ploptical.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/plnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
