
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optical/area_model.cpp" "src/optical/CMakeFiles/ploptical.dir/area_model.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/area_model.cpp.o.d"
  "/root/repo/src/optical/devices.cpp" "src/optical/CMakeFiles/ploptical.dir/devices.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/devices.cpp.o.d"
  "/root/repo/src/optical/loss.cpp" "src/optical/CMakeFiles/ploptical.dir/loss.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/loss.cpp.o.d"
  "/root/repo/src/optical/power_model.cpp" "src/optical/CMakeFiles/ploptical.dir/power_model.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/power_model.cpp.o.d"
  "/root/repo/src/optical/scaling.cpp" "src/optical/CMakeFiles/ploptical.dir/scaling.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/scaling.cpp.o.d"
  "/root/repo/src/optical/timing.cpp" "src/optical/CMakeFiles/ploptical.dir/timing.cpp.o" "gcc" "src/optical/CMakeFiles/ploptical.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
