/**
 * @file
 * Peak optical input power model (paper Fig 7).
 *
 * The peak occurs when every input port of every router simultaneously
 * receives a multicast packet from its nearest neighbor, all packets
 * turn in the same direction to an open output port, every return path
 * is signaling a drop, and all buffers arbitrate -- the maximum number
 * of crossings and active components.
 *
 * We model the required input power as a loss budget: the laser must
 * deliver receiver-sensitivity-limited power after the worst-case
 * path's crossing losses. Crossings per router have a fixed part and a
 * part proportional to the waveguide bundle width (which shrinks as
 * the WDM degree grows); total crossings grow with the per-cycle hop
 * limit. Constants are calibrated to the paper's quoted points:
 * (64 lambda, 4 hops, 98%) -> 32 W, (128, 5, 98%) -> 32 W,
 * (128, 4, 98%) -> 15 W; see DESIGN.md section 6.
 */

#ifndef PHASTLANE_OPTICAL_POWER_MODEL_HPP
#define PHASTLANE_OPTICAL_POWER_MODEL_HPP

#include "optical/devices.hpp"

namespace phastlane::optical {

/**
 * Analytic peak-optical-power model.
 */
class PeakPowerModel
{
  public:
    explicit PeakPowerModel(const PacketFormat &format = {},
                            const WaveguideConstants &wg = {});

    /** Per-crossing loss for a crossing efficiency in (0, 1]. [dB] */
    static double crossingLossDb(double efficiency);

    /** Worst-case number of waveguide crossings on a @p max_hops path
     *  with @p wavelengths -way WDM. */
    double worstCaseCrossings(int wavelengths, int max_hops) const;

    /** Worst-case path loss. [dB] */
    double pathLossDb(double efficiency, int wavelengths,
                      int max_hops) const;

    /**
     * Peak chip-wide optical input power. [W]
     *
     * @param efficiency Crossing efficiency in (0, 1].
     * @param wavelengths Payload WDM degree.
     * @param max_hops Per-cycle hop limit of the network.
     */
    double peakPowerW(double efficiency, int wavelengths,
                      int max_hops) const;

    /**
     * Largest hop limit whose peak power stays within @p budget_w, or
     * 0 when even one hop exceeds it.
     */
    int maxHopsWithinBudget(double efficiency, int wavelengths,
                            double budget_w, int hop_limit = 14) const;

  private:
    PacketFormat format_;
    WaveguideConstants wg_;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_POWER_MODEL_HPP
