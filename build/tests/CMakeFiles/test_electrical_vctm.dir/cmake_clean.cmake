file(REMOVE_RECURSE
  "CMakeFiles/test_electrical_vctm.dir/test_electrical_vctm.cpp.o"
  "CMakeFiles/test_electrical_vctm.dir/test_electrical_vctm.cpp.o.d"
  "test_electrical_vctm"
  "test_electrical_vctm.pdb"
  "test_electrical_vctm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_electrical_vctm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
