# Empty compiler generated dependencies file for plnet.
# This may be replaced when dependencies are built.
