file(REMOVE_RECURSE
  "CMakeFiles/test_electrical_network.dir/test_electrical_network.cpp.o"
  "CMakeFiles/test_electrical_network.dir/test_electrical_network.cpp.o.d"
  "test_electrical_network"
  "test_electrical_network.pdb"
  "test_electrical_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_electrical_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
