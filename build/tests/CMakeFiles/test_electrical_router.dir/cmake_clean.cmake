file(REMOVE_RECURSE
  "CMakeFiles/test_electrical_router.dir/test_electrical_router.cpp.o"
  "CMakeFiles/test_electrical_router.dir/test_electrical_router.cpp.o.d"
  "test_electrical_router"
  "test_electrical_router.pdb"
  "test_electrical_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_electrical_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
