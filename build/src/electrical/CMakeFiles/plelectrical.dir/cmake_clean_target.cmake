file(REMOVE_RECURSE
  "libplelectrical.a"
)
