#include "core/nic.hpp"

#include "common/log.hpp"

namespace phastlane::core {

OpticalNic::OpticalNic(NodeId self, const PhastlaneParams &params,
                       const MeshTopology &mesh)
    : self_(self),
      capacity_(static_cast<size_t>(params.nicQueueEntries)),
      broadcastBranches_(splitBroadcast(mesh, self).size()),
      mesh_(mesh)
{
}

void
OpticalNic::accept(const Packet &pkt, Cycle now,
                   uint64_t &next_branch_id)
{
    PL_ASSERT(pkt.src == self_, "packet source mismatch at NIC %d",
              self_);
    if (pkt.broadcast) {
        for (auto &branch : splitBroadcast(mesh_, self_)) {
            OpticalPacket op;
            op.base = pkt;
            op.branchId = next_branch_id++;
            op.multicast = true;
            op.finalDst = branch.finalDst();
            op.taps = std::move(branch.taps);
            op.acceptedAt = now;
            queue_.push_back(std::move(op));
        }
    } else {
        PL_ASSERT(pkt.dst != self_, "unicast to self at node %d",
                  self_);
        OpticalPacket op;
        op.base = pkt;
        op.branchId = next_branch_id++;
        op.multicast = false;
        op.finalDst = pkt.dst;
        op.acceptedAt = now;
        queue_.push_back(std::move(op));
    }
    PL_ASSERT(queue_.size() <= capacity_, "NIC overflow at node %d",
              self_);
}

const OpticalPacket &
OpticalNic::head() const
{
    PL_ASSERT(!queue_.empty(), "reading head of empty NIC queue");
    return queue_.front();
}

OpticalPacket
OpticalNic::popHead()
{
    PL_ASSERT(!queue_.empty(), "popping empty NIC queue");
    OpticalPacket p = std::move(queue_.front());
    queue_.pop_front();
    return p;
}

void
OpticalNic::popHeadInto(OpticalPacket &dst)
{
    PL_ASSERT(!queue_.empty(), "popping empty NIC queue");
    dst = std::move(queue_.front());
    queue_.pop_front();
}

} // namespace phastlane::core
