#include "electrical/vctm.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::electrical {

VctmTable::VctmTable(int capacity)
    : capacity_(static_cast<size_t>(capacity))
{
    if (capacity <= 0)
        fatal("VCTM table capacity must be positive");
}

const TreeEntry *
VctmTable::find(TreeId tree) const
{
    const auto it = entries_.find(tree);
    return it == entries_.end() ? nullptr : &it->second;
}

TreeEntry &
VctmTable::entry(TreeId tree)
{
    auto it = entries_.find(tree);
    if (it != entries_.end())
        return it->second;
    if (entries_.size() >= capacity_) {
        const TreeId victim = fifo_.front();
        fifo_.erase(fifo_.begin());
        entries_.erase(victim);
        ++evictions_;
    }
    fifo_.push_back(tree);
    return entries_[tree];
}

void
VctmTable::installPort(TreeId tree, Port port)
{
    PL_ASSERT(port != Port::Local, "installPort with the local port");
    entry(tree).meshPorts |=
        static_cast<uint8_t>(1u << portIndex(port));
}

void
VctmTable::installLocal(TreeId tree)
{
    entry(tree).local = true;
}

} // namespace phastlane::electrical
