/**
 * @file
 * Router critical-path timing (paper Fig 5) and the per-cycle hop
 * budget (paper Fig 6).
 *
 * The model follows the paper's decomposition of the internal router
 * operations:
 *
 *  - Packet Pass (PP): receive the Router Control bits, drive the C0
 *    Group 1 resonators of blocked packets, that signal drives the
 *    receive resonators of the blocked packets (clearing the output
 *    port), then traverse the remainder of the switch.
 *  - Packet Block (PB): as PP, but the switch traversal is replaced by
 *    receiving the blocked packet.
 *  - Packet Accept / Packet Interim Accept (PA/PIA): receive the C0
 *    control bits, drive the receive resonators, receive the packet.
 *
 * The longest network delay is an injection followed by the maximum
 * number of Packet Pass hops and a final accept:
 *
 *   tx + X*PP' + H*wire + PA' + overhead <= clock period
 *
 * with X = H-1 pass routers, PP'/PA' the non-wire parts, and wire the
 * per-hop propagation over one node pitch (10.45 ps/mm). Under the
 * calibrated constants this yields 8 / 5 / 4 hops per 4 GHz cycle for
 * optimistic / average / pessimistic scaling, independent of the
 * wavelength count (32/64/128), as in the paper.
 */

#ifndef PHASTLANE_OPTICAL_TIMING_HPP
#define PHASTLANE_OPTICAL_TIMING_HPP

#include <string>
#include <vector>

#include "optical/devices.hpp"
#include "optical/scaling.hpp"

namespace phastlane::optical {

/** One named component of a critical path. */
struct DelayComponent {
    std::string name;
    double ps = 0.0;
};

/** A named critical path and its component breakdown. */
struct CriticalPath {
    std::string name;
    std::vector<DelayComponent> components;

    double totalPs() const;
};

/**
 * Analytic timing model of one Phastlane router at 16 nm.
 */
class RouterTimingModel
{
  public:
    /**
     * @param scaling Device scaling scenario.
     * @param wavelengths Payload WDM degree (32/64/128).
     */
    RouterTimingModel(Scaling scaling, int wavelengths,
                      const PacketFormat &format = {},
                      const ChipGeometry &geometry = {},
                      const WaveguideConstants &wg = {});

    /** Receive-side (detector+amp) delay. [ps] */
    double rxDelayPs() const { return rx_; }

    /** Transmit-side (modulator+driver) delay at the source. [ps] */
    double txDelayPs() const { return tx_; }

    /**
     * Resonator drive delay: the electrical driver charging a bank of
     * rings. Includes a small fan-out penalty growing with the number
     * of waveguides (hence shrinking with the WDM degree), which keeps
     * the wavelength count's impact on delay small, as in Fig 5. [ps]
     */
    double resonatorDrivePs() const { return drive_; }

    /** Propagation across the router's internal crossing region. [ps] */
    double internalTraversePs() const { return traverse_; }

    /** Per-hop waveguide propagation over one node pitch. [ps] */
    double hopWirePs() const { return hop_wire_; }

    /** Register setup + clock skew overhead per cycle. [ps] */
    double overheadPs() const { return kOverheadPs; }

    /** Packet Pass critical path (Fig 5). */
    CriticalPath packetPass() const;

    /** Packet Block critical path (Fig 5). */
    CriticalPath packetBlock() const;

    /** Packet Accept critical path (Fig 5). */
    CriticalPath packetAccept() const;

    /** Packet Interim Accept critical path (Fig 5). */
    CriticalPath packetInterimAccept() const;

    /**
     * Maximum hops traversable in one clock at @p freq_ghz, counting
     * worst-case contention at every router (Fig 6). Capped at the
     * control-field limit of 14 routers.
     */
    int maxHopsPerCycle(double freq_ghz) const;

    /** End-to-end delay of an H-hop contested transmission. [ps] */
    double pathDelayPs(int hops) const;

  private:
    static constexpr double kOverheadPs = 10.0;
    static constexpr double kNodeNm = 16.0;

    // Per-scenario resonator drive delay before the fan-out factor,
    // calibrated to the Fig 6 hop budgets (DESIGN.md 6). [ps]
    static double baseDrivePs(Scaling s);

    double rx_;
    double tx_;
    double drive_;
    double traverse_;
    double hop_wire_;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_TIMING_HPP
