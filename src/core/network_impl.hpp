/**
 * @file
 * Sink-parameterized arrival-side logic of PhastlaneNetwork, shared
 * verbatim by the scalar engines (DirectSink: effects applied in
 * place, observer callbacks live) and the sharded engine (ShardSink:
 * per-shard counter deltas plus merge-keyed effect streams). Included
 * only by network.cpp and network_sharded.cpp.
 *
 * Everything order-sensitive flows through the sink: deliveries, the
 * deferred release/drop outcomes (whose order drives next cycle's
 * backoff RNG draws), and the loss accounting. Router-buffer state,
 * the return-path registry and the fault hashes are touched directly —
 * they are element-disjoint per router / per (router, port) under the
 * shard partition, or stateless.
 */

#ifndef PHASTLANE_CORE_NETWORK_IMPL_HPP
#define PHASTLANE_CORE_NETWORK_IMPL_HPP

#include "core/network.hpp"

namespace phastlane::core {

template <typename Sink>
void
PhastlaneNetwork::serveTapAtT(Flight &f, Sink &sink)
{
    // Broadcast tap: a fraction of the optical power is received and
    // a copy delivered to this node — unless the tap was already
    // served by a pre-corruption attempt (duplicate suppression) or
    // the receive resonator missed the capture (injected fault).
    PL_ASSERT(!f.pkt.tapsDone() && f.pkt.nextTap() == f.at,
              "tap bookkeeping out of sync at node %d", f.at);
    if (f.pkt.tapCursor < f.pkt.dedupBelow) {
        f.pkt.serveTap();
        ++sink.events().duplicatesSuppressed;
        sink.onDuplicate(f.pkt, f.at);
        return;
    }
    if (faultRoll(params_.faults, params_.faults.missedReceiveRate,
                  FaultKind::MissedReceive, f.pkt.branchId,
                  static_cast<uint64_t>(cycle_),
                  static_cast<uint64_t>(f.at))) {
        f.pkt.serveTap();
        ++sink.events().faultMissedReceives;
        sink.noteLost(f.pkt, f.at, 1, LostCause::MissedReceive);
        return;
    }
    sink.deliver(f.pkt, f.at);
    f.pkt.serveTap();
    ++sink.events().tapReceives;
    sink.onTap(f.pkt, f.at);
}

template <typename Sink>
void
PhastlaneNetwork::deadRouterArrivalT(Flight &f, Sink &sink)
{
    // Hard-failed router: the packet is absorbed and never forwarded,
    // no drop signal returns, and the holder's "no signal means
    // success" rule frees the buffer slot next cycle. Every remaining
    // delivery unit of the branch is lost.
    ++sink.events().faultDeadArrivals;
    sink.noteLost(f.pkt, f.at, unitsOutstanding(f.pkt),
                  LostCause::DeadRouter);
    sink.release(f.holder);
    f.active = false;
}

template <typename Sink>
bool
PhastlaneNetwork::handleArrivalT(Flight &f, Sink &sink)
{
    const ControlGroup g = f.prog.front();
    PL_ASSERT(f.hops <= params_.maxHopsPerCycle,
              "flight exceeded the per-cycle hop limit");

    if (failedRouters_[static_cast<size_t>(f.at)] != 0) {
        deadRouterArrivalT(f, sink);
        return true;
    }

    if (g.multicast)
        serveTapAtT(f, sink);

    if (g.local) {
        f.prog.translate();
        if (f.prog.empty()) {
            // Final router of this packet/branch.
            if (!g.multicast) {
                // Unicast destination: deliver through the local
                // receive resonators (multicast finals were already
                // delivered by the tap above).
                PL_ASSERT(f.at == f.pkt.finalDst,
                          "unicast final at wrong node");
                if (faultRoll(params_.faults,
                              params_.faults.missedReceiveRate,
                              FaultKind::MissedReceive,
                              f.pkt.branchId,
                              static_cast<uint64_t>(cycle_),
                              static_cast<uint64_t>(f.at))) {
                    ++sink.events().faultMissedReceives;
                    sink.noteLost(f.pkt, f.at, 1,
                                  LostCause::MissedReceive);
                } else {
                    sink.deliver(f.pkt, f.at);
                }
            }
            ++sink.events().receives;
            sink.release(f.holder);
            f.active = false;
            sink.onBranchFinal(f.pkt, f.at);
        } else {
            // Interim node: buffer and assume responsibility.
            receiveOrDropT(f, true, sink);
        }
        return true;
    }
    return false;
}

template <typename Sink>
void
PhastlaneNetwork::receiveOrDropT(Flight &f, bool interim, Sink &sink)
{
    auto &rb = routers_[static_cast<size_t>(f.at)];
    if (rb.hasSpace(f.inPort)) {
        ++sink.events().receives;
        ++sink.events().bufferWrites;
        if (interim)
            ++sink.pl().interimAccepts;
        else
            ++sink.pl().blockedBuffered;
        // Re-launchable from the next cycle's arbitration.
        rb.push(f.inPort, f.pkt, cycle_ + 1);
        sink.release(f.holder);
        sink.onBufferReceive(f.pkt, f.at, f.inPort, interim);
    } else if (faultRoll(params_.faults,
                         params_.faults.dropSignalLossRate,
                         FaultKind::DropSignalLoss, f.pkt.branchId,
                         static_cast<uint64_t>(cycle_),
                         static_cast<uint64_t>(f.at))) {
        // Dropped, but the Packet-Dropped return signal is lost in
        // flight: no reverse links latch, the holder sees silence and
        // frees the slot under the "no signal means success" rule, and
        // the packet's undelivered units are permanently lost (the
        // base protocol has no end-to-end ack; see ReliableNic for
        // the recovery layer).
        ++sink.events().drops;
        ++sink.pl().drops;
        ++sink.events().dropSignalsLost;
        sink.release(f.holder);
        sink.onDrop(f.pkt, f.at, f.holder.router, 0, true);
        sink.noteLost(f.pkt, f.at, unitsOutstanding(f.pkt),
                      LostCause::SignalLost);
    } else {
        // Dropped: the return path carries the Packet Dropped signal
        // and this router's Node ID back to the holder next cycle,
        // over the reverse connections latched behind the packet.
        ++sink.events().drops;
        ++sink.pl().drops;
        const int signal_hops =
            returnPaths_.signalDrop(f.path.data(), f.pathLen);
        sink.events().dropSignalHops +=
            static_cast<uint64_t>(signal_hops);
        sink.dropOutcome(f.holder, f.pkt);
        sink.onDrop(f.pkt, f.at, f.holder.router, signal_hops, false);
    }
    f.active = false;
}

} // namespace phastlane::core

#endif // PHASTLANE_CORE_NETWORK_IMPL_HPP
