#include "common/types.hpp"

#include "common/log.hpp"

namespace phastlane {

const char *
portName(Port p)
{
    switch (p) {
      case Port::North: return "N";
      case Port::East: return "E";
      case Port::South: return "S";
      case Port::West: return "W";
      case Port::Local: return "L";
    }
    return "?";
}

const char *
turnName(Turn t)
{
    switch (t) {
      case Turn::Straight: return "straight";
      case Turn::Left: return "left";
      case Turn::Right: return "right";
    }
    return "?";
}

Turn
turnBetween(Port in, Port out)
{
    for (Turn t : {Turn::Straight, Turn::Left, Turn::Right}) {
        if (applyTurn(in, t) == out)
            return t;
    }
    panic("no turn connects input port %s to output port %s",
          portName(in), portName(out));
}

} // namespace phastlane
