/**
 * @file
 * InvariantChecker: a StepObserver that shadows a PhastlaneNetwork
 * with an independent event ledger and asserts, every cycle, the
 * conservation and uniqueness properties the Phastlane protocol
 * guarantees (DESIGN.md §7):
 *
 *  - packet conservation: accepted delivery units == delivered units
 *    + in-flight units, every cycle;
 *  - buffer-slot conservation: total router-buffer occupancy equals
 *    the ledger of NIC transfers, buffer receives and resolved
 *    successes (launched "zombie" slots free one cycle after their
 *    branch succeeds downstream);
 *  - exactly-once delivery: no (message, node) pair delivered twice,
 *    and no message delivered to more nodes than it addresses — this
 *    covers duplicate-free multicast across partial drops;
 *  - buffer occupancy never exceeds the configured depth;
 *  - no packet crosses more than maxHopsPerCycle routers per cycle,
 *    and no drop signal travels further than the packet did;
 *  - the network's own counters agree with the ledger (drops,
 *    launches, retransmissions, deliveries, pass traversals);
 *  - at quiescence: every drop was retransmitted exactly once and
 *    every accepted unit was delivered.
 *
 * Unlike the differential oracle, the checker knows nothing about
 * routing or arbitration, so it also holds for configurations the
 * ReferenceNetwork does not model (GlobalPriority).
 */

#ifndef PHASTLANE_CHECK_INVARIANTS_HPP
#define PHASTLANE_CHECK_INVARIANTS_HPP

#include <cstdarg>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/network.hpp"
#include "core/observer.hpp"

namespace phastlane::check {

/**
 * Per-cycle invariant checker. Attach with
 * net.setObserver(&checker); the checker must outlive its network or
 * be detached first.
 */
class InvariantChecker : public core::StepObserver
{
  public:
    /**
     * @param net The network being observed (read for cross-checks).
     * @param abort_on_violation panic() at the first violation
     *        (default); otherwise violations accumulate for tests.
     */
    explicit InvariantChecker(const core::PhastlaneNetwork &net,
                              bool abort_on_violation = true);

    void onCycleBegin(Cycle cycle) override;
    void onAccept(const Packet &pkt, int branches,
                  int delivery_units) override;
    void onLaunch(const core::OpticalPacket &pkt, NodeId router,
                  Port out, int attempts) override;
    void onPass(const core::OpticalPacket &pkt, NodeId router) override;
    void onDeliver(const Delivery &d) override;
    void onBranchFinal(const core::OpticalPacket &pkt,
                       NodeId router) override;
    void onBufferReceive(const core::OpticalPacket &pkt, NodeId router,
                         Port queue, bool interim) override;
    void onDrop(const core::OpticalPacket &pkt, NodeId router,
                NodeId launch_router, int signal_hops,
                bool signal_lost) override;
    void onLost(const Packet &pkt, uint64_t branch_id, NodeId router,
                int units, core::LostCause cause) override;
    void onDuplicate(const core::OpticalPacket &pkt,
                     NodeId router) override;
    void onCycleEnd(Cycle cycle) override;

    /**
     * Final checks once the caller believes the network has drained
     * (no in-flight, buffered or NIC-queued packets): every accepted
     * unit delivered exactly once or accounted as lost (per message,
     * delivered + lost == addressed), and every drop whose signal
     * returned matched by a retransmission.
     */
    void checkQuiescent();

    bool ok() const { return violations_.empty(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    uint64_t cyclesChecked() const { return cyclesChecked_; }

  private:
    void violation(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    const core::PhastlaneNetwork &net_;
    bool abort_;

    // Event ledger, independent of the network's own counters.
    uint64_t acceptedMessages_ = 0;
    uint64_t acceptedBranches_ = 0;
    uint64_t acceptedUnits_ = 0;
    uint64_t deliveredUnits_ = 0;
    uint64_t launches_ = 0;
    uint64_t retransmissions_ = 0;
    uint64_t passes_ = 0;
    uint64_t finals_ = 0;
    uint64_t bufferReceives_ = 0;
    uint64_t drops_ = 0;
    uint64_t dropSignalHops_ = 0;

    // Fault ledger (all zero in fault-free runs).
    uint64_t lostUnits_ = 0;
    uint64_t dropSignalsLost_ = 0;
    uint64_t duplicatesSuppressed_ = 0;
    /** Holder slots released without a final or buffer receive: drops
     *  whose return signal was lost, and dead-router black holes. */
    uint64_t resolvedNoRetry_ = 0;

    /** finals_ + bufferReceives_ + resolvedNoRetry_ snapshotted at
     *  cycle begin: the successes (from the holder's point of view)
     *  whose buffer slots have been released by cycle end. */
    uint64_t successesResolved_ = 0;

    /** Routers crossed per branch within the current cycle. */
    std::unordered_map<uint64_t, int> hopsThisCycle_;

    /** Every (message id, node) delivered so far. */
    std::set<std::pair<PacketId, NodeId>> delivered_;
    /** Per-message delivery accounting. */
    struct PerMessage {
        uint64_t addressed = 0;
        uint64_t delivered = 0;
        uint64_t lost = 0;
    };
    std::unordered_map<PacketId, PerMessage> perMessage_;

    std::vector<std::string> violations_;
    Cycle cycle_ = 0;
    uint64_t cyclesChecked_ = 0;
};

} // namespace phastlane::check

#endif // PHASTLANE_CHECK_INVARIANTS_HPP
