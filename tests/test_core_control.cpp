/**
 * @file
 * Predecoded control-bit tests (paper Section 2.1 / Fig 3): group
 * encoding, frequency translation, route-program construction, and
 * broadcast splitting.
 */

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

#include "core/control.hpp"

namespace phastlane::core {
namespace {

TEST(ControlGroup, PackUnpackRoundTrip)
{
    for (int bits = 0; bits < 32; ++bits) {
        const ControlGroup g =
            ControlGroup::unpack(static_cast<uint8_t>(bits));
        EXPECT_EQ(g.pack(), bits);
    }
}

TEST(ControlGroup, SetTurnIsExclusive)
{
    ControlGroup g;
    g.setTurn(Turn::Left);
    EXPECT_TRUE(g.left);
    EXPECT_TRUE(g.hasDirection());
    EXPECT_EQ(g.turn(), Turn::Left);
    g.setTurn(Turn::Straight);
    EXPECT_TRUE(g.straight);
    EXPECT_FALSE(g.left);
    EXPECT_EQ(g.turn(), Turn::Straight);
}

TEST(ControlProgram, TranslateConsumesGroups)
{
    ControlProgram p;
    ControlGroup a, b;
    a.setTurn(Turn::Straight);
    b.local = true;
    p.append(a);
    p.append(b);
    EXPECT_EQ(p.remaining(), 2u);
    EXPECT_EQ(p.front(), a);
    p.translate();
    EXPECT_EQ(p.front(), b);
    p.translate();
    EXPECT_TRUE(p.empty());
}

class UnicastPrograms
    : public ::testing::TestWithParam<std::tuple<NodeId, NodeId, int>>
{
  protected:
    MeshTopology mesh_{8, 8};
};

TEST_P(UnicastPrograms, StructureMatchesRoute)
{
    const auto [src, dst, hops] = GetParam();
    ControlProgram p = buildUnicastProgram(mesh_, src, dst, hops);
    const auto route = mesh_.xyRoute(src, dst);
    ASSERT_EQ(p.remaining(), route.size());

    for (size_t i = 0; i < route.size(); ++i) {
        const ControlGroup &g = p.group(i);
        EXPECT_FALSE(g.multicast);
        if (i + 1 < route.size()) {
            // Direction encodes the turn from this router's input to
            // the next route step.
            ASSERT_TRUE(g.hasDirection());
            EXPECT_EQ(applyTurn(opposite(route[i]), g.turn()),
                      route[i + 1]);
            // Interim nodes every `hops` routers.
            EXPECT_EQ(g.local, (i + 1) % static_cast<size_t>(hops) ==
                                   0);
        } else {
            EXPECT_TRUE(g.local);
        }
    }
}

TEST_P(UnicastPrograms, SegmentsNeverExceedHopLimit)
{
    const auto [src, dst, hops] = GetParam();
    ControlProgram p = buildUnicastProgram(mesh_, src, dst, hops);
    int run = 0;
    for (size_t i = 0; i < p.remaining(); ++i) {
        ++run;
        EXPECT_LE(run, hops);
        if (p.group(i).local)
            run = 0;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Routes, UnicastPrograms,
    ::testing::Values(std::tuple{0, 63, 4}, std::tuple{0, 63, 5},
                      std::tuple{0, 63, 8}, std::tuple{63, 0, 4},
                      std::tuple{0, 1, 4}, std::tuple{7, 56, 4},
                      std::tuple{27, 36, 5}, std::tuple{12, 52, 1}));

/**
 * Routes longer than the kMaxGroups control budget (possible only on
 * meshes larger than 8x8) truncate: the program carries exactly
 * kMaxGroups groups, an interim Local stop lands no later than group
 * kMaxGroups - 1, and the last group is never a bare final (the
 * packet re-launches from the interim with a fresh program).
 */
TEST(ControlBudget, LongRoutesTruncateWithForcedInterim)
{
    MeshTopology mesh(32, 32);
    const NodeId src = 0;
    const NodeId dst = mesh.nodeAt({31, 31}); // 62 hops
    for (int hops : {1, 4, 5, 8, 14, 20}) {
        ControlProgram p = buildUnicastProgram(mesh, src, dst, hops);
        ASSERT_EQ(p.remaining(),
                  static_cast<size_t>(ControlProgram::kMaxGroups))
            << "hops " << hops;
        // First Local stop within the truncated spacing, and before
        // the last group.
        size_t first_local = p.remaining();
        for (size_t i = 0; i < p.remaining(); ++i) {
            if (p.group(i).local) {
                first_local = i;
                break;
            }
        }
        const int spacing =
            std::min(hops, ControlProgram::kMaxGroups - 1);
        ASSERT_LT(first_local, p.remaining() - 1) << "hops " << hops;
        EXPECT_EQ(first_local + 1, static_cast<size_t>(spacing))
            << "hops " << hops;
    }
}

TEST(ControlBudget, StopHopsMatchesProgramShape)
{
    MeshTopology mesh(32, 32);
    const NodeId src = 0;
    for (NodeId dst : {mesh.nodeAt({13, 0}), mesh.nodeAt({7, 7}),
                       mesh.nodeAt({31, 31}), mesh.nodeAt({0, 15})}) {
        const size_t route =
            static_cast<size_t>(mesh.hopDistance(src, dst));
        for (int hops : {1, 4, 5, 8, 14}) {
            ControlProgram p =
                buildUnicastProgram(mesh, src, dst, hops);
            // programStopHops is the oracle-shared rule: index of the
            // first Local group, + 1.
            size_t first_local = 0;
            for (size_t i = 0; i < p.remaining(); ++i) {
                if (p.group(i).local) {
                    first_local = i + 1;
                    break;
                }
            }
            EXPECT_EQ(first_local, programStopHops(route, hops))
                << "dst " << dst << " hops " << hops;
        }
    }
}

TEST(ControlBudget, ShortRoutesKeepExactSpacing)
{
    // Routes within the budget are untouched by truncation: one group
    // per router, interim stops exactly every max_hops (the 8x8
    // latency-formula tests depend on this staying bit-identical).
    MeshTopology mesh(32, 32);
    const NodeId src = 0;
    const NodeId dst = mesh.nodeAt({7, 7}); // 14 hops == kMaxGroups
    for (int hops : {4, 5, 14}) {
        ControlProgram p = buildUnicastProgram(mesh, src, dst, hops);
        ASSERT_EQ(p.remaining(), static_cast<size_t>(14));
        for (size_t i = 0; i + 1 < p.remaining(); ++i) {
            EXPECT_EQ(p.group(i).local,
                      (i + 1) % static_cast<size_t>(hops) == 0);
        }
        EXPECT_TRUE(p.group(p.remaining() - 1).local);
        EXPECT_EQ(programStopHops(14, hops),
                  static_cast<size_t>(std::min(hops, 14)));
    }
}

TEST(Broadcast, InteriorSourceHas16Branches)
{
    MeshTopology mesh(8, 8);
    // Paper: up to 16 multicast messages per broadcast.
    for (NodeId src : {9, 27, 36, 20}) {
        EXPECT_EQ(splitBroadcast(mesh, src).size(), 16u)
            << "src " << src;
    }
}

TEST(Broadcast, TopAndBottomRowsHave8Branches)
{
    MeshTopology mesh(8, 8);
    // Paper: eight messages when the source is on the top or bottom
    // row.
    for (NodeId src : {0, 3, 7, 56, 60, 63}) {
        EXPECT_EQ(splitBroadcast(mesh, src).size(), 8u)
            << "src " << src;
    }
}

class BroadcastCoverage : public ::testing::TestWithParam<NodeId>
{
};

TEST_P(BroadcastCoverage, EveryNodeCoveredExactlyOnce)
{
    MeshTopology mesh(8, 8);
    const NodeId src = GetParam();
    std::multiset<NodeId> covered;
    for (const auto &b : splitBroadcast(mesh, src))
        covered.insert(b.taps.begin(), b.taps.end());
    EXPECT_EQ(covered.size(), 63u);
    EXPECT_EQ(covered.count(src), 0u);
    for (NodeId n = 0; n < 64; ++n) {
        if (n != src)
            EXPECT_EQ(covered.count(n), 1u) << "node " << n;
    }
}

TEST_P(BroadcastCoverage, TapsLieOnTheBranchRoute)
{
    MeshTopology mesh(8, 8);
    const NodeId src = GetParam();
    for (const auto &b : splitBroadcast(mesh, src)) {
        const auto path = mesh.xyPath(src, b.finalDst());
        size_t pos = 0;
        for (NodeId tap : b.taps) {
            // Taps appear in path order.
            const auto it =
                std::find(path.begin() + static_cast<long>(pos),
                          path.end(), tap);
            ASSERT_NE(it, path.end())
                << "tap " << tap << " not on route of branch to "
                << b.finalDst();
            pos = static_cast<size_t>(it - path.begin()) + 1;
        }
    }
}

TEST_P(BroadcastCoverage, ProgramsBuildForAllBranches)
{
    MeshTopology mesh(8, 8);
    const NodeId src = GetParam();
    for (int hops : {4, 5, 8}) {
        for (const auto &b : splitBroadcast(mesh, src)) {
            ControlProgram p =
                buildMulticastProgram(mesh, src, b, hops);
            // Count multicast bits: one per tap.
            size_t mcast = 0;
            for (size_t i = 0; i < p.remaining(); ++i)
                mcast += p.group(i).multicast ? 1 : 0;
            EXPECT_EQ(mcast, b.taps.size());
            // The final group is a local+multicast delivery.
            const ControlGroup &last = p.group(p.remaining() - 1);
            EXPECT_TRUE(last.local);
            EXPECT_TRUE(last.multicast);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sources, BroadcastCoverage,
                         ::testing::Values(0, 7, 27, 36, 56, 63, 8,
                                           15, 35));

TEST(Broadcast, WorksOnSmallMeshes)
{
    MeshTopology mesh(2, 2);
    for (NodeId src = 0; src < 4; ++src) {
        std::multiset<NodeId> covered;
        for (const auto &b : splitBroadcast(mesh, src))
            covered.insert(b.taps.begin(), b.taps.end());
        EXPECT_EQ(covered.size(), 3u);
        EXPECT_EQ(covered.count(src), 0u);
    }
}

} // namespace
} // namespace phastlane::core
