file(REMOVE_RECURSE
  "CMakeFiles/ablation_wavefront.dir/ablation_wavefront.cpp.o"
  "CMakeFiles/ablation_wavefront.dir/ablation_wavefront.cpp.o.d"
  "ablation_wavefront"
  "ablation_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
