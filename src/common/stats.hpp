/**
 * @file
 * Lightweight statistics containers used by the simulators and the
 * benchmark harnesses: streaming moments, histograms, and windowed
 * rates.
 */

#ifndef PHASTLANE_COMMON_STATS_HPP
#define PHASTLANE_COMMON_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace phastlane {

/**
 * Streaming mean/variance/min/max using Welford's algorithm.
 */
class RunningStat
{
  public:
    void add(double x);

    /** Merge another stat into this one. */
    void merge(const RunningStat &other);

    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return mean_ * static_cast<double>(count_); }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width linear histogram with an overflow bin; used for latency
 * distributions.
 */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin (> 0).
     * @param bin_count Number of regular bins; values >= bin_width *
     *        bin_count land in the overflow bin.
     */
    Histogram(double bin_width, size_t bin_count);

    void add(double x);
    void reset();

    uint64_t count() const { return total_; }
    uint64_t binValue(size_t i) const { return bins_.at(i); }
    uint64_t overflow() const { return overflow_; }
    size_t binCount() const { return bins_.size(); }
    double binWidth() const { return binWidth_; }

    /** Largest finite sample seen since construction/reset; 0 when
     *  none. Overflow-bin quantiles interpolate toward this instead
     *  of collapsing to the bin's lower edge. */
    double maxObserved() const { return maxObserved_; }

    /**
     * Value below which fraction @p q of samples fall (linear
     * interpolation within a bin); q in [0, 1]. Returns 0 when empty.
     * Quantiles that land in the overflow bin interpolate between the
     * top edge and maxObserved() (they used to under-report at the
     * bin's lower edge, hiding how bad the tail really was).
     */
    double quantile(double q) const;

  private:
    double binWidth_;
    std::vector<uint64_t> bins_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    double maxObserved_ = 0.0;
};

/**
 * A named monotonically increasing event counter.
 */
class Counter
{
  public:
    void inc(uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

} // namespace phastlane

#endif // PHASTLANE_COMMON_STATS_HPP
