file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_coherence.dir/test_traffic_coherence.cpp.o"
  "CMakeFiles/test_traffic_coherence.dir/test_traffic_coherence.cpp.o.d"
  "test_traffic_coherence"
  "test_traffic_coherence.pdb"
  "test_traffic_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
