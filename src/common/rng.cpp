#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace phastlane {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
    // All-zero state would be absorbing; SplitMix64 cannot produce four
    // zero outputs in a row, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

double
Rng::exponential(double mean)
{
    PL_ASSERT(mean > 0.0, "exponential mean must be positive");
    // uniform() may return exactly 0; use 1-u in (0, 1].
    return -mean * std::log(1.0 - uniform());
}

uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    PL_ASSERT(p > 0.0, "geometric probability must be positive");
    return static_cast<uint64_t>(
        std::floor(std::log(1.0 - uniform()) / std::log(1.0 - p)));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace phastlane
