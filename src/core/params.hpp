/**
 * @file
 * Configuration of the Phastlane optical network (paper Table 1 plus
 * the knobs exercised in the evaluation and ablations).
 */

#ifndef PHASTLANE_CORE_PARAMS_HPP
#define PHASTLANE_CORE_PARAMS_HPP

#include <algorithm>
#include <cstdint>

namespace phastlane::core {

/**
 * Intra-cycle contention-resolution model for the optical wavefront
 * (DESIGN.md 3.1).
 */
enum class WavefrontModel : uint8_t {
    /** Port claims are final once granted; priority applies among
     *  packets reaching a router in the same sub-step. The scalar
     *  flat-array engine: the lockstep reference semantics. */
    SubstepFcfs,
    /** Idealized straight priority: a straight packet evicts a
     *  turning packet's claim regardless of arrival order, resolved
     *  by monotone fixed point (ablation). */
    GlobalPriority,
    /** SubstepFcfs semantics on the word-parallel bit-plane engine
     *  (DESIGN.md §11): bit-identical results, resolved via plane
     *  algebra instead of per-request sorting. Default. */
    BitplaneFcfs,
};

/**
 * Launch arbitration over a router's buffered packets (the paper's
 * future work mentions alternatives to the simple rotating scheme).
 */
enum class BufferArbitration : uint8_t {
    /** Rotating pointer over the five queues. Default (paper). */
    RotatingPriority,
    /** Globally oldest eligible packet first (extension). */
    OldestFirst,
};

/**
 * Source admission control at NIC launch and buffered re-launch
 * (DESIGN.md §14). Phastlane's fixed straight-over-turn priority
 * starves turning flows at saturation; these policies trade a little
 * peak throughput of the favoured flows for per-source fairness.
 */
enum class AdmissionPolicy : uint8_t {
    /** No throttling. Default (paper). */
    None,
    /** Per-source token bucket: a router's local queue may launch
     *  only while its bucket holds tokens (admissionBurst capacity,
     *  one token every admissionPeriod cycles). Buffered transit
     *  packets (N/E/S/W queues) are never throttled — the network
     *  must drain. */
    TokenBucket,
    /** Age-threshold boost: a packet buffered for at least
     *  admissionAgeThreshold cycles launches with its wavefront
     *  priority promoted to straight-equivalent, so starved turning
     *  packets stop losing every optical arbitration. */
    AgeBoost,
};

/** Arbitration among same-sub-step optical arrivals (footnote 3). */
enum class OpticalArbitration : uint8_t {
    /** Straight beats turns, ties by fixed port order. Default. */
    FixedPriority,
    /** Rotating priority over input ports (ablation; the paper found
     *  no performance advantage). */
    RoundRobin,
};

/**
 * Phastlane network parameters. Defaults follow Table 1 and the
 * baseline "Optical4" configuration of Section 5.
 */
struct PhastlaneParams {
    int meshWidth = 8;
    int meshHeight = 8;

    /** Hops traversable per cycle: 4 (pessimistic), 5 (average) or 8
     *  (optimistic scaling). */
    int maxHopsPerCycle = 4;

    /**
     * Entries in each router buffer queue (four input ports plus the
     * local node queue). 10 for Optical4, 32/64 for Optical4B32/B64;
     * <= 0 means infinite (Optical4IB).
     */
    int routerBufferEntries = 10;

    /** Entries in the network-interface controller queue (Table 1). */
    int nicQueueEntries = 50;

    /** Packets movable from the NIC into the router's local queue per
     *  cycle (sized to keep a broadcast's branch fan-out fed). */
    int nicTransfersPerCycle = 4;

    /** Payload WDM degree (Table 1: 64). */
    int wavelengths = 64;

    /**
     * Buffered-packet launches per queue per cycle. The rotating
     * arbiter picks up to four packets total (one per output port);
     * allowing several from one queue matters mainly for the local
     * queue when a broadcast's branches fan out to all four ports.
     */
    int launchesPerQueue = 4;

    /**
     * Extra cycles a dropped packet waits before becoming eligible
     * again, on top of the mandatory drop-signal round trip.
     */
    int backoffBase = 0;

    /** Exponential backoff on repeated drops of the same packet. */
    bool exponentialBackoff = false;

    /** Cap on the exponential backoff window (cycles). */
    int backoffCap = 64;

    /**
     * Spatial shard grid for the topology-parallel step() (DESIGN.md
     * §12): the router grid splits into shardCols x shardRows
     * rectangular blocks, each with its own claim planes and scratch
     * state, and the launch/wavefront phases run shard-parallel with a
     * deterministic boundary-exchange merge. 1x1 (the default) is the
     * plain scalar path. Results are bit-identical to the scalar path
     * at any shard/thread count; runs with an attached StepObserver or
     * the GlobalPriority wavefront fall back to the scalar engine
     * (observers see exact scalar callback order).
     */
    int shardCols = 1;
    int shardRows = 1;

    /** Worker threads for the sharded step; <= 0 resolves via
     *  PL_THREADS, then hardware concurrency (capped at the shard
     *  count). The thread count never affects results. */
    int shardThreads = 0;

    WavefrontModel wavefront = WavefrontModel::BitplaneFcfs;
    OpticalArbitration opticalArbitration =
        OpticalArbitration::FixedPriority;
    BufferArbitration bufferArbitration =
        BufferArbitration::RotatingPriority;

    /** Admission policy consulted at NIC launch and buffered
     *  re-launch (DESIGN.md §14). */
    AdmissionPolicy admission = AdmissionPolicy::None;

    /** TokenBucket: bucket capacity (tokens; also the initial fill). */
    int admissionBurst = 4;

    /** TokenBucket: cycles per token refill. */
    int admissionPeriod = 2;

    /** AgeBoost: buffered cycles before a packet's wavefront priority
     *  is promoted to straight-equivalent. */
    int admissionAgeThreshold = 32;

    /**
     * Extension (paper future work, Section 5): DAMQ-style buffer
     * sharing. Each queue keeps a guaranteed half of its partition;
     * the other half of every partition forms a shared per-router
     * pool any queue may borrow from, absorbing single-port hotspots.
     * (Fully shared pools were tried first and congestion-collapse
     * under drop-retry storms; see bench/futurework_buffers.)
     */
    bool sharedBufferPool = false;

    /** Seed for backoff jitter. */
    uint64_t seed = 1;

    /**
     * Fault injection (DESIGN.md §10).
     *
     * The boolean knobs are deliberate semantic mutations used ONLY to
     * validate that the src/check/ verification subsystem actually
     * catches bugs (a checker that never fires is untested). The rate
     * knobs model stochastic device faults; every draw is a stateless
     * hash of (faultSeed, fault kind, branch, cycle, node) — see
     * faultRoll() — so runs are reproducible at any thread count, the
     * ReferenceNetwork mirrors each draw exactly, and rates of 0
     * consume no randomness at all (bit-identical to a fault-free
     * build; the backoff RNG stream is untouched).
     *
     * The field lists are X-macros so the differential repro emitter
     * (check/differential.cpp) and any other field-generic consumer
     * iterate every knob by construction: a field added here cannot be
     * silently dropped from emitted repros.
     *
     * Rate knob semantics:
     *  - misTurnRate: a pass resonator mis-tunes and diverts the
     *    packet into the router's electrical buffer (received as if
     *    blocked; dropped if the buffer is full).
     *  - missedReceiveRate: a receive/tap resonator fails to capture
     *    the packet copy; the delivery unit is lost (the protocol has
     *    no delivery ack, so nothing retransmits it).
     *  - dropSignalLossRate: the Packet-Dropped return signal is lost;
     *    the holder's "no signal means success" rule frees the buffer
     *    slot and the packet's undelivered units are lost.
     *  - dropperIdCorruptRate: the 6-bit dropper Node ID arrives
     *    corrupted, so a multicast source cannot clear the served
     *    Multicast bits and retransmits the full branch; receivers
     *    suppress the re-served taps as duplicates (dedupBelow).
     *  - routerFailRate: hard router failure, drawn once per node at
     *    construction; arrivals black-hole (units lost), and packets
     *    injected at a failed node are accepted and immediately
     *    accounted lost.
     */
#define PL_FAULT_BOOL_FIELDS(X) X(invertStraightPriority)
#define PL_FAULT_RATE_FIELDS(X)                                        \
    X(misTurnRate)                                                     \
    X(missedReceiveRate)                                               \
    X(dropSignalLossRate)                                              \
    X(dropperIdCorruptRate)                                            \
    X(routerFailRate)
#define PL_FAULT_SEED_FIELDS(X) X(faultSeed)
    struct FaultInjection {
#define PL_DECLARE_BOOL(name) bool name = false;
#define PL_DECLARE_RATE(name) double name = 0.0;
#define PL_DECLARE_SEED(name) uint64_t name = 0;
        PL_FAULT_BOOL_FIELDS(PL_DECLARE_BOOL)
        PL_FAULT_RATE_FIELDS(PL_DECLARE_RATE)
        PL_FAULT_SEED_FIELDS(PL_DECLARE_SEED)
#undef PL_DECLARE_BOOL
#undef PL_DECLARE_RATE
#undef PL_DECLARE_SEED

        /** True when any stochastic fault rate is positive. */
        bool anyRate() const
        {
#define PL_OR_RATE(name) || name > 0.0
            return false PL_FAULT_RATE_FIELDS(PL_OR_RATE);
#undef PL_OR_RATE
        }
    };
    FaultInjection faults;

    bool infiniteBuffers() const { return routerBufferEntries <= 0; }
    int nodeCount() const { return meshWidth * meshHeight; }
    int shardCount() const { return shardCols * shardRows; }
};

/** Fault classes drawn through faultRoll (DESIGN.md §10). */
enum class FaultKind : uint32_t {
    MisTurn = 1,
    MissedReceive = 2,
    DropSignalLoss = 3,
    DropperIdCorrupt = 4,
    RouterFail = 5,
};

/** SplitMix64 finalizer: full-avalanche 64-bit mix. */
inline uint64_t faultMix(uint64_t h)
{
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

/**
 * Stateless fault draw: true with probability @p rate, as a pure
 * function of (faultSeed, kind, a, b, c). The operands identify the
 * event being rolled (typically branch id, cycle, node), so the same
 * event gets the same verdict in the optimized network, in the
 * ReferenceNetwork oracle, and at any thread count — no RNG state is
 * consumed (a rate of 0 short-circuits before hashing, leaving
 * fault-free runs bit-identical to builds without this feature).
 */
inline bool
faultRoll(const PhastlaneParams::FaultInjection &fi, double rate,
          FaultKind kind, uint64_t a, uint64_t b, uint64_t c)
{
    if (!(rate > 0.0)) {
        return false;
    }
    uint64_t h = fi.faultSeed + 0x9e3779b97f4a7c15ull;
    h = faultMix(h ^ (static_cast<uint64_t>(kind) *
                      0x9e3779b97f4a7c15ull));
    h = faultMix(h ^ (a * 0x9e3779b97f4a7c15ull));
    h = faultMix(h ^ (b * 0x9e3779b97f4a7c15ull));
    h = faultMix(h ^ (c * 0x9e3779b97f4a7c15ull));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < rate;
}

/**
 * Exponential-backoff jitter window after @p attempts completed
 * (dropped) launch attempts: min(2^attempts - 1, backoffCap), in
 * cycles. The single source of truth for both PhastlaneNetwork and
 * the ReferenceNetwork oracle, which must stay in exact lockstep
 * (including whether a jitter value is drawn at all: the RNG is
 * consulted only when the window is positive).
 *
 * The shift amount is clamped only to keep 2^attempts representable;
 * the effective cap is backoffCap itself. (An earlier version clamped
 * the exponent at 6 *before* applying the cap, so backoffCap > 63
 * silently never widened the window beyond 63 cycles.)
 */
inline int64_t
backoffWindow(const PhastlaneParams &params, int attempts)
{
    if (!params.exponentialBackoff || attempts <= 0 ||
        params.backoffCap <= 0) {
        return 0;
    }
    const int exp = attempts < 62 ? attempts : 62;
    return std::min<int64_t>((int64_t{1} << exp) - 1,
                             static_cast<int64_t>(params.backoffCap));
}

/**
 * Deterministic per-source token bucket (AdmissionPolicy::TokenBucket).
 * Integer accrual only — no floating point, no RNG — so the optimized
 * engines and the ReferenceNetwork oracle stay in exact lockstep: the
 * bucket is a pure function of its consume() call sequence. Like
 * backoffWindow(), this lives here as the single source of truth for
 * both sides of the differential oracle.
 *
 * The bucket starts full (burst tokens) with the first refill due one
 * period after the start cycle; lazy catch-up accrual keeps the state
 * O(1) regardless of idle gaps.
 */
struct AdmissionBucket {
    int32_t tokens = 0;
    uint64_t nextRefill = 0;

    void reset(int burst, int period, uint64_t now)
    {
        tokens = static_cast<int32_t>(burst);
        nextRefill = now + static_cast<uint64_t>(period);
    }

    /** Take one token at cycle @p now; false when empty (the launch
     *  must wait — the caller leaves the packet eligible so the next
     *  arbitration retries). */
    bool consume(int burst, int period, uint64_t now)
    {
        if (nextRefill <= now) {
            const uint64_t p = static_cast<uint64_t>(period);
            const uint64_t earned = (now - nextRefill) / p + 1;
            const uint64_t cap = static_cast<uint64_t>(burst);
            const uint64_t have = static_cast<uint64_t>(tokens) + earned;
            tokens = static_cast<int32_t>(have < cap ? have : cap);
            nextRefill += earned * p;
        }
        if (tokens <= 0)
            return false;
        --tokens;
        return true;
    }
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_PARAMS_HPP
