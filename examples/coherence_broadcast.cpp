/**
 * @file
 * Snoopy-coherence scenario: run the same cache-coherence workload
 * (broadcast miss requests, unicast data responses, invalidates and
 * writebacks) through the Phastlane network and the electrical
 * baseline and compare completion time, message latency, and power --
 * a miniature of the paper's Fig 10/11 methodology.
 *
 *   ./examples/coherence_broadcast [--benchmark Barnes]
 *       [--txns 100] [--seed 7]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/network.hpp"
#include "sim/configs.hpp"
#include "sim/report.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"

using namespace phastlane;
using namespace phastlane::traffic;

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    SplashProfile prof =
        splashProfile(args.getString("benchmark", "Barnes"));
    prof.txnsPerNode = static_cast<int>(args.getInt("txns", 100));
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 7));

    std::printf("benchmark %s (%s): %d transactions/node, "
                "%d MSHRs, %.0f%% of requests broadcast\n\n",
                prof.name.c_str(), prof.inputSet.c_str(),
                prof.txnsPerNode, prof.mshrLimit,
                100.0 * prof.requestBroadcastFraction);

    // Both networks replay the identical pre-generated streams.
    const auto streams = generateStreams(prof, 64, seed);

    TextTable t({"network", "completion [cyc]", "msg latency [cyc]",
                 "round trip [cyc]", "drops", "power [W]"});
    double base_cycles = 0.0;
    for (const char *name : {"Electrical3", "Electrical2",
                             "Optical4", "Optical4B64"}) {
        const auto cfg = sim::makeConfig(name);
        auto net = cfg.make(seed);
        CoherenceDriver driver(*net, streams, prof.mshrLimit);
        const CoherenceResult r = driver.run();
        uint64_t drops = 0;
        if (auto *pl =
                dynamic_cast<core::PhastlaneNetwork *>(net.get()))
            drops = pl->phastlaneCounters().drops;
        const auto p = cfg.power(*net, r.completionCycles);
        if (base_cycles == 0.0)
            base_cycles = static_cast<double>(r.completionCycles);
        t.addRow({name,
                  TextTable::num(static_cast<int64_t>(
                      r.completionCycles)),
                  TextTable::num(r.avgMessageLatency, 1),
                  TextTable::num(r.avgRoundTrip, 1),
                  TextTable::num(static_cast<int64_t>(drops)),
                  TextTable::num(p.totalW, 1)});
        std::printf("%s: speedup vs Electrical3 = %.2fX\n", name,
                    base_cycles /
                        static_cast<double>(r.completionCycles));
    }
    std::printf("\n");
    t.print();

    if (args.getBool("heatmap", false)) {
        std::printf("\nlink-utilization heatmaps (mean outgoing "
                    "utilization per router, north-up):\n");
        for (const char *name : {"Electrical3", "Optical4"}) {
            const auto cfg = sim::makeConfig(name);
            auto net = cfg.make(seed);
            CoherenceDriver driver(*net, streams, prof.mshrLimit);
            const CoherenceResult r = driver.run();
            const auto report = sim::UtilizationReport::fromNetwork(
                *net, r.completionCycles);
            std::printf("\n%s (mean %.3f, peak %.3f):\n%s", name,
                        report.meanUtilization(),
                        report.peakUtilization(),
                        report.heatmap().c_str());
        }
    }
    return 0;
}
