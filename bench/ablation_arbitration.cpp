/**
 * @file
 * Ablation (paper footnote 3): fixed-priority versus round-robin
 * arbitration among newly arriving optical packets. The paper found
 * that round-robin "yielded no performance advantage over
 * fixed-priority, while increasing crossbar latency"; here we verify
 * the performance half of that claim on synthetic and coherence
 * traffic.
 */

#include <memory>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"
#include "traffic/synthetic.hpp"

using namespace phastlane;
using namespace phastlane::core;
using namespace phastlane::traffic;

namespace {

std::unique_ptr<PhastlaneNetwork>
makeNet(OpticalArbitration arb, uint64_t seed)
{
    PhastlaneParams p;
    p.opticalArbitration = arb;
    p.seed = seed;
    return std::make_unique<PhastlaneNetwork>(p);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    TextTable t({"workload", "metric", "fixed priority",
                 "round robin", "delta"});

    // Synthetic latency at moderate load.
    for (double rate : {0.05, 0.15, 0.25}) {
        double lat[2];
        int i = 0;
        for (OpticalArbitration arb :
             {OpticalArbitration::FixedPriority,
              OpticalArbitration::RoundRobin}) {
            auto net = makeNet(arb, opts.seed);
            SyntheticConfig cfg;
            cfg.pattern = Pattern::UniformRandom;
            cfg.injectionRate = rate;
            cfg.warmupCycles = opts.quick ? 300 : 1000;
            cfg.measureCycles = opts.quick ? 1500 : 4000;
            cfg.seed = opts.seed;
            lat[i++] = SyntheticDriver(*net, cfg).run().avgLatency;
        }
        t.addRow({"uniform @" + TextTable::num(rate, 2),
                  "avg latency [cyc]", TextTable::num(lat[0], 2),
                  TextTable::num(lat[1], 2),
                  TextTable::num(100.0 * (lat[1] - lat[0]) / lat[0],
                                 1) + "%"});
    }

    // Coherence completion on a buffer-sensitive benchmark.
    for (const char *bench : {"Barnes", "Raytrace"}) {
        auto prof = splashProfile(bench);
        prof.txnsPerNode = opts.quick ? 40 : 120;
        const auto streams = generateStreams(prof, 64, opts.seed);
        double cycles[2];
        int i = 0;
        for (OpticalArbitration arb :
             {OpticalArbitration::FixedPriority,
              OpticalArbitration::RoundRobin}) {
            auto net = makeNet(arb, opts.seed);
            CoherenceDriver d(*net, streams, prof.mshrLimit);
            cycles[i++] =
                static_cast<double>(d.run().completionCycles);
        }
        t.addRow({bench, "completion [cyc]",
                  TextTable::num(cycles[0], 0),
                  TextTable::num(cycles[1], 0),
                  TextTable::num(
                      100.0 * (cycles[1] - cycles[0]) / cycles[0],
                      1) + "%"});
    }

    bench::emit(opts,
                "Ablation: fixed-priority vs round-robin optical "
                "arbitration (paper: no advantage)",
                t);
    return 0;
}
