#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace phastlane::sim {

void
LatencyBucket::add(const Delivery &d)
{
    const double lat = static_cast<double>(d.at - d.packet.createdAt);
    total.add(lat);
    network.add(static_cast<double>(d.at - d.injectedAt));
    hist.add(lat);
}

LatencyCollector::LatencyCollector(const MeshTopology &mesh)
    : mesh_(mesh),
      byDistance_(static_cast<size_t>(mesh.width() + mesh.height() -
                                      1))
{
}

void
LatencyCollector::add(const Delivery &d)
{
    overall_.add(d);
    byKind_[static_cast<size_t>(d.packet.kind)].add(d);
    const int dist = mesh_.hopDistance(d.packet.src, d.node);
    PL_ASSERT(dist >= 0 &&
                  dist < static_cast<int>(byDistance_.size()) + 1,
              "distance out of range");
    if (dist > 0)
        byDistance_[static_cast<size_t>(dist - 1)].add(d);
}

void
LatencyCollector::addAll(const std::vector<Delivery> &deliveries)
{
    for (const auto &d : deliveries)
        add(d);
}

const LatencyBucket &
LatencyCollector::byKind(MessageKind k) const
{
    return byKind_[static_cast<size_t>(k)];
}

const LatencyBucket &
LatencyCollector::byDistance(int hops) const
{
    PL_ASSERT(hops >= 1 &&
                  hops <= static_cast<int>(byDistance_.size()),
              "distance out of range");
    return byDistance_[static_cast<size_t>(hops - 1)];
}

std::string
LatencyCollector::report() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "deliveries: %llu  mean %.1f  p50 %.1f  p99 %.1f "
                  "(cycles, creation->delivery)\n",
                  static_cast<unsigned long long>(count()),
                  overall_.total.mean(), overall_.hist.quantile(0.5),
                  overall_.hist.quantile(0.99));
    out += buf;
    for (MessageKind k :
         {MessageKind::Request, MessageKind::Response,
          MessageKind::Invalidate, MessageKind::Writeback,
          MessageKind::Synthetic}) {
        const LatencyBucket &b = byKind(k);
        if (b.total.count() == 0)
            continue;
        std::snprintf(buf, sizeof(buf),
                      "  %-10s n=%-8llu mean %.1f  p99 %.1f\n",
                      messageKindName(k),
                      static_cast<unsigned long long>(
                          b.total.count()),
                      b.total.mean(), b.hist.quantile(0.99));
        out += buf;
    }
    out += "  latency by distance:";
    for (int d = 1; d <= maxDistance(); ++d) {
        const LatencyBucket &b = byDistance(d);
        if (b.total.count() == 0)
            continue;
        std::snprintf(buf, sizeof(buf), " %d:%.1f", d,
                      b.total.mean());
        out += buf;
    }
    out += '\n';
    return out;
}

FairnessCollector::FairnessCollector(int node_count)
    : bySource_(static_cast<size_t>(node_count)),
      delivered_(static_cast<size_t>(node_count), 0)
{
    PL_ASSERT(node_count > 0, "node count must be positive");
}

void
FairnessCollector::add(const Delivery &d)
{
    PL_ASSERT(d.packet.src >= 0 &&
                  d.packet.src < static_cast<NodeId>(bySource_.size()),
              "source out of range");
    bySource_[static_cast<size_t>(d.packet.src)].add(d);
    ++delivered_[static_cast<size_t>(d.packet.src)];
}

void
FairnessCollector::addAll(const std::vector<Delivery> &deliveries)
{
    for (const auto &d : deliveries)
        add(d);
}

uint64_t
FairnessCollector::delivered(NodeId src) const
{
    return delivered_.at(static_cast<size_t>(src));
}

const LatencyBucket &
FairnessCollector::bySource(NodeId src) const
{
    return bySource_.at(static_cast<size_t>(src));
}

double
FairnessCollector::jain(const std::vector<double> &xs)
{
    double sum = 0.0;
    double sumsq = 0.0;
    for (double x : xs) {
        sum += x;
        sumsq += x * x;
    }
    if (sumsq == 0.0)
        return 1.0;
    return sum * sum /
           (static_cast<double>(xs.size()) * sumsq);
}

double
FairnessCollector::jainIndex() const
{
    std::vector<double> xs;
    xs.reserve(delivered_.size());
    for (uint64_t c : delivered_)
        xs.push_back(static_cast<double>(c));
    return jain(xs);
}

double
FairnessCollector::worstP99() const
{
    double worst = 0.0;
    for (const auto &b : bySource_) {
        if (b.total.count() == 0)
            continue;
        worst = std::max(worst, b.hist.quantile(0.99));
    }
    return worst;
}

std::string
FairnessCollector::report(
    const std::vector<uint64_t> &starvation) const
{
    char buf[256];
    std::string out;
    uint64_t lo = UINT64_MAX;
    uint64_t hi = 0;
    uint64_t starveMax = 0;
    for (size_t n = 0; n < delivered_.size(); ++n) {
        lo = std::min(lo, delivered_[n]);
        hi = std::max(hi, delivered_[n]);
        if (n < starvation.size())
            starveMax = std::max(starveMax, starvation[n]);
    }
    std::snprintf(buf, sizeof(buf),
                  "fairness: jain %.3f  per-source delivered "
                  "[%llu, %llu]  worst p99 %.1f  max consecutive "
                  "losses %llu\n",
                  jainIndex(), static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi), worstP99(),
                  static_cast<unsigned long long>(starveMax));
    out += buf;
    return out;
}

std::string
FairnessCollector::csv(const std::vector<uint64_t> &starvation) const
{
    char buf[128];
    std::string out =
        "src,delivered,mean_latency,p99_latency,starvation\n";
    for (size_t n = 0; n < bySource_.size(); ++n) {
        const LatencyBucket &b = bySource_[n];
        const uint64_t starve =
            n < starvation.size() ? starvation[n] : 0;
        std::snprintf(buf, sizeof(buf),
                      "%zu,%llu,%.2f,%.2f,%llu\n", n,
                      static_cast<unsigned long long>(delivered_[n]),
                      b.total.mean(), b.hist.quantile(0.99),
                      static_cast<unsigned long long>(starve));
        out += buf;
    }
    return out;
}

} // namespace phastlane::sim
