#include "traffic/adversarial.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::traffic {

const char *
mixName(AdversarialMix m)
{
    switch (m) {
      case AdversarialMix::None: return "none";
      case AdversarialMix::ElephantMice: return "elephant";
      case AdversarialMix::Tenants: return "tenant";
    }
    return "?";
}

AdversarialMix
parseMix(const std::string &name)
{
    for (AdversarialMix m :
         {AdversarialMix::None, AdversarialMix::ElephantMice,
          AdversarialMix::Tenants}) {
        if (name == mixName(m))
            return m;
    }
    fatal("unknown adversarial mix '%s'", name.c_str());
}

namespace {

/** Elephants are every stride-th node, so they spread over the mesh
 *  instead of clustering in one corner. */
int
elephantStride(const AdversarialConfig &cfg, int node_count)
{
    const int count = std::max(
        1, static_cast<int>(cfg.elephantFraction *
                            static_cast<double>(node_count)));
    return std::max(1, node_count / count);
}

} // namespace

bool
isElephant(const AdversarialConfig &cfg, NodeId n, int node_count)
{
    if (cfg.mix != AdversarialMix::ElephantMice)
        return false;
    return n % elephantStride(cfg, node_count) == 0;
}

double
rateScale(const AdversarialConfig &cfg, NodeId n, int node_count)
{
    switch (cfg.mix) {
      case AdversarialMix::None:
        return 1.0;
      case AdversarialMix::ElephantMice:
        return isElephant(cfg, n, node_count) ? cfg.elephantBoost
                                              : 1.0;
      case AdversarialMix::Tenants:
        PL_ASSERT(cfg.tenantCount >= 1, "tenantCount must be >= 1");
        return n % cfg.tenantCount == 0 ? cfg.tenantBoost : 1.0;
    }
    return 1.0;
}

NodeId
mixDestination(const AdversarialConfig &cfg, NodeId src,
               const MeshTopology &mesh)
{
    switch (cfg.mix) {
      case AdversarialMix::None:
        return kInvalidNode;
      case AdversarialMix::ElephantMice: {
        if (!isElephant(cfg, src, mesh.nodeCount()))
            return kInvalidNode;
        // Diagonally opposite corner-to-corner flow: maximal hop
        // count and a guaranteed XY turn for off-axis sources.
        const Coord c = mesh.coordOf(src);
        const NodeId dst = mesh.nodeAt(
            Coord{mesh.width() - 1 - c.x, mesh.height() - 1 - c.y});
        // The exact center of an odd mesh maps to itself; let the
        // pattern pick instead of self-addressing.
        return dst == src ? kInvalidNode : dst;
      }
      case AdversarialMix::Tenants: {
        PL_ASSERT(cfg.tenantCount >= 1, "tenantCount must be >= 1");
        if (src % cfg.tenantCount != 0)
            return kInvalidNode;
        // The aggressive tenant floods its own first node: an
        // intra-tenant hotspot the polite tenants must share links
        // with.
        const NodeId dst = 0;
        return dst == src ? kInvalidNode : dst;
      }
    }
    return kInvalidNode;
}

} // namespace phastlane::traffic
