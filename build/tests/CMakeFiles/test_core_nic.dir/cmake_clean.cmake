file(REMOVE_RECURSE
  "CMakeFiles/test_core_nic.dir/test_core_nic.cpp.o"
  "CMakeFiles/test_core_nic.dir/test_core_nic.cpp.o.d"
  "test_core_nic"
  "test_core_nic.pdb"
  "test_core_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
