/**
 * @file
 * Fault-rate sweep tests (DESIGN.md §10.4): thread-count
 * reproducibility, degradation monotonicity at the endpoints, field
 * plumbing, and the JSON rendering.
 */

#include <gtest/gtest.h>

#include "sim/fault_sweep.hpp"

namespace phastlane::sim {
namespace {

FaultSweepConfig
smallSweep()
{
    FaultSweepConfig cfg;
    cfg.params.meshWidth = 4;
    cfg.params.meshHeight = 4;
    cfg.sweepField = "missedReceiveRate";
    cfg.rates = {0.0, 0.1, 0.3};
    cfg.injectionRate = 0.05;
    cfg.broadcastFraction = 0.2;
    cfg.measureCycles = 300;
    cfg.seed = 42;
    return cfg;
}

TEST(FaultSweep, BitIdenticalAcrossThreadCounts)
{
    FaultSweepConfig cfg = smallSweep();
    cfg.threads = 1;
    const auto serial = runFaultSweep(cfg);
    cfg.threads = 4;
    const auto parallel = runFaultSweep(cfg);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(faultSweepToJson(cfg, serial),
              faultSweepToJson(cfg, parallel));
}

TEST(FaultSweep, ZeroRatePointIsLossFreeAndFaultPointsDegrade)
{
    FaultSweepConfig cfg = smallSweep();
    cfg.threads = 1;
    const auto pts = runFaultSweep(cfg);
    ASSERT_EQ(pts.size(), 3u);

    EXPECT_TRUE(pts[0].drained);
    EXPECT_EQ(pts[0].faultRate, 0.0);
    EXPECT_EQ(pts[0].events.lostUnits, 0u);
    EXPECT_EQ(pts[0].unitsDelivered, pts[0].unitsExpected);
    EXPECT_EQ(pts[0].e2e.retransmits, 0u);

    // Faulty points lose units at the network level; the reliability
    // layer retransmits and recovers (delivered units reach the
    // expected count unless retries were exhausted, in which case the
    // shortfall is accounted in e2e.lostUnits).
    for (size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].events.lostUnits, 0u) << "point " << i;
        EXPECT_GT(pts[i].e2e.retransmits, 0u) << "point " << i;
        EXPECT_EQ(pts[i].unitsDelivered + pts[i].e2e.lostUnits,
                  pts[i].unitsExpected)
            << "point " << i;
    }
    // More faults, more network-level loss (coarse monotonicity at
    // the tested endpoints).
    EXPECT_GT(pts[2].events.lostUnits, pts[1].events.lostUnits);
}

TEST(FaultSweep, WithoutReliabilityLayerUnitsStayLost)
{
    FaultSweepConfig cfg = smallSweep();
    cfg.threads = 1;
    cfg.reliable = false;
    cfg.rates = {0.3};
    const auto pts = runFaultSweep(cfg);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_TRUE(pts[0].drained);
    EXPECT_GT(pts[0].events.lostUnits, 0u);
    EXPECT_EQ(pts[0].unitsDelivered + pts[0].events.lostUnits,
              pts[0].unitsExpected);
    EXPECT_EQ(pts[0].e2e.sends, 0u);
}

TEST(FaultSweep, FieldPlumbing)
{
    const auto fields = faultRateFields();
    EXPECT_EQ(fields.size(), 5u);
    core::PhastlaneParams::FaultInjection fi;
    for (const auto &f : fields)
        EXPECT_TRUE(setFaultRate(fi, f, 0.5)) << f;
    EXPECT_DOUBLE_EQ(fi.misTurnRate, 0.5);
    EXPECT_DOUBLE_EQ(fi.missedReceiveRate, 0.5);
    EXPECT_DOUBLE_EQ(fi.dropSignalLossRate, 0.5);
    EXPECT_DOUBLE_EQ(fi.dropperIdCorruptRate, 0.5);
    EXPECT_DOUBLE_EQ(fi.routerFailRate, 0.5);
    EXPECT_FALSE(setFaultRate(fi, "noSuchField", 0.1));
}

TEST(FaultSweep, ApplyFaultFlags)
{
    Config args;
    core::PhastlaneParams::FaultInjection fi;
    EXPECT_FALSE(applyFaultFlags(args, fi));
    args.set("fault-signal-loss", "0.25");
    args.set("fault-seed", "17");
    EXPECT_TRUE(applyFaultFlags(args, fi));
    EXPECT_DOUBLE_EQ(fi.dropSignalLossRate, 0.25);
    EXPECT_EQ(fi.faultSeed, 17u);
    EXPECT_DOUBLE_EQ(fi.misTurnRate, 0.0);
}

TEST(FaultSweep, JsonContainsEveryPoint)
{
    FaultSweepConfig cfg = smallSweep();
    cfg.threads = 1;
    cfg.rates = {0.0, 0.2};
    cfg.measureCycles = 100;
    const auto pts = runFaultSweep(cfg);
    const std::string json = faultSweepToJson(cfg, pts);
    EXPECT_NE(json.find("\"sweep_field\": \"missedReceiveRate\""),
              std::string::npos);
    EXPECT_NE(json.find("\"fault_rate\": 0.000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"fault_rate\": 0.200000"),
              std::string::npos);
    EXPECT_NE(json.find("\"e2e\""), std::string::npos);
    EXPECT_NE(json.find("\"duplicates_suppressed\""),
              std::string::npos);
}

} // namespace
} // namespace phastlane::sim
