/**
 * @file
 * The spatially sharded step() (DESIGN.md §12): the router grid is
 * partitioned into rectangular shards, each with its own claim
 * planes, request chains and effect buffers, and the NIC-transfer,
 * launch and wavefront phases run shard-parallel on a ThreadPool.
 *
 * Determinism: results are bit-identical to the scalar engines at any
 * shard/thread count. The argument, per phase:
 *
 *  - resolveOutcomes() stays serial — it is the only consumer of the
 *    backoff RNG, and its inputs (the pendingReleases_/pendingDrops_
 *    lists) were merged into exact scalar order at the end of the
 *    previous cycle.
 *  - NIC transfer and launch arbitration touch only per-router state;
 *    each shard walks its own routers in ascending global id, and
 *    mergeShardLaunches() interleaves the per-shard flight lists by
 *    launch router, reproducing the scalar flight order.
 *  - Within a wavefront sub-step, phase A (arrival handling) only
 *    touches the router the flight is at — owned exclusively by one
 *    shard — and phase B consumes only requests targeting that same
 *    router, so the two phases run back-to-back per shard with no
 *    intra-sub-step barrier. Flights enter another shard's territory
 *    only across the sub-step barrier (mergeShardNext()).
 *  - Everything order-sensitive (deliveries, deferred release/drop
 *    outcomes) is emitted through ShardSink with a merge key encoding
 *    (sub-step, phase, scalar within-phase position); the cycle-end
 *    k-way merge replays the scalar order exactly, so next cycle's
 *    RNG draws see identical inputs.
 *  - Counters are commutative sums, accumulated as per-shard deltas;
 *    return-path latches are element-disjoint per (router, out port)
 *    within a cycle (paper footnote 4), with the two tallies relaxed
 *    atomics; fault draws are stateless hashes.
 */

#include <algorithm>
#include <cstdint>

#include "common/log.hpp"
#include "core/network_impl.hpp"

namespace phastlane::core {

namespace {

/**
 * K-way merge of per-shard (key, effect) lists — each already in
 * ascending key order — into @p out in global key order. Keys are
 * unique across shards (they encode the scalar engine's position),
 * so ties cannot occur.
 */
template <typename T>
void
mergeKeyed(const std::vector<std::vector<std::pair<uint64_t, T>> *>
               &lists,
           std::vector<uint32_t> &cursor, std::vector<T> &out)
{
    cursor.assign(lists.size(), 0);
    size_t total = 0;
    for (const auto *l : lists)
        total += l->size();
    out.reserve(out.size() + total);
    for (size_t done = 0; done < total; ++done) {
        int best = -1;
        uint64_t best_key = 0;
        for (size_t s = 0; s < lists.size(); ++s) {
            const auto &l = *lists[s];
            const uint32_t c = cursor[s];
            if (c >= l.size())
                continue;
            if (best < 0 || l[c].first < best_key) {
                best = static_cast<int>(s);
                best_key = l[c].first;
            }
        }
        PL_ASSERT(best >= 0, "keyed merge ran dry");
        auto &l = *lists[static_cast<size_t>(best)];
        out.push_back(std::move(l[cursor[best]].second));
        ++cursor[best];
    }
}

} // namespace

bool
PhastlaneNetwork::useShardedStep() const
{
    // With a single worker the sharded step is the scalar step plus
    // merge overhead and nothing else (results are bit-identical by
    // construction), so a one-thread pool — a one-core box, or an
    // explicit shardThreads=1 — runs the scalar path instead of
    // paying ~1.4x for no parallelism.
    return !shards_.empty() && pool_->size() > 1 &&
           observer_ == nullptr &&
           params_.wavefront != WavefrontModel::GlobalPriority;
}

void
PhastlaneNetwork::setupShards()
{
    if (params_.shardCount() <= 1)
        return;
    auto grid = std::make_unique<ShardGrid>(mesh_, params_.shardCols,
                                            params_.shardRows);
    if (grid->count() <= 1)
        return; // grid clamped down to one shard: plain scalar path
    shardGrid_ = std::move(grid);
    shards_.reserve(static_cast<size_t>(shardGrid_->count()));
    for (int s = 0; s < shardGrid_->count(); ++s)
        shards_.emplace_back(s, shardGrid_->rect(s));
    const int threads =
        std::min(resolveThreadCount(params_.shardThreads),
                 shardGrid_->count());
    pool_ = std::make_unique<ThreadPool>(threads);
}

void
PhastlaneNetwork::shardNicToLocal(Shard &sh)
{
    const ShardGrid::Rect &r = sh.rect;
    for (int y = r.y0; y < r.y0 + r.height; ++y) {
        for (int x = r.x0; x < r.x0 + r.width; ++x) {
            const NodeId n = mesh_.nodeAt({x, y});
            auto &nic = nics_[static_cast<size_t>(n)];
            auto &rb = routers_[static_cast<size_t>(n)];
            for (int i = 0; i < params_.nicTransfersPerCycle &&
                            !nic.empty() && rb.hasSpace(Port::Local);
                 ++i) {
                nic.popHeadInto(
                    rb.emplaceEntry(Port::Local, cycle_ + 1).pkt);
            }
        }
    }
}

void
PhastlaneNetwork::shardLaunchPhase(Shard &sh)
{
    // The scalar launch loop over this shard's routers (ascending
    // global id: row-major over the rect), claiming into the local
    // planes. Port-claim tallies and buffer-entry updates are
    // element-disjoint under the shard partition.
    const ShardGrid::Rect &rect = sh.rect;
    for (int ly = 0; ly < rect.height; ++ly) {
        for (int lx = 0; lx < rect.width; ++lx) {
            const NodeId r =
                mesh_.nodeAt({rect.x0 + lx, rect.y0 + ly});
            const NodeId lr =
                static_cast<NodeId>(ly * rect.width + lx);
            auto &rb = routers_[static_cast<size_t>(r)];
            rb.arbitrate(
                cycle_,
                [&](const OpticalPacket &pkt) {
                    return desiredPort(r, pkt);
                },
                sh.arb);
            for (auto &[entry, out, queue] : sh.arb.launches) {
                ++sh.fx.events.launches;
                ++sh.fx.events.bufferReads;
                ++sh.fx.pl.launches;
                if (entry->attempts > 0) {
                    ++sh.fx.events.retransmissions;
                    ++sh.fx.pl.retransmissions;
                }
                if (entry->pkt.firstInjectedAt == kNeverCycle) {
                    entry->pkt.firstInjectedAt = cycle_;
                    ++sh.fx.counters.packetsInjected;
                }
                Flight &f = sh.launches.emplace_back();
                f.pkt = entry->pkt;
                // AgeBoost recompute — mirrors launchRouter exactly.
                f.pkt.boosted =
                    params_.admission == AdmissionPolicy::AgeBoost &&
                    cycle_ - entry->enqueuedAt >=
                        static_cast<Cycle>(
                            params_.admissionAgeThreshold);
                f.prog = buildProgram(r, entry->pkt);
                f.launchRouter = r;
                f.at = mesh_.neighbor(r, out);
                PL_ASSERT(f.at != kInvalidNode,
                          "launch off the mesh edge");
                f.inPort = opposite(out);
                f.hops = 1;
                f.holder = EntryRef{r, queue, entry->pkt.branchId};
                sh.claims.set(lr, out);
                ++portClaimCounts_[static_cast<size_t>(r) *
                                       kMeshPorts +
                                   portIndex(out)];
            }
        }
    }
}

void
PhastlaneNetwork::applyShardPassWin(Shard &sh, size_t flight_idx,
                                    NodeId router, int local_router,
                                    Port out)
{
    Flight &f = scratch_->flights[flight_idx];
    sh.claims.set(static_cast<NodeId>(local_router), out);
    ++portClaimCounts_[static_cast<size_t>(router) * kMeshPorts +
                       portIndex(out)];
    ++sh.fx.events.passTraversals;
    returnPaths_.registerHop(router, f.inPort, out);
    f.recordHop(ReturnHop{router, f.inPort, out});
    f.prog.translate();
    f.at = mesh_.neighbor(router, out);
    PL_ASSERT(f.at != kInvalidNode, "route left the mesh");
    f.inPort = opposite(out);
    ++f.hops;
    sh.next.emplace_back(static_cast<uint64_t>(router) * kMeshPorts +
                             portIndex(out),
                         static_cast<uint32_t>(flight_idx));
}

void
PhastlaneNetwork::shardSubstep(Shard &sh, uint64_t substep)
{
    ShardSink sink{*this, sh.fx};
    std::vector<PassRequest> &requests = sh.requests;
    requests.clear();
    sh.next.clear();

    // Phase A: arrival-side actions for the flights at this shard's
    // routers, in global active-list order (the merge key records the
    // global position, so cross-shard effect order is restored at the
    // cycle-end merge).
    for (const auto &[ai, fi] : sh.activeLocal) {
        Flight &f = scratch_->flights[fi];
        sink.key = effectKey(substep, 0, ai);
        if (handleArrivalT(f, sink))
            continue;
        if (faultRoll(params_.faults, params_.faults.misTurnRate,
                      FaultKind::MisTurn, f.pkt.branchId,
                      static_cast<uint64_t>(cycle_),
                      static_cast<uint64_t>(f.at))) {
            // Mis-tuned pass resonator (as in the scalar engines).
            ++sink.events().faultMisTurns;
            receiveOrDropT(f, false, sink);
            continue;
        }
        const ControlGroup g = f.prog.front();
        PassRequest r;
        r.flight = fi;
        r.router = f.at;
        const Turn t = g.turn();
        r.out = applyTurn(f.inPort, t);
        r.straight = (t == Turn::Straight);
        r.boosted = f.pkt.boosted;
        requests.push_back(r);
    }

    // Phase B: claim resolution on the shard-local planes — the
    // bit-plane algebra of propagateBitplane() over the shard's
    // rectangle. A pass request always targets the router the flight
    // arrived at, which this shard owns, so phase B consumes only this
    // shard's own phase A requests: no intra-sub-step barrier.
    sh.reqOnce.clear();
    sh.reqMulti.clear();
    sh.reqNext.resize(requests.size());
    ++sh.reqEpochCur;
    const ShardGrid &grid = *shardGrid_;
    for (uint32_t ri = 0; ri < static_cast<uint32_t>(requests.size());
         ++ri) {
        const PassRequest &r = requests[ri];
        const NodeId lr = static_cast<NodeId>(grid.localId(r.router));
        const size_t key =
            static_cast<size_t>(lr) * kMeshPorts + portIndex(r.out);
        sh.reqNext[ri] = UINT32_MAX;
        if (sh.reqEpoch[key] != sh.reqEpochCur) {
            sh.reqEpoch[key] = sh.reqEpochCur;
            sh.reqHead[key] = ri;
            sh.reqTail[key] = ri;
            sh.reqOnce.set(lr, r.out);
        } else {
            sh.reqNext[sh.reqTail[key]] = ri;
            sh.reqTail[key] = ri;
            sh.reqMulti.set(lr, r.out);
        }
    }

    const int words = sh.claims.words();
    for (int pi = 0; pi < kMeshPorts; ++pi) {
        const Port p = portFromIndex(pi);
        bitplane::andnot2(sh.reqOnce.plane(p), sh.reqMulti.plane(p),
                          sh.claims.plane(p), sh.reqWin.plane(p),
                          words);
    }

    const bool fixed_priority = params_.opticalArbitration ==
                                OpticalArbitration::FixedPriority;
    const bool invert = params_.faults.invertStraightPriority;
    // Ascending local id is ascending global id within the rect (both
    // are row-major in y, then x), so this sweep visits requested
    // ports in the scalar engine's flat-key order.
    for (int w = 0; w < words; ++w) {
        uint64_t any = sh.reqOnce.plane(Port::North)[w] |
                       sh.reqOnce.plane(Port::East)[w] |
                       sh.reqOnce.plane(Port::South)[w] |
                       sh.reqOnce.plane(Port::West)[w];
        while (any != 0) {
            const int bit = __builtin_ctzll(any);
            any &= any - 1;
            const int lr = w * 64 + bit;
            const NodeId router = mesh_.nodeAt(
                {sh.rect.x0 + lr % sh.rect.width,
                 sh.rect.y0 + lr / sh.rect.width});
            const uint64_t m = uint64_t{1} << bit;
            for (int pi = 0; pi < kMeshPorts; ++pi) {
                const Port out = portFromIndex(pi);
                if ((sh.reqOnce.plane(out)[w] & m) == 0)
                    continue;
                const size_t key =
                    static_cast<size_t>(lr) * kMeshPorts +
                    static_cast<size_t>(pi);
                const uint64_t flat =
                    static_cast<uint64_t>(router) * kMeshPorts +
                    static_cast<uint64_t>(pi);
                if ((sh.reqWin.plane(out)[w] & m) != 0) {
                    // Single requester, port free: grant.
                    applyShardPassWin(
                        sh, requests[sh.reqHead[key]].flight, router,
                        lr, out);
                    continue;
                }
                // Contested port, or one pre-claimed in the launch
                // phase (then every requester loses).
                uint32_t winner = UINT32_MAX;
                if (!sh.claims.test(static_cast<NodeId>(lr), out)) {
                    winner = sh.reqHead[key];
                    if (fixed_priority) {
                        const auto rank = [&](uint32_t ri) {
                            const PassRequest &r = requests[ri];
                            return std::make_pair(
                                (r.straight || r.boosted) != invert
                                    ? 0
                                    : 1,
                                portIndex(
                                    scratch_->flights[r.flight].inPort));
                        };
                        for (uint32_t ri = sh.reqNext[winner];
                             ri != UINT32_MAX; ri = sh.reqNext[ri]) {
                            if (rank(ri) < rank(winner))
                                winner = ri;
                        }
                    } else {
                        // Rotating priority over input ports.
                        const int start =
                            static_cast<int>(cycle_ % kMeshPorts);
                        const auto rrRank = [&](uint32_t ri) {
                            const int p = portIndex(
                                scratch_->flights[requests[ri].flight]
                                    .inPort);
                            return (p - start + kMeshPorts) %
                                   kMeshPorts;
                        };
                        for (uint32_t ri = sh.reqNext[winner];
                             ri != UINT32_MAX; ri = sh.reqNext[ri]) {
                            if (rrRank(ri) < rrRank(winner))
                                winner = ri;
                        }
                    }
                }
                uint64_t pos = 0;
                for (uint32_t ri = sh.reqHead[key]; ri != UINT32_MAX;
                     ri = sh.reqNext[ri], ++pos) {
                    if (ri == winner) {
                        applyShardPassWin(sh, requests[ri].flight,
                                          router, lr, out);
                    } else {
                        // Loser key: the scalar engine resolves ports
                        // in flat-key order, chains in arrival order.
                        sink.key = effectKey(substep, 1,
                                             (flat << 24) | pos);
                        receiveOrDropT(scratch_->flights[requests[ri].flight],
                                       false, sink);
                    }
                }
            }
        }
    }
}

void
PhastlaneNetwork::mergeShardLaunches()
{
    // Interleave the per-shard flight lists by launch router. Shards
    // own disjoint router sets and each list is router-ascending, so
    // the merge reproduces the scalar launch order (a router's own
    // launches stay consecutive and in arbitration order).
    scratch_->flights.clear();
    size_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.launches.size();
    scratch_->flights.reserve(total);
    mergeCursor_.assign(shards_.size(), 0);
    while (scratch_->flights.size() < total) {
        int best = -1;
        NodeId best_router = 0;
        for (size_t s = 0; s < shards_.size(); ++s) {
            const auto &l = shards_[s].launches;
            const uint32_t c = mergeCursor_[s];
            if (c >= l.size())
                continue;
            if (best < 0 || l[c].launchRouter < best_router) {
                best = static_cast<int>(s);
                best_router = l[c].launchRouter;
            }
        }
        PL_ASSERT(best >= 0, "launch merge ran dry");
        auto &l = shards_[static_cast<size_t>(best)].launches;
        scratch_->flights.push_back(std::move(l[mergeCursor_[best]]));
        ++mergeCursor_[best];
    }
}

size_t
PhastlaneNetwork::mergeShardNext()
{
    // One winner per (router, out port): keys are unique, and each
    // shard's list is already ascending, so a k-way walk restores the
    // scalar engine's next-sub-step active order. Each winner is dealt
    // straight to the shard owning its new router — one keyed stable
    // pass replaces the former merge-to-global-list plus per-sub-step
    // re-deal, with the walk position travelling along as the global
    // active index the phase A merge keys need.
    for (Shard &sh : shards_)
        sh.activeLocal.clear();
    mergeCursor_.assign(shards_.size(), 0);
    size_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.next.size();
    for (size_t pos = 0; pos < total; ++pos) {
        int best = -1;
        uint64_t best_key = 0;
        for (size_t s = 0; s < shards_.size(); ++s) {
            const auto &l = shards_[s].next;
            const uint32_t c = mergeCursor_[s];
            if (c >= l.size())
                continue;
            if (best < 0 || l[c].first < best_key) {
                best = static_cast<int>(s);
                best_key = l[c].first;
            }
        }
        PL_ASSERT(best >= 0, "sub-step merge ran dry");
        const uint32_t fi = shards_[static_cast<size_t>(best)]
                                .next[mergeCursor_[best]]
                                .second;
        ++mergeCursor_[best];
        const int ds = shardGrid_->shardOf(scratch_->flights[fi].at);
        shards_[static_cast<size_t>(ds)].activeLocal.emplace_back(
            static_cast<uint32_t>(pos), fi);
    }
    return total;
}

void
PhastlaneNetwork::mergeShardEffects()
{
    for (const Shard &sh : shards_) {
        const OpticalEvents &e = sh.fx.events;
        events_.launches += e.launches;
        events_.passTraversals += e.passTraversals;
        events_.receives += e.receives;
        events_.tapReceives += e.tapReceives;
        events_.bufferWrites += e.bufferWrites;
        events_.bufferReads += e.bufferReads;
        events_.drops += e.drops;
        events_.dropSignalHops += e.dropSignalHops;
        events_.retransmissions += e.retransmissions;
        events_.routerCycles += e.routerCycles;
        events_.lostUnits += e.lostUnits;
        events_.dropSignalsLost += e.dropSignalsLost;
        events_.faultMisTurns += e.faultMisTurns;
        events_.faultMissedReceives += e.faultMissedReceives;
        events_.faultCorruptions += e.faultCorruptions;
        events_.faultDeadArrivals += e.faultDeadArrivals;
        events_.duplicatesSuppressed += e.duplicatesSuppressed;
        const PhastlaneCounters &p = sh.fx.pl;
        pl_.drops += p.drops;
        pl_.retransmissions += p.retransmissions;
        pl_.blockedBuffered += p.blockedBuffered;
        pl_.interimAccepts += p.interimAccepts;
        pl_.launches += p.launches;
        const NetworkCounters &c = sh.fx.counters;
        counters_.messagesAccepted += c.messagesAccepted;
        counters_.packetsInjected += c.packetsInjected;
        counters_.deliveries += c.deliveries;
        const int64_t d = sh.fx.outstandingDelta;
        if (d < 0) {
            PL_ASSERT(outstanding_ >= static_cast<uint64_t>(-d),
                      "lost/delivered more units than outstanding");
            outstanding_ -= static_cast<uint64_t>(-d);
        } else {
            outstanding_ += static_cast<uint64_t>(d);
        }
    }

    std::vector<std::vector<std::pair<uint64_t, Delivery>> *> dlists;
    std::vector<std::vector<std::pair<uint64_t, EntryRef>> *> rlists;
    std::vector<std::vector<std::pair<uint64_t, LaunchOutcome>> *>
        olists;
    dlists.reserve(shards_.size());
    rlists.reserve(shards_.size());
    olists.reserve(shards_.size());
    for (Shard &sh : shards_) {
        dlists.push_back(&sh.fx.deliveries);
        rlists.push_back(&sh.fx.releases);
        olists.push_back(&sh.fx.drops);
    }
    mergeKeyed(dlists, mergeCursor_, deliveries_);
    mergeKeyed(rlists, mergeCursor_, pendingReleases_);
    mergeKeyed(olists, mergeCursor_, pendingDrops_);
}

void
PhastlaneNetwork::stepSharded()
{
    deliveries_.clear();
    returnPaths_.beginCycle();
    // Serial: the only consumer of the backoff RNG; its inputs were
    // merged into exact scalar order at the end of the last cycle.
    resolveOutcomes();

    ThreadPool &pool = *pool_;
    const size_t nshards = shards_.size();
    pool.run(nshards, [&](size_t si) {
        Shard &sh = shards_[si];
        sh.fx.clear();
        sh.claims.clear();
        sh.launches.clear();
        shardNicToLocal(sh);
        shardLaunchPhase(sh);
    });
    mergeShardLaunches();

    // Initial deal: every launched flight is active, in flight order
    // (the global index doubles as the phase A merge-key position).
    // Later sub-steps are dealt by mergeShardNext() as part of its
    // merge pass.
    for (Shard &sh : shards_)
        sh.activeLocal.clear();
    size_t active = scratch_->flights.size();
    for (uint32_t fi = 0; fi < static_cast<uint32_t>(active); ++fi) {
        const int s = shardGrid_->shardOf(scratch_->flights[fi].at);
        shards_[static_cast<size_t>(s)].activeLocal.emplace_back(fi,
                                                                 fi);
    }

    uint64_t substep = 0;
    while (active > 0) {
        pool.run(nshards, [&](size_t si) {
            shardSubstep(shards_[si], substep);
        });
        active = mergeShardNext();
        ++substep;
    }

    mergeShardEffects();
    events_.routerCycles += static_cast<uint64_t>(mesh_.nodeCount());
    ++cycle_;
}

} // namespace phastlane::core
