#include "sim/experiment.hpp"

#include <optional>

#include "common/log.hpp"
#include "core/network.hpp"
#include "obs/observe.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

std::vector<BenchmarkRun>
runExperiment(const ExperimentSpec &spec)
{
    if (spec.configs.empty() || spec.benchmarks.empty())
        fatal("experiment needs at least one config and benchmark");

    // Pre-generate every benchmark's streams once (shared read-only
    // across the grid), then dispatch the independent (benchmark,
    // config) cells across the pool. Cell i owns runs[i], so the
    // result vector comes back in the serial order: grouped by
    // benchmark, configs in specification order.
    const size_t nb = spec.benchmarks.size();
    const size_t nc = spec.configs.size();
    std::vector<traffic::SplashProfile> profiles(spec.benchmarks);
    std::vector<std::vector<std::vector<traffic::Txn>>> streams(nb);
    for (size_t b = 0; b < nb; ++b) {
        if (spec.txnsPerNode > 0)
            profiles[b].txnsPerNode = spec.txnsPerNode;
        streams[b] =
            traffic::generateStreams(profiles[b], 64, spec.seed);
    }

    std::vector<BenchmarkRun> runs(nb * nc);
    parallelFor(
        nb * nc,
        [&](size_t i) {
            const size_t b = i / nc;
            const size_t c = i % nc;
            const NetConfig cfg = makeConfig(spec.configs[c]);
            auto net = cfg.make(spec.seed);
            traffic::CoherenceDriver driver(*net, streams[b],
                                            profiles[b].mshrLimit);
            BenchmarkRun &run = runs[i];
            run.benchmark = profiles[b].name;
            run.config = spec.configs[c];
            // Each cell records into its own registry so parallel
            // shards never share observer state.
            std::optional<obs::MetricsObserver> observer;
            auto *pl = dynamic_cast<core::PhastlaneNetwork *>(
                net.get());
            if (spec.collectMetrics && pl) {
                observer.emplace(*pl, run.metrics);
                pl->setObserver(&*observer);
            }
            run.result = driver.run();
            if (pl && observer)
                pl->setObserver(nullptr);
            run.power = cfg.power(
                *net, run.result.completionCycles
                          ? run.result.completionCycles
                          : 1);
            if (pl)
                run.drops = pl->phastlaneCounters().drops;
        },
        spec.threads);
    return runs;
}

const BenchmarkRun &
findRun(const std::vector<BenchmarkRun> &runs,
        const std::string &benchmark, const std::string &config)
{
    for (const auto &r : runs) {
        if (r.benchmark == benchmark && r.config == config)
            return r;
    }
    fatal("no run for benchmark '%s' and config '%s'",
          benchmark.c_str(), config.c_str());
}

double
speedupOf(const std::vector<BenchmarkRun> &runs,
          const std::string &benchmark, const std::string &config,
          const std::string &baseline)
{
    const BenchmarkRun &base = findRun(runs, benchmark, baseline);
    const BenchmarkRun &run = findRun(runs, benchmark, config);
    PL_ASSERT(run.result.completionCycles > 0, "zero-length run");
    return static_cast<double>(base.result.completionCycles) /
           static_cast<double>(run.result.completionCycles);
}

TextTable
speedupTable(const ExperimentSpec &spec,
             const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c);
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                speedupOf(runs, b.name, c, spec.baseline), 2));
        }
        t.addRow(std::move(row));
    }
    return t;
}

obs::MetricsRegistry
mergedMetrics(const std::vector<BenchmarkRun> &runs)
{
    obs::MetricsRegistry total;
    for (const auto &run : runs)
        total.merge(run.metrics);
    return total;
}

TextTable
powerTable(const ExperimentSpec &spec,
           const std::vector<BenchmarkRun> &runs)
{
    std::vector<std::string> headers = {"benchmark"};
    for (const auto &c : spec.configs)
        headers.push_back(c + " [W]");
    TextTable t(std::move(headers));
    for (const auto &b : spec.benchmarks) {
        std::vector<std::string> row = {b.name};
        for (const auto &c : spec.configs) {
            row.push_back(TextTable::num(
                findRun(runs, b.name, c).power.totalW, 1));
        }
        t.addRow(std::move(row));
    }
    return t;
}

} // namespace phastlane::sim
