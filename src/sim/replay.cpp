#include "sim/replay.hpp"

#include <cinttypes>

#include "common/log.hpp"

namespace phastlane::sim {

ReplayCore::ReplayCore(Network &net, size_t max_pending)
    : net_(net), maxPending_(max_pending)
{
    PL_ASSERT(max_pending > 0, "replay window must hold >= 1 packet");
}

void
ReplayCore::release(const traffic::TraceRecord &r)
{
    const std::string err =
        traffic::validateTraceRecord(r, net_.nodeCount());
    if (!err.empty())
        fatal("invalid trace record %llu: %s",
              static_cast<unsigned long long>(released_),
              err.c_str());
    Packet pkt;
    pkt.id = nextId_++;
    pkt.src = r.src;
    pkt.dst = r.dst;
    pkt.broadcast = r.broadcast();
    pkt.kind = r.kind;
    pkt.tag = r.tag;
    pkt.createdAt = net_.now();
    pending_.push_back(pkt);
    ++released_;
}

void
ReplayCore::injectPending()
{
    while (!pending_.empty() && net_.inject(pending_.front()))
        pending_.pop_front();
}

void
ReplayCore::stepAndHarvest()
{
    net_.step();
    for (const auto &d : net_.deliveries()) {
        latency_.add(static_cast<double>(d.at - d.packet.createdAt));
        ++deliveries_;
    }
}

ReplayStats
ReplayCore::stats() const
{
    ReplayStats s;
    s.completionCycle = net_.now();
    s.messages = released_;
    s.deliveries = deliveries_;
    s.avgLatency = latency_.mean();
    s.outstanding = net_.inFlight() + pending_.size();
    return s;
}

ReplayStats
replayTraceStream(Network &net, traffic::TraceSource &src,
                  const ReplayOptions &opts)
{
    ReplayCore core(net, opts.maxPending);
    traffic::TraceRecord la;
    bool have = src.next(la);
    const Cycle deadline = net.now() + opts.maxCycles;
    bool done = false;

    while (net.now() < deadline) {
        while (have && la.cycle <= net.now() &&
               core.windowHasSpace()) {
            core.release(la);
            have = src.next(la);
        }
        core.injectPending();
        if (!have && core.quiescent()) {
            done = true;
            break;
        }
        core.stepAndHarvest();
    }

    ReplayStats res = core.stats();
    res.hitCycleLimit = !done;
    if (done) {
        res.outstanding = 0;
    } else {
        if (have)
            ++res.outstanding; // the unreleased lookahead record
        warn("streaming replay hit the cycle limit with %llu "
             "outstanding",
             static_cast<unsigned long long>(res.outstanding));
    }
    return res;
}

std::string
formatReplayReport(const ReplayStats &stats, const Network &net)
{
    const NetworkCounters &c = net.counters();
    return detail::formatMsg(
        "messages %" PRIu64 "\n"
        "deliveries %" PRIu64 "\n"
        "completion_cycle %" PRIu64 "\n"
        "avg_latency %.4f\n"
        "hit_cycle_limit %d\n"
        "outstanding %" PRIu64 "\n"
        "counters accepted=%" PRIu64 " injected=%" PRIu64
        " delivered=%" PRIu64 "\n",
        stats.messages, stats.deliveries, stats.completionCycle,
        stats.avgLatency, stats.hitCycleLimit ? 1 : 0,
        stats.outstanding, c.messagesAccepted, c.packetsInjected,
        c.deliveries);
}

} // namespace phastlane::sim
