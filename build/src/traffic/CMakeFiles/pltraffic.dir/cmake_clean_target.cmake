file(REMOVE_RECURSE
  "libpltraffic.a"
)
