/**
 * @file
 * Router area model tests (paper Fig 8): the 64-wavelength sweet spot
 * and the node-area budgets.
 */

#include <gtest/gtest.h>

#include "optical/area_model.hpp"

namespace phastlane::optical {
namespace {

TEST(Area, SweetSpotIs64Wavelengths)
{
    AreaModel m;
    const int candidates[] = {16, 32, 64, 128, 256};
    EXPECT_EQ(m.sweetSpot(candidates, 5), 64);
}

TEST(Area, SixtyFourFitsSingleCoreNode)
{
    AreaModel m;
    ChipGeometry g;
    // Paper: 64 wavelengths are necessary to match the 3.5 mm^2
    // single-core node.
    EXPECT_TRUE(m.fitsNode(64, g.nodeAreaMm2));
    EXPECT_FALSE(m.fitsNode(32, g.nodeAreaMm2));
    EXPECT_FALSE(m.fitsNode(128, g.nodeAreaMm2));
}

TEST(Area, ThirtyTwoAnd128FitLargerNodes)
{
    AreaModel m;
    ChipGeometry g;
    // Paper: with dual/quad-core nodes, 32 or 128 wavelengths also
    // meet the die-size constraint.
    EXPECT_TRUE(m.fitsNode(128, g.dualNodeAreaMm2));
    EXPECT_TRUE(m.fitsNode(32, g.quadNodeAreaMm2));
}

TEST(Area, PortLengthGrowsWithWavelengths)
{
    AreaModel m;
    double prev = 0.0;
    for (int wl : {16, 32, 64, 128, 256}) {
        const RouterArea a = m.evaluate(wl);
        EXPECT_GT(a.portLengthMm, prev);
        prev = a.portLengthMm;
    }
}

TEST(Area, InternalLengthShrinksWithWavelengths)
{
    AreaModel m;
    double prev = 1e12;
    for (int wl : {16, 32, 64, 128, 256}) {
        const RouterArea a = m.evaluate(wl);
        EXPECT_LT(a.internalLengthMm, prev);
        prev = a.internalLengthMm;
    }
}

TEST(Area, EdgeIsPortPlusInternal)
{
    AreaModel m;
    for (int wl : {32, 64, 128}) {
        const RouterArea a = m.evaluate(wl);
        EXPECT_DOUBLE_EQ(a.edgeMm,
                         a.portLengthMm + a.internalLengthMm);
        EXPECT_DOUBLE_EQ(a.areaMm2, a.edgeMm * a.edgeMm);
    }
}

TEST(Area, WaveguideCountsMatchPacketFormat)
{
    PacketFormat f;
    // Table 1: 10 payload waveguides at 64-way WDM plus 2 control.
    EXPECT_EQ(f.payloadWaveguides(64), 10);
    EXPECT_EQ(f.controlWaveguides(), 2);
    EXPECT_EQ(f.totalWaveguides(64), 12);
    EXPECT_EQ(f.payloadWaveguides(32), 20);
    EXPECT_EQ(f.payloadWaveguides(128), 5);
}

TEST(Area, ChipGeometryDerivedQuantities)
{
    ChipGeometry g;
    // 64 nodes x 3.5 mm^2 -> ~15 mm die edge, ~1.87 mm pitch.
    EXPECT_NEAR(g.dieEdgeMm(), 14.97, 0.01);
    EXPECT_NEAR(g.nodePitchMm(), 1.87, 0.01);
}

TEST(Area, RoutersFitUnderTheNodePitchAt64)
{
    AreaModel m;
    ChipGeometry g;
    EXPECT_LT(m.evaluate(64).edgeMm, g.nodePitchMm());
}

} // namespace
} // namespace phastlane::optical
