/**
 * @file
 * Direct unit tests of the electrical router's VC state, VC
 * allocation, and iSLIP switch allocation.
 */

#include <gtest/gtest.h>
#include <memory>
#include <set>

#include "electrical/router.hpp"

namespace phastlane::electrical {
namespace {

class RouterFixture : public ::testing::Test
{
  protected:
    RouterFixture() : router_(0, params_) {}

    /** Place a flit into (port, vc) with a single branch toward
     *  @p out, arrived long enough ago for both stages. */
    void
    placeFlit(Port port, int vc, Port out, Cycle arrived = 0)
    {
        InputVc &ivc = router_.inputVc(port, vc);
        EFlit f;
        f.msg = std::make_shared<const Packet>();
        f.flitId = nextId_++;
        ivc.flit = f;
        ivc.arrivedAt = arrived;
        ivc.ejecting = false;
        ivc.pendingMesh =
            static_cast<uint8_t>(1u << portIndex(out));
        ivc.resetBranches();
    }

    ElectricalParams params_;
    ElectricalRouter router_;
    uint64_t nextId_ = 1;
};

TEST_F(RouterFixture, StageTimingMatchesRouterDelay)
{
    // routerDelay = 3: VA at arrival+1, SA at arrival+2.
    EXPECT_EQ(router_.vaStage(10), 11u);
    EXPECT_EQ(router_.saStage(10), 12u);
}

TEST_F(RouterFixture, FreeInputVcFindsTheGap)
{
    EXPECT_EQ(router_.freeInputVc(Port::Local), 0);
    placeFlit(Port::Local, 0, Port::East);
    EXPECT_EQ(router_.freeInputVc(Port::Local), 1);
}

TEST_F(RouterFixture, VaAssignsFreeOutputVc)
{
    placeFlit(Port::South, 0, Port::North);
    EXPECT_EQ(router_.allocateVcs(100), 1);
    const InputVc &ivc = router_.inputVc(Port::South, 0);
    const int out_vc = ivc.branchVc[portIndex(Port::North)];
    ASSERT_GE(out_vc, 0);
    EXPECT_EQ(router_.outputVc(Port::North, out_vc).state,
              OutputVc::State::Assigned);
    // A second VA pass grants nothing new.
    EXPECT_EQ(router_.allocateVcs(101), 0);
}

TEST_F(RouterFixture, VaRespectsStageTiming)
{
    placeFlit(Port::South, 0, Port::North, /*arrived=*/50);
    EXPECT_EQ(router_.allocateVcs(50), 0);  // VA stage is 51
    EXPECT_EQ(router_.allocateVcs(51), 1);
}

TEST_F(RouterFixture, VaExhaustsOutputVcs)
{
    // 10 output VCs on the North port: the 11th requester waits.
    for (int v = 0; v < params_.vcsPerPort; ++v)
        placeFlit(Port::South, v, Port::North);
    placeFlit(Port::East, 0, Port::North);
    EXPECT_EQ(router_.allocateVcs(100), params_.vcsPerPort);
    EXPECT_EQ(router_.allocateVcs(101), 0);
}

TEST_F(RouterFixture, SaGrantsOnePerOutputPort)
{
    placeFlit(Port::South, 0, Port::North);
    placeFlit(Port::East, 0, Port::North);
    router_.allocateVcs(100);
    const auto winners = router_.allocateSwitch(100);
    ASSERT_EQ(winners.size(), 1u);
    EXPECT_EQ(winners[0].outPort, Port::North);
}

TEST_F(RouterFixture, SaMatchesDisjointPortsInOneCycle)
{
    placeFlit(Port::South, 0, Port::North);
    placeFlit(Port::North, 0, Port::South);
    placeFlit(Port::West, 0, Port::East);
    placeFlit(Port::East, 0, Port::West);
    router_.allocateVcs(100);
    const auto winners = router_.allocateSwitch(100);
    EXPECT_EQ(winners.size(), 4u);
}

TEST_F(RouterFixture, MulticastForkReplicatesAcrossPorts)
{
    // One flit with three branches: input speedup 4 lets all three
    // win SA in the same cycle once VA assigned each branch a VC.
    InputVc &ivc = router_.inputVc(Port::Local, 0);
    EFlit f;
    f.msg = std::make_shared<const Packet>();
    ivc.flit = f;
    ivc.arrivedAt = 0;
    ivc.pendingMesh = static_cast<uint8_t>(
        (1u << portIndex(Port::North)) |
        (1u << portIndex(Port::East)) |
        (1u << portIndex(Port::South)));
    ivc.resetBranches();
    EXPECT_EQ(router_.allocateVcs(100), 3);
    const auto winners = router_.allocateSwitch(100);
    EXPECT_EQ(winners.size(), 3u);
    for (const auto &w : winners)
        EXPECT_EQ(w.inPort, Port::Local);
}

TEST_F(RouterFixture, InputSpeedupCapsGrants)
{
    ElectricalParams p;
    p.inputSpeedup = 2;
    ElectricalRouter router(0, p);
    InputVc &ivc = router.inputVc(Port::Local, 0);
    EFlit f;
    f.msg = std::make_shared<const Packet>();
    ivc.flit = f;
    ivc.arrivedAt = 0;
    ivc.pendingMesh = 0x0f; // all four ports
    ivc.resetBranches();
    EXPECT_EQ(router.allocateVcs(100), 4);
    const auto winners = router.allocateSwitch(100);
    EXPECT_EQ(winners.size(), 2u);
}

TEST_F(RouterFixture, IslipRotatesGrantsAcrossRequesters)
{
    // Two persistent contenders for the North port: over repeated
    // allocations each must win (pointer advances past winners).
    placeFlit(Port::South, 0, Port::North);
    placeFlit(Port::East, 0, Port::North);
    router_.allocateVcs(100);
    std::set<int> winner_ports;
    for (int round = 0; round < 2; ++round) {
        const auto winners = router_.allocateSwitch(100 + round);
        ASSERT_EQ(winners.size(), 1u);
        winner_ports.insert(portIndex(winners[0].inPort));
        // Caller-side cleanup: consume the branch and its output VC.
        InputVc &vc =
            router_.inputVc(winners[0].inPort, winners[0].inVc);
        vc.pendingMesh = 0;
        vc.branchVc[portIndex(Port::North)] = -1;
        vc.flit.reset();
        router_.outputVc(Port::North, winners[0].outVc).state =
            OutputVc::State::Free;
    }
    EXPECT_EQ(winner_ports.size(), 2u);
}

TEST_F(RouterFixture, SecondIterationFillsLeftoverOutputs)
{
    // Input-port conflict in iteration 1: VCs on the same input port
    // requesting different outputs can need a second grant/accept
    // round when grants collide on one input's accept stage. Build a
    // scenario with speedup 1 to force it.
    ElectricalParams p;
    p.inputSpeedup = 1;
    p.allocIterations = 2;
    ElectricalRouter router(0, p);
    auto place = [&](Port port, int vc, uint8_t mask) {
        InputVc &ivc = router.inputVc(port, vc);
        EFlit f;
        f.msg = std::make_shared<const Packet>();
        ivc.flit = f;
        ivc.arrivedAt = 0;
        ivc.pendingMesh = mask;
        ivc.resetBranches();
    };
    // South VC0 wants North; South VC1 wants East; West VC0 wants
    // East too. With speedup 1, South can send only one flit; the
    // second iteration lets West take East if the first round left
    // it unmatched.
    place(Port::South, 0,
          static_cast<uint8_t>(1u << portIndex(Port::North)));
    place(Port::South, 1,
          static_cast<uint8_t>(1u << portIndex(Port::East)));
    place(Port::West, 0,
          static_cast<uint8_t>(1u << portIndex(Port::East)));
    router.allocateVcs(100);
    const auto winners = router.allocateSwitch(100);
    // Both outputs end up matched to different input ports.
    ASSERT_EQ(winners.size(), 2u);
    std::set<int> in_ports, out_ports;
    for (const auto &w : winners) {
        in_ports.insert(portIndex(w.inPort));
        out_ports.insert(portIndex(w.outPort));
    }
    EXPECT_EQ(in_ports.size(), 2u);
    EXPECT_EQ(out_ports.size(), 2u);
}

} // namespace
} // namespace phastlane::electrical
