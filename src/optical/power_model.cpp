#include "optical/power_model.hpp"

#include <cmath>

#include "common/log.hpp"
#include "optical/loss.hpp"

namespace phastlane::optical {

PeakPowerModel::PeakPowerModel(const PacketFormat &format,
                               const WaveguideConstants &wg)
    : format_(format), wg_(wg)
{
}

double
PeakPowerModel::crossingLossDb(double efficiency)
{
    PL_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
              "crossing efficiency must be in (0, 1]");
    return -10.0 * std::log10(efficiency);
}

double
PeakPowerModel::worstCaseCrossings(int wavelengths, int max_hops) const
{
    PL_ASSERT(wavelengths > 0 && max_hops >= 1, "bad parameters");
    const int n_wg = format_.totalWaveguides(wavelengths);
    const double per_router = wg_.crossingsFixedPerRouter +
                              wg_.crossingsPerWaveguide * n_wg;
    return per_router * static_cast<double>(max_hops);
}

double
PeakPowerModel::pathLossDb(double efficiency, int wavelengths,
                           int max_hops) const
{
    // Delegate to the itemized loss budget so both views of the loss
    // math stay consistent (test_optical_loss verifies the identity).
    LossModel loss(format_, wg_);
    return loss.worstCasePath(efficiency, wavelengths, max_hops)
        .totalDb();
}

double
PeakPowerModel::peakPowerW(double efficiency, int wavelengths,
                           int max_hops) const
{
    const double loss_db = pathLossDb(efficiency, wavelengths, max_hops);
    return wg_.basePowerW * std::pow(10.0, loss_db / 10.0);
}

int
PeakPowerModel::maxHopsWithinBudget(double efficiency, int wavelengths,
                                    double budget_w, int hop_limit) const
{
    int best = 0;
    for (int h = 1; h <= hop_limit; ++h) {
        if (peakPowerW(efficiency, wavelengths, h) <= budget_w)
            best = h;
        else
            break;
    }
    return best;
}

} // namespace phastlane::optical
