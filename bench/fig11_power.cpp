/**
 * @file
 * Figure 11: network power of the optical configurations and the
 * electrical baselines on the SPLASH2-like workloads.
 *
 * Expected shape (paper): the four- and five-hop optical networks use
 * at least 70% less power than the electrical baseline on every
 * benchmark (~80% overall); the eight-hop network's transmit (laser)
 * power rises sharply; larger buffers add power.
 */

#include "bench_util.hpp"
#include "sim/configs.hpp"
#include "sim/parallel.hpp"
#include "traffic/coherence.hpp"
#include "traffic/splash.hpp"

using namespace phastlane;
using namespace phastlane::sim;
using namespace phastlane::traffic;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const auto configs = standardConfigs();

    TextTable t({"benchmark", "config", "total [W]", "vs Elec3",
                 "buffers [W]", "laser [W]", "modulator [W]",
                 "receiver [W]", "xbar+link [W]", "static [W]"});

    double saving_sum = 0.0;
    int saving_count = 0;

    for (auto prof : splashSuite()) {
        if (opts.quick)
            prof.txnsPerNode = 60;
        const auto streams = generateStreams(prof, 64, opts.seed);

        // Every configuration replays the identical stream, so the
        // whole row of power models runs in parallel; the baseline's
        // result is picked out afterwards.
        std::vector<power::PowerBreakdown> results(configs.size());
        sim::parallelFor(
            configs.size(),
            [&](size_t i) {
                auto net = configs[i].make(1);
                CoherenceDriver driver(*net, streams,
                                       prof.mshrLimit);
                const CoherenceResult r = driver.run();
                results[i] = configs[i].power(
                    *net,
                    r.completionCycles ? r.completionCycles : 1);
            },
            opts.threads);

        double base_w = 0.0;
        for (size_t i = 0; i < configs.size(); ++i) {
            if (configs[i].name == "Electrical3")
                base_w = results[i].totalW;
        }
        for (size_t i = 0; i < configs.size(); ++i) {
            const NetConfig &cfg = configs[i];
            if (cfg.name == "Electrical3") {
                t.addRow({prof.name, cfg.name,
                          TextTable::num(base_w, 1), "0%", "-", "-",
                          "-", "-", "-", "-"});
                continue;
            }
            const auto &p = results[i];
            const double rel =
                base_w > 0.0 ? 1.0 - p.totalW / base_w : 0.0;
            if (cfg.name == "Optical4" && base_w > 0.0) {
                saving_sum += rel;
                ++saving_count;
            }
            t.addRow({prof.name, cfg.name,
                      TextTable::num(p.totalW, 1),
                      base_w > 0.0
                          ? TextTable::num(100.0 * rel, 0) + "%"
                          : "-",
                      TextTable::num(p.bufferDynamicW +
                                         p.bufferLeakageW, 1),
                      TextTable::num(p.laserW, 1),
                      TextTable::num(p.modulatorW, 1),
                      TextTable::num(p.receiverW, 1),
                      TextTable::num(p.crossbarW + p.linkW, 1),
                      TextTable::num(p.staticW, 1)});
        }
        std::printf("[%s done]\n", prof.name.c_str());
        std::fflush(stdout);
    }

    bench::emit(opts, "Fig 11: network power by configuration", t);
    std::printf("\nOptical4 mean power saving vs Electrical3: %.0f%% "
                "(paper headline: ~80%%)\n",
                100.0 * saving_sum / saving_count);
    return 0;
}
