/**
 * @file
 * Abstract cycle-driven network interface implemented by both the
 * Phastlane optical network and the electrical VC baseline.
 *
 * The driver protocol per cycle is:
 *   1. call inject()/nicHasSpace() to offer new traffic,
 *   2. call step() to advance the network one clock,
 *   3. read deliveries() for everything that completed during the
 *      step.
 */

#ifndef PHASTLANE_NET_NETWORK_HPP
#define PHASTLANE_NET_NETWORK_HPP

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "net/packet.hpp"

namespace phastlane {

/**
 * Common counters every network reports; network-specific counters
 * (drops, VC stalls, ...) live in the concrete classes.
 */
struct NetworkCounters {
    uint64_t messagesAccepted = 0;  ///< messages taken into a NIC
    uint64_t packetsInjected = 0;   ///< network packets entered (incl.
                                    ///< multicast branches & retries)
    uint64_t deliveries = 0;        ///< per-node deliveries completed
};

/**
 * A synchronous, cycle-driven packet network.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /** Number of endpoints. */
    virtual int nodeCount() const = 0;

    /** The mesh geometry (both networks are 2D meshes). */
    virtual const MeshTopology &mesh() const = 0;

    /** Current cycle (number of completed step() calls). */
    virtual Cycle now() const = 0;

    /** True when node @p n 's NIC can accept another message now. */
    virtual bool nicHasSpace(NodeId n) const = 0;

    /**
     * Offer a message to its source NIC. Returns false (and leaves the
     * network unchanged) when the NIC is full.
     */
    virtual bool inject(const Packet &pkt) = 0;

    /** Advance one clock cycle. */
    virtual void step() = 0;

    /** Deliveries completed during the most recent step(). */
    virtual const std::vector<Delivery> &deliveries() const = 0;

    /** Messages accepted but not yet fully delivered. */
    virtual uint64_t inFlight() const = 0;

    /** Common counters. */
    virtual const NetworkCounters &counters() const = 0;
};

} // namespace phastlane

#endif // PHASTLANE_NET_NETWORK_HPP
