# Empty dependencies file for test_core_router.
# This may be replaced when dependencies are built.
