/**
 * @file
 * The named network configurations of the paper's evaluation (Section
 * 5): Optical4 / Optical5 / Optical8 (pessimistic / average /
 * optimistic scaling hop limits), Optical4B32 / Optical4B64 /
 * Optical4IB (buffer-size variants), and Electrical2 / Electrical3
 * (2- and 3-cycle baseline routers). Each configuration knows how to
 * build its network and evaluate its power model.
 */

#ifndef PHASTLANE_SIM_CONFIGS_HPP
#define PHASTLANE_SIM_CONFIGS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "power/energy_params.hpp"

namespace phastlane::sim {

/**
 * One evaluatable network configuration.
 */
struct NetConfig {
    std::string name;

    /** True for Phastlane configurations. */
    bool optical = false;

    /** Build a fresh network seeded with @p seed. */
    std::function<std::unique_ptr<Network>(uint64_t seed)> make;

    /**
     * Evaluate the configuration's power model over @p cycles of the
     * given (just-run) network's event counters.
     */
    std::function<power::PowerBreakdown(const Network &net,
                                        uint64_t cycles)>
        power;
};

/** Build a configuration by its paper name; fatal() when unknown. */
NetConfig makeConfig(const std::string &name);

/** The full Section 5 configuration list, in the paper's order. */
std::vector<NetConfig> standardConfigs();

/** The Fig 9 subset: Optical4/5/8 and Electrical2/3. */
std::vector<NetConfig> fig9Configs();

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_CONFIGS_HPP
