/**
 * @file
 * InvariantChecker tests: clean runs of the optimized network must
 * produce zero violations across quiet, saturated and drop-heavy
 * regimes, and the checker must actually fire on manufactured
 * violations (a checker that cannot fail verifies nothing).
 */

#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "traffic/patterns.hpp"

namespace phastlane::check {
namespace {

/** Drive a network under the checker with Bernoulli traffic and
 *  drain; returns the checker's violation count. */
size_t
runChecked(core::PhastlaneParams p, double rate, double bcast,
           Cycle cycles, uint64_t seed)
{
    core::PhastlaneNetwork net(p);
    InvariantChecker checker(net, /*abort_on_violation=*/false);
    net.setObserver(&checker);
    Rng rng(seed);
    PacketId id = 1;
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (!rng.bernoulli(rate))
                continue;
            Packet k;
            k.id = id++;
            k.src = n;
            k.createdAt = c;
            if (rng.bernoulli(bcast))
                k.broadcast = true;
            else
                k.dst = traffic::destination(
                    traffic::Pattern::UniformRandom, n, net.mesh(),
                    rng);
            if (net.nicHasSpace(n))
                net.inject(k);
        }
        net.step();
    }
    // Drain until the buffers clear too: the holder slot of the last
    // success is only released by the next cycle's outcome resolution.
    int guard = 0;
    while ((net.inFlight() > 0 || net.bufferedPackets() > 0 ||
            net.nicQueuedPackets() > 0) &&
           guard++ < 100000)
        net.step();
    checker.checkQuiescent();
    EXPECT_GT(checker.cyclesChecked(), cycles);
    for (const auto &v : checker.violations())
        ADD_FAILURE() << v;
    return checker.violations().size();
}

TEST(CheckInvariants, CleanOnLightUniformTraffic)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    EXPECT_EQ(runChecked(p, 0.10, 0.10, 200, 11), 0u);
}

TEST(CheckInvariants, CleanUnderDropStorm)
{
    // Depth-1 buffers with broadcasts: drops, return signals and
    // retransmissions every few cycles.
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 1;
    EXPECT_EQ(runChecked(p, 0.30, 0.30, 200, 12), 0u);
}

TEST(CheckInvariants, CleanOn8x8Saturated)
{
    core::PhastlaneParams p;
    EXPECT_EQ(runChecked(p, 0.40, 0.10, 150, 13), 0u);
}

TEST(CheckInvariants, CleanWithSharedPoolAndOldestFirst)
{
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.routerBufferEntries = 2;
    p.sharedBufferPool = true;
    p.bufferArbitration = core::BufferArbitration::OldestFirst;
    EXPECT_EQ(runChecked(p, 0.25, 0.15, 200, 14), 0u);
}

TEST(CheckInvariants, CleanOnGlobalPriorityWavefront)
{
    // No reference model exists for this ablation; the invariant
    // checker is its only net, so it must hold there too.
    core::PhastlaneParams p;
    p.meshWidth = 4;
    p.meshHeight = 4;
    p.wavefront = core::WavefrontModel::GlobalPriority;
    EXPECT_EQ(runChecked(p, 0.20, 0.10, 200, 15), 0u);
}

TEST(CheckInvariants, DetectsDuplicateDelivery)
{
    core::PhastlaneParams p;
    core::PhastlaneNetwork net(p);
    InvariantChecker checker(net, /*abort_on_violation=*/false);
    Packet k;
    k.id = 7;
    checker.onAccept(k, /*branches=*/1, /*delivery_units=*/2);
    Delivery d;
    d.packet.id = 7;
    d.node = 3;
    checker.onDeliver(d);
    ASSERT_TRUE(checker.ok());
    checker.onDeliver(d);
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.violations().front().find("duplicate"),
              std::string::npos);
}

TEST(CheckInvariants, DetectsHopLimitOverrun)
{
    core::PhastlaneParams p; // maxHopsPerCycle = 4
    core::PhastlaneNetwork net(p);
    InvariantChecker checker(net, /*abort_on_violation=*/false);
    core::OpticalPacket pkt;
    pkt.branchId = 1;
    checker.onLaunch(pkt, 0, Port::East, 0);
    for (int i = 0; i < 4; ++i)
        checker.onPass(pkt, static_cast<NodeId>(i + 1));
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.violations().front().find("per-cycle limit"),
              std::string::npos);
}

TEST(CheckInvariants, DetectsUnquiescedNetwork)
{
    core::PhastlaneParams p;
    core::PhastlaneNetwork net(p);
    InvariantChecker checker(net, /*abort_on_violation=*/false);
    net.setObserver(&checker);
    Packet k;
    k.id = 1;
    k.src = 0;
    k.dst = 5;
    ASSERT_TRUE(net.inject(k));
    checker.checkQuiescent(); // one message still in flight
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.violations().front().find("not quiescent"),
              std::string::npos);
}

TEST(CheckInvariants, AbortModePanicsOnViolation)
{
    core::PhastlaneParams p;
    core::PhastlaneNetwork net(p);
    InvariantChecker checker(net, /*abort_on_violation=*/true);
    Packet k;
    k.id = 7;
    checker.onAccept(k, /*branches=*/1, /*delivery_units=*/2);
    Delivery d;
    d.packet.id = 7;
    d.node = 3;
    checker.onDeliver(d);
    EXPECT_DEATH(checker.onDeliver(d), "duplicate");
}

} // namespace
} // namespace phastlane::check
