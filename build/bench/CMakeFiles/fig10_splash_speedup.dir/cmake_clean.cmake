file(REMOVE_RECURSE
  "CMakeFiles/fig10_splash_speedup.dir/fig10_splash_speedup.cpp.o"
  "CMakeFiles/fig10_splash_speedup.dir/fig10_splash_speedup.cpp.o.d"
  "fig10_splash_speedup"
  "fig10_splash_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_splash_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
