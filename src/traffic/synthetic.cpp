#include "traffic/synthetic.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::traffic {

SyntheticDriver::SyntheticDriver(Network &net,
                                 const SyntheticConfig &cfg)
    : net_(net),
      cfg_(cfg),
      rng_(cfg.seed),
      sourceQueues_(static_cast<size_t>(net.nodeCount()))
{
    if (cfg_.injectionRate < 0.0 || cfg_.injectionRate > 1.0)
        fatal("injection rate must be in [0, 1]");
    if (cfg_.patternOpts.hotspotFraction < 0.0 ||
        cfg_.patternOpts.hotspotFraction > 1.0)
        fatal("hotspot fraction must be in [0, 1]");
    if (cfg_.patternOpts.hotspotNode != kInvalidNode &&
        !net.mesh().valid(cfg_.patternOpts.hotspotNode))
        fatal("hotspot node %d out of range",
              cfg_.patternOpts.hotspotNode);
    if (cfg_.adversarial.mix == AdversarialMix::Tenants &&
        cfg_.adversarial.tenantCount < 1)
        fatal("tenant mix requires tenantCount >= 1");
    if (cfg_.adversarial.mix == AdversarialMix::ElephantMice &&
        (cfg_.adversarial.elephantFraction <= 0.0 ||
         cfg_.adversarial.elephantFraction > 1.0))
        fatal("elephant fraction must be in (0, 1]");
}

void
SyntheticDriver::generate(Cycle now)
{
    const bool measuring = now >= measureStart_ && now < measureEnd_;
    for (NodeId n = 0; n < net_.nodeCount(); ++n) {
        // One bernoulli draw per node per cycle regardless of the
        // mix, so AdversarialMix::None is draw-for-draw identical to
        // a run without the adversarial layer.
        const double rate = std::min(
            1.0, cfg_.injectionRate *
                     rateScale(cfg_.adversarial, n, net_.nodeCount()));
        if (!rng_.bernoulli(rate))
            continue;
        Packet pkt;
        pkt.id = nextPacketId_++;
        pkt.src = n;
        pkt.kind = MessageKind::Synthetic;
        pkt.createdAt = now;
        if (cfg_.broadcastFraction > 0.0 &&
            rng_.bernoulli(cfg_.broadcastFraction)) {
            pkt.broadcast = true;
        } else {
            const NodeId pinned =
                mixDestination(cfg_.adversarial, n, net_.mesh());
            pkt.dst = pinned != kInvalidNode
                          ? pinned
                          : destination(cfg_.pattern, n,
                                        // Patterns only need geometry.
                                        net_.mesh(), rng_,
                                        cfg_.patternOpts);
        }
        sourceQueues_[static_cast<size_t>(n)].push_back(pkt);
        if (measuring)
            ++offeredMeasured_;
    }
}

void
SyntheticDriver::pumpSourceQueues()
{
    for (auto &q : sourceQueues_) {
        while (!q.empty() && net_.inject(q.front()))
            q.pop_front();
    }
}

void
SyntheticDriver::harvest(bool measuring)
{
    for (const auto &d : net_.deliveries()) {
        if (!measuring)
            continue;
        if (d.packet.createdAt < measureStart_ ||
            d.packet.createdAt >= measureEnd_) {
            continue;
        }
        const double lat =
            static_cast<double>(d.at - d.packet.createdAt);
        const double net_lat =
            static_cast<double>(d.at - d.injectedAt);
        latency_.add(lat);
        netLatency_.add(net_lat);
        latencyHist_.add(lat);
        ++measuredDeliveries_;
    }
}

void
SyntheticDriver::begin()
{
    PL_ASSERT(phase_ == Phase::Idle, "begin() called twice");
    measureStart_ = net_.now() + cfg_.warmupCycles;
    measureEnd_ = measureStart_ + cfg_.measureCycles;
    backlogLimit_ = static_cast<uint64_t>(net_.nodeCount()) * 200;
    phase_ = Phase::Measure;
    if (net_.now() >= measureEnd_) {
        // Degenerate zero-cycle window: straight to drain, as the
        // serial loop's entry condition would do.
        phase_ = Phase::Drain;
        drainDeadline_ = net_.now() + cfg_.maxDrainCycles;
    }
}

bool
SyntheticDriver::drainIdle() const
{
    if (net_.inFlight() != 0)
        return false;
    for (const auto &q : sourceQueues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

bool
SyntheticDriver::done() const
{
    if (phase_ == Phase::Done)
        return true;
    if (phase_ == Phase::Drain)
        return net_.now() >= drainDeadline_ || drainIdle();
    return false;
}

void
SyntheticDriver::preStep()
{
    if (phase_ == Phase::Measure)
        generate(net_.now());
    pumpSourceQueues();
}

void
SyntheticDriver::postStep()
{
    harvest(phase_ == Phase::Measure
                ? net_.now() - 1 >= measureStart_
                : true);
    if (phase_ != Phase::Measure)
        return;
    uint64_t backlog = 0;
    for (const auto &q : sourceQueues_)
        backlog += q.size();
    if (backlog > backlogLimit_) {
        // Source queues exploding: declare saturation and skip the
        // drain entirely, as the serial loop does.
        saturated_ = true;
        phase_ = Phase::Done;
        return;
    }
    if (net_.now() >= measureEnd_) {
        phase_ = Phase::Drain;
        drainDeadline_ = net_.now() + cfg_.maxDrainCycles;
    }
}

SyntheticResult
SyntheticDriver::finish()
{
    // Drain that ended with traffic still in flight hit the deadline.
    if (phase_ == Phase::Drain && net_.inFlight() > 0)
        saturated_ = true;
    phase_ = Phase::Done;

    const int nodes = net_.nodeCount();
    SyntheticResult r;
    r.offeredRate = static_cast<double>(offeredMeasured_) /
                    (static_cast<double>(nodes) *
                     static_cast<double>(cfg_.measureCycles));
    r.acceptedRate = static_cast<double>(measuredDeliveries_) /
                     (static_cast<double>(nodes) *
                      static_cast<double>(cfg_.measureCycles));
    r.avgLatency = latency_.mean();
    r.avgNetLatency = netLatency_.mean();
    r.p99Latency = latencyHist_.quantile(0.99);
    r.measuredPackets = measuredDeliveries_;
    r.saturated = saturated_ || latency_.mean() > kSaturationLatency;
    return r;
}

SyntheticResult
SyntheticDriver::run()
{
    begin();
    while (!done()) {
        preStep();
        net_.step();
        postStep();
    }
    return finish();
}

} // namespace phastlane::traffic
