
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/coherence.cpp" "src/traffic/CMakeFiles/pltraffic.dir/coherence.cpp.o" "gcc" "src/traffic/CMakeFiles/pltraffic.dir/coherence.cpp.o.d"
  "/root/repo/src/traffic/patterns.cpp" "src/traffic/CMakeFiles/pltraffic.dir/patterns.cpp.o" "gcc" "src/traffic/CMakeFiles/pltraffic.dir/patterns.cpp.o.d"
  "/root/repo/src/traffic/splash.cpp" "src/traffic/CMakeFiles/pltraffic.dir/splash.cpp.o" "gcc" "src/traffic/CMakeFiles/pltraffic.dir/splash.cpp.o.d"
  "/root/repo/src/traffic/synthetic.cpp" "src/traffic/CMakeFiles/pltraffic.dir/synthetic.cpp.o" "gcc" "src/traffic/CMakeFiles/pltraffic.dir/synthetic.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/pltraffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/pltraffic.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/plnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
