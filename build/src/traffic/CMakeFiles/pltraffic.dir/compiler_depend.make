# Empty compiler generated dependencies file for pltraffic.
# This may be replaced when dependencies are built.
