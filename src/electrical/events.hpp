/**
 * @file
 * Event counters of the electrical baseline consumed by the power
 * model.
 */

#ifndef PHASTLANE_ELECTRICAL_EVENTS_HPP
#define PHASTLANE_ELECTRICAL_EVENTS_HPP

#include <cstdint>

namespace phastlane::electrical {

/** Cumulative activity counters (whole-network totals). */
struct ElectricalEvents {
    uint64_t bufferWrites = 0;    ///< flit written into a VC buffer
    uint64_t bufferReads = 0;     ///< flit read out on departure
    uint64_t xbarTraversals = 0;  ///< crossbar passes
    uint64_t linkTraversals = 0;  ///< inter-router link flits
    uint64_t vaGrants = 0;        ///< VC allocations granted
    uint64_t saGrants = 0;        ///< switch allocations granted
    uint64_t ejections = 0;       ///< local deliveries
    uint64_t treeLookups = 0;     ///< VCTM table lookups
    uint64_t routerCycles = 0;    ///< router-cycles (leakage)
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_EVENTS_HPP
