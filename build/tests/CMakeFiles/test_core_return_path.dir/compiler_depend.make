# Empty compiler generated dependencies file for test_core_return_path.
# This may be replaced when dependencies are built.
