file(REMOVE_RECURSE
  "CMakeFiles/test_optical_timing.dir/test_optical_timing.cpp.o"
  "CMakeFiles/test_optical_timing.dir/test_optical_timing.cpp.o.d"
  "test_optical_timing"
  "test_optical_timing.pdb"
  "test_optical_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
