/**
 * @file
 * Per-router heatmap snapshots (DESIGN.md §8): cumulative per-router
 * activity (drops, turns lost to blocking, interim accepts, launches)
 * plus instantaneous buffer depth, sampled at a configurable cycle
 * interval and dumped as CSV or JSON for offline congestion analysis.
 */

#ifndef PHASTLANE_OBS_HEATMAP_HPP
#define PHASTLANE_OBS_HEATMAP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace phastlane::obs {

/** One router's state within a snapshot. Counter fields are
 *  cumulative since the start of the run; depth is instantaneous. */
struct RouterCell {
    uint32_t bufferDepth = 0; ///< packets held across the five queues
    uint64_t drops = 0;
    uint64_t turnsLost = 0; ///< buffered after losing a port claim
    uint64_t interimAccepts = 0;
    uint64_t launches = 0;
};

/** All routers at one sample cycle. */
struct HeatmapSnapshot {
    Cycle cycle = 0;
    std::vector<RouterCell> cells;
};

/**
 * Accumulates per-router counters (fixed arrays, no allocation per
 * event) and materializes snapshots on demand.
 */
class HeatmapRecorder
{
  public:
    explicit HeatmapRecorder(const MeshTopology &mesh);

    void addDrop(NodeId router) { ++live_[idx(router)].drops; }
    void addTurnLost(NodeId router)
    {
        ++live_[idx(router)].turnsLost;
    }
    void addInterim(NodeId router)
    {
        ++live_[idx(router)].interimAccepts;
    }
    void addLaunch(NodeId router) { ++live_[idx(router)].launches; }

    /**
     * Record a snapshot at @p cycle; @p depth_of yields each router's
     * current buffer occupancy.
     */
    template <typename DepthFn>
    void snapshot(Cycle cycle, DepthFn &&depth_of)
    {
        HeatmapSnapshot s;
        s.cycle = cycle;
        s.cells = live_;
        for (size_t n = 0; n < s.cells.size(); ++n) {
            s.cells[n].bufferDepth = static_cast<uint32_t>(
                depth_of(static_cast<NodeId>(n)));
        }
        snapshots_.push_back(std::move(s));
    }

    const std::vector<HeatmapSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /** Live (cumulative) per-router cells, depth fields unset. */
    const std::vector<RouterCell> &live() const { return live_; }

    /** "cycle,router,x,y,depth,drops,turns_lost,interim,launches". */
    std::string toCsv() const;

    /** JSON array of snapshots (same fields as the CSV). */
    std::string toJson() const;

    void writeCsv(const std::string &path) const;
    void writeJson(const std::string &path) const;

  private:
    size_t idx(NodeId n) const { return static_cast<size_t>(n); }

    MeshTopology mesh_;
    std::vector<RouterCell> live_;
    std::vector<HeatmapSnapshot> snapshots_;
};

} // namespace phastlane::obs

#endif // PHASTLANE_OBS_HEATMAP_HPP
