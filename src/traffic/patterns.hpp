/**
 * @file
 * Synthetic traffic patterns (paper Fig 9 uses Bit Complement, Bit
 * Reverse, Shuffle and Transpose; Uniform, Tornado, Neighbor and
 * Hotspot are provided for completeness).
 *
 * The bit-permutation patterns operate on the log2(N)-bit node index;
 * Transpose and Tornado operate on mesh coordinates.
 */

#ifndef PHASTLANE_TRAFFIC_PATTERNS_HPP
#define PHASTLANE_TRAFFIC_PATTERNS_HPP

#include <string>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace phastlane::traffic {

/** Synthetic destination pattern. */
enum class Pattern {
    UniformRandom,
    BitComplement,
    BitReverse,
    Shuffle,
    Transpose,
    Tornado,
    Neighbor,
    Hotspot,
};

/** Display name ("bitcomp", "transpose", ...). */
const char *patternName(Pattern p);

/** Parse a pattern name; fatal() on unknown names. */
Pattern parsePattern(const std::string &name);

/**
 * Tunables for the randomized patterns. Only Hotspot reads these
 * today; the defaults reproduce the historical "20% to the mesh
 * center" behavior (with the selection bias fixed, see below).
 */
struct PatternOptions {
    /** Fraction of a non-hot source's packets aimed at the hot node. */
    double hotspotFraction = 0.2;

    /** The hot node; kInvalidNode selects the mesh center. */
    NodeId hotspotNode = kInvalidNode;
};

/**
 * Stateless destination function for deterministic patterns; for
 * UniformRandom/Hotspot the RNG picks the destination. Self-addressed
 * results are remapped to (self+1) mod N for deterministic patterns
 * whose permutation maps a node to itself, and re-drawn for random
 * patterns.
 *
 * Hotspot: with probability hotspotFraction the destination is the
 * hot node; otherwise it is uniform over the remaining nodes
 * (excluding both the source and the hot node, so the realized hot
 * fraction equals the nominal one — the uniform remainder used to be
 * able to re-select the hot node, inflating it by (1-f)/(n-1)).
 */
NodeId destination(Pattern p, NodeId src, const MeshTopology &mesh,
                   Rng &rng, const PatternOptions &opts = {});

/** True when @p p needs a power-of-two node count. */
bool needsPowerOfTwo(Pattern p);

/**
 * Validate a pattern/mesh combination upfront; returns a non-empty
 * error message when the pattern cannot run on this mesh (transpose
 * on a non-square mesh; bit-permutation patterns on a
 * non-power-of-two node count). CLIs call this before running so a
 * bad flag combination is a clean error, not a mid-run abort.
 */
std::string validatePattern(Pattern p, const MeshTopology &mesh);

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_PATTERNS_HPP
