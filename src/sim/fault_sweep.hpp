/**
 * @file
 * Fault-rate sweep (DESIGN.md §10.4): run the Phastlane network at a
 * fixed offered load while one injected-fault probability sweeps a
 * grid, and record how delivery, retransmission, duplicate
 * suppression, and loss respond — with or without the end-to-end
 * reliability layer (core::ReliableNic).
 *
 * Points are independent simulations parallelised with
 * sim::parallelFor; every point derives its fault and traffic seeds
 * from the campaign seed and the point index, so the sweep is
 * bit-identical at any thread count.
 */

#ifndef PHASTLANE_SIM_FAULT_SWEEP_HPP
#define PHASTLANE_SIM_FAULT_SWEEP_HPP

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/events.hpp"
#include "core/params.hpp"
#include "core/reliability.hpp"
#include "traffic/adversarial.hpp"

namespace phastlane::sim {

/** Configuration of one fault-rate sweep campaign. */
struct FaultSweepConfig {
    /** Base network parameters; the swept rate and the per-point
     *  faultSeed are overwritten for each point. */
    core::PhastlaneParams params;

    /** FaultInjection rate field to sweep (see faultRateFields()). */
    std::string sweepField = "dropSignalLossRate";

    /** Fault probabilities to test. */
    std::vector<double> rates;

    double injectionRate = 0.05;   ///< packets/node/cycle offered
    double broadcastFraction = 0.1;

    /** Adversarial source mix for the generated traffic; None keeps
     *  the historical draw sequence bit-identical. Admission control
     *  rides along in params (params.admission et al.). */
    traffic::AdversarialConfig adversarial;
    Cycle measureCycles = 2000;    ///< cycles of traffic generation
    Cycle maxDrainCycles = 20000;  ///< post-generation drain budget
    uint64_t seed = 42;

    /** Simulation threads: 0 = auto (PL_THREADS env, else hardware
     *  concurrency), 1 = serial. Bit-identical at any count. */
    int threads = 0;

    /** Batched lockstep backend (DESIGN.md §13): gang size for
     *  stepping the points' networks through one NetworkBatch when
     *  the sweep runs serially (resolved threads == 1) and the params
     *  are batch-eligible. 0 = auto, 1 = disable, > 1 = explicit
     *  gang size. Results are bit-identical to the serial path. */
    int batch = 0;

    /** Wrap the network in a core::ReliableNic. The default schedule
     *  (128-cycle base timeout, 6 retries, shift cap 5) bounds a
     *  message's worst-case residence to ~12k cycles, inside the
     *  default drain budget. */
    bool reliable = true;
    core::ReliableNicOptions reliableOpts{128, 6, 5};
};

/** Results of one sweep point. */
struct FaultSweepPoint {
    double faultRate = 0.0;
    uint64_t messagesOffered = 0;
    uint64_t unitsExpected = 0;  ///< delivery units addressed
    uint64_t unitsDelivered = 0; ///< exactly-once deliveries observed
    uint64_t cycles = 0;         ///< total simulated cycles
    bool drained = false;        ///< reached quiescence in budget

    /** Raw network-side accounting. */
    uint64_t drops = 0;
    uint64_t retransmissions = 0;
    core::OpticalEvents events;

    /** End-to-end reliability stats (zero when reliable == false). */
    core::ReliableNicStats e2e;
};

/** The sweepable FaultInjection rate-field names. */
std::vector<std::string> faultRateFields();

/** Set FaultInjection field @p name to @p value; false if unknown. */
bool setFaultRate(core::PhastlaneParams::FaultInjection &fi,
                  const std::string &name, double value);

/**
 * Apply the shared CLI fault flags (--fault-mis-turn,
 * --fault-missed-receive, --fault-signal-loss, --fault-corrupt,
 * --fault-router-fail, --fault-seed) onto @p faults. Returns true
 * when any flag was present; fatal() when a rate is outside [0, 1].
 */
bool applyFaultFlags(const Config &args,
                     core::PhastlaneParams::FaultInjection &faults);

/** The flag names applyFaultFlags() consumes (for requireKnown). */
std::vector<std::string> faultFlagNames();

/** Default fault-probability grid: 0 plus a log-ish ramp to 0.5. */
std::vector<double> defaultFaultGrid();

/** Run the sweep; one point per configured rate, in rate order. */
std::vector<FaultSweepPoint> runFaultSweep(const FaultSweepConfig &cfg);

/** Render the sweep as a JSON document. */
std::string faultSweepToJson(const FaultSweepConfig &cfg,
                             const std::vector<FaultSweepPoint> &pts);

/** Write faultSweepToJson() to @p path; fatal() on I/O error. */
void writeFaultSweepJson(const FaultSweepConfig &cfg,
                         const std::vector<FaultSweepPoint> &pts,
                         const std::string &path);

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_FAULT_SWEEP_HPP
