#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace phastlane {

void
RunningStat::add(double x)
{
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bin_width, size_t bin_count)
    : binWidth_(bin_width), bins_(bin_count, 0)
{
    if (bin_width <= 0.0 || bin_count == 0)
        fatal("histogram needs positive bin width and count");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0.0)
        x = 0.0;
    if (std::isfinite(x) && x > maxObserved_)
        maxObserved_ = x;
    // Route NaN, +inf, and values at or above the top edge to the
    // overflow bin BEFORE the float->size_t cast: converting a value
    // outside size_t's range (or NaN) is undefined behavior, not
    // merely a large index.
    const double top = binWidth_ * static_cast<double>(bins_.size());
    if (!(x < top)) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<size_t>(x / binWidth_);
    // x < top does not guarantee x / binWidth_ < size() after
    // rounding; clamp the last representable bin.
    if (idx >= bins_.size())
        idx = bins_.size() - 1;
    ++bins_[idx];
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    maxObserved_ = 0.0;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (size_t i = 0; i < bins_.size(); ++i) {
        const double next = cum + static_cast<double>(bins_[i]);
        if (next >= target && bins_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(bins_[i]);
            return (static_cast<double>(i) + frac) * binWidth_;
        }
        cum = next;
    }
    // Target falls in the overflow bin. Interpolate between the top
    // edge and the largest finite sample (non-finite samples count
    // toward the overflow mass but cannot stretch the scale), so tail
    // quantiles no longer collapse to the bin's lower edge.
    const double top = binWidth_ * static_cast<double>(bins_.size());
    const double hi = std::max(top, maxObserved_);
    if (overflow_ == 0)
        return hi;
    const double frac =
        std::clamp((target - cum) / static_cast<double>(overflow_),
                   0.0, 1.0);
    return top + frac * (hi - top);
}

} // namespace phastlane
