/**
 * @file
 * Per-packet event tracing (DESIGN.md §8): fixed-size records pushed
 * into a preallocated ring buffer on the simulation hot path, and an
 * offline exporter that renders the ring as Chrome trace_event JSON
 * loadable in chrome://tracing and Perfetto.
 *
 * Timeline mapping: one "thread" row per router (tid = router id,
 * 1 cycle = 1 us), so a run can be scrubbed spatially. Each optical
 * flight of a branch becomes a nestable async span (id = branchId)
 * opened at launch and closed at its terminal event (deliver/final,
 * buffered, or drop), with taps and pass-throughs as nested instants.
 * Per-kind totals are counted independently of the ring, so summary
 * counts stay exact even if the ring wraps and sheds old records.
 */

#ifndef PHASTLANE_OBS_TRACE_HPP
#define PHASTLANE_OBS_TRACE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace phastlane::obs {

/** Kind of one trace record (the packet lifecycle of DESIGN.md §8). */
enum class TraceEvent : uint8_t {
    Inject,        ///< message accepted into its source NIC
    Launch,        ///< first optical launch of a buffer entry
    Retransmit,    ///< re-launch after a drop (attempts > 0)
    Pass,          ///< pass-through claim won at a router
    Tap,           ///< multicast power tap served
    Deliver,       ///< a delivery completed
    BufferBlocked, ///< buffered after losing a port claim
    InterimAccept, ///< buffered as an interim-node handoff
    Drop,          ///< dropped (buffer full)
    DropSignal,    ///< drop signal returned to the holder
    BranchFinal,   ///< branch terminated at its final router
    Sample,        ///< periodic in-flight/buffered counter sample
    Lost,          ///< delivery units lost to an injected fault
    Duplicate,     ///< tap suppressed as a duplicate (dedup watermark)
};

constexpr int kTraceEventKinds = 14;

/** Name of a trace event kind (stable; used in the JSON export). */
const char *traceEventName(TraceEvent e);

/** One fixed-size trace record. */
struct TraceRecord {
    Cycle cycle = 0;
    PacketId packet = 0;  ///< message id (Sample: in-flight units)
    uint64_t branch = 0;  ///< branch id (Sample: buffered packets)
    NodeId node = kInvalidNode; ///< router/node of the event
    int32_t aux = 0;      ///< kind-specific (attempts, hops, queue…)
    TraceEvent kind = TraceEvent::Inject;
};

/**
 * Preallocated ring of trace records. push() is allocation-free;
 * once full, the oldest records are overwritten and counted in
 * shedRecords(). Per-kind totals cover the whole run regardless.
 */
class TraceRing
{
  public:
    /** @param capacity Maximum records retained (>= 1). */
    explicit TraceRing(size_t capacity = 1u << 20);

    void push(const TraceRecord &r)
    {
        ring_[head_] = r;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++shed_;
        ++kindCounts_[static_cast<size_t>(r.kind)];
    }

    size_t capacity() const { return ring_.size(); }
    size_t size() const { return size_; }

    /** Records overwritten after the ring filled. */
    uint64_t shedRecords() const { return shed_; }

    /** Whole-run total of records of @p kind (ring overflow safe). */
    uint64_t kindCount(TraceEvent kind) const
    {
        return kindCounts_[static_cast<size_t>(kind)];
    }

    /** Retained records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

  private:
    std::vector<TraceRecord> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
    uint64_t shed_ = 0;
    std::array<uint64_t, kTraceEventKinds> kindCounts_{};
};

/**
 * Render the ring as Chrome trace_event JSON ({"traceEvents": [...]}).
 * @p mesh labels the router rows. Returns the JSON text.
 */
std::string toChromeTrace(const TraceRing &ring,
                          const MeshTopology &mesh);

/** Write toChromeTrace() to @p path; fatal() on I/O error. */
void writeChromeTrace(const TraceRing &ring, const MeshTopology &mesh,
                      const std::string &path);

} // namespace phastlane::obs

#endif // PHASTLANE_OBS_TRACE_HPP
