#include "sim/sweep.hpp"

#include <algorithm>

namespace phastlane::sim {

std::vector<double>
defaultRateGrid()
{
    std::vector<double> rates;
    for (double r = 0.01; r < 0.10; r += 0.01)
        rates.push_back(r);
    for (double r = 0.10; r <= 0.501; r += 0.025)
        rates.push_back(r);
    return rates;
}

std::vector<SweepPoint>
runSweep(const NetConfig &config, const SweepConfig &sweep)
{
    std::vector<SweepPoint> points;
    for (double rate : sweep.rates) {
        auto net = config.make(sweep.seed);
        traffic::SyntheticConfig cfg;
        cfg.pattern = sweep.pattern;
        cfg.injectionRate = rate;
        cfg.warmupCycles = sweep.warmupCycles;
        cfg.measureCycles = sweep.measureCycles;
        cfg.seed = sweep.seed;
        traffic::SyntheticDriver driver(*net, cfg);
        SweepPoint pt;
        pt.injectionRate = rate;
        pt.result = driver.run();
        points.push_back(pt);
        if (sweep.stopAtSaturation && pt.result.saturated)
            break;
    }
    return points;
}

double
saturationThroughput(const std::vector<SweepPoint> &points)
{
    double best = 0.0;
    for (const auto &pt : points)
        best = std::max(best, pt.result.acceptedRate);
    return best;
}

} // namespace phastlane::sim
