/**
 * @file
 * Router area model (paper Fig 8).
 *
 * The WDM degree trades two linear effects against each other:
 *
 *  - more wavelengths -> fewer waveguides and turn resonators, so the
 *    internal crossing region shrinks linearly;
 *  - more wavelengths -> more resonator/receiver pairs attached to
 *    each port waveguide, so the input ports lengthen linearly.
 *
 * The router edge is the sum of port length and internal region; its
 * square is the optical die area per router, which must not exceed the
 * processor-die node area (3.5 mm^2 for a single-core node). Under the
 * calibrated pitches the sweet spot is 64 wavelengths, with 32 and 128
 * wavelengths exceeding the single-core budget but fitting dual/quad
 * nodes, as in the paper.
 */

#ifndef PHASTLANE_OPTICAL_AREA_MODEL_HPP
#define PHASTLANE_OPTICAL_AREA_MODEL_HPP

#include "optical/devices.hpp"

namespace phastlane::optical {

/** Area breakdown for one wavelength configuration. */
struct RouterArea {
    int wavelengths = 0;
    int waveguides = 0;
    double portLengthMm = 0.0;     ///< per-port resonator chain
    double internalLengthMm = 0.0; ///< crossing region edge
    double edgeMm = 0.0;           ///< router edge (port + internal)
    double areaMm2 = 0.0;          ///< edge squared
};

/**
 * Analytic router area model.
 */
class AreaModel
{
  public:
    explicit AreaModel(const PacketFormat &format = {},
                       const WaveguideConstants &wg = {},
                       const ChipGeometry &geometry = {});

    /** Area breakdown at the given WDM degree. */
    RouterArea evaluate(int wavelengths) const;

    /** True when the router fits a node of @p node_area_mm2. */
    bool fitsNode(int wavelengths, double node_area_mm2) const;

    /**
     * The WDM degree among @p candidates with the smallest area (the
     * "sweet spot"; 64 for the paper's packet format).
     */
    int sweetSpot(const int *candidates, int count) const;

  private:
    PacketFormat format_;
    WaveguideConstants wg_;
    ChipGeometry geometry_;
};

} // namespace phastlane::optical

#endif // PHASTLANE_OPTICAL_AREA_MODEL_HPP
