/**
 * @file
 * The electrical baseline network: an 8x8 mesh of input-queued VC
 * routers with iSLIP allocation, credit flow control, and Virtual
 * Circuit Tree Multicasting for broadcasts (paper Table 2 and Section
 * 4).
 *
 * Cycle structure of step():
 *   1. flits scheduled on links arrive into input VCs (route compute /
 *      tree lookup happens on arrival, modeling lookahead routing);
 *   2. ejections deliver (one cycle after arrival, bypassing the
 *      crossbar) and pure-ejection VCs free, returning credits;
 *   3. NICs inject into free injection-port VCs;
 *   4. VC allocation, then switch allocation (same-cycle speculation);
 *   5. switch winners traverse the crossbar and then the one-cycle
 *      channel (arriving two cycles after the switch grant), and
 *      credits return upstream.
 */

#ifndef PHASTLANE_ELECTRICAL_NETWORK_HPP
#define PHASTLANE_ELECTRICAL_NETWORK_HPP

#include <vector>

#include "common/geometry.hpp"
#include "electrical/events.hpp"
#include "electrical/nic.hpp"
#include "electrical/params.hpp"
#include "electrical/router.hpp"
#include "net/network.hpp"

namespace phastlane::electrical {

/** Baseline-specific statistics. */
struct ElectricalCounters {
    uint64_t treeMulticasts = 0; ///< broadcasts sent via a ready tree
    uint64_t setupUnicasts = 0;  ///< tree-building unicast clones
};

/**
 * The electrical baseline (Network implementation).
 */
class ElectricalNetwork : public Network
{
  public:
    explicit ElectricalNetwork(const ElectricalParams &params);

    int nodeCount() const override { return mesh_.nodeCount(); }
    Cycle now() const override { return cycle_; }
    bool nicHasSpace(NodeId n) const override;
    bool inject(const Packet &pkt) override;
    void step() override;
    const std::vector<Delivery> &deliveries() const override
    {
        return deliveries_;
    }
    uint64_t inFlight() const override { return outstanding_; }
    const NetworkCounters &counters() const override
    {
        return counters_;
    }

    const ElectricalParams &params() const { return params_; }
    const MeshTopology &mesh() const override { return mesh_; }
    const ElectricalEvents &events() const { return events_; }
    const ElectricalCounters &electricalCounters() const
    {
        return el_;
    }

    /**
     * Cumulative flit traversals per (router, mesh output port),
     * indexed router * 4 + portIndex; feeds utilization reports.
     */
    const std::vector<uint64_t> &linkCounts() const
    {
        return linkCounts_;
    }

  private:
    /** A flit in transit on a link, due at `router` next cycle. */
    struct PendingArrival {
        NodeId router;
        Port port;
        int vc;
        EFlit flit;
    };

    /** A local delivery and/or VC release due this cycle. */
    struct PendingEjection {
        NodeId router;
        Port port;
        int vc;
        bool deliver;
        bool release;
        EFlit flit;
    };

    void processArrival(const PendingArrival &a);
    void processEjection(const PendingEjection &e);
    void injectFlit(NodeId n, EFlit flit);
    void handleSaWinners(NodeId r);
    void releaseInputVc(NodeId r, Port p, int vc);
    void deliver(const EFlit &flit, NodeId node);

    ElectricalParams params_;
    MeshTopology mesh_;
    Cycle cycle_ = 0;

    std::vector<ElectricalRouter> routers_;
    std::vector<ElectricalNic> nics_;

    std::vector<PendingArrival> arrivalsNow_;
    std::vector<PendingArrival> arrivalsNext_;
    std::vector<PendingArrival> arrivalsAfter_; ///< +1 channel cycle
    std::vector<PendingEjection> ejectionsNow_;
    std::vector<PendingEjection> ejectionsNext_;

    std::vector<Delivery> deliveries_;
    NetworkCounters counters_;
    ElectricalCounters el_;
    ElectricalEvents events_;
    uint64_t outstanding_ = 0;
    uint64_t nextFlitId_ = 1;
    Cycle lastProgress_ = 0;
    std::vector<uint64_t> linkCounts_;
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_NETWORK_HPP
