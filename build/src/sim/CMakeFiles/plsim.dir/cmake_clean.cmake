file(REMOVE_RECURSE
  "CMakeFiles/plsim.dir/configs.cpp.o"
  "CMakeFiles/plsim.dir/configs.cpp.o.d"
  "CMakeFiles/plsim.dir/experiment.cpp.o"
  "CMakeFiles/plsim.dir/experiment.cpp.o.d"
  "CMakeFiles/plsim.dir/metrics.cpp.o"
  "CMakeFiles/plsim.dir/metrics.cpp.o.d"
  "CMakeFiles/plsim.dir/report.cpp.o"
  "CMakeFiles/plsim.dir/report.cpp.o.d"
  "CMakeFiles/plsim.dir/sweep.cpp.o"
  "CMakeFiles/plsim.dir/sweep.cpp.o.d"
  "libplsim.a"
  "libplsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
