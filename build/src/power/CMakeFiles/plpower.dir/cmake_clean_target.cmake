file(REMOVE_RECURSE
  "libplpower.a"
)
