file(REMOVE_RECURSE
  "libploptical.a"
)
