/**
 * @file
 * Metrics registry for the observability layer (DESIGN.md §8):
 * named counters, gauges, and HDR-style histograms with a
 * deterministic merge so per-shard registries collected by the
 * parallel harnesses combine into the same totals at any thread
 * count.
 *
 * Hot-path discipline: handles (references) are resolved by name once
 * at attach time; recording an event afterwards touches fixed-size
 * storage only — no map lookups, no allocation (histogram buckets are
 * preallocated in the constructor).
 */

#ifndef PHASTLANE_OBS_METRICS_HPP
#define PHASTLANE_OBS_METRICS_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace phastlane::obs {

/** A monotonically increasing named event counter. */
class Counter
{
  public:
    void inc(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void merge(const Counter &other) { value_ += other.value_; }

  private:
    uint64_t value_ = 0;
};

/** A last-written instantaneous value (e.g. packets in flight). */
class Gauge
{
  public:
    void set(int64_t v)
    {
        value_ = v;
        if (v > max_)
            max_ = v;
    }
    int64_t value() const { return value_; }
    int64_t max() const { return max_; }

    /** Shard merge keeps the larger extreme and last value; gauges
     *  are instantaneous, so "sum" would be meaningless. */
    void merge(const Gauge &other)
    {
        if (other.max_ > max_)
            max_ = other.max_;
        value_ = other.value_;
    }

  private:
    int64_t value_ = 0;
    int64_t max_ = 0;
};

/**
 * HDR-style histogram of non-negative integer values: logarithmic
 * tiers (one per bit width) of kSubBuckets linear sub-buckets, so
 * relative error is bounded by 1/kSubBuckets at any magnitude while
 * storage stays fixed (64 x 16 buckets). Values below kSubBuckets
 * are recorded exactly.
 */
class HdrHistogram
{
  public:
    static constexpr int kSubBuckets = 16;
    static constexpr int kTiers = 60;

    HdrHistogram();

    void record(uint64_t value);
    void recordN(uint64_t value, uint64_t times);

    uint64_t count() const { return count_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const;

    /** Largest value v such that at least q * count samples are <= v
     *  (upper edge of the quantile's bucket); q in [0, 1]. */
    uint64_t quantile(double q) const;

    void merge(const HdrHistogram &other);

    /** Bucket index of @p value (exposed for tests). */
    static size_t bucketOf(uint64_t value);

    /** Upper inclusive edge of bucket @p b (exposed for tests). */
    static uint64_t bucketUpperEdge(size_t b);

    const std::vector<uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

/**
 * An ordered collection of named metrics. Lookup by name allocates
 * the metric on first use; the returned reference stays valid for the
 * registry's lifetime (deque-backed), so observers resolve their
 * handles once and record through them.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HdrHistogram &histogram(const std::string &name);

    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const HdrHistogram *findHistogram(const std::string &name) const;

    /**
     * Merge another registry into this one, metric by metric (union
     * of names). Merging shards in a fixed order (e.g. sweep-point
     * index) yields identical results at any thread count: counters
     * and histograms are commutative sums, gauges keep the shared
     * max.
     */
    void merge(const MetricsRegistry &other);

    /** Render as a JSON object (counters, gauges, histogram summary
     *  stats and percentiles). */
    std::string toJson() const;

    /** One "name,type,field,value" row per scalar, for spreadsheets. */
    std::string toCsv() const;

    /** Write toJson() / toCsv() to @p path; fatal() on I/O error. */
    void writeJson(const std::string &path) const;
    void writeCsv(const std::string &path) const;

    /** All registered names of each kind, in registration order. */
    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    std::vector<std::string> histogramNames() const;

  private:
    // deques keep references stable across growth; the maps give
    // name lookup at registration time only.
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<HdrHistogram> histograms_;
    std::map<std::string, size_t> counterIndex_;
    std::map<std::string, size_t> gaugeIndex_;
    std::map<std::string, size_t> histogramIndex_;
    std::vector<std::string> counterOrder_;
    std::vector<std::string> gaugeOrder_;
    std::vector<std::string> histogramOrder_;
};

} // namespace phastlane::obs

#endif // PHASTLANE_OBS_METRICS_HPP
