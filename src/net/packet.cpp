#include "net/packet.hpp"

namespace phastlane {

const char *
messageKindName(MessageKind k)
{
    switch (k) {
      case MessageKind::Request: return "request";
      case MessageKind::Response: return "response";
      case MessageKind::Invalidate: return "invalidate";
      case MessageKind::Writeback: return "writeback";
      case MessageKind::Synthetic: return "synthetic";
    }
    return "?";
}

int
Packet::deliveryCount(int node_count) const
{
    return broadcast ? node_count - 1 : 1;
}

} // namespace phastlane
