file(REMOVE_RECURSE
  "CMakeFiles/test_core_control.dir/test_core_control.cpp.o"
  "CMakeFiles/test_core_control.dir/test_core_control.cpp.o.d"
  "test_core_control"
  "test_core_control.pdb"
  "test_core_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
