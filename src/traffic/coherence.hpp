/**
 * @file
 * Closed-loop coherence workload driver.
 *
 * Replays a pre-generated per-node transaction stream (splash.hpp)
 * against a Network, modeling the snoopy protocol's self-throttling:
 * a node may have at most mshrLimit requests outstanding; each
 * broadcast request is answered by a unicast data response from its
 * home node after the home's service latency. The benchmark's
 * "network speedup" is the ratio of completion cycles between two
 * networks running the identical stream.
 */

#ifndef PHASTLANE_TRAFFIC_COHERENCE_HPP
#define PHASTLANE_TRAFFIC_COHERENCE_HPP

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "net/network.hpp"
#include "traffic/splash.hpp"

namespace phastlane::traffic {

/** Results of one closed-loop run. */
struct CoherenceResult {
    Cycle completionCycles = 0;
    uint64_t transactions = 0;
    uint64_t broadcasts = 0;
    uint64_t unicasts = 0;

    /**
     * Mean per-delivery latency (creation -> delivery over every
     * delivery of every message).
     */
    double avgLatency = 0.0;

    /**
     * Mean per-message network latency: creation -> last delivery of
     * the message (a broadcast completes when its 63rd copy lands).
     * "Network speedup" in Fig 10 is the ratio of this metric against
     * the Electrical3 baseline; the completion-cycle ratio is
     * reported alongside. This metric exposes both the latency
     * advantage at low load and the drop-retry tails under pressure.
     */
    double avgMessageLatency = 0.0;
    double avgRequestLatency = 0.0;  ///< request creation -> home
    double avgRoundTrip = 0.0;       ///< request creation -> response
    bool timedOut = false;
};

/**
 * Drives one network with one benchmark's streams.
 */
class CoherenceDriver
{
  public:
    /**
     * @param streams Pre-generated with generateStreams(); must have
     *        one stream per network node.
     * @param mshr_limit Outstanding-request cap per node.
     */
    CoherenceDriver(Network &net,
                    const std::vector<std::vector<Txn>> &streams,
                    int mshr_limit);

    /** Run to completion (or @p max_cycles). */
    CoherenceResult run(Cycle max_cycles = 20000000);

    // Step-wise interface, equivalent to run() but with the
    // net_.step() call in the caller's hands (MultiSim):
    //   begin(max_cycles);
    //   while (!done()) { preStep(); net.step(); postStep(); }
    //   result = finish();

    /** Arm the run deadline. Call once, before the first preStep(). */
    void begin(Cycle max_cycles = 20000000);
    /** True when every stream completed and drained, or the deadline
     *  passed. */
    bool done() const;
    /** Issue side of one cycle: release matured responses, issue
     *  transactions, pump send queues into the NIC. */
    void preStep();
    /** Harvest side of one cycle: process deliveries, schedule home
     *  responses, retire round trips. */
    void postStep();
    /** Build the result (call once, after done() turns true). */
    CoherenceResult finish();

    Network &network() { return net_; }

  private:
    struct NodeState {
        size_t next = 0;        ///< next stream index
        int outstanding = 0;    ///< requests awaiting responses
        Cycle readyAt = 0;      ///< next issue opportunity
        std::deque<Packet> sendQueue;
        /** Responses waiting out their service latency. */
        std::deque<std::pair<Cycle, Packet>> responseQueue;
    };

    /** In-flight request bookkeeping, keyed by tag. */
    struct PendingRequest {
        NodeId requester = kInvalidNode;
        NodeId home = kInvalidNode;
        Cycle serviceLatency = 0;
        Cycle createdAt = 0;
    };

    /** Per-message completion tracking (done at last delivery). */
    struct MsgTrack {
        int remaining;
        Cycle createdAt;
    };

    bool allDone() const;

    Network &net_;
    const std::vector<std::vector<Txn>> &streams_;
    int mshrLimit_;
    std::vector<NodeState> nodes_;
    std::unordered_map<uint64_t, PendingRequest> pending_;
    uint64_t nextTag_ = 1;
    uint64_t nextPacketId_ = 1;

    // Run-scoped state for the step-wise interface.
    CoherenceResult res_;
    RunningStat latency_;
    RunningStat msgLatency_;
    RunningStat reqLatency_;
    RunningStat roundTrip_;
    std::unordered_map<uint64_t, MsgTrack> openMsgs_;
    Cycle start_ = 0;
    Cycle deadline_ = 0;
    bool begun_ = false;

    /** Cap on queued-but-uninjected packets per node before issue
     *  stalls (models finite miss-queue depth beyond the NIC). */
    static constexpr size_t kSendQueueLimit = 8;
};

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_COHERENCE_HPP
