file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_splash.dir/test_traffic_splash.cpp.o"
  "CMakeFiles/test_traffic_splash.dir/test_traffic_splash.cpp.o.d"
  "test_traffic_splash"
  "test_traffic_splash.pdb"
  "test_traffic_splash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_splash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
