file(REMOVE_RECURSE
  "CMakeFiles/futurework_buffers.dir/futurework_buffers.cpp.o"
  "CMakeFiles/futurework_buffers.dir/futurework_buffers.cpp.o.d"
  "futurework_buffers"
  "futurework_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
