#include "obs/heatmap.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/log.hpp"

namespace phastlane::obs {

namespace {

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace

HeatmapRecorder::HeatmapRecorder(const MeshTopology &mesh)
    : mesh_(mesh),
      live_(static_cast<size_t>(mesh.nodeCount()))
{
}

std::string
HeatmapRecorder::toCsv() const
{
    std::string out =
        "cycle,router,x,y,depth,drops,turns_lost,interim,launches\n";
    for (const auto &s : snapshots_) {
        for (size_t n = 0; n < s.cells.size(); ++n) {
            const auto &c = s.cells[n];
            const Coord xy = mesh_.coordOf(static_cast<NodeId>(n));
            appendF(out,
                    "%" PRIu64 ",%zu,%d,%d,%u,%" PRIu64 ",%" PRIu64
                    ",%" PRIu64 ",%" PRIu64 "\n",
                    s.cycle, n, xy.x, xy.y, c.bufferDepth, c.drops,
                    c.turnsLost, c.interimAccepts, c.launches);
        }
    }
    return out;
}

std::string
HeatmapRecorder::toJson() const
{
    std::string out = "[";
    for (size_t i = 0; i < snapshots_.size(); ++i) {
        const auto &s = snapshots_[i];
        appendF(out, "%s\n {\"cycle\": %" PRIu64 ", \"routers\": [",
                i ? "," : "", s.cycle);
        for (size_t n = 0; n < s.cells.size(); ++n) {
            const auto &c = s.cells[n];
            appendF(out,
                    "%s\n  {\"router\": %zu, \"depth\": %u, "
                    "\"drops\": %" PRIu64 ", \"turns_lost\": %" PRIu64
                    ", \"interim\": %" PRIu64 ", \"launches\": %" PRIu64
                    "}",
                    n ? "," : "", n, c.bufferDepth, c.drops,
                    c.turnsLost, c.interimAccepts, c.launches);
        }
        out += "\n ]}";
    }
    out += "\n]\n";
    return out;
}

void
HeatmapRecorder::writeCsv(const std::string &path) const
{
    writeFile(path, toCsv());
}

void
HeatmapRecorder::writeJson(const std::string &path) const
{
    writeFile(path, toJson());
}

} // namespace phastlane::obs
