#include "core/return_path.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::core {

ReturnPathRegistry::ReturnPathRegistry(int node_count)
    : nodeCount_(node_count),
      latch_(static_cast<size_t>(node_count) * kMeshPorts, 0),
      used_(static_cast<size_t>(node_count) * kMeshPorts, 0)
{
}

size_t
ReturnPathRegistry::index(NodeId router, Port out) const
{
    PL_ASSERT(router >= 0 && router < nodeCount_, "bad router id");
    return static_cast<size_t>(router) * kMeshPorts + portIndex(out);
}

void
ReturnPathRegistry::beginCycle()
{
    // Stale epochs make every latch/claim entry read as empty; no
    // table fill needed.
    ++epoch_;
    claimed_.store(0, std::memory_order_relaxed);
    latched_.store(0, std::memory_order_relaxed);
}

void
ReturnPathRegistry::registerHop(NodeId router, Port in, Port out)
{
    PL_ASSERT(out != Port::Local, "return path needs a mesh exit port");
    uint64_t &slot = latch_[index(router, out)];
    // An output port carries one packet per cycle, so at most one
    // reverse connection can be latched per (router, out).
    PL_ASSERT((slot >> 3) != epoch_,
              "two packets latched the same return connection at "
              "router %d port %s", router, portName(out));
    slot = (epoch_ << 3) |
           static_cast<uint64_t>(portIndex(in) + 1);
    latched_.fetch_add(1, std::memory_order_relaxed);
}

int
ReturnPathRegistry::signalDrop(const ReturnHop *hops_arr, size_t count)
{
    // The signal flows from the dropping router back toward the
    // source, traversing each latched connection in reverse order.
    int hops = 0;
    for (size_t i = count; i-- > 0;) {
        const ReturnHop &h = hops_arr[i];
        const size_t idx = index(h.router, h.packetOut);
        PL_ASSERT(latch_[idx] ==
                      ((epoch_ << 3) | static_cast<uint64_t>(
                                           portIndex(h.packetIn) + 1)),
                  "drop signal found an unlatched return connection "
                  "at router %d", h.router);
        // Footnote 4: return paths of distinct packets cannot overlap
        // within a cycle.
        if (used_[idx] == epoch_) {
            panic("overlapping drop-signal return paths at router %d "
                  "port %s", h.router, portName(h.packetOut));
        }
        used_[idx] = epoch_;
        claimed_.fetch_add(1, std::memory_order_relaxed);
        ++hops;
    }
    // Plus the final link back into the source's receiver.
    return hops + 1;
}

} // namespace phastlane::core
