/**
 * @file
 * Figure 5: component delays of the critical paths (PP, PB, PA, PIA)
 * through the Phastlane router under the three scaling assumptions
 * and 32/64/128 wavelengths.
 */

#include "bench_util.hpp"
#include "optical/timing.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    TextTable t({"scaling", "lambda", "path", "rx ctl [ps]",
                 "drive 1 [ps]", "drive 2 [ps]",
                 "traverse/rx [ps]", "total [ps]"});
    for (Scaling s : {Scaling::Optimistic, Scaling::Average,
                      Scaling::Pessimistic}) {
        for (int wl : {32, 64, 128}) {
            RouterTimingModel m(s, wl);
            for (const CriticalPath &p :
                 {m.packetPass(), m.packetBlock(), m.packetAccept(),
                  m.packetInterimAccept()}) {
                std::vector<std::string> row = {
                    scalingName(s), TextTable::num(int64_t{wl}),
                    p.name};
                // PA/PIA have three components; pad the second drive
                // column for them.
                if (p.components.size() == 3) {
                    row.push_back(
                        TextTable::num(p.components[0].ps, 2));
                    row.push_back(
                        TextTable::num(p.components[1].ps, 2));
                    row.push_back("-");
                    row.push_back(
                        TextTable::num(p.components[2].ps, 2));
                } else {
                    for (const auto &c : p.components)
                        row.push_back(TextTable::num(c.ps, 2));
                }
                row.push_back(TextTable::num(p.totalPs(), 2));
                t.addRow(row);
            }
        }
    }
    bench::emit(opts,
                "Fig 5: router critical-path component delays "
                "(PP > PB > PA/PIA; resonator drive dominates)",
                t);
    return 0;
}
