# Empty dependencies file for test_core_wavefront_models.
# This may be replaced when dependencies are built.
