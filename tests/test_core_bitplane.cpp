/**
 * @file
 * Unit tests for the bit-plane kernels behind the word-parallel
 * wavefront engine (DESIGN.md §11): plane pack/unpack round-trips,
 * masked-shift border behavior (no wraparound bleed between mesh
 * rows), popcount drop accounting, the word-combining algebra, and a
 * randomized scalar-vs-bitplane whole-network equivalence campaign
 * (PL_CHECK_LONG=1 widens it, matching the §7 differential soak).
 */

#include <gtest/gtest.h>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/bitplane.hpp"
#include "core/network.hpp"

namespace phastlane::core {
namespace {

bool
longCampaign()
{
    const char *v = std::getenv("PL_CHECK_LONG");
    return v && v[0] == '1';
}

TEST(BitplaneWords, RoundsUpToWholeWords)
{
    EXPECT_EQ(bitplaneWords(1), 1);
    EXPECT_EQ(bitplaneWords(64), 1);
    EXPECT_EQ(bitplaneWords(65), 2);
    EXPECT_EQ(bitplaneWords(256), 4);
    EXPECT_EQ(bitplaneWords(340), 6);
}

TEST(PortPlanes, PackUnpackRoundTrip)
{
    const int nodes = 340; // 6 words: exercises the multi-word path
    PortPlanes planes(nodes);
    Rng rng(7);
    std::vector<std::pair<NodeId, Port>> set_bits;
    for (int i = 0; i < 500; ++i) {
        const NodeId n =
            static_cast<NodeId>(rng.uniformInt(0, nodes - 1));
        const Port p = portFromIndex(rng.uniformInt(0, kMeshPorts - 1));
        if (!planes.test(n, p)) {
            planes.set(n, p);
            set_bits.emplace_back(n, p);
        }
    }
    for (const auto &[n, p] : set_bits)
        EXPECT_TRUE(planes.test(n, p));
    EXPECT_EQ(planes.popcount(),
              static_cast<int>(set_bits.size()));
    planes.clear();
    EXPECT_EQ(planes.popcount(), 0);
    for (const auto &[n, p] : set_bits)
        EXPECT_FALSE(planes.test(n, p));
}

TEST(PortPlanes, TestAndSetReportsDuplicates)
{
    PortPlanes planes(64);
    EXPECT_FALSE(planes.testAndSet(17, Port::East));
    EXPECT_TRUE(planes.testAndSet(17, Port::East));
    // Same node, different plane: independent bit.
    EXPECT_FALSE(planes.testAndSet(17, Port::West));
    EXPECT_EQ(planes.popcount(), 2);
}

TEST(BitplaneKernels, AlgebraMatchesScalarReference)
{
    const int words = 7; // odd count: AVX2 path plus scalar tail
    Rng rng(11);
    std::vector<uint64_t> a(words), b(words), c(words), dst(words);
    for (int i = 0; i < words; ++i) {
        a[i] = rng.next();
        b[i] = rng.next();
        c[i] = rng.next();
    }
    bitplane::andnot2(a.data(), b.data(), c.data(), dst.data(), words);
    for (int i = 0; i < words; ++i)
        EXPECT_EQ(dst[i], a[i] & ~b[i] & ~c[i]);

    std::vector<uint64_t> acc(c);
    bitplane::orInto(a.data(), acc.data(), words);
    for (int i = 0; i < words; ++i)
        EXPECT_EQ(acc[i], c[i] | a[i]);

    bitplane::andInto(a.data(), b.data(), dst.data(), words);
    int want_pop = 0;
    for (int i = 0; i < words; ++i) {
        EXPECT_EQ(dst[i], a[i] & b[i]);
        want_pop += __builtin_popcountll(dst[i]);
    }
    EXPECT_EQ(bitplane::popcount(dst.data(), words), want_pop);
    EXPECT_EQ(bitplane::anySet(dst.data(), words), want_pop != 0);

    std::vector<uint64_t> zeros(words, 0);
    EXPECT_FALSE(bitplane::anySet(zeros.data(), words));
    EXPECT_EQ(bitplane::popcount(zeros.data(), words), 0);
}

/** Scalar reference: move every set bit one hop, dropping edge bits. */
std::vector<uint64_t>
shiftReference(const BitPlaneMesh &mesh, Port dir,
               const std::vector<uint64_t> &src)
{
    const int w = mesh.width(), h = mesh.height();
    std::vector<uint64_t> dst(mesh.words(), 0);
    for (int n = 0; n < mesh.nodeCount(); ++n) {
        if (!((src[n >> 6] >> (n & 63)) & 1u))
            continue;
        const int x = n % w, y = n / w;
        int nx = x, ny = y;
        switch (dir) {
        case Port::North: ny = y + 1; break;
        case Port::South: ny = y - 1; break;
        case Port::East:  nx = x + 1; break;
        case Port::West:  nx = x - 1; break;
        default: break;
        }
        if (nx < 0 || nx >= w || ny < 0 || ny >= h)
            continue; // falls off the mesh, never wraps
        const int m = ny * w + nx;
        dst[m >> 6] |= uint64_t{1} << (m & 63);
    }
    return dst;
}

TEST(BitPlaneMeshShift, MatchesScalarReferenceOnRandomPlanes)
{
    // Shapes chosen so row width is not a divisor of 64 (worst case
    // for wrap bleed) and so multi-word shifts are exercised.
    const std::pair<int, int> shapes[] = {
        {8, 8}, {3, 5}, {9, 13}, {16, 16}, {20, 17}};
    Rng rng(23);
    for (const auto &[w, h] : shapes) {
        BitPlaneMesh mesh(w, h);
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<uint64_t> src(mesh.words());
            for (auto &word : src)
                word = rng.next();
            // Clamp to valid bits: padding bits above nodeCount() must
            // not be required to be zero by callers, but planes built
            // by the engine never set them.
            for (int i = 0; i < mesh.words(); ++i)
                src[i] &= mesh.validMask()[i];
            for (Port dir :
                 {Port::North, Port::South, Port::East, Port::West}) {
                std::vector<uint64_t> dst(mesh.words(), 0xff);
                mesh.shiftToward(dir, src.data(), dst.data());
                const auto want = shiftReference(mesh, dir, src);
                for (int i = 0; i < mesh.words(); ++i)
                    EXPECT_EQ(dst[i], want[i])
                        << w << "x" << h << " dir "
                        << portIndex(dir) << " word " << i;
            }
        }
    }
}

TEST(BitPlaneMeshShift, EdgeColumnsDropWithoutBleedingIntoNextRow)
{
    BitPlaneMesh mesh(8, 8);
    // Fill the entire east edge column (x = 7): shifting east must
    // produce an all-zero plane, not bits at x = 0 of the next row.
    std::vector<uint64_t> src(mesh.words(), 0), dst(mesh.words(), 0);
    for (int y = 0; y < 8; ++y) {
        const int n = y * 8 + 7;
        src[n >> 6] |= uint64_t{1} << (n & 63);
    }
    mesh.shiftToward(Port::East, src.data(), dst.data());
    EXPECT_FALSE(bitplane::anySet(dst.data(), mesh.words()));

    // And the same for each remaining direction's facing edge.
    auto fill_edge = [&](Port dir, std::vector<uint64_t> &plane) {
        std::fill(plane.begin(), plane.end(), 0);
        for (int i = 0; i < 8; ++i) {
            int n = 0;
            switch (dir) {
            case Port::North: n = 7 * 8 + i; break; // top row
            case Port::South: n = i; break;         // bottom row
            case Port::West:  n = i * 8; break;     // x = 0 column
            default:          n = i * 8 + 7; break; // x = 7 column
            }
            plane[n >> 6] |= uint64_t{1} << (n & 63);
        }
    };
    for (Port dir : {Port::North, Port::South, Port::West}) {
        fill_edge(dir, src);
        mesh.shiftToward(dir, src.data(), dst.data());
        EXPECT_FALSE(bitplane::anySet(dst.data(), mesh.words()))
            << "edge bleed toward dir " << portIndex(dir);
    }
}

TEST(BitPlaneMeshShift, DegenerateRowAndColumnShapes)
{
    // Single-row and single-column meshes stress the shift extremes:
    // a 64x1 mesh has a N/S id delta of exactly the word width (a
    // shift amount that is undefined behavior unless guarded), and a
    // 1x64 mesh has no E/W interior at all. Both must come out as
    // all-dropped or plain row shifts, never wraparound garbage.
    Rng rng(41);
    const std::pair<int, int> shapes[] = {
        {64, 1}, {1, 64}, {65, 1}, {128, 1}, {1, 100}, {63, 2}};
    for (const auto &[w, h] : shapes) {
        BitPlaneMesh mesh(w, h);
        for (int trial = 0; trial < 10; ++trial) {
            std::vector<uint64_t> src(mesh.words());
            for (int i = 0; i < mesh.words(); ++i)
                src[i] = rng.next() & mesh.validMask()[i];
            for (Port dir :
                 {Port::North, Port::South, Port::East, Port::West}) {
                std::vector<uint64_t> dst(mesh.words(), ~uint64_t{0});
                mesh.shiftToward(dir, src.data(), dst.data());
                const auto want = shiftReference(mesh, dir, src);
                for (int i = 0; i < mesh.words(); ++i)
                    ASSERT_EQ(dst[i], want[i])
                        << w << "x" << h << " dir "
                        << portIndex(dir) << " word " << i;
            }
        }
    }
    // A fully-set 64x1 plane must vanish entirely under N/S (height 1:
    // nothing has a vertical neighbor).
    BitPlaneMesh row(64, 1);
    std::vector<uint64_t> all(row.words()), out(row.words());
    all[0] = ~uint64_t{0};
    for (Port dir : {Port::North, Port::South}) {
        row.shiftToward(dir, all.data(), out.data());
        EXPECT_FALSE(bitplane::anySet(out.data(), row.words()));
    }
}

TEST(BitPlaneMeshShift, TailWordBitsNeverEscapeThePlane)
{
    // nodeCount % 64 != 0: the last word is partial. Shifting the
    // topmost row north (or the highest ids east) must not park bits
    // in the padding region above nodeCount(), and padding must never
    // feed back into valid bits on a downward shift.
    const std::pair<int, int> shapes[] = {{9, 13}, {5, 13}, {11, 6}};
    for (const auto &[w, h] : shapes) {
        BitPlaneMesh mesh(w, h);
        ASSERT_NE(mesh.nodeCount() % 64, 0);
        std::vector<uint64_t> src(mesh.words(), 0), dst(mesh.words());
        // Fill the top row: every bit leaves the mesh going north.
        for (int x = 0; x < w; ++x) {
            const int n = (h - 1) * w + x;
            src[n >> 6] |= uint64_t{1} << (n & 63);
        }
        mesh.shiftToward(Port::North, src.data(), dst.data());
        EXPECT_FALSE(bitplane::anySet(dst.data(), mesh.words()))
            << w << "x" << h;
        // Whatever the shift produces stays inside validMask().
        Rng rng(43);
        for (int trial = 0; trial < 10; ++trial) {
            for (int i = 0; i < mesh.words(); ++i)
                src[i] = rng.next() & mesh.validMask()[i];
            for (Port dir :
                 {Port::North, Port::South, Port::East, Port::West}) {
                mesh.shiftToward(dir, src.data(), dst.data());
                for (int i = 0; i < mesh.words(); ++i)
                    EXPECT_EQ(dst[i] & ~mesh.validMask()[i],
                              uint64_t{0})
                        << w << "x" << h << " dir " << portIndex(dir);
            }
        }
    }
}

TEST(BitPlaneMeshShift, PopcountAccountsForEdgeDrops)
{
    // popcount(src) - popcount(shift(src)) == bits on the facing
    // edge: the drop accounting the engine uses to count packets that
    // cannot move further in a sweep direction.
    BitPlaneMesh mesh(9, 13); // 117 nodes, 2 words
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint64_t> src(mesh.words()), dst(mesh.words());
        for (int i = 0; i < mesh.words(); ++i)
            src[i] = rng.next() & mesh.validMask()[i];
        for (Port dir :
             {Port::North, Port::South, Port::East, Port::West}) {
            std::vector<uint64_t> edge(mesh.words());
            // Edge bits = valid bits without a neighbor in dir.
            for (int i = 0; i < mesh.words(); ++i)
                edge[i] = src[i] & ~mesh.interiorMask(dir)[i];
            mesh.shiftToward(dir, src.data(), dst.data());
            EXPECT_EQ(bitplane::popcount(src.data(), mesh.words()) -
                          bitplane::popcount(dst.data(), mesh.words()),
                      bitplane::popcount(edge.data(), mesh.words()));
        }
    }
}

/**
 * Whole-network differential campaign: the bit-plane engine must be
 * bit-identical to the scalar SubstepFcfs reference — same delivery
 * cycles per packet and same event counters — across randomized
 * mixed unicast/broadcast workloads. PL_CHECK_LONG=1 widens the
 * campaign from 4 to 16 seeds.
 */
TEST(BitplaneDifferential, MatchesScalarFcfsAcrossRandomWorkloads)
{
    const int seeds = longCampaign() ? 16 : 4;
    for (int seed = 1; seed <= seeds; ++seed) {
        std::map<PacketId, Cycle> delivered[2];
        struct Counts {
            uint64_t deliveries, drops, launches, receives,
                retransmissions, blocked;
        } counts[2];
        const WavefrontModel models[2] = {
            WavefrontModel::SubstepFcfs,
            WavefrontModel::BitplaneFcfs};
        for (int m = 0; m < 2; ++m) {
            PhastlaneParams p;
            p.wavefront = models[m];
            p.routerBufferEntries = 4;
            p.seed = 1000 + seed;
            PhastlaneNetwork net(p);
            Rng rng(500 + seed);
            PacketId id = 1;
            for (int cyc = 0; cyc < 120; ++cyc) {
                for (NodeId n = 0; n < net.nodeCount(); ++n) {
                    if (!rng.bernoulli(0.10))
                        continue;
                    Packet pkt;
                    pkt.id = id++;
                    pkt.src = n;
                    if (rng.bernoulli(0.06)) {
                        pkt.broadcast = true;
                    } else {
                        NodeId d = static_cast<NodeId>(rng.uniformInt(
                            0, net.nodeCount() - 1));
                        pkt.dst = d == n
                                      ? (d + 1) % net.nodeCount()
                                      : d;
                    }
                    net.inject(pkt);
                }
                net.step();
                for (const auto &d : net.deliveries())
                    delivered[m][d.packet.id] = d.at;
            }
            int guard = 0;
            while (net.inFlight() > 0 && guard++ < 200000) {
                net.step();
                for (const auto &d : net.deliveries())
                    delivered[m][d.packet.id] = d.at;
            }
            ASSERT_EQ(net.inFlight(), 0u) << "seed " << seed;
            counts[m] = Counts{net.counters().deliveries,
                               net.events().drops,
                               net.events().launches,
                               net.events().receives,
                               net.events().retransmissions,
                               net.phastlaneCounters().blockedBuffered};
        }
        EXPECT_EQ(delivered[0], delivered[1]) << "seed " << seed;
        EXPECT_EQ(counts[0].deliveries, counts[1].deliveries);
        EXPECT_EQ(counts[0].drops, counts[1].drops);
        EXPECT_EQ(counts[0].launches, counts[1].launches);
        EXPECT_EQ(counts[0].receives, counts[1].receives);
        EXPECT_EQ(counts[0].retransmissions,
                  counts[1].retransmissions);
        EXPECT_EQ(counts[0].blocked, counts[1].blocked);
    }
}

} // namespace
} // namespace phastlane::core
