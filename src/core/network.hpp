/**
 * @file
 * The Phastlane optical network: a 2D mesh of optical crossbar routers
 * with electrical buffering, drop signaling, interim-node pipelining
 * and multicast (paper Section 2).
 *
 * Cycle structure of step() (DESIGN.md 3.1):
 *   1. resolve the previous cycle's launch outcomes (drop signals
 *      arrive one cycle after transmission);
 *   2. move NIC packets into the routers' local queues;
 *   3. every router's rotating arbiter launches buffered packets,
 *      claiming output ports;
 *   4. the optical wavefront propagates: packets cross up to
 *      maxHopsPerCycle routers, winning or losing port claims, being
 *      tapped, interim-accepted, buffered, delivered, or dropped.
 */

#ifndef PHASTLANE_CORE_NETWORK_HPP
#define PHASTLANE_CORE_NETWORK_HPP

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/bitplane.hpp"
#include "core/control.hpp"
#include "core/events.hpp"
#include "core/nic.hpp"
#include "core/observer.hpp"
#include "core/params.hpp"
#include "core/return_path.hpp"
#include "core/router.hpp"
#include "net/network.hpp"

namespace phastlane::core {

class NetworkBatch;

/** Phastlane-specific statistics beyond the common counters. */
struct PhastlaneCounters {
    uint64_t drops = 0;
    uint64_t retransmissions = 0;
    uint64_t blockedBuffered = 0;  ///< packets received due to blocking
    uint64_t interimAccepts = 0;   ///< interim-node receptions
    uint64_t launches = 0;         ///< all optical launches
};

/**
 * The Phastlane network (Network implementation).
 */
class PhastlaneNetwork : public Network
{
  public:
    explicit PhastlaneNetwork(const PhastlaneParams &params);

    // Network interface.
    int nodeCount() const override { return mesh_.nodeCount(); }
    Cycle now() const override { return cycle_; }
    bool nicHasSpace(NodeId n) const override;
    bool inject(const Packet &pkt) override;
    void step() override;
    const std::vector<Delivery> &deliveries() const override
    {
        return deliveries_;
    }
    uint64_t inFlight() const override { return outstanding_; }
    const NetworkCounters &counters() const override
    {
        return counters_;
    }

    const PhastlaneParams &params() const { return params_; }
    const MeshTopology &mesh() const override { return mesh_; }
    const PhastlaneCounters &phastlaneCounters() const { return pl_; }
    const OpticalEvents &events() const { return events_; }

    /** Total packets currently held in router buffers. */
    uint64_t bufferedPackets() const;

    /** Total packets currently queued in the NICs. */
    uint64_t nicQueuedPackets() const;

    /** Buffer state of router @p n (read-only; for checkers). */
    const RouterBuffers &routerBuffers(NodeId n) const
    {
        return routers_[static_cast<size_t>(n)];
    }

    /** Longest losing arbitration streak of source @p n's packets
     *  (its router's local queue) — the per-source starvation counter
     *  (DESIGN.md §14). */
    uint64_t sourceStarvation(NodeId n) const
    {
        return routers_[static_cast<size_t>(n)]
            .maxConsecutiveLossesLocal();
    }

    /** Longest losing streak on any queue of any router. */
    uint64_t maxStarvation() const
    {
        uint64_t worst = 0;
        for (const auto &rb : routers_)
            worst = std::max(worst, rb.maxConsecutiveLosses());
        return worst;
    }

    /**
     * Attach (or detach with nullptr) a per-cycle observer. At most
     * one observer is supported; the caller keeps ownership and must
     * outlive the network or detach first.
     */
    void setObserver(StepObserver *obs) { observer_ = obs; }

    /**
     * Cumulative optical traversals per (router, mesh output port),
     * indexed router * 4 + portIndex; feeds utilization reports.
     */
    const std::vector<uint64_t> &portClaimCounts() const
    {
        return portClaimCounts_;
    }

    /**
     * True when router @p n was drawn as hard-failed at construction
     * (faults.routerFailRate; DESIGN.md §10). Arrivals at a failed
     * router black-hole; messages injected there are accepted and
     * immediately accounted lost.
     */
    bool routerFailed(NodeId n) const
    {
        return failedRouters_[static_cast<size_t>(n)] != 0;
    }

  private:
    /** NetworkBatch drives the per-phase internals directly to step a
     *  gang of instances in lockstep (DESIGN.md §13). */
    friend class NetworkBatch;

    /** A packet in optical transit within the current cycle. */
    struct Flight {
        OpticalPacket pkt;
        ControlProgram prog;
        NodeId at = kInvalidNode; ///< router just arrived at
        Port inPort = Port::Local;
        int hops = 0;            ///< hops taken this cycle
        NodeId launchRouter = kInvalidNode;
        EntryRef holder;         ///< buffer entry responsible for it
        /** Reverse connections latched behind the packet, for the
         *  drop-signal return path (Section 2.1.2). Inline: a flight
         *  crosses at most one router per control group, so the path
         *  cannot outgrow the program, and flights are rebuilt every
         *  cycle — heap-backed paths dominated step()'s allocations. */
        std::array<ReturnHop, ControlProgram::kMaxGroups> path;
        uint8_t pathLen = 0;
        bool active = true;

        void recordHop(const ReturnHop &h)
        {
            PL_ASSERT(pathLen < ControlProgram::kMaxGroups,
                      "return path outgrew the control program");
            path[pathLen++] = h;
        }
    };

    /** Deferred resolution of a dropped launch (applied next cycle).
     *  Successes need only the EntryRef and live in their own list:
     *  nearly every launch succeeds, and carrying an OpticalPacket
     *  per success was a measurable share of the step() hot path. */
    struct LaunchOutcome {
        EntryRef ref;
        OpticalPacket updated; ///< tap-reduced state at the dropper
    };

    /** A pass-through port request during one wavefront sub-step. */
    struct PassRequest {
        size_t flight = 0;
        NodeId router = kInvalidNode;
        Port out = Port::Local;
        bool straight = false;
        /** AgeBoost promotion: ranks as straight (DESIGN.md §14). */
        bool boosted = false;
    };

    /** One pass claim in a precomputed global-priority itinerary. */
    struct ItineraryClaim {
        NodeId router;
        Port out;
        bool straight;
        bool boosted;
        Port inPort;
    };

    /** A flight's full intra-cycle route under global priority. */
    struct Itinerary {
        std::vector<ItineraryClaim> claims; ///< pass claims in order
        std::vector<NodeId> entered;
        std::vector<Port> inPorts;
        size_t stop = 0; ///< index in entered of the local router
    };

    // ---- Sharded engine (DESIGN.md §12) -------------------------
    //
    // The arrival-side logic (taps, delivery, buffering, drops) is
    // shared between the scalar and sharded engines through a Sink
    // policy. DirectSink applies every side effect immediately, in
    // program order — the scalar engines. ShardSink accumulates
    // counter deltas and merge-keyed effect lists per shard, so shard
    // workers never touch shared order-sensitive state; a cycle-end
    // k-way merge replays the effects in the exact scalar order.

    /** Per-shard counter deltas and ordered side-effect streams. The
     *  lists are pushed in nondecreasing merge-key order within a
     *  shard, so the cycle-end merge is a linear k-way walk. */
    struct ShardEffects {
        OpticalEvents events;
        PhastlaneCounters pl;
        NetworkCounters counters;
        int64_t outstandingDelta = 0;
        std::vector<std::pair<uint64_t, Delivery>> deliveries;
        std::vector<std::pair<uint64_t, EntryRef>> releases;
        std::vector<std::pair<uint64_t, LaunchOutcome>> drops;

        void clear()
        {
            events = OpticalEvents{};
            pl = PhastlaneCounters{};
            counters = NetworkCounters{};
            outstandingDelta = 0;
            deliveries.clear();
            releases.clear();
            drops.clear();
        }
    };

    /** Scalar sink: every effect lands directly on network state. */
    struct DirectSink {
        PhastlaneNetwork &n;

        OpticalEvents &events() { return n.events_; }
        PhastlaneCounters &pl() { return n.pl_; }
        NetworkCounters &counters() { return n.counters_; }

        void deliver(const OpticalPacket &pkt, NodeId node)
        {
            n.deliver(pkt, node);
        }
        void noteLost(const OpticalPacket &pkt, NodeId router,
                      int units, LostCause cause)
        {
            n.loseUnits(pkt, router, units, cause);
        }
        void release(const EntryRef &ref)
        {
            n.pendingReleases_.push_back(ref);
        }
        void dropOutcome(const EntryRef &ref, const OpticalPacket &pkt)
        {
            n.pendingDrops_.push_back(LaunchOutcome{ref, pkt});
        }
        void onDuplicate(const OpticalPacket &pkt, NodeId at)
        {
            if (n.observer_)
                n.observer_->onDuplicate(pkt, at);
        }
        void onTap(const OpticalPacket &pkt, NodeId at)
        {
            if (n.observer_)
                n.observer_->onTap(pkt, at);
        }
        void onBranchFinal(const OpticalPacket &pkt, NodeId at)
        {
            if (n.observer_)
                n.observer_->onBranchFinal(pkt, at);
        }
        void onBufferReceive(const OpticalPacket &pkt, NodeId at,
                             Port in, bool interim)
        {
            if (n.observer_)
                n.observer_->onBufferReceive(pkt, at, in, interim);
        }
        void onDrop(const OpticalPacket &pkt, NodeId at,
                    NodeId holder, int hops, bool lost)
        {
            if (n.observer_)
                n.observer_->onDrop(pkt, at, holder, hops, lost);
        }
    };

    /** Sharded sink: counter deltas plus keyed effect streams. The
     *  observer hooks are no-ops because the sharded engine only runs
     *  with no observer attached (useShardedStep()). */
    struct ShardSink {
        PhastlaneNetwork &n;
        ShardEffects &fx;
        /** Merge key of the effect being produced; the engine sets it
         *  before each arrival / claim resolution. */
        uint64_t key = 0;

        OpticalEvents &events() { return fx.events; }
        PhastlaneCounters &pl() { return fx.pl; }
        NetworkCounters &counters() { return fx.counters; }

        void deliver(const OpticalPacket &pkt, NodeId node)
        {
            Delivery d;
            d.packet = pkt.base;
            d.node = node;
            d.at = n.cycle_;
            d.acceptedAt = pkt.acceptedAt;
            d.injectedAt = pkt.firstInjectedAt;
            fx.deliveries.emplace_back(key, std::move(d));
            ++fx.counters.deliveries;
            --fx.outstandingDelta;
        }
        void noteLost(const OpticalPacket &, NodeId, int units,
                      LostCause)
        {
            if (units > 0) {
                fx.events.lostUnits += static_cast<uint64_t>(units);
                fx.outstandingDelta -= units;
            }
        }
        void release(const EntryRef &ref)
        {
            fx.releases.emplace_back(key, ref);
        }
        void dropOutcome(const EntryRef &ref, const OpticalPacket &pkt)
        {
            fx.drops.emplace_back(key, LaunchOutcome{ref, pkt});
        }
        void onDuplicate(const OpticalPacket &, NodeId) {}
        void onTap(const OpticalPacket &, NodeId) {}
        void onBranchFinal(const OpticalPacket &, NodeId) {}
        void onBufferReceive(const OpticalPacket &, NodeId, Port, bool)
        {
        }
        void onDrop(const OpticalPacket &, NodeId, NodeId, int, bool)
        {
        }
    };

    /** One spatial shard: a rectangle of routers with its own claim
     *  planes, request chains and scratch (DESIGN.md §12). */
    struct Shard {
        Shard(int id_, const ShardGrid::Rect &r)
            : id(id_), rect(r), claims(r.nodeCount()),
              reqOnce(r.nodeCount()), reqMulti(r.nodeCount()),
              reqWin(r.nodeCount())
        {
            const size_t flat =
                static_cast<size_t>(r.nodeCount()) * kMeshPorts;
            reqHead.assign(flat, 0);
            reqTail.assign(flat, 0);
            reqEpoch.assign(flat, 0);
        }

        int id;
        ShardGrid::Rect rect;
        /** Per-cycle claim planes over the shard's own routers,
         *  indexed by local (within-rect, row-major) id. */
        PortPlanes claims;
        // Local-plane request state, as in the global bit-plane
        // engine but over the shard rectangle.
        PortPlanes reqOnce, reqMulti, reqWin;
        std::vector<uint32_t> reqHead, reqTail, reqNext;
        std::vector<uint64_t> reqEpoch;
        uint64_t reqEpochCur = 0;
        std::vector<PassRequest> requests;
        /** (global active index, flight) pairs this shard owns in the
         *  current sub-step, in global active-list order. */
        std::vector<std::pair<uint32_t, uint32_t>> activeLocal;
        /** (global flat port key, flight) winners for the next
         *  sub-step, pushed in ascending key order. */
        std::vector<std::pair<uint64_t, uint32_t>> next;
        std::vector<Flight> launches;
        ArbitrationScratch arb;
        ShardEffects fx;
    };

    Port desiredPort(NodeId at, const OpticalPacket &pkt) const;
    ControlProgram buildProgram(NodeId from,
                                const OpticalPacket &pkt) const;

    void resolveOutcomes();
    void nicToLocalQueues();
    void launchPhase();
    /** One router's arbitration + launch bookkeeping: the body of
     *  launchPhase(), also called per eligible router by the batch
     *  engine (which skips routers via the launch board). */
    void launchRouter(NodeId r);
    void propagateSubstepFcfs(std::vector<Flight> &flights);
    void propagateBitplane(std::vector<Flight> &flights);
    void propagateGlobalPriority(std::vector<Flight> &flights);

    /** Arrival handling + pass-request collection shared by the FCFS
     *  engines: one wavefront sub-step's phase A. */
    void collectPassRequests(std::vector<Flight> &flights,
                             const std::vector<size_t> &active,
                             std::vector<PassRequest> &requests);

    /** Apply a pass-claim win: latch the return hop, advance the
     *  flight one router, and queue it for the next sub-step. */
    void applyPassWin(std::vector<Flight> &flights, size_t flight_idx,
                      NodeId router, Port out,
                      std::vector<size_t> &next);

    /** Handle arrival-side actions; returns true when the flight
     *  terminated at this router (delivered/buffered/dropped). */
    bool handleArrival(Flight &f);

    /** Receive a blocked/interim packet into the input buffer or drop
     *  it; terminates the flight either way. */
    void receiveOrDrop(Flight &f, bool interim);

    // Sink-parameterized bodies of the arrival-side logic, shared by
    // the scalar engines (DirectSink) and the sharded engine
    // (ShardSink); defined in network_impl.hpp.
    template <typename Sink> bool handleArrivalT(Flight &f, Sink &s);
    template <typename Sink>
    void receiveOrDropT(Flight &f, bool interim, Sink &s);
    template <typename Sink> void serveTapAtT(Flight &f, Sink &s);
    template <typename Sink>
    void deadRouterArrivalT(Flight &f, Sink &s);

    // Sharded engine (network_sharded.cpp; DESIGN.md §12).

    /** True when this step should run shard-parallel: sharding was
     *  configured, no observer is attached (observers see the exact
     *  scalar callback order), and the wavefront is one of the FCFS
     *  models the sharded engine implements. */
    bool useShardedStep() const;
    void setupShards();
    void stepSharded();
    void shardNicToLocal(Shard &sh);
    void shardLaunchPhase(Shard &sh);
    void shardSubstep(Shard &sh, uint64_t substep);
    /** applyPassWin against the shard-local claim planes. */
    void applyShardPassWin(Shard &sh, size_t flight_idx, NodeId router,
                           int local_router, Port out);
    void mergeShardLaunches();
    size_t mergeShardNext();
    void mergeShardEffects();

    /** Merge key: sub-step, then phase (0 = arrival handling, 1 =
     *  claim resolution), then the scalar engine's within-phase
     *  position. Cycle-end merging by this key replays per-shard
     *  effects in the exact scalar order. */
    static constexpr uint64_t effectKey(uint64_t substep,
                                        uint64_t phase, uint64_t sub)
    {
        return (substep << 48) | (phase << 47) | sub;
    }

    void deliver(const OpticalPacket &pkt, NodeId node);
    Cycle dropRetryCycle(int attempts);

    /** Serve the tap at f.at: duplicate-suppress, fault-miss, or
     *  deliver; always advances the tap cursor. */
    void serveTapAt(Flight &f);

    /** Delivery units of @p pkt not yet delivered (1 for unicast;
     *  unserved, non-suppressed taps for a multicast branch). */
    int unitsOutstanding(const OpticalPacket &pkt) const;

    /** Account @p units of @p pkt permanently lost to a fault. */
    void loseUnits(const OpticalPacket &pkt, NodeId router, int units,
                   LostCause cause);

    /** Black-hole an arrival at hard-failed router f.at; terminates
     *  the flight (holder slot frees as a success next cycle). */
    void deadRouterArrival(Flight &f);

    bool claimed(NodeId router, Port out) const;
    void setClaim(NodeId router, Port out);

    /**
     * Per-cycle scratch for the step() hot path: the claim planes,
     * flight list, sub-step work lists, and the flat (router, port)
     * claim-resolution / request-chain tables of the bit-plane engine
     * (DESIGN.md §11). Everything here is dead between cycles — it is
     * either cleared at cycle start or guarded by an epoch tag — so a
     * NetworkBatch gang of same-shape instances shares ONE StepScratch
     * and each instance-step reuses hot cache lines instead of
     * cold-touching its own copy. Epoch tags stay monotone across the
     * gang (instances step serially and only test tags for equality
     * against the current epoch), so sharing needs no resets.
     */
    struct StepScratch {
        explicit StepScratch(int node_count);

        /** Per-cycle (router, mesh port) claim bits, one plane per
         *  port — shared by every wavefront model. */
        PortPlanes claims;
        std::vector<Flight> flights;
        std::vector<size_t> active;
        std::vector<size_t> nextActive;
        std::vector<PassRequest> requests;
        std::vector<uint32_t> order;
        std::vector<Itinerary> its;
        std::vector<size_t> blocked;
        ArbitrationScratch arb;
        std::vector<uint64_t> bestRank;   ///< per router * kMeshPorts
        std::vector<uint32_t> bestFlight; ///< winner per flat port
        std::vector<uint64_t> bestEpoch;  ///< validity tag
        uint64_t resolveEpoch = 0;

        // Bit-plane engine state (DESIGN.md §11): request presence and
        // multiplicity planes, the uncontested-grant plane, and the
        // epoch-tagged per-(router, port) request chains that preserve
        // arrival order for contested ports.
        PortPlanes reqOnce;
        PortPlanes reqMulti;
        PortPlanes reqWin;
        std::vector<uint32_t> reqHead;  ///< first request per flat port
        std::vector<uint32_t> reqTail;  ///< last request per flat port
        std::vector<uint64_t> reqEpoch; ///< validity tag for head/tail
        std::vector<uint32_t> reqNext;  ///< chain link per request
        uint64_t reqEpochCur = 0;
    };

    PhastlaneParams params_;
    MeshTopology mesh_;
    Rng rng_;
    Cycle cycle_ = 0;

    std::vector<OpticalNic> nics_;
    std::vector<RouterBuffers> routers_;
    std::vector<uint8_t> failedRouters_; ///< drawn once at construction
    ReturnPathRegistry returnPaths_;
    /** Bit-plane mesh geometry for the word-parallel engine. */
    BitPlaneMesh bitMesh_;
    std::vector<uint64_t> portClaimCounts_; ///< cumulative

    /** Lazily-filled (launch router, destination) -> unicast control
     *  program memo (empty on meshes too large for an n^2 table); see
     *  buildProgram(). */
    mutable std::vector<ControlProgram> unicastProgCache_;
    mutable std::vector<uint8_t> unicastProgValid_;

    /** Launches whose drop-signal window passed clean: the holder
     *  frees the slot next cycle. Releases draw no randomness, so
     *  resolving them before the drops preserves the RNG stream. */
    std::vector<EntryRef> pendingReleases_;
    std::vector<LaunchOutcome> pendingDrops_;
    std::vector<Delivery> deliveries_;

    // Per-cycle scratch (see StepScratch). scratch_ points at
    // ownScratch_ outside a batch; a NetworkBatch re-targets it to the
    // gang-shared scratch while attached. All scratch state is
    // cleared, never shrunk, so steady-state cycles allocate nothing.
    StepScratch ownScratch_;
    StepScratch *scratch_ = &ownScratch_;

    // Sharded-engine state (DESIGN.md §12); unset when the params
    // request a single shard or the grid clamps down to one.
    std::unique_ptr<ShardGrid> shardGrid_;
    std::vector<Shard> shards_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<uint32_t> mergeCursor_;

    NetworkCounters counters_;
    PhastlaneCounters pl_;
    OpticalEvents events_;
    /** Instance slot in a NetworkBatch NIC-occupancy bit plane, or
     *  nullptr outside a batch; inject() sets the source node's bit
     *  so the batch engine can skip empty NICs word-at-a-time. */
    uint64_t *batchNicOcc_ = nullptr;
    StepObserver *observer_ = nullptr;
    uint64_t outstanding_ = 0;
    uint64_t nextBranchId_ = 1;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_NETWORK_HPP
