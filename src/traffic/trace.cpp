#include "traffic/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <deque>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace phastlane::traffic {

void
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fprintf(f, "# cycle src dst kind tag\n");
    for (const auto &r : records) {
        std::fprintf(f, "%" PRIu64 " %d %d %d %" PRIu64 "\n", r.cycle,
                     r.src, r.dst, static_cast<int>(r.kind), r.tag);
    }
    std::fclose(f);
}

std::vector<TraceRecord>
readTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    std::vector<TraceRecord> records;
    char line[256];
    int lineno = 0;
    Cycle last_cycle = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++lineno;
        if (line[0] == '#' || line[0] == '\n')
            continue;
        TraceRecord r;
        int kind = 0;
        if (std::sscanf(line, "%" SCNu64 " %d %d %d %" SCNu64,
                        &r.cycle, &r.src, &r.dst, &kind,
                        &r.tag) != 5) {
            std::fclose(f);
            fatal("malformed trace record at %s:%d", path.c_str(),
                  lineno);
        }
        r.kind = static_cast<MessageKind>(kind);
        if (r.cycle < last_cycle) {
            std::fclose(f);
            fatal("trace records out of order at %s:%d", path.c_str(),
                  lineno);
        }
        last_cycle = r.cycle;
        records.push_back(r);
    }
    std::fclose(f);
    return records;
}

TraceReplayResult
replayTrace(Network &net, const std::vector<TraceRecord> &records,
            Cycle max_cycles)
{
    std::deque<Packet> pending;
    size_t next = 0;
    RunningStat latency;
    uint64_t deliveries = 0;
    uint64_t next_id = 1;
    const Cycle deadline = net.now() + max_cycles;

    while (net.now() < deadline) {
        // Release due records into the pending queue.
        while (next < records.size() &&
               records[next].cycle <= net.now()) {
            const TraceRecord &r = records[next++];
            Packet pkt;
            pkt.id = next_id++;
            pkt.src = r.src;
            pkt.dst = r.dst;
            pkt.broadcast = r.broadcast();
            pkt.kind = r.kind;
            pkt.tag = r.tag;
            pkt.createdAt = net.now();
            pending.push_back(pkt);
        }
        // Offer pending packets in order (head-of-line per trace).
        while (!pending.empty() && net.inject(pending.front()))
            pending.pop_front();

        if (next >= records.size() && pending.empty() &&
            net.inFlight() == 0) {
            break;
        }
        net.step();
        for (const auto &d : net.deliveries()) {
            latency.add(static_cast<double>(d.at - d.packet.createdAt));
            ++deliveries;
        }
    }

    if (net.inFlight() != 0)
        warn("trace replay hit the cycle limit with %llu outstanding",
             static_cast<unsigned long long>(net.inFlight()));

    TraceReplayResult res;
    res.completionCycle = net.now();
    res.messages = records.size();
    res.deliveries = deliveries;
    res.avgLatency = latency.mean();
    return res;
}

bool
RecordingNetwork::inject(const Packet &pkt)
{
    if (!inner_.inject(pkt))
        return false;
    TraceRecord r;
    r.cycle = inner_.now();
    r.src = pkt.src;
    r.dst = pkt.broadcast ? kInvalidNode : pkt.dst;
    r.kind = pkt.kind;
    r.tag = pkt.tag;
    records_.push_back(r);
    return true;
}

} // namespace phastlane::traffic
