/**
 * @file
 * The Phastlane network-interface controller: a finite queue of
 * outbound optical packets. Broadcasts are expanded into their
 * multicast branches at acceptance time (paper Section 2.1.4).
 */

#ifndef PHASTLANE_CORE_NIC_HPP
#define PHASTLANE_CORE_NIC_HPP

#include <deque>

#include "common/geometry.hpp"
#include "core/control.hpp"
#include "core/packet.hpp"
#include "core/params.hpp"

namespace phastlane::core {

/**
 * Outbound NIC queue of one node (Table 1: 50 entries).
 */
class OpticalNic
{
  public:
    OpticalNic(NodeId self, const PhastlaneParams &params,
               const MeshTopology &mesh);

    NodeId self() const { return self_; }

    /** True when @p pkt (all branches of a broadcast) fits now.
     *  Inline with a precomputed branch count: sim drivers probe this
     *  per node per cycle, and re-deriving the broadcast split (with
     *  its per-branch tap vectors) on every probe dominated the
     *  injection path. */
    bool hasSpaceFor(const Packet &pkt) const
    {
        const size_t needed = pkt.broadcast ? broadcastBranches_ : 1;
        return queue_.size() + needed <= capacity_;
    }

    /**
     * Accept a message: expand and enqueue its branch packets, drawing
     * branch ids from @p next_branch_id. The caller must have checked
     * hasSpaceFor().
     */
    void accept(const Packet &pkt, Cycle now, uint64_t &next_branch_id);

    bool empty() const { return queue_.empty(); }
    size_t occupancy() const { return queue_.size(); }

    /** Next branch packet to hand to the router's local queue. */
    const OpticalPacket &head() const;
    OpticalPacket popHead();

    /** Move the head packet into @p dst and pop it (the allocation-
     *  light form of popHead() for the per-cycle transfer loop). */
    void popHeadInto(OpticalPacket &dst);

  private:
    NodeId self_;
    size_t capacity_;
    /** Branch count of a broadcast from this node (geometry-fixed). */
    size_t broadcastBranches_;
    const MeshTopology &mesh_;
    std::deque<OpticalPacket> queue_;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_NIC_HPP
