#include "core/control.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::core {

bool
ControlGroup::hasDirection() const
{
    return (straight ? 1 : 0) + (left ? 1 : 0) + (right ? 1 : 0) == 1;
}

Turn
ControlGroup::turn() const
{
    PL_ASSERT(hasDirection(), "control group has no unique direction");
    if (straight)
        return Turn::Straight;
    if (left)
        return Turn::Left;
    return Turn::Right;
}

void
ControlGroup::setTurn(Turn t)
{
    straight = t == Turn::Straight;
    left = t == Turn::Left;
    right = t == Turn::Right;
}

uint8_t
ControlGroup::pack() const
{
    return static_cast<uint8_t>((straight ? 1 : 0) | (left ? 2 : 0) |
                                (right ? 4 : 0) | (local ? 8 : 0) |
                                (multicast ? 16 : 0));
}

ControlGroup
ControlGroup::unpack(uint8_t bits)
{
    ControlGroup g;
    g.straight = bits & 1;
    g.left = bits & 2;
    g.right = bits & 4;
    g.local = bits & 8;
    g.multicast = bits & 16;
    return g;
}

void
ControlProgram::append(const ControlGroup &g)
{
    if (size_ >= kMaxGroups)
        fatal("control program exceeds %d groups", kMaxGroups);
    groups_[size_++] = g;
}

std::string
ControlProgram::toString() const
{
    std::string out;
    for (size_t i = cursor_; i < size_; ++i) {
        const ControlGroup &g = groups_[i];
        out += '[';
        if (g.straight)
            out += 'S';
        if (g.left)
            out += '<';
        if (g.right)
            out += '>';
        if (g.local)
            out += 'L';
        if (g.multicast)
            out += '*';
        out += ']';
    }
    return out;
}

namespace {

/**
 * Shared group construction over the dimension-order route from
 * @p from to @p dst, walked incrementally — programs are rebuilt on
 * every launch, so this path must not allocate (the explicit
 * xyRoute()/xyPath() vectors it used to build were a top allocation
 * site in the step() hot path).
 *
 * @param taps Nodes that must get their Multicast bit (path order;
 *        every tap must lie on the route).
 */
ControlProgram
buildProgram(const MeshTopology &mesh, NodeId from, NodeId dst,
             const std::vector<NodeId> &taps, int max_hops)
{
    PL_ASSERT(from != dst, "empty route");
    PL_ASSERT(max_hops >= 1, "hop limit must be at least 1");

    const Coord d = mesh.coordOf(dst);
    // Next XY-route step out of @p c (X first, then Y); must not be
    // called at the destination.
    const auto stepDir = [&d](const Coord &c) {
        if (c.x < d.x)
            return Port::East;
        if (c.x > d.x)
            return Port::West;
        return c.y < d.y ? Port::North : Port::South;
    };

    // Routes longer than the C0+C1 budget cannot carry a group per
    // router: the program is truncated at kMaxGroups groups with an
    // interim stop forced no later than the last-but-one group (the
    // last group must stay, or the interim's Local bit would read as
    // a final destination). The packet re-launches from that interim
    // with a fresh program, so truncation costs extra segments, never
    // correctness; see programStopHops() for the oracle-shared rule.
    const size_t route_hops =
        static_cast<size_t>(mesh.hopDistance(from, dst));
    const bool truncated =
        route_hops > static_cast<size_t>(ControlProgram::kMaxGroups);
    const int spacing =
        truncated ? std::min(max_hops, ControlProgram::kMaxGroups - 1)
                  : max_hops;

    ControlProgram prog;
    size_t tap_idx = 0;
    Coord c = mesh.coordOf(from);
    for (int i = 0; !(c == d); ++i) {
        const Port dir = stepDir(c); // direction into node i
        switch (dir) {
          case Port::East: c.x += 1; break;
          case Port::West: c.x -= 1; break;
          case Port::North: c.y += 1; break;
          default: c.y -= 1; break;
        }
        const NodeId node = mesh.nodeAt(c);
        ControlGroup g;
        if (!(c == d)) {
            // Pass-through (possibly also an interim stop): the
            // direction bits select the output port and arm the
            // return path.
            g.setTurn(turnBetween(opposite(dir), stepDir(c)));
            // Interim node every spacing routers.
            if ((i + 1) % spacing == 0)
                g.local = true;
        } else {
            g.local = true;
        }
        if (tap_idx < taps.size() && taps[tap_idx] == node) {
            g.multicast = true;
            ++tap_idx;
        }
        prog.append(g);
        if (truncated && i + 1 == ControlProgram::kMaxGroups)
            break;
    }
    PL_ASSERT(truncated || tap_idx == taps.size(),
              "multicast tap not on the dimension-order route");
    return prog;
}

} // namespace

ControlProgram
buildUnicastProgram(const MeshTopology &mesh, NodeId from, NodeId dst,
                    int max_hops)
{
    PL_ASSERT(from != dst, "unicast to self");
    return buildProgram(mesh, from, dst, {}, max_hops);
}

ControlProgram
buildMulticastProgram(const MeshTopology &mesh, NodeId from,
                      const MulticastBranch &branch, int max_hops)
{
    PL_ASSERT(!branch.taps.empty(), "multicast branch without taps");
    const NodeId final_dst = branch.finalDst();
    PL_ASSERT(from != final_dst || branch.taps.size() > 1,
              "multicast branch degenerates to self");
    return buildProgram(mesh, from, final_dst, branch.taps, max_hops);
}

std::vector<MulticastBranch>
splitBroadcast(const MeshTopology &mesh, NodeId src)
{
    const Coord s = mesh.coordOf(src);
    const int top = mesh.height() - 1;
    std::vector<MulticastBranch> branches;
    branches.reserve(static_cast<size_t>(2 * mesh.width()));

    for (int c = 0; c < mesh.width(); ++c) {
        // The turn router (c, s.y) belongs to the north branch unless
        // the source sits on the top row (then the south branch covers
        // the full column), so a top/bottom-row source issues exactly
        // `width` branches.
        MulticastBranch north;
        if (s.y < top) {
            for (int y = s.y; y <= top; ++y) {
                const NodeId n = mesh.nodeAt({c, y});
                if (n != src)
                    north.taps.push_back(n);
            }
        }
        MulticastBranch south;
        const int south_top = (s.y == top) ? top : s.y - 1;
        for (int y = south_top; y >= 0; --y) {
            const NodeId n = mesh.nodeAt({c, y});
            if (n != src)
                south.taps.push_back(n);
        }
        if (!north.taps.empty())
            branches.push_back(std::move(north));
        if (!south.taps.empty())
            branches.push_back(std::move(south));
    }
    return branches;
}

} // namespace phastlane::core
