/**
 * @file
 * Command-line configuration parsing tests.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"

namespace phastlane {
namespace {

Config
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>("prog"));
    for (auto &a : args)
        argv.push_back(a.data());
    return Config::fromArgs(static_cast<int>(argv.size()),
                            argv.data());
}

TEST(ConfigTest, DashedKeyValuePairs)
{
    Config c = parse({"--rate", "0.25", "--pattern", "shuffle"});
    EXPECT_TRUE(c.has("rate"));
    EXPECT_DOUBLE_EQ(c.getDouble("rate", 0.0), 0.25);
    EXPECT_EQ(c.getString("pattern"), "shuffle");
}

TEST(ConfigTest, EqualsForm)
{
    Config c = parse({"--cycles=100", "seed=42"});
    EXPECT_EQ(c.getInt("cycles", 0), 100);
    EXPECT_EQ(c.getInt("seed", 0), 42);
}

TEST(ConfigTest, BareFlagIsTrue)
{
    Config c = parse({"--quick", "--csv", "out.csv"});
    EXPECT_TRUE(c.getBool("quick", false));
    EXPECT_EQ(c.getString("csv"), "out.csv");
}

TEST(ConfigTest, TrailingFlag)
{
    Config c = parse({"--rate", "0.1", "--verbose"});
    EXPECT_TRUE(c.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(c.getDouble("rate", 0.0), 0.1);
}

TEST(ConfigTest, DefaultsWhenAbsent)
{
    Config c = parse({});
    EXPECT_FALSE(c.has("missing"));
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_TRUE(c.getBool("missing", true));
}

TEST(ConfigTest, BoolSpellings)
{
    Config c;
    for (const char *v : {"1", "true", "yes", "on"}) {
        c.set("k", v);
        EXPECT_TRUE(c.getBool("k", false)) << v;
    }
    for (const char *v : {"0", "false", "no", "off", "junk"}) {
        c.set("k", v);
        EXPECT_FALSE(c.getBool("k", true)) << v;
    }
}

TEST(ConfigTest, SetOverwrites)
{
    Config c;
    c.set("a", "1");
    c.set("a", "2");
    EXPECT_EQ(c.getInt("a", 0), 2);
}

TEST(ConfigTest, KeysSorted)
{
    Config c = parse({"--zeta", "1", "--alpha", "2"});
    const auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

TEST(ConfigTest, HexIntegers)
{
    Config c = parse({"--mask=0xff"});
    EXPECT_EQ(c.getInt("mask", 0), 255);
}

TEST(ConfigTest, UnknownKeys)
{
    Config c = parse({"--rate", "0.1", "--oops", "--seed=3"});
    EXPECT_TRUE(c.unknownKeys({"rate", "oops", "seed"}).empty());
    const auto unknown = c.unknownKeys({"rate", "seed"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "oops");
    // requireKnown is a no-op when everything is known; the fatal
    // path (non-zero exit) is covered by the CLI smoke tests.
    c.requireKnown({"rate", "oops", "seed"});
}

} // namespace
} // namespace phastlane
