# Empty dependencies file for plpower.
# This may be replaced when dependencies are built.
