# Empty dependencies file for ploptical.
# This may be replaced when dependencies are built.
