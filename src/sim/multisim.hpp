/**
 * @file
 * MultiSim: lockstep batched execution of independent simulations
 * (DESIGN.md §13).
 *
 * A MultiSim owns nothing but the schedule: callers register Jobs —
 * a driver (traffic generator, harvesting, completion test) wrapped
 * around a batch-eligible PhastlaneNetwork — and runAll() advances
 * them cycle-by-cycle in gangs of up to the batch limit through a
 * core::NetworkBatch. Per-cycle driver work stays per-job (preStep /
 * postStep straddle each batched network cycle), so a job's observable
 * behavior — counters, delivery cycles, RNG streams — is bit-identical
 * to running it alone with net.step() in a loop.
 *
 * Jobs whose networks share a mesh shape are ganged together even when
 * registered apart; gangs run to completion one after another. A job
 * that finishes early (e.g. a saturated sweep point) simply stops
 * being stepped while the rest of its gang runs on.
 */

#ifndef PHASTLANE_SIM_MULTISIM_HPP
#define PHASTLANE_SIM_MULTISIM_HPP

#include <vector>

#include "core/batch.hpp"
#include "net/network.hpp"

namespace phastlane::sim {

/** True when @p net can run under a NetworkBatch: a PhastlaneNetwork
 *  with no shards, no observer, and an FCFS wavefront. */
bool batchable(const Network &net);

/**
 * Lockstep scheduler over driver Jobs (see file comment).
 */
class MultiSim
{
  public:
    /** Instances per gang when the caller does not choose: large
     *  enough to amortize the shared scratch, small enough that a
     *  gang's hot state stays cache-resident. */
    static constexpr int kDefaultBatch = 64;

    /** Consecutive cycles an instance runs before the scheduler moves
     *  to the next one. Strict 1-cycle round-robin over a large gang
     *  reloads each instance's router/NIC state from a far cache level
     *  on every one of its cycles; a quantum amortizes that migration
     *  over many cycles while the gang still advances together to
     *  within one quantum. Results are independent of the quantum
     *  (jobs are isolated), so this is purely a locality knob: big
     *  enough that reload cost per cycle is negligible, small next to
     *  any realistic job length. */
    static constexpr int kCycleQuantum = 256;

    /** One simulation under batched execution. The MultiSim calls
     *  preStep / postStep around every network cycle and stops
     *  stepping once done() turns true; the caller finalizes results
     *  after runAll() (the Job outlives the MultiSim). */
    class Job
    {
      public:
        virtual ~Job() = default;

        /** The network this job drives; must satisfy batchable(). */
        virtual core::PhastlaneNetwork &network() = 0;

        /** True when the job needs no more cycles. Checked before
         *  every cycle, exactly like a serial driver loop's
         *  condition. */
        virtual bool done() = 0;

        /** Injection side of the next cycle (runs before step). */
        virtual void preStep() = 0;

        /** Harvest side of the cycle (runs after step). */
        virtual void postStep() = 0;
    };

    /** @param batch_limit Max instances per gang; <= 0 selects
     *         kDefaultBatch, 1 degenerates to serial stepping. */
    explicit MultiSim(int batch_limit = 0)
        : batchLimit_(batch_limit <= 0 ? kDefaultBatch : batch_limit)
    {
    }

    /** Register @p job (caller keeps ownership; must outlive
     *  runAll()). The job's network must be batch-eligible. */
    void add(Job &job);

    /** Run every registered job to completion, gang by gang. */
    void runAll();

    int batchLimit() const { return batchLimit_; }

  private:
    void runGang(const std::vector<Job *> &gang);

    int batchLimit_;
    std::vector<Job *> jobs_;
};

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_MULTISIM_HPP
