# Empty dependencies file for plcore.
# This may be replaced when dependencies are built.
