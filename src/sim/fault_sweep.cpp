#include "sim/fault_sweep.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <deque>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

std::vector<std::string>
faultRateFields()
{
    std::vector<std::string> names;
#define PL_FAULT_NAME(name) names.push_back(#name);
    PL_FAULT_RATE_FIELDS(PL_FAULT_NAME)
#undef PL_FAULT_NAME
    return names;
}

bool
setFaultRate(core::PhastlaneParams::FaultInjection &fi,
             const std::string &name, double value)
{
#define PL_FAULT_SET(field)                                            \
    if (name == #field) {                                              \
        fi.field = value;                                              \
        return true;                                                   \
    }
    PL_FAULT_RATE_FIELDS(PL_FAULT_SET)
#undef PL_FAULT_SET
    return false;
}

bool
applyFaultFlags(const Config &args,
                core::PhastlaneParams::FaultInjection &faults)
{
    bool any = false;
    const auto rate = [&](const char *key, double &field) {
        if (!args.has(key))
            return;
        const double v = args.getDouble(key, 0.0);
        if (v < 0.0 || v > 1.0)
            fatal("--%s must be in [0, 1], got %g", key, v);
        field = v;
        any = true;
    };
    rate("fault-mis-turn", faults.misTurnRate);
    rate("fault-missed-receive", faults.missedReceiveRate);
    rate("fault-signal-loss", faults.dropSignalLossRate);
    rate("fault-corrupt", faults.dropperIdCorruptRate);
    rate("fault-router-fail", faults.routerFailRate);
    if (args.has("fault-seed")) {
        faults.faultSeed =
            static_cast<uint64_t>(args.getInt("fault-seed", 0));
        any = true;
    }
    return any;
}

std::vector<std::string>
faultFlagNames()
{
    return {"fault-mis-turn",    "fault-missed-receive",
            "fault-signal-loss", "fault-corrupt",
            "fault-router-fail", "fault-seed"};
}

std::vector<double>
defaultFaultGrid()
{
    // Integer-generated so the grid is exact: 0, then a coarse ramp
    // covering the regimes where retransmission still wins, struggles,
    // and finally loses messages outright.
    std::vector<double> rates{0.0};
    for (int m : {1, 2, 5, 10, 20, 35, 50})
        rates.push_back(m / 100.0);
    return rates;
}

namespace {

/**
 * Simulate one sweep point: Bernoulli traffic over its own network
 * (and optional ReliableNic), entirely self-contained so points can
 * run on any thread. Seeds derive from (cfg.seed, index).
 */
FaultSweepPoint
runFaultPoint(const FaultSweepConfig &cfg, size_t index)
{
    core::PhastlaneParams params = cfg.params;
    if (!setFaultRate(params.faults, cfg.sweepField, cfg.rates[index]))
        fatal("fault sweep: unknown fault rate field '%s'",
              cfg.sweepField.c_str());
    const uint64_t pointSeed = derivePointSeed(cfg.seed, index);
    params.faults.faultSeed = pointSeed;
    params.seed = pointSeed;

    core::PhastlaneNetwork net(params);
    core::ReliableNic rnic(net, cfg.reliableOpts);
    const int nodes = net.nodeCount();

    FaultSweepPoint pt;
    pt.faultRate = cfg.rates[index];

    Rng traffic(derivePointSeed(pointSeed, 0x7261666654ull));
    std::vector<std::deque<Packet>> sourceQueues(
        static_cast<size_t>(nodes));
    uint64_t nextId = 1;

    auto pump = [&]() {
        for (NodeId n = 0; n < nodes; ++n) {
            auto &q = sourceQueues[static_cast<size_t>(n)];
            while (!q.empty() && net.nicHasSpace(n)) {
                const bool ok = cfg.reliable ? rnic.send(q.front())
                                             : net.inject(q.front());
                if (!ok)
                    break;
                pt.unitsExpected += static_cast<uint64_t>(
                    q.front().deliveryCount(nodes));
                q.pop_front();
            }
        }
    };
    auto harvest = [&]() {
        const auto &ds =
            cfg.reliable ? rnic.deliveries() : net.deliveries();
        pt.unitsDelivered += ds.size();
    };

    Cycle cycle = 0;
    for (; cycle < cfg.measureCycles; ++cycle) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (!traffic.bernoulli(cfg.injectionRate))
                continue;
            Packet pkt;
            pkt.id = nextId++;
            pkt.src = n;
            pkt.broadcast = traffic.bernoulli(cfg.broadcastFraction);
            pkt.dst = pkt.broadcast
                          ? kInvalidNode
                          : static_cast<NodeId>(traffic.uniformInt(
                                0, nodes - 1));
            if (!pkt.broadcast && pkt.dst == n)
                pkt.dst = static_cast<NodeId>((n + 1) % nodes);
            pkt.createdAt = cycle;
            sourceQueues[static_cast<size_t>(n)].push_back(pkt);
            ++pt.messagesOffered;
        }
        pump();
        if (cfg.reliable)
            rnic.step();
        else
            net.step();
        harvest();
    }

    auto quiescent = [&]() {
        if (net.inFlight() != 0 || net.bufferedPackets() != 0
            || net.nicQueuedPackets() != 0)
            return false;
        if (cfg.reliable && !rnic.idle())
            return false;
        for (const auto &q : sourceQueues)
            if (!q.empty())
                return false;
        return true;
    };
    Cycle drained = 0;
    for (; drained < cfg.maxDrainCycles && !quiescent(); ++drained) {
        pump();
        if (cfg.reliable)
            rnic.step();
        else
            net.step();
        harvest();
    }
    pt.drained = quiescent();
    pt.cycles = cycle + drained;

    pt.drops = net.phastlaneCounters().drops;
    pt.retransmissions = net.phastlaneCounters().retransmissions;
    pt.events = net.events();
    if (cfg.reliable)
        pt.e2e = rnic.stats();
    return pt;
}

void
appendF(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::vector<FaultSweepPoint>
runFaultSweep(const FaultSweepConfig &cfg)
{
    const size_t n = cfg.rates.size();
    std::vector<FaultSweepPoint> points(n);
    parallelFor(
        n, [&](size_t i) { points[i] = runFaultPoint(cfg, i); },
        cfg.threads);
    return points;
}

std::string
faultSweepToJson(const FaultSweepConfig &cfg,
                 const std::vector<FaultSweepPoint> &pts)
{
    std::string out;
    out.reserve(pts.size() * 512 + 512);
    appendF(out,
            "{\n\"sweep_field\": \"%s\",\n\"reliable\": %s,\n"
            "\"injection_rate\": %.6f,\n\"broadcast_fraction\": %.6f,\n"
            "\"seed\": %" PRIu64 ",\n\"points\": [\n",
            cfg.sweepField.c_str(), cfg.reliable ? "true" : "false",
            cfg.injectionRate, cfg.broadcastFraction, cfg.seed);
    for (size_t i = 0; i < pts.size(); ++i) {
        const FaultSweepPoint &p = pts[i];
        appendF(out,
                "{\"fault_rate\": %.6f, \"messages_offered\": %" PRIu64
                ", \"units_expected\": %" PRIu64
                ", \"units_delivered\": %" PRIu64
                ", \"cycles\": %" PRIu64 ", \"drained\": %s,\n"
                " \"drops\": %" PRIu64 ", \"retransmissions\": %" PRIu64
                ", \"lost_units\": %" PRIu64
                ", \"drop_signals_lost\": %" PRIu64
                ", \"duplicates_suppressed\": %" PRIu64 ",\n"
                " \"fault_mis_turns\": %" PRIu64
                ", \"fault_missed_receives\": %" PRIu64
                ", \"fault_corruptions\": %" PRIu64
                ", \"fault_dead_arrivals\": %" PRIu64 ",\n"
                " \"e2e\": {\"sends\": %" PRIu64
                ", \"retransmits\": %" PRIu64 ", \"timeouts\": %" PRIu64
                ", \"duplicates\": %" PRIu64 ", \"late\": %" PRIu64
                ", \"completed\": %" PRIu64 ", \"expired\": %" PRIu64
                ", \"lost_units\": %" PRIu64 "}}%s\n",
                p.faultRate, p.messagesOffered, p.unitsExpected,
                p.unitsDelivered, p.cycles,
                p.drained ? "true" : "false", p.drops,
                p.retransmissions, p.events.lostUnits,
                p.events.dropSignalsLost,
                p.events.duplicatesSuppressed, p.events.faultMisTurns,
                p.events.faultMissedReceives, p.events.faultCorruptions,
                p.events.faultDeadArrivals, p.e2e.sends,
                p.e2e.retransmits, p.e2e.timeouts, p.e2e.duplicates,
                p.e2e.late, p.e2e.completed, p.e2e.expired,
                p.e2e.lostUnits, i + 1 < pts.size() ? "," : "");
    }
    out += "]\n}\n";
    return out;
}

void
writeFaultSweepJson(const FaultSweepConfig &cfg,
                    const std::vector<FaultSweepPoint> &pts,
                    const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write fault sweep to %s", path.c_str());
    const std::string text = faultSweepToJson(cfg, pts);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace phastlane::sim
