/**
 * @file
 * Phastlane-internal packet state: the immutable message plus the
 * mutable delivery bookkeeping a branch carries through buffering and
 * retransmission.
 */

#ifndef PHASTLANE_CORE_PACKET_HPP
#define PHASTLANE_CORE_PACKET_HPP

#include <vector>

#include "net/packet.hpp"

namespace phastlane::core {

/**
 * One optical packet: a unicast message or one multicast branch of a
 * broadcast.
 */
struct OpticalPacket {
    Packet base;

    /** Network-unique id of this packet/branch instance (branches of
     *  one broadcast share base.id but not branchId). */
    uint64_t branchId = 0;

    /** Final destination of this packet/branch. */
    NodeId finalDst = kInvalidNode;

    /** True for a multicast branch. */
    bool multicast = false;

    /**
     * Remaining multicast delivery targets in path order (the last one
     * is finalDst). Served taps are removed in flight, so after a drop
     * the retransmission covers exactly the unserved nodes (the paper
     * clears the Multicast bits of nodes identified via the dropped
     * packet's return-path Node ID).
     */
    std::vector<NodeId> taps;

    /** Cycle the message entered the source NIC queue. */
    Cycle acceptedAt = 0;

    /** Cycle of the first optical launch (kNeverCycle until then). */
    Cycle firstInjectedAt = kNeverCycle;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_PACKET_HPP
