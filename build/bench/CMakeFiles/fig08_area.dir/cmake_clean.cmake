file(REMOVE_RECURSE
  "CMakeFiles/fig08_area.dir/fig08_area.cpp.o"
  "CMakeFiles/fig08_area.dir/fig08_area.cpp.o.d"
  "fig08_area"
  "fig08_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
