
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/electrical/network.cpp" "src/electrical/CMakeFiles/plelectrical.dir/network.cpp.o" "gcc" "src/electrical/CMakeFiles/plelectrical.dir/network.cpp.o.d"
  "/root/repo/src/electrical/nic.cpp" "src/electrical/CMakeFiles/plelectrical.dir/nic.cpp.o" "gcc" "src/electrical/CMakeFiles/plelectrical.dir/nic.cpp.o.d"
  "/root/repo/src/electrical/router.cpp" "src/electrical/CMakeFiles/plelectrical.dir/router.cpp.o" "gcc" "src/electrical/CMakeFiles/plelectrical.dir/router.cpp.o.d"
  "/root/repo/src/electrical/vctm.cpp" "src/electrical/CMakeFiles/plelectrical.dir/vctm.cpp.o" "gcc" "src/electrical/CMakeFiles/plelectrical.dir/vctm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/plnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plcommon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
