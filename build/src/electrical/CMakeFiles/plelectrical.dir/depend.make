# Empty dependencies file for plelectrical.
# This may be replaced when dependencies are built.
