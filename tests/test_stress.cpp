/**
 * @file
 * Randomized stress tests: conservation and drain invariants of both
 * networks under seeded random traffic mixes, parameterized over
 * seeds. Every message accepted by a NIC must eventually produce
 * exactly its delivery count, no matter the contention, drops, or
 * retransmissions along the way.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "electrical/network.hpp"

namespace phastlane {
namespace {

struct Offered {
    uint64_t messages = 0;
    uint64_t expectedDeliveries = 0;
};

/** Pump a random mix of unicasts and broadcasts for @p cycles. */
Offered
pumpRandomTraffic(Network &net, Rng &rng, int cycles, double rate,
                  double bcast_frac)
{
    Offered off;
    PacketId id = 1;
    for (int c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (!rng.bernoulli(rate))
                continue;
            Packet pkt;
            pkt.id = id++;
            pkt.src = n;
            pkt.createdAt = net.now();
            if (rng.bernoulli(bcast_frac)) {
                pkt.broadcast = true;
            } else {
                do {
                    pkt.dst = static_cast<NodeId>(
                        rng.uniformInt(0, net.nodeCount() - 1));
                } while (pkt.dst == n);
            }
            if (net.inject(pkt)) {
                ++off.messages;
                off.expectedDeliveries += static_cast<uint64_t>(
                    pkt.deliveryCount(net.nodeCount()));
            }
        }
        net.step();
    }
    return off;
}

void
drain(Network &net, int max_cycles = 500000)
{
    int guard = 0;
    while (net.inFlight() > 0 && guard++ < max_cycles)
        net.step();
    ASSERT_EQ(net.inFlight(), 0u) << "network failed to drain";
}

class StressSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(StressSeeds, PhastlaneConservesDeliveries)
{
    core::PhastlaneParams p;
    p.routerBufferEntries = 4; // provoke drops
    p.seed = GetParam();
    core::PhastlaneNetwork net(p);
    Rng rng(GetParam());
    const Offered off = pumpRandomTraffic(net, rng, 300, 0.05, 0.3);
    drain(net);
    EXPECT_EQ(net.counters().deliveries, off.expectedDeliveries);
    EXPECT_EQ(net.counters().messagesAccepted, off.messages);
}

TEST_P(StressSeeds, PhastlaneSharedPoolConserves)
{
    core::PhastlaneParams p;
    p.routerBufferEntries = 4;
    p.sharedBufferPool = true;
    p.bufferArbitration = core::BufferArbitration::OldestFirst;
    p.seed = GetParam();
    core::PhastlaneNetwork net(p);
    Rng rng(GetParam() ^ 0xabcdef);
    const Offered off = pumpRandomTraffic(net, rng, 300, 0.05, 0.3);
    drain(net);
    EXPECT_EQ(net.counters().deliveries, off.expectedDeliveries);
}

TEST_P(StressSeeds, ElectricalConservesDeliveries)
{
    electrical::ElectricalParams p;
    p.seed = GetParam();
    electrical::ElectricalNetwork net(p);
    Rng rng(GetParam());
    const Offered off = pumpRandomTraffic(net, rng, 300, 0.05, 0.3);
    drain(net);
    EXPECT_EQ(net.counters().deliveries, off.expectedDeliveries);
}

TEST_P(StressSeeds, NetworksAgreeOnDeliveryCounts)
{
    core::PhastlaneNetwork opt{core::PhastlaneParams{}};
    electrical::ElectricalNetwork elec{
        electrical::ElectricalParams{}};
    // Same RNG seed: identical offered traffic except for NIC
    // rejections; verify both deliver what they accepted.
    for (Network *net : {static_cast<Network *>(&opt),
                         static_cast<Network *>(&elec)}) {
        Rng rng(GetParam());
        const Offered off =
            pumpRandomTraffic(*net, rng, 200, 0.03, 0.2);
        drain(*net);
        EXPECT_EQ(net->counters().deliveries,
                  off.expectedDeliveries);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           0xdeadbeef));

} // namespace
} // namespace phastlane
