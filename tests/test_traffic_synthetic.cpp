/**
 * @file
 * Open-loop synthetic driver tests on both networks.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "traffic/synthetic.hpp"

namespace phastlane::traffic {
namespace {

TEST(Synthetic, OfferedRateMatchesConfig)
{
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    SyntheticConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 4000;
    SyntheticDriver d(net, cfg);
    const SyntheticResult r = d.run();
    EXPECT_NEAR(r.offeredRate, 0.05, 0.005);
    EXPECT_FALSE(r.saturated);
}

TEST(Synthetic, LowLoadAcceptsEverythingOffered)
{
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    SyntheticConfig cfg;
    cfg.injectionRate = 0.02;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 3000;
    SyntheticDriver d(net, cfg);
    const SyntheticResult r = d.run();
    EXPECT_NEAR(r.acceptedRate, r.offeredRate, 0.002);
    EXPECT_GT(r.measuredPackets, 0u);
}

TEST(Synthetic, OpticalLatencyFarBelowElectricalAtLowLoad)
{
    SyntheticConfig cfg;
    cfg.injectionRate = 0.02;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 2000;

    core::PhastlaneNetwork opt(core::PhastlaneParams{});
    electrical::ElectricalNetwork elec(
        electrical::ElectricalParams{});
    const SyntheticResult ro = SyntheticDriver(opt, cfg).run();
    const SyntheticResult re = SyntheticDriver(elec, cfg).run();
    // Paper Fig 9: roughly 5-10X lower latency.
    EXPECT_GT(re.avgLatency / ro.avgLatency, 4.0);
}

TEST(Synthetic, LatencyRisesWithLoad)
{
    double prev = 0.0;
    for (double rate : {0.02, 0.15, 0.25}) {
        electrical::ElectricalNetwork net(
            electrical::ElectricalParams{});
        SyntheticConfig cfg;
        cfg.injectionRate = rate;
        cfg.warmupCycles = 300;
        cfg.measureCycles = 2000;
        const SyntheticResult r = SyntheticDriver(net, cfg).run();
        EXPECT_GE(r.avgLatency, prev);
        prev = r.avgLatency;
    }
}

TEST(Synthetic, OverloadIsDetectedAsSaturation)
{
    electrical::ElectricalNetwork net(electrical::ElectricalParams{});
    SyntheticConfig cfg;
    cfg.pattern = Pattern::BitComplement;
    cfg.injectionRate = 0.6; // far beyond capacity
    cfg.warmupCycles = 200;
    cfg.measureCycles = 3000;
    const SyntheticResult r = SyntheticDriver(net, cfg).run();
    EXPECT_TRUE(r.saturated);
}

TEST(Synthetic, BroadcastFractionProducesExtraDeliveries)
{
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    SyntheticConfig cfg;
    cfg.injectionRate = 0.005;
    cfg.broadcastFraction = 0.5;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 2000;
    const SyntheticResult r = SyntheticDriver(net, cfg).run();
    // Each broadcast yields 63 deliveries, so the delivered rate far
    // exceeds the injection rate.
    EXPECT_GT(r.acceptedRate, 5.0 * r.offeredRate);
}

TEST(Synthetic, NetLatencyExcludesSourceQueueing)
{
    electrical::ElectricalNetwork net(electrical::ElectricalParams{});
    SyntheticConfig cfg;
    cfg.injectionRate = 0.2;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 2000;
    const SyntheticResult r = SyntheticDriver(net, cfg).run();
    EXPECT_LE(r.avgNetLatency, r.avgLatency + 1e-9);
}

TEST(Synthetic, DeterministicForSeed)
{
    auto run = [] {
        core::PhastlaneNetwork net(core::PhastlaneParams{});
        SyntheticConfig cfg;
        cfg.injectionRate = 0.05;
        cfg.warmupCycles = 100;
        cfg.measureCycles = 1000;
        cfg.seed = 99;
        return SyntheticDriver(net, cfg).run();
    };
    const SyntheticResult a = run();
    const SyntheticResult b = run();
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
}

} // namespace
} // namespace phastlane::traffic
