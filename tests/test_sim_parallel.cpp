/**
 * @file
 * Tests of the parallel simulation harness (sim/parallel.hpp): the
 * work-stealing pool itself, and the determinism contract -- sweeps
 * and experiments produce bit-identical results at any thread count.
 */

#include <algorithm>
#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"
#include "traffic/splash.hpp"

namespace phastlane::sim {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossRuns)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<size_t> sum{0};
        pool.run(100, [&](size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 5050u);
    }
}

TEST(ThreadPool, PropagatesTheFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.run(16,
                          [&](size_t i) {
                              if (i == 7)
                                  throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool survives a throwing run.
    std::atomic<int> ran{0};
    pool.run(8, [&](size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelFor, SerialAndZeroSizedEdgeCases)
{
    int ran = 0;
    parallelFor(0, [&](size_t) { ++ran; }, 4);
    EXPECT_EQ(ran, 0);
    parallelFor(5, [&](size_t) { ++ran; }, 1);
    EXPECT_EQ(ran, 5);
}

TEST(ParallelFor, DerivedSeedsAreStableAndDistinct)
{
    // Stability across calls and platforms (golden-free: identical
    // recomputation), distinctness across indices and bases.
    std::vector<uint64_t> seeds;
    for (uint64_t i = 0; i < 64; ++i) {
        seeds.push_back(derivePointSeed(12345, i));
        EXPECT_EQ(seeds.back(), derivePointSeed(12345, i));
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
    EXPECT_NE(derivePointSeed(1, 0), derivePointSeed(2, 0));
}

TEST(ResolveThreadCount, ExplicitRequestWins)
{
    EXPECT_EQ(resolveThreadCount(3), 3);
    EXPECT_GE(resolveThreadCount(0), 1);
}

/** The default rate grid must have exact, drift-free endpoints. */
TEST(RateGrid, IntegerGeneratedEndpoints)
{
    const auto rates = defaultRateGrid();
    ASSERT_EQ(rates.size(), 26u); // 9 fine + 17 coarse points
    EXPECT_EQ(rates.front(), 0.01);
    EXPECT_EQ(rates[8], 0.09);
    EXPECT_EQ(rates[9], 0.10);
    EXPECT_EQ(rates.back(), 0.50); // exactly, not 0.499999...
    for (size_t i = 1; i < rates.size(); ++i)
        EXPECT_GT(rates[i], rates[i - 1]);
}

SweepConfig
smallSweep(int threads)
{
    SweepConfig sc;
    sc.pattern = traffic::Pattern::Transpose;
    sc.rates = {0.02, 0.05, 0.10, 0.20, 0.30, 0.40};
    sc.warmupCycles = 200;
    sc.measureCycles = 800;
    sc.seed = 99;
    sc.threads = threads;
    return sc;
}

void
expectIdenticalPoints(const std::vector<SweepPoint> &a,
                      const std::vector<SweepPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].injectionRate, b[i].injectionRate);
        EXPECT_EQ(a[i].result.avgLatency, b[i].result.avgLatency);
        EXPECT_EQ(a[i].result.p99Latency, b[i].result.p99Latency);
        EXPECT_EQ(a[i].result.acceptedRate,
                  b[i].result.acceptedRate);
        EXPECT_EQ(a[i].result.offeredRate, b[i].result.offeredRate);
        EXPECT_EQ(a[i].result.measuredPackets,
                  b[i].result.measuredPackets);
        EXPECT_EQ(a[i].result.saturated, b[i].result.saturated);
    }
}

TEST(ParallelSweep, BitIdenticalToSerial)
{
    const auto serial =
        runSweep(makeConfig("Optical4"), smallSweep(1));
    const auto parallel =
        runSweep(makeConfig("Optical4"), smallSweep(4));
    expectIdenticalPoints(serial, parallel);
}

TEST(ParallelSweep, SaturationTruncationMatchesSerial)
{
    // Electrical2 saturates within this grid, exercising the
    // wave-and-truncate early-exit path of the parallel sweep.
    auto sc1 = smallSweep(1);
    auto sc4 = smallSweep(4);
    sc1.stopAtSaturation = sc4.stopAtSaturation = true;
    const auto serial = runSweep(makeConfig("Electrical2"), sc1);
    const auto parallel = runSweep(makeConfig("Electrical2"), sc4);
    expectIdenticalPoints(serial, parallel);
}

TEST(ParallelExperiment, BitIdenticalToSerial)
{
    ExperimentSpec spec;
    spec.configs = {"Electrical3", "Optical4"};
    const auto suite = traffic::splashSuite();
    ASSERT_GE(suite.size(), 2u);
    spec.benchmarks = {suite[0], suite[1]};
    spec.txnsPerNode = 20;
    spec.seed = 7;

    spec.threads = 1;
    const auto serial = runExperiment(spec);
    spec.threads = 4;
    const auto parallel = runExperiment(spec);

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 4u);
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
        EXPECT_EQ(serial[i].config, parallel[i].config);
        EXPECT_EQ(serial[i].result.completionCycles,
                  parallel[i].result.completionCycles);
        EXPECT_EQ(serial[i].result.transactions,
                  parallel[i].result.transactions);
        EXPECT_EQ(serial[i].result.avgMessageLatency,
                  parallel[i].result.avgMessageLatency);
        EXPECT_EQ(serial[i].drops, parallel[i].drops);
        EXPECT_EQ(serial[i].power.totalW, parallel[i].power.totalW);
    }
    // Grouped by benchmark, configs in specification order.
    EXPECT_EQ(serial[0].benchmark, serial[1].benchmark);
    EXPECT_EQ(serial[0].config, "Electrical3");
    EXPECT_EQ(serial[1].config, "Optical4");
}

} // namespace
} // namespace phastlane::sim
