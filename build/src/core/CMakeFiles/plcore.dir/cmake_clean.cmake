file(REMOVE_RECURSE
  "CMakeFiles/plcore.dir/control.cpp.o"
  "CMakeFiles/plcore.dir/control.cpp.o.d"
  "CMakeFiles/plcore.dir/network.cpp.o"
  "CMakeFiles/plcore.dir/network.cpp.o.d"
  "CMakeFiles/plcore.dir/nic.cpp.o"
  "CMakeFiles/plcore.dir/nic.cpp.o.d"
  "CMakeFiles/plcore.dir/return_path.cpp.o"
  "CMakeFiles/plcore.dir/return_path.cpp.o.d"
  "CMakeFiles/plcore.dir/router.cpp.o"
  "CMakeFiles/plcore.dir/router.cpp.o.d"
  "libplcore.a"
  "libplcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
