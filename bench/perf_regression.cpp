/**
 * @file
 * Simulator performance regression harness (not a paper artifact).
 *
 * Measures, with wall-clock timers:
 *   1. PhastlaneNetwork::step() throughput (cycles/sec and
 *      node-cycles/sec) under the micro_router_step uniform-random
 *      workload, exercising the flat-array wavefront hot path;
 *   2. sweep wall-clock at 1, 2, and N simulation threads over a
 *      fixed (non-early-exit) rate grid, exercising the parallel
 *      dispatch in runSweep().
 *
 * Emits BENCH_perf.json (override with --out <path>) so the perf
 * trajectory is tracked across PRs; --quick shrinks the workload for
 * CI smoke runs.
 *
 * With --baseline <path> the harness becomes a gate: it compares
 * step_cycles_per_sec against the baseline JSON and fails (without
 * touching --out) when throughput falls below --gate-ratio (default
 * 0.70, i.e. a >30% regression) of the baseline. A missing baseline
 * is reported and skipped, not failed, so fresh checkouts still run.
 *
 * The gate never rewrites the baseline implicitly: refreshing the
 * committed BENCH_perf.json requires the explicit --update-baseline
 * flag, which copies this run's results over the baseline path only
 * after the gate has passed.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "sim/configs.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"
#include "traffic/patterns.hpp"

using namespace phastlane;
using namespace phastlane::sim;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** step() throughput under Bernoulli uniform-random load. */
double
stepThroughput(uint64_t cycles, double rate)
{
    core::PhastlaneParams params;
    core::PhastlaneNetwork net(params);
    Rng rng(7);
    PacketId id = 1;
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t c = 0; c < cycles; ++c) {
        for (NodeId n = 0; n < net.nodeCount(); ++n) {
            if (rng.bernoulli(rate)) {
                Packet p;
                p.id = id++;
                p.src = n;
                p.dst = traffic::destination(
                    traffic::Pattern::UniformRandom, n, net.mesh(),
                    rng);
                p.createdAt = net.now();
                net.inject(p);
            }
        }
        net.step();
    }
    const double secs = secondsSince(start);
    return secs > 0.0 ? static_cast<double>(cycles) / secs : 0.0;
}

/** Wall-clock of one fixed-size sweep at the given thread count. */
double
sweepSeconds(const SweepConfig &base, int threads)
{
    SweepConfig sc = base;
    sc.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto pts = runSweep(makeConfig("Optical4"), sc);
    const double secs = secondsSince(start);
    if (pts.size() != base.rates.size())
        std::fprintf(stderr,
                     "warning: sweep truncated (%zu/%zu points)\n",
                     pts.size(), base.rates.size());
    return secs;
}

/** step_cycles_per_sec from a previous run's JSON, or -1. */
double
readBaselineStepRate(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1.0;
    std::string text(1 << 16, '\0');
    const size_t n = std::fread(text.data(), 1, text.size(), f);
    std::fclose(f);
    text.resize(n);
    const std::string key = "\"step_cycles_per_sec\":";
    const size_t pos = text.find(key);
    if (pos == std::string::npos)
        return -1.0;
    return std::atof(text.c_str() + pos + key.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const std::string out =
        opts.raw.getString("out", "BENCH_perf.json");
    const int max_threads = opts.threads;

    // 1. Single-thread step() throughput (the hot-path metric).
    const uint64_t warm_cycles = opts.quick ? 500 : 2000;
    const uint64_t cycles = opts.quick ? 2000 : 20000;
    const double rate = 0.10;
    stepThroughput(warm_cycles, rate); // warm caches/allocator
    const double steps_per_sec = stepThroughput(cycles, rate);
    std::printf("step() throughput: %.0f cycles/sec "
                "(%.2fM node-cycles/sec, rate %.2f, %llu cycles)\n",
                steps_per_sec, steps_per_sec * 64 / 1e6, rate,
                static_cast<unsigned long long>(cycles));

    // 2. Sweep wall-clock scaling over threads.
    SweepConfig sc;
    sc.pattern = traffic::Pattern::UniformRandom;
    sc.warmupCycles = opts.quick ? 200 : 1000;
    sc.measureCycles = opts.quick ? 800 : 4000;
    sc.seed = opts.seed;
    sc.stopAtSaturation = false; // constant work per thread count
    {
        const int points = opts.quick ? 8 : 16;
        for (int i = 1; i <= points; ++i)
            sc.rates.push_back(0.28 * i / points);
    }

    std::vector<int> thread_counts = {1};
    if (max_threads >= 2)
        thread_counts.push_back(2);
    if (max_threads > 2)
        thread_counts.push_back(max_threads);

    std::vector<std::pair<int, double>> sweep_times;
    double serial_secs = 0.0;
    for (int t : thread_counts) {
        const double secs = sweepSeconds(sc, t);
        if (t == 1)
            serial_secs = secs;
        sweep_times.emplace_back(t, secs);
        std::printf("sweep wall-clock @ %2d threads: %7.3f s "
                    "(speedup %.2fx)\n",
                    t, secs, secs > 0.0 ? serial_secs / secs : 0.0);
    }

    // Gate before writing: a failing run must not refresh the
    // baseline it just failed against.
    const std::string baseline = opts.raw.getString("baseline", "");
    if (!baseline.empty()) {
        const double base = readBaselineStepRate(baseline);
        if (base <= 0.0) {
            std::printf("[no usable baseline at %s, gate skipped]\n",
                        baseline.c_str());
        } else {
            const double ratio =
                opts.raw.getDouble("gate-ratio", 0.70);
            std::printf("gate: %.0f cycles/sec vs baseline %.0f "
                        "(%.0f%%, floor %.0f%%)\n",
                        steps_per_sec, base,
                        100.0 * steps_per_sec / base, 100.0 * ratio);
            if (steps_per_sec < base * ratio) {
                std::fprintf(stderr,
                             "FAIL: step() throughput regressed "
                             "below %.0f%% of baseline\n",
                             100.0 * ratio);
                return 1;
            }
        }
    }

    const auto writeJson = [&](const std::string &path) -> bool {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"quick\": %s,\n",
                     opts.quick ? "true" : "false");
        std::fprintf(f, "  \"step_cycles_per_sec\": %.1f,\n",
                     steps_per_sec);
        std::fprintf(f, "  \"step_node_cycles_per_sec\": %.1f,\n",
                     steps_per_sec * 64);
        std::fprintf(f, "  \"sweep\": [\n");
        for (size_t i = 0; i < sweep_times.size(); ++i) {
            const auto &[t, secs] = sweep_times[i];
            std::fprintf(
                f,
                "    {\"threads\": %d, \"seconds\": %.4f, "
                "\"speedup\": %.3f}%s\n",
                t, secs, secs > 0.0 ? serial_secs / secs : 0.0,
                i + 1 < sweep_times.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("[perf json written to %s]\n", path.c_str());
        return true;
    };

    if (!writeJson(out))
        return 1;

    // Baseline refresh is opt-in only: a gate run must never rewrite
    // the baseline it just measured against as a side effect.
    if (opts.raw.getBool("update-baseline", false)) {
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "--update-baseline requires --baseline\n");
            return 1;
        }
        if (baseline != out && !writeJson(baseline))
            return 1;
        std::printf("[baseline refreshed at %s]\n", baseline.c_str());
    }
    return 0;
}
