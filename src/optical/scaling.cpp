#include "optical/scaling.hpp"

#include <cmath>

#include "common/log.hpp"

namespace phastlane::optical {

const char *
scalingName(Scaling s)
{
    switch (s) {
      case Scaling::Optimistic: return "optimistic";
      case Scaling::Average: return "average";
      case Scaling::Pessimistic: return "pessimistic";
    }
    return "?";
}

DeviceScalingModel::DeviceScalingModel()
    // Anchors calibrated so the 16 nm extrapolations are:
    //   transmit: log 8.0 ps, linear ~14.9 ps, exp 19.4 ps
    //   receive:  log 1.8 ps, linear ~3.0 ps,  exp 3.7 ps
    // matching the paper's published 16 nm ranges.
    : tx22_(24.7), tx45_(62.2), rx22_(4.64), rx45_(11.02)
{
}

double
DeviceScalingModel::fit(Scaling s, double d22, double d45, double node_nm)
{
    PL_ASSERT(node_nm > 0.0, "technology node must be positive");
    switch (s) {
      case Scaling::Optimistic: {
        // d(x) = a + b ln x through both anchors.
        const double b = (d45 - d22) / std::log(45.0 / 22.0);
        const double a = d22 - b * std::log(22.0);
        return a + b * std::log(node_nm);
      }
      case Scaling::Average: {
        // d(x) = a + b x.
        const double b = (d45 - d22) / (45.0 - 22.0);
        const double a = d22 - b * 22.0;
        return a + b * node_nm;
      }
      case Scaling::Pessimistic: {
        // d(x) = A e^{kx}.
        const double k = std::log(d45 / d22) / (45.0 - 22.0);
        const double lnA = std::log(d22) - k * 22.0;
        return std::exp(lnA + k * node_nm);
      }
    }
    panic("unknown scaling scenario");
}

double
DeviceScalingModel::txDelayPs(Scaling s, double node_nm) const
{
    return fit(s, tx22_, tx45_, node_nm);
}

double
DeviceScalingModel::rxDelayPs(Scaling s, double node_nm) const
{
    return fit(s, rx22_, rx45_, node_nm);
}

} // namespace phastlane::optical
