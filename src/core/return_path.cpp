#include "core/return_path.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::core {

ReturnPathRegistry::ReturnPathRegistry(int node_count)
    : nodeCount_(node_count),
      latch_(static_cast<size_t>(node_count) * kMeshPorts, 0),
      used_(static_cast<size_t>(node_count) * kMeshPorts, 0)
{
}

size_t
ReturnPathRegistry::index(NodeId router, Port out) const
{
    PL_ASSERT(router >= 0 && router < nodeCount_, "bad router id");
    return static_cast<size_t>(router) * kMeshPorts + portIndex(out);
}

void
ReturnPathRegistry::beginCycle()
{
    std::fill(latch_.begin(), latch_.end(), 0);
    std::fill(used_.begin(), used_.end(), 0);
    claimed_ = 0;
    latched_ = 0;
}

void
ReturnPathRegistry::registerHop(NodeId router, Port in, Port out)
{
    PL_ASSERT(out != Port::Local, "return path needs a mesh exit port");
    uint8_t &slot = latch_[index(router, out)];
    // An output port carries one packet per cycle, so at most one
    // reverse connection can be latched per (router, out).
    PL_ASSERT(slot == 0,
              "two packets latched the same return connection at "
              "router %d port %s", router, portName(out));
    slot = static_cast<uint8_t>(portIndex(in) + 1);
    ++latched_;
}

int
ReturnPathRegistry::signalDrop(const std::vector<ReturnHop> &path)
{
    // The signal flows from the dropping router back toward the
    // source, traversing each latched connection in reverse order.
    int hops = 0;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        const size_t idx = index(it->router, it->packetOut);
        PL_ASSERT(latch_[idx] ==
                      static_cast<uint8_t>(portIndex(it->packetIn) + 1),
                  "drop signal found an unlatched return connection "
                  "at router %d", it->router);
        // Footnote 4: return paths of distinct packets cannot overlap
        // within a cycle.
        if (used_[idx] != 0) {
            panic("overlapping drop-signal return paths at router %d "
                  "port %s", it->router, portName(it->packetOut));
        }
        used_[idx] = 1;
        ++claimed_;
        ++hops;
    }
    // Plus the final link back into the source's receiver.
    return hops + 1;
}

} // namespace phastlane::core
