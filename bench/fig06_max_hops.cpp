/**
 * @file
 * Figure 6: maximum hops a packet can travel in a single 4 GHz cycle
 * for different wavelength counts and scaling assumptions.
 * Paper: 8 / 5 / 4 hops, independent of the wavelength count.
 */

#include "bench_util.hpp"
#include "optical/timing.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const double freq = opts.raw.getDouble("freq", 4.0);

    TextTable t({"lambda", "optimistic", "average", "pessimistic"});
    for (int wl : {16, 32, 64, 128, 256}) {
        t.addRow({TextTable::num(int64_t{wl}),
                  TextTable::num(int64_t{
                      RouterTimingModel(Scaling::Optimistic, wl)
                          .maxHopsPerCycle(freq)}),
                  TextTable::num(int64_t{
                      RouterTimingModel(Scaling::Average, wl)
                          .maxHopsPerCycle(freq)}),
                  TextTable::num(int64_t{
                      RouterTimingModel(Scaling::Pessimistic, wl)
                          .maxHopsPerCycle(freq)})});
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig 6: max hops per %.1f GHz cycle "
                  "(paper: 8/5/4, wavelength-independent)", freq);
    bench::emit(opts, title, t);
    return 0;
}
