/**
 * @file
 * Tables 1-4: the configuration tables of the paper, printed from the
 * actual parameter structs the simulators run with (so any divergence
 * between documentation and code is impossible).
 */

#include "bench_util.hpp"
#include "core/params.hpp"
#include "electrical/params.hpp"
#include "optical/devices.hpp"
#include "traffic/splash.hpp"

using namespace phastlane;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    // Table 1: optical network configuration.
    {
        core::PhastlaneParams p;
        optical::PacketFormat f;
        TextTable t({"parameter", "value"});
        t.addRow({"Flits per packet", "1 (80 bytes)"});
        t.addRow({"Packet payload WDM",
                  TextTable::num(int64_t{p.wavelengths})});
        t.addRow({"Packet payload waveguides",
                  TextTable::num(int64_t{
                      f.payloadWaveguides(p.wavelengths)})});
        t.addRow({"Routing function", "Dimension-order"});
        t.addRow({"Packet control bits",
                  TextTable::num(int64_t{f.controlBits})});
        t.addRow({"Packet control WDM",
                  TextTable::num(int64_t{f.controlWdm})});
        t.addRow({"Packet control waveguides",
                  TextTable::num(int64_t{f.controlWaveguides()})});
        t.addRow({"Buffer entries in NIC",
                  TextTable::num(int64_t{p.nicQueueEntries})});
        t.addRow({"Max hops per cycle", "4, 5, or 8"});
        t.addRow({"Router buffer entries (default)",
                  TextTable::num(int64_t{p.routerBufferEntries})});
        t.addRow({"Node transmit arbitration", "Rotating priority"});
        t.addRow({"Network path arbitration", "Fixed priority"});
        bench::emit(opts, "Table 1: optical network configuration", t,
                    "table1");
    }

    // Table 2: baseline electrical router parameters.
    {
        electrical::ElectricalParams p;
        TextTable t({"parameter", "value"});
        t.addRow({"Flits per packet", "1 (80 bytes)"});
        t.addRow({"Routing function", "Dimension-order"});
        t.addRow({"Number of VCs per port",
                  TextTable::num(int64_t{p.vcsPerPort})});
        t.addRow({"Number of entries per VC",
                  TextTable::num(int64_t{p.vcDepth})});
        t.addRow({"Wait for tail credit", "YES"});
        t.addRow({"VC allocator", "iSLIP"});
        t.addRow({"SW allocator", "iSLIP"});
        t.addRow({"Total router delay", "2 or 3 cycles"});
        t.addRow({"Input speedup",
                  TextTable::num(int64_t{p.inputSpeedup})});
        t.addRow({"Output speedup",
                  TextTable::num(int64_t{p.outputSpeedup})});
        t.addRow({"Buffer entries in NIC",
                  TextTable::num(int64_t{p.nicQueueEntries})});
        t.addRow({"Multicast", "Virtual Circuit Tree Multicasting"});
        bench::emit(opts, "Table 2: baseline electrical router", t,
                    "table2");
    }

    // Table 3: SPLASH2 benchmarks and input sets.
    {
        TextTable t({"benchmark", "experimental data set",
                     "txns/node", "MSHRs", "bcast req frac"});
        for (const auto &b : traffic::splashSuite()) {
            t.addRow({b.name, b.inputSet,
                      TextTable::num(int64_t{b.txnsPerNode}),
                      TextTable::num(int64_t{b.mshrLimit}),
                      TextTable::num(b.requestBroadcastFraction, 2)});
        }
        bench::emit(opts, "Table 3: SPLASH2 benchmarks", t, "table3");
    }

    // Table 4: cache and memory-controller parameters.
    {
        traffic::SplashProfile p = traffic::splashSuite().front();
        TextTable t({"parameter", "value"});
        t.addRow({"Simulated cache sizes",
                  "32KB L1I, 32KB L1D, 256KB L2"});
        t.addRow({"Actual cache sizes", "64KB L1I, 64KB L1D, 2MB L2"});
        t.addRow({"Cache associativity", "4-way L1, 16-way L2"});
        t.addRow({"Block size", "32B L1, 64B L2"});
        t.addRow({"Memory latency (modeled)",
                  TextTable::num(int64_t{
                      static_cast<int64_t>(p.memoryLatency)}) +
                      " cycles"});
        bench::emit(opts, "Table 4: cache and memory parameters", t,
                    "table4");
    }
    return 0;
}
