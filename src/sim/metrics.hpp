/**
 * @file
 * Delivery-stream metrics: latency statistics broken down by message
 * kind and by source-destination distance, with percentile support.
 * Consumes the Delivery records any network produces; used by the
 * harnesses and the CLI to report more than a single mean.
 */

#ifndef PHASTLANE_SIM_METRICS_HPP
#define PHASTLANE_SIM_METRICS_HPP

#include <array>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "net/packet.hpp"

namespace phastlane::sim {

/** Latency statistics of one bucket. */
struct LatencyBucket {
    RunningStat total;   ///< creation -> delivery
    RunningStat network; ///< injection -> delivery
    Histogram hist{5.0, 400};

    void add(const Delivery &d);
};

/**
 * Collects deliveries into kind- and distance-indexed buckets.
 */
class LatencyCollector
{
  public:
    explicit LatencyCollector(const MeshTopology &mesh);

    /** Record one delivery. */
    void add(const Delivery &d);

    /** Record everything a network reported this cycle. */
    void addAll(const std::vector<Delivery> &deliveries);

    const LatencyBucket &overall() const { return overall_; }
    const LatencyBucket &byKind(MessageKind k) const;

    /** Bucket for deliveries whose XY distance is @p hops. */
    const LatencyBucket &byDistance(int hops) const;

    /** Largest distance bucket index. */
    int maxDistance() const
    {
        return static_cast<int>(byDistance_.size()) - 1;
    }

    uint64_t count() const { return overall_.total.count(); }

    /**
     * Render a compact text report: overall mean/p50/p99, per-kind
     * rows, and the latency-vs-distance profile.
     */
    std::string report() const;

  private:
    MeshTopology mesh_;
    LatencyBucket overall_;
    std::array<LatencyBucket, 5> byKind_;
    std::vector<LatencyBucket> byDistance_;
};

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_METRICS_HPP
