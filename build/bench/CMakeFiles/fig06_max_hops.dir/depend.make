# Empty dependencies file for fig06_max_hops.
# This may be replaced when dependencies are built.
