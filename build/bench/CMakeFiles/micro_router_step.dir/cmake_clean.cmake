file(REMOVE_RECURSE
  "CMakeFiles/micro_router_step.dir/micro_router_step.cpp.o"
  "CMakeFiles/micro_router_step.dir/micro_router_step.cpp.o.d"
  "micro_router_step"
  "micro_router_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_router_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
