file(REMOVE_RECURSE
  "CMakeFiles/netsim_cli.dir/netsim_cli.cpp.o"
  "CMakeFiles/netsim_cli.dir/netsim_cli.cpp.o.d"
  "netsim_cli"
  "netsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
