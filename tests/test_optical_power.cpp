/**
 * @file
 * Peak optical power model tests (paper Fig 7): calibration anchors
 * and monotonicity.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "optical/power_model.hpp"

namespace phastlane::optical {
namespace {

TEST(PeakPower, PaperAnchorPoints)
{
    PeakPowerModel m;
    // Paper section 3.2: 64 lambda / 4 hops @ 98% -> 32 W;
    // 128 / 5 @ 98% -> 32 W; 128 / 4 @ 98% -> 15 W.
    EXPECT_NEAR(m.peakPowerW(0.98, 64, 4), 32.0, 0.5);
    EXPECT_NEAR(m.peakPowerW(0.98, 128, 5), 32.0, 0.5);
    EXPECT_NEAR(m.peakPowerW(0.98, 128, 4), 15.0, 0.3);
}

TEST(PeakPower, ThirtyTwoWavelengthsAreExcessive)
{
    PeakPowerModel m;
    // Paper: 32 lambda needs >= 99% efficiency or a 2-3 hop limit.
    EXPECT_GT(m.peakPowerW(0.98, 32, 4), 100.0);
    EXPECT_LT(m.peakPowerW(0.99, 32, 3), 32.0);
    EXPECT_LT(m.peakPowerW(0.98, 32, 2), 32.0);
}

TEST(PeakPower, MonotonicInHops)
{
    PeakPowerModel m;
    for (int wl : {32, 64, 128}) {
        double prev = 0.0;
        for (int h = 1; h <= 8; ++h) {
            const double p = m.peakPowerW(0.98, wl, h);
            EXPECT_GT(p, prev) << wl << " lambda, " << h << " hops";
            prev = p;
        }
    }
}

TEST(PeakPower, BetterEfficiencyLowersPower)
{
    PeakPowerModel m;
    double prev = 1e12;
    for (double eff : {0.97, 0.98, 0.99, 0.995, 1.0}) {
        const double p = m.peakPowerW(eff, 64, 4);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(PeakPower, PerfectCrossingsLeaveFixedLossOnly)
{
    PeakPowerModel m;
    WaveguideConstants wg;
    const double expected =
        wg.basePowerW * std::pow(10.0, wg.fixedPathLossDb / 10.0);
    EXPECT_NEAR(m.peakPowerW(1.0, 64, 8), expected, 1e-9);
}

TEST(PeakPower, MoreWavelengthsFewerCrossings)
{
    PeakPowerModel m;
    for (int h : {2, 4, 8}) {
        EXPECT_GT(m.worstCaseCrossings(32, h),
                  m.worstCaseCrossings(64, h));
        EXPECT_GT(m.worstCaseCrossings(64, h),
                  m.worstCaseCrossings(128, h));
    }
}

TEST(PeakPower, CrossingLossFormula)
{
    EXPECT_NEAR(PeakPowerModel::crossingLossDb(1.0), 0.0, 1e-12);
    EXPECT_NEAR(PeakPowerModel::crossingLossDb(0.98), 0.0877, 0.001);
    EXPECT_NEAR(PeakPowerModel::crossingLossDb(0.5), 3.0103, 0.001);
}

TEST(PeakPower, MaxHopsWithinBudgetInvertsPeakPower)
{
    PeakPowerModel m;
    for (int wl : {64, 128}) {
        const int h = m.maxHopsWithinBudget(0.98, wl, 32.0);
        ASSERT_GE(h, 1);
        EXPECT_LE(m.peakPowerW(0.98, wl, h), 32.0);
        EXPECT_GT(m.peakPowerW(0.98, wl, h + 1), 32.0);
    }
}

TEST(PeakPower, BudgetTooSmallGivesZeroHops)
{
    PeakPowerModel m;
    EXPECT_EQ(m.maxHopsWithinBudget(0.9, 32, 0.001), 0);
}

TEST(PeakPower, TradeoffStory)
{
    PeakPowerModel m;
    // Paper: going from 64 to 128 wavelengths at four hops cuts the
    // peak power roughly in half (32 W -> 15 W).
    const double p64 = m.peakPowerW(0.98, 64, 4);
    const double p128 = m.peakPowerW(0.98, 128, 4);
    EXPECT_NEAR(p128 / p64, 15.0 / 32.0, 0.03);
}

} // namespace
} // namespace phastlane::optical
