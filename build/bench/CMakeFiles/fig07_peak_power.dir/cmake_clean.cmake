file(REMOVE_RECURSE
  "CMakeFiles/fig07_peak_power.dir/fig07_peak_power.cpp.o"
  "CMakeFiles/fig07_peak_power.dir/fig07_peak_power.cpp.o.d"
  "fig07_peak_power"
  "fig07_peak_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_peak_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
