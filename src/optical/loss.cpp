#include "optical/loss.hpp"

#include <cmath>

#include "common/log.hpp"
#include "optical/power_model.hpp"

namespace phastlane::optical {

double
LossBudget::totalDb() const
{
    double sum = 0.0;
    for (const auto &item : items)
        sum += item.db;
    return sum;
}

double
LossBudget::powerFactor() const
{
    return std::pow(10.0, totalDb() / 10.0);
}

double
LossConstants::fixedTotalDb(int taps) const
{
    return couplerDb + modulatorInsertionDb + dropFilterDb +
           worstCaseBends * bendDb + taps * tapDb;
}

LossModel::LossModel(const PacketFormat &format,
                     const WaveguideConstants &wg,
                     const LossConstants &constants)
    : format_(format), wg_(wg), constants_(constants)
{
}

double
LossModel::crossingsDb(double efficiency, int wavelengths,
                       int max_hops) const
{
    PL_ASSERT(max_hops >= 1 && wavelengths > 0, "bad parameters");
    const int n_wg = format_.totalWaveguides(wavelengths);
    const double crossings =
        (wg_.crossingsFixedPerRouter +
         wg_.crossingsPerWaveguide * n_wg) *
        static_cast<double>(max_hops);
    return crossings * PeakPowerModel::crossingLossDb(efficiency);
}

LossBudget
LossModel::worstCasePath(double efficiency, int wavelengths,
                         int max_hops, int taps) const
{
    LossBudget b;
    b.items.push_back({"coupler", constants_.couplerDb});
    b.items.push_back(
        {"modulator insertion", constants_.modulatorInsertionDb});
    b.items.push_back(
        {"waveguide crossings",
         crossingsDb(efficiency, wavelengths, max_hops)});
    b.items.push_back(
        {"bends", constants_.worstCaseBends * constants_.bendDb});
    b.items.push_back(
        {"multicast taps", taps * constants_.tapDb});
    b.items.push_back({"drop filter", constants_.dropFilterDb});
    return b;
}

} // namespace phastlane::optical
