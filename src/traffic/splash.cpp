#include "traffic/splash.hpp"

#include <cmath>

#include "common/log.hpp"

namespace phastlane::traffic {

std::vector<SplashProfile>
splashSuite()
{
    // name, input set (Table 3), txns/node, mshr, burstLen, intraGap,
    // interBurstGap, bcastReqFrac, invalFrac, wbFrac, memFrac,
    // cacheLat. The behavioral knobs are reconstructed (see header
    // comment) and calibrated to the paper's qualitative Fig 10
    // groups: Raytrace and the two Water codes are low-MLP,
    // latency-bound and gain the most; FFT/LU/Radix are intermediate
    // (>1.5X); Barnes/Cholesky/Ocean/FMM are broadcast-heavy and
    // buffer-sensitive, with Ocean and FMM dropping heavily under the
    // 10-entry configuration.
    std::vector<SplashProfile> suite;
    auto add = [&](const char *name, const char *input, int txns,
                   int mshr, double burst, double intra, double inter,
                   double bcast_req, double inval, double wb,
                   double mem, Cycle cache_lat) {
        SplashProfile p;
        p.name = name;
        p.inputSet = input;
        p.txnsPerNode = txns;
        p.mshrLimit = mshr;
        p.burstLenMean = burst;
        p.intraBurstGap = intra;
        p.interBurstGapMean = inter;
        p.requestBroadcastFraction = bcast_req;
        p.invalidateFraction = inval;
        p.writebackFraction = wb;
        p.memoryFraction = mem;
        p.cacheLatency = cache_lat;
        suite.push_back(std::move(p));
    };
    // Buffer-sensitive, broadcast-heavy group.
    add("Barnes", "64 K particles", 200, 3, 8.0, 1.0, 46.0,
        1.00, 0.12, 0.12, 0.15, 8);
    add("Cholesky", "tk29.O", 200, 3, 7.0, 1.0, 56.0,
        1.00, 0.10, 0.15, 0.20, 8);
    // Intermediate group (>1.5X).
    add("FFT", "4 M points", 200, 2, 8.0, 0.0, 25.0,
        0.35, 0.05, 0.12, 0.15, 8);
    add("LU", "2048x2048 matrix", 200, 2, 8.0, 0.0, 18.0,
        0.30, 0.05, 0.10, 0.12, 8);
    // Heavy drop-bound group.
    add("Ocean", "2050x2050 grid", 200, 16, 20.0, 0.0, 75.0,
        1.00, 0.20, 0.25, 0.70, 20);
    // Intermediate group (>1.5X).
    add("Radix", "64 M integers", 200, 1, 10.0, 0.0, 10.0,
        0.30, 0.04, 0.20, 0.15, 8);
    // Latency-bound trio (>2.8X).
    add("Raytrace", "balls4", 200, 1, 16.0, 0.0, 3.0,
        0.18, 0.03, 0.08, 0.04, 5);
    add("Water-NSquared", "512 molecules", 200, 1, 18.0, 0.0, 2.0,
        0.18, 0.04, 0.08, 0.04, 5);
    add("Water-Spatial", "512 molecules", 200, 1, 14.0, 0.0, 4.0,
        0.16, 0.04, 0.10, 0.04, 5);
    // Heavy drop-bound group (recovers with 32 buffers).
    add("FMM", "512 K particles", 200, 16, 16.0, 0.0, 120.0,
        1.00, 0.20, 0.20, 0.60, 20);
    return suite;
}

SplashProfile
splashProfile(const std::string &name)
{
    for (auto &p : splashSuite()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown SPLASH2 benchmark '%s'", name.c_str());
}

std::vector<std::vector<Txn>>
generateStreams(const SplashProfile &profile, int node_count,
                uint64_t seed)
{
    PL_ASSERT(node_count > 1, "need at least two nodes");
    std::vector<std::vector<Txn>> streams(
        static_cast<size_t>(node_count));
    Rng master(seed ^ 0xc0ffee1234abcdefull);
    for (NodeId n = 0; n < node_count; ++n) {
        Rng rng = master.fork();
        auto &stream = streams[static_cast<size_t>(n)];
        stream.reserve(static_cast<size_t>(profile.txnsPerNode));
        uint64_t burst_left = 0;
        for (int i = 0; i < profile.txnsPerNode; ++i) {
            Txn t;
            const double u = rng.uniform();
            if (u < profile.invalidateFraction) {
                t.type = TxnType::Invalidate;
            } else if (u < profile.invalidateFraction +
                               profile.writebackFraction) {
                t.type = TxnType::Writeback;
            } else {
                t.type = TxnType::Request;
                t.broadcastReq =
                    rng.bernoulli(profile.requestBroadcastFraction);
            }
            // Peer: cache-line-interleaved home / random sharer.
            do {
                t.peer = static_cast<NodeId>(
                    rng.uniformInt(0, node_count - 1));
            } while (t.peer == n);
            if (t.type == TxnType::Request) {
                t.serviceLatency =
                    rng.bernoulli(profile.memoryFraction)
                        ? profile.memoryLatency
                        : profile.cacheLatency;
            }
            // Burst-structured think time.
            if (burst_left == 0) {
                burst_left =
                    1 + rng.geometric(1.0 / profile.burstLenMean);
            }
            --burst_left;
            if (burst_left > 0) {
                t.thinkAfter =
                    static_cast<Cycle>(profile.intraBurstGap);
            } else {
                t.thinkAfter = static_cast<Cycle>(std::llround(
                    rng.exponential(profile.interBurstGapMean)));
            }
            stream.push_back(t);
        }
    }
    return streams;
}

} // namespace phastlane::traffic
