/**
 * @file
 * Predecoded source-routing control bits (paper Section 2.1, Fig 3).
 *
 * Every Phastlane packet carries, on the C0/C1 control waveguides, one
 * five-bit group -- Straight, Left, Right, Local, Multicast -- for
 * each of up to 14 routers it may traverse. Group 1 drives the current
 * router's resonators directly; on exit the remaining groups are
 * frequency translated one position forward and the C1 waveguide
 * shifts into the C0 position, so Group 1 always describes the router
 * being entered.
 *
 * Semantics per group at the router it addresses:
 *  - exactly one of Straight/Left/Right selects the output port for a
 *    pass-through (also registered to build the drop-signal return
 *    path);
 *  - Local stops optical transit: the packet is received into the
 *    input-port buffer (interim node) unless it is the last group, in
 *    which case it is the final destination;
 *  - Multicast taps a fraction of the optical power to deliver a copy
 *    to this router's node while the packet continues (or, combined
 *    with Local, delivers and stops).
 */

#ifndef PHASTLANE_CORE_CONTROL_HPP
#define PHASTLANE_CORE_CONTROL_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace phastlane::core {

/** One five-bit per-router control group. */
struct ControlGroup {
    bool straight = false;
    bool left = false;
    bool right = false;
    bool local = false;
    bool multicast = false;

    /** True when exactly one direction bit is set. */
    bool hasDirection() const;

    /** The encoded turn; requires hasDirection(). */
    Turn turn() const;

    /** Set the direction bit for @p t (clearing the others). */
    void setTurn(Turn t);

    /** Pack into the low five bits (S,L,R,Local,Mcast = bits 0..4). */
    uint8_t pack() const;

    /** Inverse of pack(). */
    static ControlGroup unpack(uint8_t bits);

    bool operator==(const ControlGroup &) const = default;
};

/**
 * The full route program of a packet: Group 1 first.
 *
 * Storage is inline (the hardware bound is 14 groups), so building,
 * copying, and moving a program never touches the heap — programs are
 * rebuilt on every optical launch, which made this a measurable
 * allocation hot spot in PhastlaneNetwork::step().
 */
class ControlProgram
{
  public:
    /** C0+C1 hold 14 groups of 5 bits (70 control bits, Table 1). */
    static constexpr int kMaxGroups = 14;

    ControlProgram() = default;

    /** Append a group; fatal() beyond kMaxGroups. */
    void append(const ControlGroup &g);

    bool empty() const { return cursor_ >= size_; }

    /** Groups not yet consumed. */
    size_t remaining() const { return size_ - cursor_; }

    // front()/group()/translate() run once per router crossing in the
    // wavefront hot path; inline definitions keep them call-free.

    /** Group 1: the group for the router being entered next. */
    const ControlGroup &front() const
    {
        PL_ASSERT(!empty(), "reading Group 1 of an empty control "
                            "program");
        return groups_[cursor_];
    }

    /** Group @p i (0 = Group 1) among the remaining groups. */
    const ControlGroup &group(size_t i) const
    {
        PL_ASSERT(cursor_ + i < size_,
                  "control group index out of range");
        return groups_[cursor_ + i];
    }

    /**
     * Frequency translation + waveguide shift on router exit/receive:
     * consume Group 1, promoting Groups 2..n.
     */
    void translate()
    {
        PL_ASSERT(!empty(), "translating an empty control program");
        ++cursor_;
    }

    /** Debug rendering, e.g. "[E][S][S][L*]". */
    std::string toString() const;

  private:
    std::array<ControlGroup, kMaxGroups> groups_{};
    uint8_t size_ = 0;
    uint8_t cursor_ = 0;
};

/**
 * Hops a freshly launched packet covers before its first stop (interim
 * or final) on a route of @p route_hops routers under the @p max_hops
 * per-cycle limit and the kMaxGroups program budget.
 *
 * Routes that fit the budget behave exactly as in the paper: a stop
 * every max_hops routers, or at the destination. A longer route's
 * program is truncated at kMaxGroups groups with a forced interim stop
 * on its last-but-one group, so the stop spacing is additionally
 * capped at kMaxGroups - 1 (the final group must remain, or the
 * interim would be mistaken for a destination). The ReferenceNetwork
 * oracle uses this same function to stay in lockstep.
 */
constexpr size_t
programStopHops(size_t route_hops, int max_hops)
{
    const size_t mh = static_cast<size_t>(max_hops);
    if (route_hops <= static_cast<size_t>(ControlProgram::kMaxGroups))
        return route_hops < mh ? route_hops : mh;
    const size_t cap =
        static_cast<size_t>(ControlProgram::kMaxGroups - 1);
    return mh < cap ? mh : cap;
}

/**
 * One branch of a broadcast: the nodes that must receive a copy, in
 * path order. The last tap is the branch's final destination.
 */
struct MulticastBranch {
    /** Delivery targets in path order (never contains the source). */
    std::vector<NodeId> taps;

    NodeId finalDst() const { return taps.back(); }
};

/**
 * Build the control program for a unicast transmission from @p from to
 * @p dst over the dimension-order route, inserting interim-node Local
 * bits every @p max_hops routers (paper Section 2.1.3).
 *
 * @p from may be an intermediate router re-launching a buffered
 * packet; the rebuilt program naturally bypasses stale interim nodes.
 */
ControlProgram buildUnicastProgram(const MeshTopology &mesh, NodeId from,
                                   NodeId dst, int max_hops);

/**
 * Build the control program for a multicast branch from @p from. Every
 * tap router gets its Multicast bit; interim Local bits are inserted
 * every @p max_hops routers. All taps must lie on the dimension-order
 * route from @p from to the final tap.
 */
ControlProgram buildMulticastProgram(const MeshTopology &mesh,
                                     NodeId from,
                                     const MulticastBranch &branch,
                                     int max_hops);

/**
 * Split a broadcast from @p src into its multicast branches: one
 * branch per column and Y-direction with a nonempty target set -- up
 * to 2 * width branches, width when the source is on the top or
 * bottom row (paper Section 2.1.4).
 */
std::vector<MulticastBranch> splitBroadcast(const MeshTopology &mesh,
                                            NodeId src);

} // namespace phastlane::core

#endif // PHASTLANE_CORE_CONTROL_HPP
