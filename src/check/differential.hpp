/**
 * @file
 * Lockstep differential testing of PhastlaneNetwork against the
 * ReferenceNetwork oracle (DESIGN.md §7).
 *
 * A test case is a PhastlaneParams plus an explicit injection stream.
 * runLockstep() drives both implementations through identical
 * injections, diffing the per-cycle delivery sets, every counter
 * group, and the queue/buffer occupancy totals, while an
 * InvariantChecker shadows the optimized network. On mismatch,
 * shrinkStream() delta-debugs the stream to a minimal failing subset
 * and reproTestCase() renders it as a ready-to-paste gtest case.
 *
 * defaultCampaign() builds the randomized matrix (patterns x mesh
 * shapes x hop limits x buffer depths x seeds) run by tier-1;
 * PL_CHECK_LONG=1 in the environment extends it.
 */

#ifndef PHASTLANE_CHECK_DIFFERENTIAL_HPP
#define PHASTLANE_CHECK_DIFFERENTIAL_HPP

#include <string>
#include <vector>

#include "check/reference_network.hpp"
#include "core/network.hpp"
#include "core/params.hpp"
#include "traffic/adversarial.hpp"
#include "traffic/patterns.hpp"

namespace phastlane::check {

/** One scheduled injection. Retried each cycle while the NIC is full;
 *  later injections of the same node queue behind it. */
struct Injection {
    Cycle at = 0;
    Packet pkt;
};

/** Recipe for a reproducible random injection stream. */
struct StreamConfig {
    traffic::Pattern pattern = traffic::Pattern::UniformRandom;
    /** Hotspot tunables (fraction, hot node). */
    traffic::PatternOptions patternOpts;
    /** Adversarial source mix; None draws identically to a stream
     *  generated before this knob existed. */
    traffic::AdversarialConfig adversarial;
    /** Injection probability per node per cycle. */
    double rate = 0.2;
    /** Fraction of injected messages that are broadcasts. */
    double broadcastFraction = 0.1;
    /** Cycles over which injections are generated. */
    Cycle cycles = 100;
    uint64_t seed = 1;
};

/** Expand a stream recipe into explicit injections. */
std::vector<Injection> makeStream(const core::PhastlaneParams &params,
                                  const StreamConfig &cfg);

/**
 * Compare the externally observable state of the two implementations
 * after a step: the cycle's deliveries (as multisets), all counter
 * groups, and occupancy totals. Returns "" when they agree, else a
 * description of the first difference.
 */
std::string diffNetworks(const core::PhastlaneNetwork &optimized,
                         const ReferenceNetwork &reference);

/** Outcome of one lockstep run. */
struct DiffResult {
    bool ok = true;
    /** Cycle of the first mismatch (meaningful when !ok). */
    Cycle failCycle = 0;
    std::string message;
};

/**
 * Run both implementations in lockstep over @p stream, then let them
 * drain. Fails on the first per-cycle difference, on any invariant
 * violation in the optimized network, or if the networks have not
 * drained after @p max_cycles total cycles.
 * Requires ReferenceNetwork::supports(params).
 */
DiffResult runLockstep(const core::PhastlaneParams &params,
                       const std::vector<Injection> &stream,
                       Cycle max_cycles);

/**
 * Delta-debug a failing stream down to a locally minimal subset that
 * still fails (ddmin over injection subsets, capped at
 * @p max_evaluations lockstep runs). Returns @p stream unchanged if
 * it does not fail.
 */
std::vector<Injection>
shrinkStream(const core::PhastlaneParams &params,
             const std::vector<Injection> &stream, Cycle max_cycles,
             int max_evaluations = 200);

/** Render params + stream as a self-contained gtest case. */
std::string reproTestCase(const core::PhastlaneParams &params,
                          const std::vector<Injection> &stream);

/** One cell of the randomized differential campaign. */
struct CampaignCell {
    std::string name;
    core::PhastlaneParams params;
    StreamConfig stream;
};

/**
 * The campaign matrix: every supported configuration axis (patterns,
 * mesh shapes including non-square, hop limits, buffer depths, both
 * buffer arbitrations, both optical arbitrations, shared pools,
 * exponential backoff), each cell replicated @p seeds_per_cell times
 * with distinct seeds.
 */
std::vector<CampaignCell> defaultCampaign(int seeds_per_cell,
                                          Cycle cycles);

/** Aggregate campaign outcome. */
struct CampaignResult {
    int runs = 0;
    int failures = 0;
    /** One shrunk repro report per failing cell. */
    std::vector<std::string> reports;
};

/** Run every cell; failing cells are shrunk and reported. */
CampaignResult runCampaign(const std::vector<CampaignCell> &cells,
                           Cycle max_cycles);

} // namespace phastlane::check

#endif // PHASTLANE_CHECK_DIFFERENTIAL_HPP
