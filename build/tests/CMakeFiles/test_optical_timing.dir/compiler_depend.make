# Empty compiler generated dependencies file for test_optical_timing.
# This may be replaced when dependencies are built.
