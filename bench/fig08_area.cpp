/**
 * @file
 * Figure 8: impact of the wavelength count on the router area
 * components. The sweet spot sits at 64 wavelengths, which is also
 * the only configuration fitting the 3.5 mm^2 single-core node.
 */

#include "bench_util.hpp"
#include "optical/area_model.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    AreaModel model;
    ChipGeometry geom;

    TextTable t({"lambda", "waveguides", "port len [mm]",
                 "internal len [mm]", "edge [mm]", "area [mm^2]",
                 "fits 1-core (3.5)", "fits 2-core (4.5)",
                 "fits 4-core (6.5)"});
    for (int wl : {16, 32, 64, 128, 256}) {
        const RouterArea a = model.evaluate(wl);
        auto fits = [&](double budget) {
            return a.areaMm2 <= budget ? "yes" : "no";
        };
        t.addRow({TextTable::num(int64_t{wl}),
                  TextTable::num(int64_t{a.waveguides}),
                  TextTable::num(a.portLengthMm, 3),
                  TextTable::num(a.internalLengthMm, 3),
                  TextTable::num(a.edgeMm, 3),
                  TextTable::num(a.areaMm2, 2),
                  fits(geom.nodeAreaMm2), fits(geom.dualNodeAreaMm2),
                  fits(geom.quadNodeAreaMm2)});
    }
    bench::emit(opts,
                "Fig 8: router area vs wavelength count "
                "(sweet spot at 64)",
                t);

    const int candidates[] = {16, 32, 64, 128, 256};
    std::printf("sweet spot: %d wavelengths\n",
                model.sweetSpot(candidates, 5));
    return 0;
}
