/**
 * @file
 * Minimal logging and error-reporting helpers, following the gem5
 * fatal()/panic() distinction:
 *
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid argument). Exits with status 1.
 *  - panic(): an internal invariant was violated (a simulator bug).
 *    Aborts so a core dump / debugger can be used.
 *  - warn()/inform(): non-fatal status messages.
 */

#ifndef PHASTLANE_COMMON_LOG_HPP
#define PHASTLANE_COMMON_LOG_HPP

#include <string>

namespace phastlane {

/** Verbosity levels for inform()/debugLog(). */
enum class LogLevel {
    Quiet = 0,
    Info = 1,
    Debug = 2,
};

/** Set the global verbosity (default: Info). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Print an informational message (printf formatting) at Info level. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message, shown only at Debug level. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning; never stops the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User-level error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {

/** Format a printf-style message into a std::string ("" when empty). */
std::string formatMsg();
std::string formatMsg(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** panic() unless @p cond holds; cheap enough to keep in release builds
 *  for structural invariants. Optional printf-style context arguments. */
#define PL_ASSERT(cond, ...)                                             \
    do {                                                                 \
        if (!(cond))                                                     \
            ::phastlane::panic("assertion failed: %s %s", #cond,         \
                               ::phastlane::detail::formatMsg(           \
                                   __VA_ARGS__).c_str());                \
    } while (0)

} // namespace phastlane

#endif // PHASTLANE_COMMON_LOG_HPP
