/**
 * @file
 * Closed-loop coherence driver tests on both networks.
 */

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "electrical/network.hpp"
#include "traffic/coherence.hpp"

namespace phastlane::traffic {
namespace {

SplashProfile
tinyProfile()
{
    SplashProfile p;
    p.name = "tiny";
    p.txnsPerNode = 20;
    p.mshrLimit = 2;
    p.burstLenMean = 3.0;
    p.intraBurstGap = 2.0;
    p.interBurstGapMean = 40.0;
    p.invalidateFraction = 0.1;
    p.writebackFraction = 0.2;
    p.memoryFraction = 0.3;
    return p;
}

TEST(Coherence, RunsToCompletionOnOptical)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 1);
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    CoherenceDriver d(net, streams, prof.mshrLimit);
    const CoherenceResult r = d.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.transactions, 64u * 20u);
    EXPECT_EQ(net.inFlight(), 0u);
}

TEST(Coherence, RunsToCompletionOnElectrical)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 1);
    electrical::ElectricalNetwork net(
        electrical::ElectricalParams{});
    CoherenceDriver d(net, streams, prof.mshrLimit);
    const CoherenceResult r = d.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.transactions, 64u * 20u);
}

TEST(Coherence, EveryRequestGetsExactlyOneResponse)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 2);
    uint64_t requests = 0;
    for (const auto &s : streams)
        for (const Txn &t : s)
            requests += t.type == TxnType::Request ? 1 : 0;

    core::PhastlaneNetwork net(core::PhastlaneParams{});
    CoherenceDriver d(net, streams, prof.mshrLimit);
    const CoherenceResult r = d.run();
    // unicasts = responses + writebacks + directed requests.
    uint64_t writebacks = 0, directed = 0;
    for (const auto &s : streams) {
        for (const Txn &t : s) {
            writebacks += t.type == TxnType::Writeback ? 1 : 0;
            directed += t.type == TxnType::Request && !t.broadcastReq
                            ? 1 : 0;
        }
    }
    EXPECT_EQ(r.unicasts, requests + writebacks + directed);
}

TEST(Coherence, DeliveryCountsBalance)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 3);
    electrical::ElectricalNetwork net(
        electrical::ElectricalParams{});
    CoherenceDriver d(net, streams, prof.mshrLimit);
    const CoherenceResult r = d.run();
    // Broadcast messages deliver 63 copies, unicasts one.
    EXPECT_EQ(net.counters().deliveries,
              r.broadcasts * 63 + r.unicasts);
}

TEST(Coherence, LatencyMetricsPopulated)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 4);
    core::PhastlaneNetwork net(core::PhastlaneParams{});
    CoherenceDriver d(net, streams, prof.mshrLimit);
    const CoherenceResult r = d.run();
    EXPECT_GT(r.avgLatency, 0.0);
    EXPECT_GT(r.avgMessageLatency, 0.0);
    EXPECT_GE(r.avgMessageLatency, r.avgLatency);
    // A round trip includes the service latency.
    EXPECT_GT(r.avgRoundTrip,
              r.avgRequestLatency +
                  static_cast<double>(prof.cacheLatency) - 1.0);
}

TEST(Coherence, MshrLimitThrottlesProgress)
{
    // With one MSHR and a long service time, completion takes longer
    // than with many MSHRs.
    SplashProfile p = tinyProfile();
    p.writebackFraction = 0.0;
    p.invalidateFraction = 0.0;
    p.memoryFraction = 1.0;
    p.interBurstGapMean = 1.0;
    p.intraBurstGap = 0.0;
    const auto streams = generateStreams(p, 64, 5);

    auto completion = [&](int mshr) {
        core::PhastlaneNetwork net(core::PhastlaneParams{});
        CoherenceDriver d(net, streams, mshr);
        return d.run().completionCycles;
    };
    EXPECT_GT(completion(1), completion(8));
}

TEST(Coherence, SameStreamsReplayedOnBothNetworks)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 6);
    core::PhastlaneNetwork opt(core::PhastlaneParams{});
    electrical::ElectricalNetwork elec(
        electrical::ElectricalParams{});
    const CoherenceResult ro =
        CoherenceDriver(opt, streams, prof.mshrLimit).run();
    const CoherenceResult re =
        CoherenceDriver(elec, streams, prof.mshrLimit).run();
    EXPECT_EQ(ro.transactions, re.transactions);
    EXPECT_EQ(ro.broadcasts, re.broadcasts);
    EXPECT_EQ(ro.unicasts, re.unicasts);
    // The optical network wins at this light load.
    EXPECT_LT(ro.avgMessageLatency, re.avgMessageLatency);
}

TEST(Coherence, DeterministicCompletion)
{
    const auto prof = tinyProfile();
    const auto streams = generateStreams(prof, 64, 7);
    auto run = [&]() {
        core::PhastlaneNetwork net(core::PhastlaneParams{});
        return CoherenceDriver(net, streams, prof.mshrLimit)
            .run().completionCycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(Coherence, SmallMeshWorks)
{
    SplashProfile p = tinyProfile();
    const auto streams = generateStreams(p, 16, 8);
    core::PhastlaneParams np;
    np.meshWidth = 4;
    np.meshHeight = 4;
    core::PhastlaneNetwork net(np);
    const CoherenceResult r =
        CoherenceDriver(net, streams, p.mshrLimit).run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.transactions, 16u * 20u);
}

} // namespace
} // namespace phastlane::traffic
