#include "electrical/network.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace phastlane::electrical {

ElectricalNetwork::ElectricalNetwork(const ElectricalParams &params)
    : params_(params), mesh_(params.meshWidth, params.meshHeight)
{
    if (params_.routerDelay < 2)
        fatal("routerDelay must be at least 2 cycles");
    if (params_.vcDepth != 1)
        fatal("only single-entry VCs are modeled (wait-for-tail)");
    routers_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    nics_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        routers_.emplace_back(n, params_);
        nics_.emplace_back(n, params_);
    }
    linkCounts_.assign(
        static_cast<size_t>(mesh_.nodeCount()) * kMeshPorts, 0);
}

bool
ElectricalNetwork::nicHasSpace(NodeId n) const
{
    PL_ASSERT(mesh_.valid(n), "invalid node %d", n);
    return nics_[static_cast<size_t>(n)].hasSpace();
}

bool
ElectricalNetwork::inject(const Packet &pkt)
{
    PL_ASSERT(mesh_.valid(pkt.src), "invalid source %d", pkt.src);
    auto &nic = nics_[static_cast<size_t>(pkt.src)];
    if (!nic.hasSpace())
        return false;
    PL_ASSERT(pkt.broadcast || pkt.dst != pkt.src,
              "unicast to self at node %d", pkt.src);
    nic.accept(pkt, cycle_);
    ++counters_.messagesAccepted;
    outstanding_ +=
        static_cast<uint64_t>(pkt.deliveryCount(mesh_.nodeCount()));
    return true;
}

void
ElectricalNetwork::deliver(const EFlit &flit, NodeId node)
{
    Delivery d;
    d.packet = *flit.msg;
    d.node = node;
    d.at = cycle_;
    d.acceptedAt = flit.acceptedAt;
    d.injectedAt = flit.injectedAt;
    deliveries_.push_back(std::move(d));
    ++counters_.deliveries;
    ++events_.ejections;
    PL_ASSERT(outstanding_ > 0, "delivery without outstanding message");
    --outstanding_;
    lastProgress_ = cycle_;

    // Tree-setup clone delivered: count down toward tree readiness.
    // Clones from later broadcasts streamed while the tree was still
    // building may arrive after the countdown finished; they install
    // idempotently and are ignored here.
    if (flit.installsTree &&
        nics_[static_cast<size_t>(flit.tree)].treeState() ==
            TreeState::Building) {
        auto &src_nic = nics_[static_cast<size_t>(flit.tree)];
        int &pending = src_nic.pendingSetupDeliveries();
        if (pending > 0 && --pending == 0)
            src_nic.setTreeState(TreeState::Ready);
    }
}

void
ElectricalNetwork::releaseInputVc(NodeId r, Port p, int vc)
{
    auto &router = routers_[static_cast<size_t>(r)];
    InputVc &ivc = router.inputVc(p, vc);
    PL_ASSERT(ivc.busy(), "releasing an empty input VC");
    ivc.flit.reset();
    ivc.pendingMesh = 0;
    ivc.ejecting = false;
    ivc.resetBranches();

    if (p != Port::Local) {
        // Credit to the upstream router, visible next cycle
        // (wait-for-tail: the output VC is reallocatable only now).
        const NodeId up = mesh_.neighbor(r, p);
        PL_ASSERT(up != kInvalidNode, "credit to a nonexistent router");
        OutputVc &ovc =
            routers_[static_cast<size_t>(up)].outputVc(opposite(p), vc);
        PL_ASSERT(ovc.state == OutputVc::State::Occupied,
                  "credit for a non-occupied output VC");
        ovc.state = OutputVc::State::Free;
        ovc.freeAt = cycle_ + 1;
    }
}

void
ElectricalNetwork::processArrival(const PendingArrival &a)
{
    auto &router = routers_[static_cast<size_t>(a.router)];
    InputVc &ivc = router.inputVc(a.port, a.vc);
    PL_ASSERT(!ivc.busy(), "arrival into an occupied VC at node %d",
              a.router);
    ++events_.bufferWrites;
    ivc.flit = a.flit;
    ivc.arrivedAt = cycle_;
    ivc.pendingMesh = 0;
    ivc.ejecting = false;
    ivc.resetBranches();

    const EFlit &f = *ivc.flit;
    if (f.treeMulticast) {
        ++events_.treeLookups;
        const TreeEntry *entry = router.treeTable().find(f.tree);
        if (!entry) {
            panic("multicast flit hit a missing tree entry at node %d "
                  "(tree %d, %llu evictions)", a.router, f.tree,
                  static_cast<unsigned long long>(
                      router.treeTable().evictions()));
        }
        ivc.pendingMesh = entry->meshPorts;
        PL_ASSERT(entry->local || ivc.pendingMesh != 0,
                  "tree entry with no action at node %d", a.router);
        if (entry->local) {
            ejectionsNext_.push_back(PendingEjection{
                a.router, a.port, a.vc, true,
                ivc.pendingMesh == 0, f});
            if (ivc.pendingMesh == 0)
                ivc.ejecting = true;
        }
    } else if (f.dst == a.router) {
        ivc.ejecting = true;
        if (f.installsTree)
            router.treeTable().installLocal(f.tree);
        ejectionsNext_.push_back(
            PendingEjection{a.router, a.port, a.vc, true, true, f});
    } else {
        ivc.pendingMesh = static_cast<uint8_t>(
            1u << portIndex(mesh_.xyFirstHop(a.router, f.dst)));
    }
}

void
ElectricalNetwork::processEjection(const PendingEjection &e)
{
    if (e.deliver)
        deliver(e.flit, e.router);
    if (e.release)
        releaseInputVc(e.router, e.port, e.vc);
}

void
ElectricalNetwork::injectFlit(NodeId n, EFlit flit)
{
    auto &router = routers_[static_cast<size_t>(n)];
    const int v = router.freeInputVc(Port::Local);
    PL_ASSERT(v >= 0, "injectFlit without a free VC");
    flit.flitId = nextFlitId_++;
    flit.injectedAt = cycle_;
    ++counters_.packetsInjected;
    lastProgress_ = cycle_;
    processArrival(PendingArrival{n, Port::Local, v, std::move(flit)});
}

void
ElectricalNetwork::handleSaWinners(NodeId r)
{
    auto &router = routers_[static_cast<size_t>(r)];
    for (const SaWinner &w : router.allocateSwitch(cycle_)) {
        InputVc &ivc = router.inputVc(w.inPort, w.inVc);
        PL_ASSERT(ivc.busy() &&
                      ivc.branchVc[portIndex(w.outPort)] == w.outVc,
                  "SA winner without a matching branch");
        EFlit copy = *ivc.flit;
        copy.flitId = nextFlitId_++;

        ++events_.bufferReads;
        ++events_.xbarTraversals;
        ++events_.linkTraversals;
        ++events_.saGrants;
        ++linkCounts_[static_cast<size_t>(r) * kMeshPorts +
                      portIndex(w.outPort)];
        lastProgress_ = cycle_;

        if (copy.installsTree)
            router.treeTable().installPort(copy.tree, w.outPort);

        const NodeId dest = mesh_.neighbor(r, w.outPort);
        PL_ASSERT(dest != kInvalidNode, "flit sent off the mesh");
        // Switch traversal this cycle, then one cycle on the channel.
        arrivalsAfter_.push_back(PendingArrival{
            dest, opposite(w.outPort), w.outVc, std::move(copy)});

        router.outputVc(w.outPort, w.outVc).state =
            OutputVc::State::Occupied;

        ivc.pendingMesh &= static_cast<uint8_t>(
            ~(1u << portIndex(w.outPort)));
        ivc.branchVc[portIndex(w.outPort)] = -1;
        if (ivc.pendingMesh == 0 && !ivc.ejecting)
            releaseInputVc(r, w.inPort, w.inVc);
    }
}

void
ElectricalNetwork::step()
{
    deliveries_.clear();

    std::swap(arrivalsNow_, arrivalsNext_);
    std::swap(arrivalsNext_, arrivalsAfter_);
    std::swap(ejectionsNow_, ejectionsNext_);
    arrivalsAfter_.clear();
    ejectionsNext_.clear();

    for (const auto &a : arrivalsNow_)
        processArrival(a);
    for (const auto &e : ejectionsNow_)
        processEjection(e);

    // NIC injection: one flit per node per cycle.
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        auto &nic = nics_[static_cast<size_t>(n)];
        auto &router = routers_[static_cast<size_t>(n)];

        // Streaming setup clones takes precedence over new heads.
        if (!nic.setupTargets().empty()) {
            if (router.freeInputVc(Port::Local) < 0)
                continue;
            const NodeId target = nic.setupTargets().back();
            nic.setupTargets().pop_back();
            EFlit f;
            f.msg = nic.setupMsg();
            f.dst = target;
            f.tree = static_cast<TreeId>(n);
            f.installsTree = true;
            f.acceptedAt = nic.setupAcceptedAt();
            ++el_.setupUnicasts;
            injectFlit(n, std::move(f));
            continue;
        }

        if (nic.empty())
            continue;
        const NicEntry &head = nic.head();
        if (!head.msg->broadcast) {
            if (router.freeInputVc(Port::Local) < 0)
                continue;
            EFlit f;
            f.msg = head.msg;
            f.dst = head.msg->dst;
            f.acceptedAt = head.acceptedAt;
            injectFlit(n, std::move(f));
            nic.popHead();
            continue;
        }
        // Broadcast head.
        if (nic.treeState() == TreeState::Ready) {
            if (router.freeInputVc(Port::Local) < 0)
                continue;
            EFlit f;
            f.msg = head.msg;
            f.tree = static_cast<TreeId>(n);
            f.treeMulticast = true;
            f.acceptedAt = head.acceptedAt;
            ++el_.treeMulticasts;
            injectFlit(n, std::move(f));
            nic.popHead();
        } else {
            // Not built (or still building): stream this broadcast as
            // tree-installing unicast clones.
            // Readiness is determined by the FIRST stream's
            // deliveries; later broadcasts streamed while the tree is
            // still building reinstall entries idempotently without
            // extending the countdown.
            if (nic.treeState() == TreeState::NotBuilt) {
                nic.setTreeState(TreeState::Building);
                nic.pendingSetupDeliveries() = mesh_.nodeCount() - 1;
            }
            std::vector<NodeId> targets;
            targets.reserve(
                static_cast<size_t>(mesh_.nodeCount() - 1));
            // Reverse order: setupTargets() is consumed from the back.
            for (NodeId t = static_cast<NodeId>(mesh_.nodeCount()) - 1;
                 t >= 0; --t) {
                if (t != n)
                    targets.push_back(t);
            }
            nic.startSetupStream(std::move(targets), head.msg,
                                 head.acceptedAt);
            nic.popHead();
            // The first clone goes out next loop iteration-equivalent:
            // fall through by reprocessing this node now.
            if (router.freeInputVc(Port::Local) >= 0) {
                const NodeId target = nic.setupTargets().back();
                nic.setupTargets().pop_back();
                EFlit f;
                f.msg = nic.setupMsg();
                f.dst = target;
                f.tree = static_cast<TreeId>(n);
                f.installsTree = true;
                f.acceptedAt = nic.setupAcceptedAt();
                ++el_.setupUnicasts;
                injectFlit(n, std::move(f));
            }
        }
    }

    for (NodeId r = 0; r < mesh_.nodeCount(); ++r) {
        events_.vaGrants += static_cast<uint64_t>(
            routers_[static_cast<size_t>(r)].allocateVcs(cycle_));
    }
    for (NodeId r = 0; r < mesh_.nodeCount(); ++r)
        handleSaWinners(r);

    events_.routerCycles += static_cast<uint64_t>(mesh_.nodeCount());

    if (outstanding_ > 0 &&
        cycle_ - lastProgress_ > params_.watchdogCycles) {
        panic("electrical network made no progress for %llu cycles "
              "(%llu outstanding deliveries)",
              static_cast<unsigned long long>(params_.watchdogCycles),
              static_cast<unsigned long long>(outstanding_));
    }
    ++cycle_;
}

} // namespace phastlane::electrical
