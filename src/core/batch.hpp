/**
 * @file
 * Lockstep batch executor over independent PhastlaneNetwork instances
 * (DESIGN.md §13).
 *
 * A NetworkBatch owns no networks; it *attaches* to B same-shape
 * instances and advances them one cycle at a time in attach order.
 * Three structures make the gang cheaper than stepping the instances
 * separately:
 *
 *  - a gang-shared StepScratch: every instance's per-cycle scratch
 *    (claim planes, flight lists, request chains) aliases one hot
 *    allocation instead of B cold ones;
 *  - an instance-major launch board: one contiguous Cycle word per
 *    (instance, router) mirroring the router's arbitration horizon,
 *    so the launch phase skips idle routers without touching their
 *    queues;
 *  - instance-major NIC-occupancy bit planes: one bit per
 *    (instance, node), set on inject and cleared when the NIC drains,
 *    so the NIC-transfer phase visits only non-empty NICs.
 *
 * Every skipped call is one the serial engine would have early-exited
 * anyway (modulo the rotating-arbiter pointer, replayed lazily via
 * RouterBuffers::syncRotate), so batched execution is bit-identical
 * to per-instance serial stepping: same counters, same delivery
 * cycles, same RNG streams.
 */

#ifndef PHASTLANE_CORE_BATCH_HPP
#define PHASTLANE_CORE_BATCH_HPP

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/network.hpp"

namespace phastlane::core {

/**
 * Lockstep executor over B attached PhastlaneNetwork instances.
 */
class NetworkBatch
{
  public:
    NetworkBatch() = default;
    ~NetworkBatch();

    NetworkBatch(const NetworkBatch &) = delete;
    NetworkBatch &operator=(const NetworkBatch &) = delete;

    /**
     * True when @p net can join a batch: scalar engine only (no
     * shards — the sharded path owns its own scratch and thread
     * pool), no observer attached (the batch cycle does not replay
     * the onCycleBegin/onCycleEnd hooks), and an FCFS wavefront
     * (GlobalPriority is the ablation model and stays on the
     * reference path).
     */
    static bool eligible(const PhastlaneNetwork &net);

    /** True when @p net matches the gang's mesh shape (the first
     *  attach fixes it); always true while the batch is empty. */
    bool compatible(const PhastlaneNetwork &net) const;

    /**
     * Attach @p net as the next instance. Requires eligible(net) &&
     * compatible(net) and that @p net outlives the batch (or
     * detachAll() runs first). While attached, the instance must only
     * be stepped through the batch; inject() and all read-side
     * accessors remain valid between cycles.
     */
    void attach(PhastlaneNetwork &net);

    /** Detach every instance, restoring their private scratch. */
    void detachAll();

    size_t size() const { return nets_.size(); }
    PhastlaneNetwork &instance(size_t i) { return *nets_[i]; }

    /** Advance instance @p i one cycle (bit-identical to a serial
     *  net.step() on the same state). */
    void stepInstance(size_t i);

    /** Advance every attached instance one cycle, in attach order. */
    void stepAll();

  private:
    void stepOne(PhastlaneNetwork &net, size_t slot);
    void batchNicToLocal(PhastlaneNetwork &net, size_t slot);
    void batchLaunchPhase(PhastlaneNetwork &net, size_t slot);
    /** Re-point every instance's board/occupancy slots after the
     *  backing vectors grew (attach invalidates prior pointers). */
    void rebindAll();

    std::vector<PhastlaneNetwork *> nets_;
    int nodeCount_ = 0; ///< gang shape; 0 until the first attach
    int nicWords_ = 0;  ///< 64-bit words per instance occupancy plane
    /** Gang-shared per-cycle scratch (PhastlaneNetwork::StepScratch);
     *  created at first attach once the shape is known. */
    std::unique_ptr<PhastlaneNetwork::StepScratch> scratch_;
    /** Instance-major launch boards: earliest cycle router r of
     *  instance i may launch, at [i * nodeCount + r]; kNeverCycle
     *  when the router is empty. */
    std::vector<Cycle> launchBoard_;
    /** Instance-major NIC occupancy bits, one word run per instance
     *  at [i * nicWords .. (i + 1) * nicWords). */
    std::vector<uint64_t> nicOcc_;
};

} // namespace phastlane::core

#endif // PHASTLANE_CORE_BATCH_HPP
