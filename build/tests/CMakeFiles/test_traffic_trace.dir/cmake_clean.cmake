file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_trace.dir/test_traffic_trace.cpp.o"
  "CMakeFiles/test_traffic_trace.dir/test_traffic_trace.cpp.o.d"
  "test_traffic_trace"
  "test_traffic_trace.pdb"
  "test_traffic_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
