#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace phastlane {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
    // All-zero state would be absorbing; SplitMix64 cannot produce four
    // zero outputs in a row, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    PL_ASSERT(lo <= hi, "uniformInt bounds inverted (%lld > %lld)",
              static_cast<long long>(lo), static_cast<long long>(hi));
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    PL_ASSERT(mean > 0.0, "exponential mean must be positive");
    // uniform() may return exactly 0; use 1-u in (0, 1].
    return -mean * std::log(1.0 - uniform());
}

uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    PL_ASSERT(p > 0.0, "geometric probability must be positive");
    return static_cast<uint64_t>(
        std::floor(std::log(1.0 - uniform()) / std::log(1.0 - p)));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace phastlane
