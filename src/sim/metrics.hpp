/**
 * @file
 * Delivery-stream metrics: latency statistics broken down by message
 * kind and by source-destination distance, with percentile support.
 * Consumes the Delivery records any network produces; used by the
 * harnesses and the CLI to report more than a single mean.
 */

#ifndef PHASTLANE_SIM_METRICS_HPP
#define PHASTLANE_SIM_METRICS_HPP

#include <array>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "net/packet.hpp"

namespace phastlane::sim {

/** Latency statistics of one bucket. */
struct LatencyBucket {
    RunningStat total;   ///< creation -> delivery
    RunningStat network; ///< injection -> delivery
    Histogram hist{5.0, 400};

    void add(const Delivery &d);
};

/**
 * Collects deliveries into kind- and distance-indexed buckets.
 */
class LatencyCollector
{
  public:
    explicit LatencyCollector(const MeshTopology &mesh);

    /** Record one delivery. */
    void add(const Delivery &d);

    /** Record everything a network reported this cycle. */
    void addAll(const std::vector<Delivery> &deliveries);

    const LatencyBucket &overall() const { return overall_; }
    const LatencyBucket &byKind(MessageKind k) const;

    /** Bucket for deliveries whose XY distance is @p hops. */
    const LatencyBucket &byDistance(int hops) const;

    /** Largest distance bucket index. */
    int maxDistance() const
    {
        return static_cast<int>(byDistance_.size()) - 1;
    }

    uint64_t count() const { return overall_.total.count(); }

    /**
     * Render a compact text report: overall mean/p50/p99, per-kind
     * rows, and the latency-vs-distance profile.
     */
    std::string report() const;

  private:
    MeshTopology mesh_;
    LatencyBucket overall_;
    std::array<LatencyBucket, 5> byKind_;
    std::vector<LatencyBucket> byDistance_;
};

/**
 * Per-source fairness statistics (DESIGN.md §14): delivered count and
 * latency distribution per source node, summarized as the Jain
 * fairness index and the worst per-source p99. Feed it the same
 * Delivery stream as LatencyCollector; the starvation counters come
 * from the network (PhastlaneNetwork::sourceStarvation) and are
 * passed in at reporting time.
 */
class FairnessCollector
{
  public:
    explicit FairnessCollector(int node_count);

    void add(const Delivery &d);
    void addAll(const std::vector<Delivery> &deliveries);

    int nodeCount() const
    {
        return static_cast<int>(bySource_.size());
    }
    uint64_t delivered(NodeId src) const;
    const LatencyBucket &bySource(NodeId src) const;

    /**
     * Jain fairness index (sum x)^2 / (n * sum x^2) over per-source
     * delivered counts: 1.0 when every source gets equal service,
     * 1/n when one source hogs everything. 1.0 when nothing was
     * delivered.
     */
    double jainIndex() const;

    /** Jain index of an arbitrary allocation vector (exposed so
     *  harnesses can compute it over flow subsets, e.g. only the
     *  turning flows). */
    static double jain(const std::vector<double> &xs);

    /** Largest per-source p99 latency (cycles); 0 when empty. */
    double worstP99() const;

    /**
     * Text report: Jain index, worst per-source p99, and the
     * most/least served sources. @p starvation, when non-empty, is
     * the per-source max-consecutive-losing-arbitrations counter.
     */
    std::string report(
        const std::vector<uint64_t> &starvation = {}) const;

    /** CSV rows "src,delivered,mean_latency,p99_latency,starvation"
     *  with a header; starvation column is 0 when not supplied. */
    std::string csv(const std::vector<uint64_t> &starvation = {}) const;

  private:
    std::vector<LatencyBucket> bySource_;
    std::vector<uint64_t> delivered_;
};

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_METRICS_HPP
