/**
 * @file
 * CheckedNetwork: a drop-in Network wrapper that runs a
 * PhastlaneNetwork under the invariant checker and, when the
 * configuration has a reference model, in lockstep with the
 * differential oracle. Any violation or divergence aborts with a
 * diagnostic. Enabled by --check on netsim_cli and saturation_sweep.
 */

#ifndef PHASTLANE_CHECK_CHECKED_NETWORK_HPP
#define PHASTLANE_CHECK_CHECKED_NETWORK_HPP

#include <memory>

#include "check/invariants.hpp"
#include "check/reference_network.hpp"
#include "core/network.hpp"

namespace phastlane::check {

/**
 * Owns the primary network plus its checkers and forwards the Network
 * interface to the primary. Configurations without a reference model
 * (GlobalPriority) run under the invariant checker alone, with a
 * warning.
 */
class CheckedNetwork : public Network
{
  public:
    explicit CheckedNetwork(const core::PhastlaneParams &params);

    // Network interface, forwarded to the primary network.
    int nodeCount() const override { return primary_.nodeCount(); }
    const MeshTopology &mesh() const override
    {
        return primary_.mesh();
    }
    Cycle now() const override { return primary_.now(); }
    bool nicHasSpace(NodeId n) const override
    {
        return primary_.nicHasSpace(n);
    }
    bool inject(const Packet &pkt) override;
    void step() override;
    const std::vector<Delivery> &deliveries() const override
    {
        return primary_.deliveries();
    }
    uint64_t inFlight() const override { return primary_.inFlight(); }
    const NetworkCounters &counters() const override
    {
        return primary_.counters();
    }

    /** The wrapped network, for Phastlane-specific reports. */
    core::PhastlaneNetwork &primary() { return primary_; }
    const core::PhastlaneNetwork &primary() const { return primary_; }

    /** True when the differential oracle is running alongside. */
    bool hasOracle() const { return oracle_ != nullptr; }

    /** Final quiescence checks; call after draining the network. */
    void checkQuiescent() { checker_.checkQuiescent(); }

    /**
     * Attach an additional observer (e.g. the tracing/metrics
     * observers of src/obs/) composed after the invariant checker
     * through an ObserverMux. The observer must outlive this network.
     */
    void addObserver(core::StepObserver *obs);

  private:
    core::PhastlaneNetwork primary_;
    InvariantChecker checker_;
    core::ObserverMux mux_;
    std::unique_ptr<ReferenceNetwork> oracle_;
};

} // namespace phastlane::check

#endif // PHASTLANE_CHECK_CHECKED_NETWORK_HPP
