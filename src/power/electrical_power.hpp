/**
 * @file
 * Power model of the electrical baseline network: per-event dynamic
 * energies (CACTI-lite buffers, Balfour-Dally-style crossbar/link/
 * allocator) plus static leakage, evaluated over the event counters
 * the simulator collects.
 */

#ifndef PHASTLANE_POWER_ELECTRICAL_POWER_HPP
#define PHASTLANE_POWER_ELECTRICAL_POWER_HPP

#include "electrical/events.hpp"
#include "electrical/params.hpp"
#include "power/cacti_lite.hpp"
#include "power/energy_params.hpp"

namespace phastlane::power {

/**
 * Converts ElectricalEvents into a PowerBreakdown.
 */
class ElectricalPowerModel
{
  public:
    ElectricalPowerModel(const electrical::ElectricalParams &net_params,
                         const ElectricalEnergyParams &energy = {},
                         double freq_ghz = 4.0);

    /**
     * Average power over @p cycles cycles of activity. @p cycles must
     * cover the interval the events were collected in.
     */
    PowerBreakdown report(const electrical::ElectricalEvents &ev,
                          uint64_t cycles) const;

    const BufferEnergyModel &bufferModel() const { return buffer_; }

  private:
    electrical::ElectricalParams netParams_;
    ElectricalEnergyParams energy_;
    double freqHz_;
    BufferEnergyModel buffer_;
};

} // namespace phastlane::power

#endif // PHASTLANE_POWER_ELECTRICAL_POWER_HPP
