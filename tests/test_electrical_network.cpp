/**
 * @file
 * Electrical baseline network tests: per-hop latency, ejection
 * bypass, VC/credit behavior, VCTM tree building and reuse, and
 * determinism.
 */

#include <gtest/gtest.h>
#include <map>

#include "electrical/network.hpp"

namespace phastlane::electrical {
namespace {

Packet
unicast(PacketId id, NodeId src, NodeId dst, Cycle created = 0)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    p.createdAt = created;
    return p;
}

Packet
broadcast(PacketId id, NodeId src, Cycle created = 0)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.broadcast = true;
    p.createdAt = created;
    return p;
}

std::vector<Delivery>
runToIdle(ElectricalNetwork &net, int max_cycles = 200000)
{
    std::vector<Delivery> all;
    for (int i = 0; i < max_cycles && net.inFlight() > 0; ++i) {
        net.step();
        for (const auto &d : net.deliveries())
            all.push_back(d);
    }
    EXPECT_EQ(net.inFlight(), 0u) << "network did not drain";
    return all;
}

class RouterDelays : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterDelays, ZeroLoadUnicastLatencyFormula)
{
    const int T = GetParam();
    ElectricalParams p;
    p.routerDelay = T;
    for (auto [src, dst] : {std::pair<NodeId, NodeId>{0, 63},
                            {0, 7}, {5, 40}, {63, 0}}) {
        ElectricalNetwork net(p);
        ASSERT_TRUE(net.inject(unicast(1, src, dst)));
        const auto dels = runToIdle(net);
        ASSERT_EQ(dels.size(), 1u);
        const int hops = net.mesh().hopDistance(src, dst);
        // Per hop: routerDelay + 1 channel cycle; ejection adds one.
        EXPECT_EQ(dels[0].at,
                  static_cast<Cycle>(hops * (T + 1) + 1))
            << src << "->" << dst << " T=" << T;
    }
}

INSTANTIATE_TEST_SUITE_P(Delays, RouterDelays,
                         ::testing::Values(2, 3));

TEST(ElectricalNet, TwoCycleRouterIsFaster)
{
    ElectricalParams p2;
    p2.routerDelay = 2;
    ElectricalParams p3;
    p3.routerDelay = 3;
    ElectricalNetwork a(p2), b(p3);
    ASSERT_TRUE(a.inject(unicast(1, 0, 63)));
    ASSERT_TRUE(b.inject(unicast(1, 0, 63)));
    const auto da = runToIdle(a);
    const auto db = runToIdle(b);
    EXPECT_LT(da[0].at, db[0].at);
}

TEST(ElectricalNet, FirstBroadcastBuildsTreeSecondUsesIt)
{
    ElectricalParams p;
    ElectricalNetwork net(p);
    ASSERT_TRUE(net.inject(broadcast(1, 27)));
    const auto first = runToIdle(net);
    EXPECT_EQ(first.size(), 63u);
    EXPECT_EQ(net.electricalCounters().setupUnicasts, 63u);
    EXPECT_EQ(net.electricalCounters().treeMulticasts, 0u);
    const Cycle t0 = net.now();

    ASSERT_TRUE(net.inject(broadcast(2, 27, net.now())));
    const auto second = runToIdle(net);
    EXPECT_EQ(second.size(), 63u);
    EXPECT_EQ(net.electricalCounters().treeMulticasts, 1u);
    // Tree multicast completes much faster than streaming 63 clones.
    EXPECT_LT(net.now() - t0, 63u);
}

TEST(ElectricalNet, BroadcastCoverageExactlyOnce)
{
    ElectricalNetwork net(ElectricalParams{});
    // Run two broadcasts so the second exercises tree replication.
    for (PacketId id : {1, 2}) {
        ASSERT_TRUE(net.inject(broadcast(id, 36, net.now())));
        const auto dels = runToIdle(net);
        ASSERT_EQ(dels.size(), 63u);
        std::map<NodeId, int> seen;
        for (const auto &d : dels)
            ++seen[d.node];
        EXPECT_EQ(seen.count(36), 0u);
        for (const auto &[node, count] : seen)
            EXPECT_EQ(count, 1) << "node " << node;
    }
}

TEST(ElectricalNet, ManyFlowsAllDelivered)
{
    ElectricalNetwork net(ElectricalParams{});
    PacketId id = 1;
    uint64_t expected = 0;
    for (int round = 0; round < 5; ++round) {
        for (NodeId src = 0; src < 64; ++src) {
            const NodeId dst =
                static_cast<NodeId>((src + 17 + round) % 64);
            if (dst == src)
                continue;
            ASSERT_TRUE(net.inject(unicast(id++, src, dst,
                                           net.now())));
            ++expected;
        }
        for (int c = 0; c < 3; ++c)
            net.step();
    }
    const auto dels = runToIdle(net);
    // Deliveries during the rounds were not captured here; rely on
    // the counter instead.
    (void)dels;
    EXPECT_EQ(net.counters().deliveries, expected);
}

TEST(ElectricalNet, MixedBroadcastAndUnicastLoad)
{
    ElectricalNetwork net(ElectricalParams{});
    PacketId id = 1;
    uint64_t expected = 0;
    for (NodeId src = 0; src < 64; src += 4) {
        ASSERT_TRUE(net.inject(broadcast(id++, src, net.now())));
        expected += 63;
        ASSERT_TRUE(net.inject(
            unicast(id++, src, static_cast<NodeId>((src + 31) % 64),
                    net.now())));
        expected += 1;
    }
    runToIdle(net);
    EXPECT_EQ(net.counters().deliveries, expected);
}

TEST(ElectricalNet, NicCapacityBackpressure)
{
    ElectricalParams p;
    p.nicQueueEntries = 2;
    ElectricalNetwork net(p);
    EXPECT_TRUE(net.inject(unicast(1, 0, 63)));
    EXPECT_TRUE(net.inject(unicast(2, 0, 62)));
    EXPECT_FALSE(net.nicHasSpace(0));
    EXPECT_FALSE(net.inject(unicast(3, 0, 61)));
    EXPECT_TRUE(net.inject(unicast(4, 1, 61)));
    runToIdle(net);
    EXPECT_EQ(net.counters().deliveries, 3u);
}

TEST(ElectricalNet, InjectionThroughputOnePerCycle)
{
    // A node can start at most one flit per cycle; back-to-back
    // packets to the same neighbor serialize at the NIC.
    ElectricalNetwork net(ElectricalParams{});
    const int n = 10;
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(net.inject(unicast(static_cast<PacketId>(i + 1),
                                       0, 1)));
    const auto dels = runToIdle(net);
    ASSERT_EQ(dels.size(), static_cast<size_t>(n));
    Cycle last = 0;
    for (const auto &d : dels) {
        if (last != 0)
            EXPECT_GE(d.at, last + 1);
        last = d.at;
    }
}

TEST(ElectricalNet, SaturatingLoadEventuallyDrains)
{
    ElectricalNetwork net(ElectricalParams{});
    PacketId id = 1;
    for (int round = 0; round < 3; ++round) {
        for (NodeId src = 0; src < 64; src += 2)
            net.inject(broadcast(id++, src, net.now()));
        for (int c = 0; c < 5; ++c)
            net.step();
    }
    runToIdle(net);
    EXPECT_EQ(net.inFlight(), 0u);
}

TEST(ElectricalNet, Deterministic)
{
    auto run = []() {
        ElectricalNetwork net(ElectricalParams{});
        PacketId id = 1;
        for (int round = 0; round < 4; ++round) {
            for (NodeId src = 0; src < 64; src += 3)
                net.inject(broadcast(id++, src, net.now()));
            for (int c = 0; c < 10; ++c)
                net.step();
        }
        while (net.inFlight() > 0)
            net.step();
        return std::tuple{net.now(), net.counters().deliveries,
                          net.events().linkTraversals,
                          net.events().saGrants};
    };
    EXPECT_EQ(run(), run());
}

TEST(ElectricalNet, EventAccountingConsistent)
{
    ElectricalNetwork net(ElectricalParams{});
    PacketId id = 1;
    for (NodeId src = 0; src < 64; src += 6)
        net.inject(broadcast(id++, src, net.now()));
    runToIdle(net);
    const auto &ev = net.events();
    EXPECT_EQ(ev.saGrants, ev.xbarTraversals);
    EXPECT_EQ(ev.saGrants, ev.linkTraversals);
    EXPECT_EQ(ev.saGrants, ev.bufferReads);
    // Every link traversal lands in a buffer; injections also write.
    EXPECT_EQ(ev.bufferWrites,
              ev.linkTraversals + net.counters().packetsInjected);
    EXPECT_EQ(ev.ejections, net.counters().deliveries);
}

} // namespace
} // namespace phastlane::electrical
