/**
 * @file
 * Open-loop synthetic traffic driver (paper Fig 9): Bernoulli
 * injection at a configured rate per node, a chosen destination
 * pattern, and warmup / measurement / drain phases. Packets that the
 * NIC cannot accept wait in an unbounded per-node source queue, so
 * source queueing time is part of the measured latency (standard
 * BookSim methodology).
 */

#ifndef PHASTLANE_TRAFFIC_SYNTHETIC_HPP
#define PHASTLANE_TRAFFIC_SYNTHETIC_HPP

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"
#include "traffic/patterns.hpp"

namespace phastlane::traffic {

/** Configuration of one open-loop run. */
struct SyntheticConfig {
    Pattern pattern = Pattern::UniformRandom;

    /** Offered load, packets per node per cycle. */
    double injectionRate = 0.01;

    /** Fraction of injected messages that are broadcasts. */
    double broadcastFraction = 0.0;

    Cycle warmupCycles = 1000;
    Cycle measureCycles = 5000;

    /** Stop waiting for stragglers after this many drain cycles. */
    Cycle maxDrainCycles = 50000;

    uint64_t seed = 42;
};

/** Results of one open-loop run. */
struct SyntheticResult {
    double offeredRate = 0.0;   ///< packets/node/cycle offered
    double acceptedRate = 0.0;  ///< packets/node/cycle delivered
    double avgLatency = 0.0;    ///< creation -> delivery, cycles
    double avgNetLatency = 0.0; ///< injection -> delivery, cycles
    double p99Latency = 0.0;
    uint64_t measuredPackets = 0;
    bool saturated = false; ///< latency diverged / backlog exploded
};

/**
 * Drives a Network with Bernoulli traffic and measures latency and
 * accepted throughput.
 */
class SyntheticDriver
{
  public:
    SyntheticDriver(Network &net, const SyntheticConfig &cfg);

    /** Run warmup + measurement + drain; returns the results. */
    SyntheticResult run();

    /** Latency threshold (cycles) above which we declare saturation. */
    static constexpr double kSaturationLatency = 500.0;

  private:
    void generate(Cycle now);
    void pumpSourceQueues();
    void harvest(bool measuring);

    Network &net_;
    SyntheticConfig cfg_;
    Rng rng_;
    std::vector<std::deque<Packet>> sourceQueues_;
    uint64_t nextPacketId_ = 1;

    Cycle measureStart_ = 0;
    Cycle measureEnd_ = 0;
    RunningStat latency_;
    RunningStat netLatency_;
    Histogram latencyHist_{10.0, 500};
    uint64_t measuredDeliveries_ = 0;
    uint64_t offeredMeasured_ = 0;
};

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_SYNTHETIC_HPP
