#include "traffic/coherence.hpp"

#include "common/log.hpp"

namespace phastlane::traffic {

CoherenceDriver::CoherenceDriver(
    Network &net, const std::vector<std::vector<Txn>> &streams,
    int mshr_limit)
    : net_(net), streams_(streams), mshrLimit_(mshr_limit)
{
    if (mshr_limit < 1)
        fatal("MSHR limit must be at least 1");
    if (static_cast<int>(streams.size()) != net.nodeCount())
        fatal("stream count (%zu) does not match node count (%d)",
              streams.size(), net.nodeCount());
    nodes_.resize(streams.size());
}

bool
CoherenceDriver::allDone() const
{
    for (size_t n = 0; n < nodes_.size(); ++n) {
        const NodeState &st = nodes_[n];
        if (st.next < streams_[n].size() || st.outstanding > 0 ||
            !st.sendQueue.empty() || !st.responseQueue.empty()) {
            return false;
        }
    }
    return net_.inFlight() == 0;
}

void
CoherenceDriver::begin(Cycle max_cycles)
{
    PL_ASSERT(!begun_, "begin() called twice");
    begun_ = true;
    start_ = net_.now();
    deadline_ = start_ + max_cycles;
}

bool
CoherenceDriver::done() const
{
    return net_.now() >= deadline_ || allDone();
}

void
CoherenceDriver::preStep()
{
    const Cycle now = net_.now();

    for (NodeId n = 0; n < net_.nodeCount(); ++n) {
        NodeState &st = nodes_[static_cast<size_t>(n)];
        const auto &stream = streams_[static_cast<size_t>(n)];

        // Release matured responses into the send queue (they take
        // priority over new transactions).
        while (!st.responseQueue.empty() &&
               st.responseQueue.front().first <= now) {
            st.sendQueue.push_front(
                std::move(st.responseQueue.front().second));
            st.responseQueue.pop_front();
        }

        // Issue the next transaction when the node is ready.
        if (st.next < stream.size() && now >= st.readyAt &&
            st.sendQueue.size() < kSendQueueLimit) {
            const Txn &t = stream[st.next];
            const bool is_request = t.type == TxnType::Request;
            if (!is_request || st.outstanding < mshrLimit_) {
                Packet pkt;
                pkt.id = nextPacketId_++;
                pkt.src = n;
                pkt.createdAt = now;
                pkt.tag = nextTag_++;
                switch (t.type) {
                  case TxnType::Request:
                    if (t.broadcastReq) {
                        pkt.broadcast = true;
                        ++res_.broadcasts;
                    } else {
                        pkt.dst = t.peer;
                        ++res_.unicasts;
                    }
                    pkt.kind = MessageKind::Request;
                    pending_[pkt.tag] = PendingRequest{
                        n, t.peer, t.serviceLatency, now};
                    ++st.outstanding;
                    break;
                  case TxnType::Invalidate:
                    pkt.broadcast = true;
                    pkt.kind = MessageKind::Invalidate;
                    ++res_.broadcasts;
                    break;
                  case TxnType::Writeback:
                    pkt.dst = t.peer;
                    pkt.kind = MessageKind::Writeback;
                    ++res_.unicasts;
                    break;
                }
                st.sendQueue.push_back(std::move(pkt));
                st.readyAt = now + t.thinkAfter;
                ++st.next;
                ++res_.transactions;
            }
        }

        // Pump the send queue into the NIC.
        while (!st.sendQueue.empty() &&
               net_.inject(st.sendQueue.front())) {
            const Packet &pkt = st.sendQueue.front();
            openMsgs_[pkt.id] = MsgTrack{
                pkt.deliveryCount(net_.nodeCount()),
                pkt.createdAt};
            st.sendQueue.pop_front();
        }
    }
}

void
CoherenceDriver::postStep()
{
    for (const auto &d : net_.deliveries()) {
        latency_.add(
            static_cast<double>(d.at - d.packet.createdAt));
        auto mt = openMsgs_.find(d.packet.id);
        PL_ASSERT(mt != openMsgs_.end(),
                  "delivery for untracked message");
        if (--mt->second.remaining == 0) {
            msgLatency_.add(static_cast<double>(
                d.at - mt->second.createdAt));
            openMsgs_.erase(mt);
        }
        if (d.packet.kind == MessageKind::Request) {
            auto it = pending_.find(d.packet.tag);
            if (it != pending_.end() &&
                it->second.home == d.node) {
                // The home schedules the data response after its
                // service latency.
                reqLatency_.add(static_cast<double>(
                    d.at - it->second.createdAt));
                Packet resp;
                resp.id = nextPacketId_++;
                resp.src = d.node;
                resp.dst = it->second.requester;
                resp.kind = MessageKind::Response;
                resp.tag = d.packet.tag;
                resp.createdAt = d.at;
                nodes_[static_cast<size_t>(d.node)]
                    .responseQueue.emplace_back(
                        d.at + it->second.serviceLatency,
                        std::move(resp));
                ++res_.unicasts;
            }
        } else if (d.packet.kind == MessageKind::Response) {
            auto it = pending_.find(d.packet.tag);
            PL_ASSERT(it != pending_.end(),
                      "response for unknown request");
            PL_ASSERT(it->second.requester == d.node,
                      "response delivered to the wrong node");
            roundTrip_.add(static_cast<double>(
                d.at - it->second.createdAt));
            --nodes_[static_cast<size_t>(d.node)].outstanding;
            pending_.erase(it);
        }
    }
}

CoherenceResult
CoherenceDriver::finish()
{
    res_.completionCycles = net_.now() - start_;
    res_.avgLatency = latency_.mean();
    res_.avgMessageLatency = msgLatency_.mean();
    res_.avgRequestLatency = reqLatency_.mean();
    res_.avgRoundTrip = roundTrip_.mean();
    res_.timedOut = !allDone();
    if (res_.timedOut)
        warn("coherence run timed out with %llu in flight",
             static_cast<unsigned long long>(net_.inFlight()));
    return res_;
}

CoherenceResult
CoherenceDriver::run(Cycle max_cycles)
{
    begin(max_cycles);
    while (!done()) {
        preStep();
        net_.step();
        postStep();
    }
    return finish();
}

} // namespace phastlane::traffic
