#include "traffic/trace_stream.hpp"

#include <cstring>

#include "common/log.hpp"

namespace phastlane::traffic {

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

size_t
getVarint(const uint8_t *p, size_t n, uint64_t &v)
{
    v = 0;
    int shift = 0;
    for (size_t i = 0; i < n && i < 10; ++i) {
        const uint64_t byte = p[i];
        // The 10th byte may only carry the top bit of a 64-bit value.
        if (i == 9 && (byte & 0xfe) != 0)
            return 0;
        v |= (byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return i + 1;
        shift += 7;
    }
    return 0; // mid-varint end of buffer, or > 10 bytes
}

namespace {

/** dst wire encoding: 0 = broadcast (kInvalidNode), else dst + 1. */
uint64_t
encodeDst(NodeId dst)
{
    return dst == kInvalidNode ? 0
                               : static_cast<uint64_t>(dst) + 1;
}

/** Signed zigzag mapping (bijective on 64 bits, so tag deltas wrap
 *  safely through unsigned arithmetic). */
uint64_t
zigzag(int64_t d)
{
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

int64_t
unzigzag(uint64_t z)
{
    return static_cast<int64_t>((z >> 1) ^ (0 - (z & 1)));
}

} // namespace

void
encodeChunkPayload(const TraceRecord *recs, size_t n, std::string &out)
{
    PL_ASSERT(n > 0, "empty chunk");
    Cycle prev = 0;
    uint64_t prev_tag = 0;
    for (size_t i = 0; i < n; ++i) {
        const TraceRecord &r = recs[i];
        PL_ASSERT(r.cycle >= prev, "chunk records out of order");
        if (r.cycle > kMaxEncodableCycle)
            fatal("trace cycle %llu exceeds the encodable maximum",
                  static_cast<unsigned long long>(r.cycle));
        PL_ASSERT(static_cast<unsigned>(r.kind) < 8,
                  "kind does not fit the 3-bit packed field");
        putVarint(out, ((r.cycle - prev) << 3) |
                           static_cast<uint64_t>(r.kind));
        prev = r.cycle;
        putVarint(out, static_cast<uint64_t>(r.src));
        putVarint(out, encodeDst(r.dst));
        putVarint(out, zigzag(static_cast<int64_t>(r.tag - prev_tag)));
        prev_tag = r.tag;
    }
}

std::string
decodeChunkPayload(const uint8_t *p, size_t n, size_t expect,
                   int node_count, Cycle &last_cycle,
                   std::vector<TraceRecord> &out)
{
    size_t off = 0;
    uint64_t v = 0;
    Cycle cycle = 0;
    uint64_t prev_tag = 0;
    for (size_t i = 0; i < expect; ++i) {
        TraceRecord r;
        size_t u = getVarint(p + off, n - off, v);
        if (u == 0)
            return detail::formatMsg(
                "truncated delta/kind varint in record %zu", i);
        off += u;
        r.kind = static_cast<MessageKind>(v & 7);
        const Cycle next = cycle + (v >> 3);
        if (next < cycle || next > kMaxEncodableCycle)
            return detail::formatMsg("cycle overflow in record %zu",
                                     i);
        cycle = next;
        if (i == 0 && cycle < last_cycle)
            return detail::formatMsg(
                "chunk starts at cycle %llu before previous record "
                "at %llu",
                static_cast<unsigned long long>(cycle),
                static_cast<unsigned long long>(last_cycle));
        r.cycle = cycle;
        u = getVarint(p + off, n - off, v);
        if (u == 0 || v > static_cast<uint64_t>(INT32_MAX))
            return detail::formatMsg("bad src varint in record %zu",
                                     i);
        off += u;
        r.src = static_cast<NodeId>(v);
        u = getVarint(p + off, n - off, v);
        if (u == 0 || v > static_cast<uint64_t>(INT32_MAX))
            return detail::formatMsg("bad dst varint in record %zu",
                                     i);
        off += u;
        r.dst = v == 0 ? kInvalidNode : static_cast<NodeId>(v - 1);
        u = getVarint(p + off, n - off, v);
        if (u == 0)
            return detail::formatMsg("bad tag varint in record %zu",
                                     i);
        off += u;
        r.tag = prev_tag + static_cast<uint64_t>(unzigzag(v));
        prev_tag = r.tag;
        const std::string err = validateTraceRecord(r, node_count);
        if (!err.empty())
            return detail::formatMsg("record %zu invalid: %s", i,
                                     err.c_str());
        out.push_back(r);
    }
    if (off != n)
        return detail::formatMsg(
            "%zu trailing bytes after %zu records",
            n - off, expect);
    last_cycle = cycle;
    return "";
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

TraceStreamWriter::TraceStreamWriter(const std::string &path,
                                     const TraceStreamOptions &opts)
    : path_(path), opts_(opts)
{
    if (opts_.chunkRecords == 0 ||
        opts_.chunkRecords > kMaxChunkRecords)
        fatal("trace chunkRecords %zu out of range (1..%zu)",
              opts_.chunkRecords, kMaxChunkRecords);
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    std::string header(kTraceMagic, sizeof(kTraceMagic));
    header.push_back(static_cast<char>(kTraceVersion));
    header.push_back(0); // flags
    putVarint(header,
              static_cast<uint64_t>(
                  opts_.nodeCount > 0 ? opts_.nodeCount : 0));
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
        std::fclose(file_);
        file_ = nullptr;
        fatal("write error on trace file '%s'", path_.c_str());
    }
    buffer_.reserve(opts_.chunkRecords);
}

TraceStreamWriter::~TraceStreamWriter()
{
    close();
}

void
TraceStreamWriter::append(const TraceRecord &r)
{
    PL_ASSERT(file_, "append on a closed trace writer");
    const std::string err = validateTraceRecord(r, opts_.nodeCount);
    if (!err.empty())
        fatal("invalid trace record %llu: %s",
              static_cast<unsigned long long>(records_), err.c_str());
    if (r.cycle < lastCycle_)
        fatal("trace record %llu out of order (cycle %llu after "
              "%llu)",
              static_cast<unsigned long long>(records_),
              static_cast<unsigned long long>(r.cycle),
              static_cast<unsigned long long>(lastCycle_));
    lastCycle_ = r.cycle;
    buffer_.push_back(r);
    ++records_;
    if (buffer_.size() >= opts_.chunkRecords)
        flushChunk();
}

void
TraceStreamWriter::flushChunk()
{
    if (buffer_.empty())
        return;
    scratch_.clear();
    encodeChunkPayload(buffer_.data(), buffer_.size(), scratch_);
    std::string frame;
    putVarint(frame, scratch_.size());
    putVarint(frame, buffer_.size());
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
            frame.size() ||
        std::fwrite(scratch_.data(), 1, scratch_.size(), file_) !=
            scratch_.size()) {
        std::fclose(file_);
        file_ = nullptr;
        fatal("write error on trace file '%s'", path_.c_str());
    }
    buffer_.clear();
}

void
TraceStreamWriter::close()
{
    if (!file_)
        return;
    flushChunk();
    const char end[2] = {0, 0}; // payloadBytes = 0, recordCount = 0
    if (std::fwrite(end, 1, sizeof(end), file_) != sizeof(end)) {
        std::fclose(file_);
        file_ = nullptr;
        fatal("write error on trace file '%s'", path_.c_str());
    }
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0)
        fatal("close/flush error on trace file '%s' (disk full?)",
              path_.c_str());
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

namespace {

/** Read one varint from @p f byte-by-byte; false on EOF/overflow. */
bool
readVarintFile(std::FILE *f, uint64_t &v)
{
    v = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
        const int c = std::fgetc(f);
        if (c == EOF)
            return false;
        const uint64_t byte = static_cast<uint64_t>(c);
        if (i == 9 && (byte & 0xfe) != 0)
            return false;
        v |= (byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
        shift += 7;
    }
    return false;
}

} // namespace

TraceStreamReader::TraceStreamReader(const std::string &path,
                                     int node_count)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[sizeof(kTraceMagic)] = {};
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        fatal("'%s' is not a binary trace (bad magic)", path.c_str());
    const int version = std::fgetc(file_);
    const int flags = std::fgetc(file_);
    if (version == EOF || flags == EOF)
        fatal("truncated trace header in '%s'", path.c_str());
    if (version != kTraceVersion)
        fatal("unsupported trace version %d in '%s' (expected %d)",
              version, path.c_str(), kTraceVersion);
    if (flags != 0)
        fatal("unsupported trace flags 0x%02x in '%s'", flags,
              path.c_str());
    uint64_t nodes = 0;
    if (!readVarintFile(file_, nodes) ||
        nodes > static_cast<uint64_t>(INT32_MAX))
        fatal("bad node count in trace header of '%s'", path.c_str());
    headerNodeCount_ = static_cast<int>(nodes);
    validateNodes_ = node_count > 0 ? node_count : headerNodeCount_;
    if (node_count > 0 && headerNodeCount_ > 0 &&
        headerNodeCount_ > node_count)
        fatal("trace '%s' was recorded for %d nodes but the target "
              "network has %d",
              path.c_str(), headerNodeCount_, node_count);
}

TraceStreamReader::~TraceStreamReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceStreamReader::readChunk()
{
    uint64_t nbytes = 0;
    uint64_t nrecords = 0;
    if (!readVarintFile(file_, nbytes))
        fatal("truncated trace '%s': missing chunk header after "
              "record %llu (no end marker)",
              path_.c_str(),
              static_cast<unsigned long long>(records_));
    if (nbytes == 0) {
        // End marker: a record count of zero, then EOF.
        if (!readVarintFile(file_, nrecords) || nrecords != 0)
            fatal("corrupt end marker in trace '%s'", path_.c_str());
        if (std::fgetc(file_) != EOF)
            fatal("trailing bytes after end marker in trace '%s'",
                  path_.c_str());
        return false;
    }
    if (!readVarintFile(file_, nrecords))
        fatal("truncated chunk header in trace '%s'", path_.c_str());
    if (nbytes > kMaxChunkBytes || nrecords == 0 ||
        nrecords > kMaxChunkRecords)
        fatal("implausible chunk framing in trace '%s' "
              "(%llu bytes, %llu records)",
              path_.c_str(), static_cast<unsigned long long>(nbytes),
              static_cast<unsigned long long>(nrecords));
    payload_.resize(nbytes);
    if (std::fread(payload_.data(), 1, nbytes, file_) != nbytes)
        fatal("truncated chunk payload in trace '%s' after record "
              "%llu",
              path_.c_str(),
              static_cast<unsigned long long>(records_));
    chunk_.clear();
    chunkNext_ = 0;
    const std::string err =
        decodeChunkPayload(payload_.data(), nbytes, nrecords,
                           validateNodes_, lastCycle_, chunk_);
    if (!err.empty())
        fatal("corrupt chunk in trace '%s' near record %llu: %s",
              path_.c_str(),
              static_cast<unsigned long long>(records_),
              err.c_str());
    return true;
}

bool
TraceStreamReader::next(TraceRecord &out)
{
    while (chunkNext_ >= chunk_.size()) {
        if (done_)
            return false;
        if (!readChunk()) {
            done_ = true;
            return false;
        }
    }
    out = chunk_[chunkNext_++];
    ++records_;
    return true;
}

// ---------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------

void
writeTraceBinary(const std::string &path,
                 const std::vector<TraceRecord> &records,
                 int node_count)
{
    TraceStreamOptions opts;
    opts.nodeCount = node_count;
    TraceStreamWriter w(path, opts);
    for (const auto &r : records)
        w.append(r);
    w.close();
}

std::vector<TraceRecord>
readTraceBinary(const std::string &path, int node_count)
{
    TraceStreamReader r(path, node_count);
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (r.next(rec))
        records.push_back(rec);
    return records;
}

bool
isBinaryTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char magic[sizeof(kTraceMagic)] = {};
    const size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    return got == sizeof(magic) &&
           std::memcmp(magic, kTraceMagic, sizeof(magic)) == 0;
}

std::vector<TraceRecord>
readTraceAuto(const std::string &path, int node_count)
{
    if (isBinaryTraceFile(path))
        return readTraceBinary(path, node_count);
    return readTrace(path, node_count);
}

} // namespace phastlane::traffic
