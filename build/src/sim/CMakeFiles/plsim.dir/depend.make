# Empty dependencies file for plsim.
# This may be replaced when dependencies are built.
