/**
 * @file
 * The electrical side of a Phastlane router: five buffer queues (N, E,
 * S, W input ports plus the local node queue) and the rotating
 * priority arbiter that re-launches buffered packets (paper Section
 * 2.1.1).
 */

#ifndef PHASTLANE_CORE_ROUTER_HPP
#define PHASTLANE_CORE_ROUTER_HPP

#include <algorithm>
#include <climits>
#include <deque>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/control.hpp"
#include "core/packet.hpp"
#include "core/params.hpp"

namespace phastlane::core {

/** State of one buffered packet. */
enum class EntryState : uint8_t {
    /** Waiting for the arbiter (once eligibleAt is reached). */
    Waiting,
    /** Launched optically; the slot is held until the drop-signal
     *  window of the next cycle resolves. */
    Launched,
};

/** One router-buffer entry. */
struct BufferEntry {
    OpticalPacket pkt;
    EntryState state = EntryState::Waiting;

    /** Earliest cycle the arbiter may launch this entry. */
    Cycle eligibleAt = 0;

    /** Completed launch attempts (drives exponential backoff). */
    int attempts = 0;

    /** Insertion order (age) for oldest-first arbitration. */
    uint64_t seq = 0;

    /** Cycle the packet first became launchable from this buffer.
     *  Survives restoreDropped(), so it measures total residence —
     *  the age AdmissionPolicy::AgeBoost promotes on. */
    Cycle enqueuedAt = 0;

    /** Arbitration rounds this entry was eligible but not selected,
     *  since its last launch (the starvation measure). */
    uint32_t consecLosses = 0;

    /** Memoized desired output port. A buffered packet's residence
     *  router and destination never change, so the XY first hop is
     *  computed once on first arbitration instead of on every rescan
     *  while the entry waits out contention or backoff. Local is the
     *  "unset" sentinel: no buffered packet wants the local port. */
    Port desired = Port::Local;
};

/** Identifies a buffer entry for launch-outcome resolution. */
struct EntryRef {
    NodeId router = kInvalidNode;
    Port queue = Port::Local;
    PacketId packet = 0;
};

/** One arbitration winner: the entry, its output port, and the input
 *  queue it sits in (so launch-outcome resolution can go straight to
 *  that queue instead of scanning all five). */
struct LaunchPick {
    BufferEntry *entry;
    Port out;
    Port queue;
};

/**
 * Caller-owned arbitration scratch: the launch list plus the
 * oldest-first candidate buffer, reused across routers and cycles so
 * the per-router arbitrate() call allocates nothing in steady state.
 */
struct ArbitrationScratch {
    std::vector<LaunchPick> launches;
    std::vector<std::pair<uint64_t, std::pair<BufferEntry *, Port>>>
        candidates;
};

/**
 * Buffer queues and rotating arbiter of one router.
 */
class RouterBuffers
{
  public:
    RouterBuffers(NodeId self, const PhastlaneParams &params);

    NodeId self() const { return self_; }

    /** True when queue @p q can accept another packet (inline: this
     *  runs per arrival in the wavefront hot path). */
    bool hasSpace(Port q) const { return freeSlots(q) > 0; }

    /** Free slots in queue @p q (INT_MAX when infinite). */
    int freeSlots(Port q) const
    {
        if (capacity_ <= 0)
            return INT_MAX;
        const int occ = static_cast<int>(queues_[portIndex(q)].size());
        if (!sharedPool_)
            return capacity_ - occ;
        return sharedPoolFreeSlots(occ);
    }

    /** Current occupancy of queue @p q. */
    size_t occupancy(Port q) const
    {
        return queues_[portIndex(q)].size();
    }

    /** Total occupancy across all five queues. */
    size_t totalOccupancy() const { return total_; }

    /**
     * Insert a received packet into queue @p q; the caller must have
     * checked hasSpace(). @p eligible_at is the first cycle the
     * arbiter may re-launch it.
     */
    void push(Port q, OpticalPacket pkt, Cycle eligible_at);

    /**
     * Allocate an empty entry at the tail of queue @p q (same
     * bookkeeping as push()) and return it for the caller to fill its
     * pkt in place — the NIC-transfer path moves one packet instead
     * of a packet plus a whole BufferEntry.
     */
    BufferEntry &emplaceEntry(Port q, Cycle eligible_at);

    /**
     * Launch arbitration: pick up to four launch candidates for
     * distinct output ports among the Waiting entries whose
     * eligibleAt has passed, using the configured policy (rotating
     * priority over the queues, or globally oldest-first).
     * @p desired_port yields the output port an entry needs from this
     * router.
     *
     * Selected entries are flipped to Launched. Returns references to
     * the selected entries paired with their output port.
     */
    template <typename DesiredPortFn>
    std::vector<std::pair<BufferEntry *, Port>>
    arbitrate(Cycle now, DesiredPortFn &&desired_port);

    /**
     * Allocation-free arbitrate: results land in
     * @p scratch.launches (cleared first). Empty routers return
     * immediately after advancing the rotating pointer, so a
     * mostly-idle mesh pays O(1) per router.
     */
    template <typename DesiredPortFn>
    void arbitrate(Cycle now, DesiredPortFn &&desired_port,
                   ArbitrationScratch &scratch);

    /** True when no queue holds any entry (O(1)). */
    bool empty() const { return total_ == 0; }

    /** Largest consecLosses streak seen on any queue (starvation
     *  indicator; DESIGN.md §14). */
    uint64_t maxConsecutiveLosses() const { return maxConsecLossAll_; }

    /** Largest streak on the local queue only — i.e. for packets
     *  originated by this router's node (the per-source view). */
    uint64_t maxConsecutiveLossesLocal() const
    {
        return maxConsecLossLocal_;
    }

  private:
    /** DAMQ shared-pool slot accounting (the uncommon configuration;
     *  kept out of line). */
    int sharedPoolFreeSlots(int occ) const;

  public:

    /** Resolve a prior launch: release the entry on success. */
    void releaseLaunched(PacketId id);

    /** Queue-targeted release: the caller learned the source queue at
     *  launch time, so only that deque is searched. */
    void releaseLaunched(Port q, PacketId id);

    /**
     * Resolve a prior launch that was dropped downstream: restore the
     * entry to Waiting with the (possibly tap-reduced) packet state
     * and the retry eligibility cycle.
     */
    void restoreDropped(PacketId id, OpticalPacket updated,
                        Cycle eligible_at);

    /** Queue-targeted variant of restoreDropped(). */
    void restoreDropped(Port q, PacketId id, OpticalPacket updated,
                        Cycle eligible_at);

    /** Find the queue holding the Launched entry for @p id. */
    BufferEntry *findLaunched(PacketId id, Port *queue_out = nullptr);

    /** Find the Launched entry for @p id within queue @p q only. */
    BufferEntry *findLaunchedIn(Port q, PacketId id);

    /** Record that a Waiting entry may become launchable at @p c;
     *  keeps the arbitration skip horizon conservative when a caller
     *  rewrites eligibleAt directly through a findLaunched pointer. */
    void noteEligible(Cycle c)
    {
        nextEligible_ = std::min(nextEligible_, c);
        if (board_ != nullptr && c < *board_)
            *board_ = c;
    }

    /**
     * Bind (or, with nullptr, unbind) this router's slot in a batch
     * launch board (DESIGN.md §13). The slot mirrors the launch
     * horizon: a lower bound on the earliest cycle arbitrate() could
     * do work here, kNeverCycle while the router is empty. A batch
     * engine may skip the arbitrate() call while the board value is
     * in the future, provided it replays the skipped rotating-pointer
     * advances with syncRotate() first.
     */
    void bindBoard(Cycle *slot)
    {
        board_ = slot;
        if (board_ != nullptr)
            *board_ = total_ == 0 ? kNeverCycle : nextEligible_;
    }

    /**
     * Reconstruct the rotating pointer as if arbitrate() had run once
     * per cycle since cycle 0 — which is exactly what the serial
     * engine does, advancing rotate_ by one per call from 0. Called by
     * the batch engine before a real arbitrate() to make board-driven
     * skips invisible to the priority rotation.
     */
    void syncRotate(Cycle now)
    {
        if (policy_ != BufferArbitration::OldestFirst)
            rotate_ = static_cast<int>(now % kAllPorts);
    }

  private:
    NodeId self_;
    int capacity_; // <= 0: infinite
    int launchesPerQueue_;
    bool sharedPool_;
    BufferArbitration policy_;
    std::array<std::deque<BufferEntry>, kAllPorts> queues_;
    int rotate_ = 0;
    uint64_t nextSeq_ = 0;
    size_t total_ = 0;
    /** Lower bound on the earliest eligibleAt among Waiting entries;
     *  kNeverCycle when every entry is Launched (or none exist). Lets
     *  arbitrate() skip the queue scan while all buffered packets sit
     *  in backoff or in flight. */
    Cycle nextEligible_ = 0;
    /** Slot in a NetworkBatch launch board, or nullptr outside a
     *  batch. Mirrors the launch horizon so the batch engine can skip
     *  whole routers without touching their queues. */
    Cycle *board_ = nullptr;

    /** Admission policy (DESIGN.md §14): TokenBucket throttles
     *  local-queue (source-originated) launches through bucket_;
     *  transit queues are never throttled. Per-router state keeps the
     *  sharded and batched engines race-free: the consume() sequence
     *  is exactly the arbitration scan order. */
    AdmissionPolicy admission_ = AdmissionPolicy::None;
    int admissionBurst_ = 0;
    int admissionPeriod_ = 1;
    AdmissionBucket bucket_;

    /** Starvation maxima (longest losing streak observed). */
    uint64_t maxConsecLossLocal_ = 0;
    uint64_t maxConsecLossAll_ = 0;

    /** Record an eligible-but-unselected arbitration round. */
    void noteLoss(BufferEntry &entry, Port q)
    {
        const uint64_t v = ++entry.consecLosses;
        if (v > maxConsecLossAll_)
            maxConsecLossAll_ = v;
        if (q == Port::Local && v > maxConsecLossLocal_)
            maxConsecLossLocal_ = v;
    }
};

template <typename DesiredPortFn>
void
RouterBuffers::arbitrate(Cycle now, DesiredPortFn &&desired_port,
                         ArbitrationScratch &scratch)
{
    auto &launches = scratch.launches;
    launches.clear();
    // Advance the rotating pointer even when skipping an empty router
    // (or one whose entries are all Launched or still in backoff): its
    // future priority order must not depend on whether earlier cycles
    // had launchable traffic.
    if (total_ == 0 || now < nextEligible_) {
        if (policy_ != BufferArbitration::OldestFirst)
            rotate_ = (rotate_ + 1) % kAllPorts;
        // Refresh a stale-low board slot so a wasted batch visit
        // (e.g. after releaseLaunched() emptied the router) self-heals
        // instead of recurring every cycle.
        if (board_ != nullptr)
            *board_ = total_ == 0 ? kNeverCycle : nextEligible_;
        return;
    }
    bool port_taken[kMeshPorts] = {false, false, false, false};
    Cycle next_eligible = kNeverCycle;

    auto try_launch = [&](BufferEntry &entry, Port q,
                          int &queue_budget) {
        if (entry.state == EntryState::Waiting &&
            entry.eligibleAt <= now) {
            bool selected = false;
            if (queue_budget > 0) {
                if (entry.desired == Port::Local)
                    entry.desired = desired_port(entry.pkt);
                const Port out = entry.desired;
                // The admission token is consumed last, only when the
                // launch would otherwise proceed — a blocked port must
                // not drain the bucket. The entry stays Waiting and
                // eligible, so the skip horizon keeps the router hot
                // and the next arbitration retries.
                if (out != Port::Local &&
                    !port_taken[portIndex(out)] &&
                    (admission_ != AdmissionPolicy::TokenBucket ||
                     q != Port::Local ||
                     bucket_.consume(admissionBurst_, admissionPeriod_,
                                     now))) {
                    port_taken[portIndex(out)] = true;
                    entry.state = EntryState::Launched;
                    launches.push_back(LaunchPick{&entry, out, q});
                    --queue_budget;
                    entry.consecLosses = 0;
                    selected = true;
                }
            }
            if (!selected)
                noteLoss(entry, q);
        }
        // Whatever is still Waiting after this decision bounds the
        // next cycle's skip horizon.
        if (entry.state == EntryState::Waiting)
            next_eligible = std::min(next_eligible, entry.eligibleAt);
    };

    if (policy_ == BufferArbitration::OldestFirst) {
        // Globally oldest eligible entry first (extension).
        auto &candidates = scratch.candidates;
        candidates.clear();
        for (int qi = 0; qi < kAllPorts; ++qi) {
            const Port q = portFromIndex(qi);
            for (auto &entry : queues_[qi]) {
                if (entry.state != EntryState::Waiting)
                    continue;
                if (entry.eligibleAt <= now) {
                    candidates.emplace_back(
                        entry.seq, std::make_pair(&entry, q));
                } else {
                    next_eligible =
                        std::min(next_eligible, entry.eligibleAt);
                }
            }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        int budget = 4; // one launch per output port at most
        for (auto &[seq, cand] : candidates)
            try_launch(*cand.first, cand.second, budget);
    } else {
        // Rotating pointer over the five queues; within a queue,
        // oldest-first; at most launchesPerQueue_ per queue.
        for (int qi = 0; qi < kAllPorts; ++qi) {
            const Port q = portFromIndex((rotate_ + qi) % kAllPorts);
            int queue_budget = launchesPerQueue_;
            for (auto &entry : queues_[portIndex(q)])
                try_launch(entry, q, queue_budget);
        }
        rotate_ = (rotate_ + 1) % kAllPorts;
    }
    nextEligible_ = next_eligible;
    if (board_ != nullptr)
        *board_ = total_ == 0 ? kNeverCycle : next_eligible;
}

template <typename DesiredPortFn>
std::vector<std::pair<BufferEntry *, Port>>
RouterBuffers::arbitrate(Cycle now, DesiredPortFn &&desired_port)
{
    ArbitrationScratch scratch;
    arbitrate(now, std::forward<DesiredPortFn>(desired_port), scratch);
    std::vector<std::pair<BufferEntry *, Port>> out;
    out.reserve(scratch.launches.size());
    for (const auto &pick : scratch.launches)
        out.emplace_back(pick.entry, pick.out);
    return out;
}

} // namespace phastlane::core

#endif // PHASTLANE_CORE_ROUTER_HPP
