#include "core/network.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/log.hpp"
#include "core/network_impl.hpp"

namespace phastlane::core {

PhastlaneNetwork::StepScratch::StepScratch(int node_count)
    : claims(node_count), reqOnce(node_count), reqMulti(node_count),
      reqWin(node_count)
{
    const size_t flat_ports =
        static_cast<size_t>(node_count) * kMeshPorts;
    bestRank.assign(flat_ports, 0);
    bestFlight.assign(flat_ports, 0);
    bestEpoch.assign(flat_ports, 0);
    reqHead.assign(flat_ports, 0);
    reqTail.assign(flat_ports, 0);
    reqEpoch.assign(flat_ports, 0);
}

PhastlaneNetwork::PhastlaneNetwork(const PhastlaneParams &params)
    : params_(params),
      mesh_(params.meshWidth, params.meshHeight),
      rng_(params.seed),
      returnPaths_(mesh_.nodeCount()),
      bitMesh_(params.meshWidth, params.meshHeight),
      ownScratch_(mesh_.nodeCount())
{
    if (params_.maxHopsPerCycle < 1)
        fatal("maxHopsPerCycle must be at least 1");
    if (params_.admission == AdmissionPolicy::TokenBucket &&
        (params_.admissionBurst < 1 || params_.admissionPeriod < 1))
        fatal("TokenBucket admission requires admissionBurst >= 1 "
              "and admissionPeriod >= 1");
    if (params_.admission == AdmissionPolicy::AgeBoost &&
        params_.admissionAgeThreshold < 0)
        fatal("AgeBoost admission requires admissionAgeThreshold "
              ">= 0");
    nics_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    routers_.reserve(static_cast<size_t>(mesh_.nodeCount()));
    failedRouters_.assign(static_cast<size_t>(mesh_.nodeCount()), 0);
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        nics_.emplace_back(n, params_, mesh_);
        routers_.emplace_back(n, params_);
        // Hard router failures are drawn once, at construction, so the
        // failure set is a pure function of (faultSeed, routerFailRate)
        // and identical in the ReferenceNetwork oracle.
        if (faultRoll(params_.faults, params_.faults.routerFailRate,
                      FaultKind::RouterFail,
                      static_cast<uint64_t>(n), 0, 0)) {
            failedRouters_[static_cast<size_t>(n)] = 1;
        }
    }
    const size_t flat_ports =
        static_cast<size_t>(mesh_.nodeCount()) * kMeshPorts;
    portClaimCounts_.assign(flat_ports, 0);
    if (mesh_.nodeCount() <= 256) {
        const size_t pairs =
            static_cast<size_t>(mesh_.nodeCount()) *
            static_cast<size_t>(mesh_.nodeCount());
        unicastProgCache_.resize(pairs);
        unicastProgValid_.assign(pairs, 0);
    }
    setupShards();
}

bool
PhastlaneNetwork::nicHasSpace(NodeId n) const
{
    PL_ASSERT(mesh_.valid(n), "invalid node %d", n);
    // Conservative: report space for a full broadcast so callers can
    // use the boolean for either message type.
    Packet probe;
    probe.src = n;
    probe.broadcast = true;
    return nics_[static_cast<size_t>(n)].hasSpaceFor(probe);
}

bool
PhastlaneNetwork::inject(const Packet &pkt)
{
    PL_ASSERT(mesh_.valid(pkt.src), "invalid source %d", pkt.src);
    auto &nic = nics_[static_cast<size_t>(pkt.src)];
    if (!nic.hasSpaceFor(pkt))
        return false;
    if (routerFailed(pkt.src)) {
        // Dead source: the message is accepted (the node's software
        // has no way to know its router died) but nothing is ever
        // transmitted; every delivery unit is accounted lost
        // immediately so the network still quiesces.
        ++counters_.messagesAccepted;
        const int units = pkt.deliveryCount(mesh_.nodeCount());
        events_.lostUnits += static_cast<uint64_t>(units);
        if (observer_) {
            observer_->onAccept(pkt, 0, units);
            observer_->onLost(pkt, 0, pkt.src, units,
                              LostCause::DeadSource);
        }
        return true;
    }
    const size_t nic_before = nic.occupancy();
    nic.accept(pkt, cycle_, nextBranchId_);
    if (batchNicOcc_ != nullptr)
        batchNicOcc_[static_cast<size_t>(pkt.src) >> 6] |=
            uint64_t{1} << (static_cast<size_t>(pkt.src) & 63);
    ++counters_.messagesAccepted;
    outstanding_ +=
        static_cast<uint64_t>(pkt.deliveryCount(mesh_.nodeCount()));
    if (observer_) {
        observer_->onAccept(
            pkt, static_cast<int>(nic.occupancy() - nic_before),
            pkt.deliveryCount(mesh_.nodeCount()));
    }
    return true;
}

uint64_t
PhastlaneNetwork::bufferedPackets() const
{
    uint64_t total = 0;
    for (const auto &r : routers_)
        total += r.totalOccupancy();
    return total;
}

uint64_t
PhastlaneNetwork::nicQueuedPackets() const
{
    uint64_t total = 0;
    for (const auto &nic : nics_)
        total += nic.occupancy();
    return total;
}

Port
PhastlaneNetwork::desiredPort(NodeId at, const OpticalPacket &pkt) const
{
    PL_ASSERT(at != pkt.finalDst,
              "buffered packet already at its destination");
    return mesh_.xyFirstHop(at, pkt.finalDst);
}

ControlProgram
PhastlaneNetwork::buildProgram(NodeId from, const OpticalPacket &pkt)
    const
{
    if (pkt.multicast) {
        MulticastBranch branch;
        branch.taps = pkt.remainingTaps();
        return buildMulticastProgram(mesh_, from, branch,
                                     params_.maxHopsPerCycle);
    }
    // A unicast program is a pure function of (launch router,
    // destination): memoize it. Retransmissions and later packets on
    // the same pair skip the XY route walk, which dominated the
    // launch path. The table is n^2 programs, so it is only kept for
    // small meshes; larger ones fall back to the direct walk.
    if (!unicastProgCache_.empty()) {
        const size_t key =
            static_cast<size_t>(from) *
                static_cast<size_t>(mesh_.nodeCount()) +
            static_cast<size_t>(pkt.finalDst);
        if (!unicastProgValid_[key]) {
            unicastProgCache_[key] = buildUnicastProgram(
                mesh_, from, pkt.finalDst, params_.maxHopsPerCycle);
            unicastProgValid_[key] = 1;
        }
        return unicastProgCache_[key];
    }
    return buildUnicastProgram(mesh_, from, pkt.finalDst,
                               params_.maxHopsPerCycle);
}

Cycle
PhastlaneNetwork::dropRetryCycle(int attempts)
{
    // The drop signal arrives in the cycle being processed; the
    // earliest relaunch is the next one, plus any configured backoff.
    Cycle extra = static_cast<Cycle>(params_.backoffBase);
    const int64_t window = backoffWindow(params_, attempts);
    if (window > 0)
        extra += static_cast<Cycle>(rng_.uniformInt(0, window));
    return cycle_ + 1 + extra;
}

bool
PhastlaneNetwork::claimed(NodeId router, Port out) const
{
    return scratch_->claims.test(router, out);
}

void
PhastlaneNetwork::setClaim(NodeId router, Port out)
{
    scratch_->claims.set(router, out);
    ++portClaimCounts_[static_cast<size_t>(router) * kMeshPorts +
                       portIndex(out)];
}

void
PhastlaneNetwork::deliver(const OpticalPacket &pkt, NodeId node)
{
    Delivery d;
    d.packet = pkt.base;
    d.node = node;
    d.at = cycle_;
    d.acceptedAt = pkt.acceptedAt;
    d.injectedAt = pkt.firstInjectedAt;
    deliveries_.push_back(std::move(d));
    ++counters_.deliveries;
    PL_ASSERT(outstanding_ > 0, "delivery without outstanding message");
    --outstanding_;
    if (observer_)
        observer_->onDeliver(deliveries_.back());
}

void
PhastlaneNetwork::resolveOutcomes()
{
    // Releases draw no randomness and touch only their own entry, so
    // resolving them ahead of the drops (which keep their relative
    // order, and with it the backoff RNG stream) is observably
    // identical to the historical interleaved order.
    for (const EntryRef &ref : pendingReleases_) {
        routers_[static_cast<size_t>(ref.router)].releaseLaunched(
            ref.queue, ref.packet);
    }
    pendingReleases_.clear();
    for (auto &o : pendingDrops_) {
        auto &rb = routers_[static_cast<size_t>(o.ref.router)];
        {
            BufferEntry *e = rb.findLaunchedIn(o.ref.queue,
                                               o.ref.packet);
            PL_ASSERT(e, "dropped launch lost its buffer entry");
            if (o.updated.multicast &&
                faultRoll(params_.faults,
                          params_.faults.dropperIdCorruptRate,
                          FaultKind::DropperIdCorrupt,
                          o.updated.branchId,
                          static_cast<uint64_t>(cycle_), 0)) {
                // The dropper's Node ID arrived corrupted: the holder
                // cannot clear the Multicast bits its dropped attempt
                // already served, so it keeps its stored (pre-launch)
                // branch state and retransmits it whole. Taps the
                // failed attempt did serve are recorded in dedupBelow
                // for receiver-side duplicate suppression. The retry
                // cycle is drawn exactly as in the clean path so the
                // backoff RNG stays in lockstep with the oracle.
                ++events_.faultCorruptions;
                e->pkt.dedupBelow = std::max(e->pkt.dedupBelow,
                                             o.updated.tapCursor);
                e->state = EntryState::Waiting;
                e->eligibleAt = dropRetryCycle(e->attempts + 1);
                ++e->attempts;
                rb.noteEligible(e->eligibleAt);
            } else {
                rb.restoreDropped(o.ref.queue, o.ref.packet,
                                  std::move(o.updated),
                                  dropRetryCycle(e->attempts + 1));
            }
        }
    }
    pendingDrops_.clear();
}

void
PhastlaneNetwork::nicToLocalQueues()
{
    for (NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        auto &nic = nics_[static_cast<size_t>(n)];
        auto &rb = routers_[static_cast<size_t>(n)];
        // The electrical NIC-to-router transfer costs one cycle; the
        // packet becomes launchable in the next arbitration.
        for (int i = 0; i < params_.nicTransfersPerCycle &&
                        !nic.empty() && rb.hasSpace(Port::Local);
             ++i) {
            nic.popHeadInto(
                rb.emplaceEntry(Port::Local, cycle_ + 1).pkt);
        }
    }
}

void
PhastlaneNetwork::launchPhase()
{
    scratch_->flights.clear();
    for (NodeId r = 0; r < mesh_.nodeCount(); ++r)
        launchRouter(r);
}

void
PhastlaneNetwork::launchRouter(NodeId r)
{
    std::vector<Flight> &flights = scratch_->flights;
    {
        auto &rb = routers_[static_cast<size_t>(r)];
        rb.arbitrate(
            cycle_,
            [&](const OpticalPacket &pkt) {
                return desiredPort(r, pkt);
            },
            scratch_->arb);
        for (auto &[entry, out, queue] : scratch_->arb.launches) {
            ++events_.launches;
            ++events_.bufferReads;
            ++pl_.launches;
            if (entry->attempts > 0) {
                ++events_.retransmissions;
                ++pl_.retransmissions;
            }
            if (entry->pkt.firstInjectedAt == kNeverCycle) {
                entry->pkt.firstInjectedAt = cycle_;
                ++counters_.packetsInjected;
            }

            // Built in place: a Flight carries its inline program and
            // return path, so a build-then-push would copy it whole.
            Flight &f = flights.emplace_back();
            f.pkt = entry->pkt;
            // AgeBoost is recomputed at every launch from residence
            // age, never persisted: a retransmission may gain (or, on
            // re-buffering, lose) the promotion.
            f.pkt.boosted =
                params_.admission == AdmissionPolicy::AgeBoost &&
                cycle_ - entry->enqueuedAt >=
                    static_cast<Cycle>(params_.admissionAgeThreshold);
            f.prog = buildProgram(r, entry->pkt);
            f.launchRouter = r;
            f.at = mesh_.neighbor(r, out);
            PL_ASSERT(f.at != kInvalidNode, "launch off the mesh edge");
            f.inPort = opposite(out);
            f.hops = 1;
            f.holder = EntryRef{r, queue, entry->pkt.branchId};
            setClaim(r, out);
            if (observer_)
                observer_->onLaunch(f.pkt, r, out, entry->attempts);
        }
    }
}

void
PhastlaneNetwork::serveTapAt(Flight &f)
{
    DirectSink sink{*this};
    serveTapAtT(f, sink);
}

int
PhastlaneNetwork::unitsOutstanding(const OpticalPacket &pkt) const
{
    if (!pkt.multicast)
        return 1;
    const uint32_t served = std::max(pkt.tapCursor, pkt.dedupBelow);
    const uint32_t total = static_cast<uint32_t>(pkt.taps.size());
    return served >= total ? 0 : static_cast<int>(total - served);
}

void
PhastlaneNetwork::loseUnits(const OpticalPacket &pkt, NodeId router,
                            int units, LostCause cause)
{
    if (units > 0) {
        events_.lostUnits += static_cast<uint64_t>(units);
        PL_ASSERT(outstanding_ >= static_cast<uint64_t>(units),
                  "lost more units than outstanding");
        outstanding_ -= static_cast<uint64_t>(units);
    }
    // The observer fires even for a zero-unit loss: checkers track
    // the buffer-slot release that accompanies the event.
    if (observer_)
        observer_->onLost(pkt.base, pkt.branchId, router, units,
                          cause);
}

void
PhastlaneNetwork::deadRouterArrival(Flight &f)
{
    DirectSink sink{*this};
    deadRouterArrivalT(f, sink);
}

bool
PhastlaneNetwork::handleArrival(Flight &f)
{
    DirectSink sink{*this};
    return handleArrivalT(f, sink);
}

void
PhastlaneNetwork::receiveOrDrop(Flight &f, bool interim)
{
    DirectSink sink{*this};
    receiveOrDropT(f, interim, sink);
}

void
PhastlaneNetwork::collectPassRequests(
    std::vector<Flight> &flights, const std::vector<size_t> &active,
    std::vector<PassRequest> &requests)
{
    // Arrival-side actions; collect pass requests. Iteration order is
    // part of the model's contract: it fixes the order of deferred
    // outcomes (and thus next cycle's backoff RNG draws), so both
    // FCFS engines share this exact loop.
    for (size_t i : active) {
        Flight &f = flights[i];
        if (handleArrival(f))
            continue;
        if (faultRoll(params_.faults, params_.faults.misTurnRate,
                      FaultKind::MisTurn, f.pkt.branchId,
                      static_cast<uint64_t>(cycle_),
                      static_cast<uint64_t>(f.at))) {
            // Pass resonator mis-tuned: instead of transiting, the
            // packet diverts into this router's electrical buffer
            // (or is dropped if it is full) and retries from here.
            ++events_.faultMisTurns;
            receiveOrDrop(f, false);
            continue;
        }
        const ControlGroup g = f.prog.front();
        PassRequest r;
        r.flight = i;
        r.router = f.at;
        const Turn t = g.turn();
        r.out = applyTurn(f.inPort, t);
        r.straight = (t == Turn::Straight);
        r.boosted = f.pkt.boosted;
        requests.push_back(r);
    }
}

void
PhastlaneNetwork::applyPassWin(std::vector<Flight> &flights,
                               size_t flight_idx, NodeId router,
                               Port out, std::vector<size_t> &next)
{
    Flight &f = flights[flight_idx];
    setClaim(router, out);
    ++events_.passTraversals;
    if (observer_)
        observer_->onPass(f.pkt, router);
    returnPaths_.registerHop(router, f.inPort, out);
    f.recordHop(ReturnHop{router, f.inPort, out});
    f.prog.translate();
    f.at = mesh_.neighbor(router, out);
    PL_ASSERT(f.at != kInvalidNode, "route left the mesh");
    f.inPort = opposite(out);
    ++f.hops;
    next.push_back(flight_idx);
}

void
PhastlaneNetwork::propagateSubstepFcfs(std::vector<Flight> &flights)
{
    std::vector<size_t> &active = scratch_->active;
    std::vector<size_t> &next = scratch_->nextActive;
    std::vector<PassRequest> &requests = scratch_->requests;
    std::vector<uint32_t> &order = scratch_->order;

    active.clear();
    for (size_t i = 0; i < flights.size(); ++i)
        active.push_back(i);

    while (!active.empty()) {
        requests.clear();
        next.clear();
        collectPassRequests(flights, active, requests);

        // Resolve claims per (router, output port): group the
        // requests by flat port index. The stable sort reproduces the
        // (router, port)-ordered, arrival-ordered iteration the old
        // std::map performed, without any per-substep allocation.
        const auto flatKey = [&](uint32_t ri) {
            const PassRequest &r = requests[ri];
            return static_cast<size_t>(r.router) * kMeshPorts +
                   portIndex(r.out);
        };
        order.resize(requests.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             return flatKey(a) < flatKey(b);
                         });

        for (size_t g0 = 0; g0 < order.size();) {
            size_t g1 = g0 + 1;
            while (g1 < order.size() &&
                   flatKey(order[g1]) == flatKey(order[g0]))
                ++g1;
            const NodeId router = requests[order[g0]].router;
            const Port out = requests[order[g0]].out;

            size_t winner = SIZE_MAX;
            if (!claimed(router, out)) {
                winner = order[g0];
                if (params_.opticalArbitration ==
                    OpticalArbitration::FixedPriority) {
                    const bool invert =
                        params_.faults.invertStraightPriority;
                    const auto rank = [&](size_t ri) {
                        const PassRequest &r = requests[ri];
                        return std::make_pair(
                            (r.straight || r.boosted) != invert ? 0
                                                                : 1,
                            portIndex(flights[r.flight].inPort));
                    };
                    for (size_t k = g0; k < g1; ++k) {
                        if (rank(order[k]) < rank(winner))
                            winner = order[k];
                    }
                } else {
                    // Rotating priority over input ports (ablation).
                    const int start =
                        static_cast<int>(cycle_ % kMeshPorts);
                    auto rrRank = [&](size_t ri) {
                        const int p = portIndex(
                            flights[requests[ri].flight].inPort);
                        return (p - start + kMeshPorts) % kMeshPorts;
                    };
                    for (size_t k = g0; k < g1; ++k) {
                        if (rrRank(order[k]) < rrRank(winner))
                            winner = order[k];
                    }
                }
            }
            for (size_t k = g0; k < g1; ++k) {
                const size_t ri = order[k];
                if (ri == winner) {
                    applyPassWin(flights, requests[ri].flight, router,
                                 out, next);
                } else {
                    receiveOrDrop(flights[requests[ri].flight], false);
                }
            }
            g0 = g1;
        }
        std::swap(active, next);
    }
}

void
PhastlaneNetwork::propagateBitplane(std::vector<Flight> &flights)
{
    // Word-parallel FCFS wavefront (DESIGN.md §11). Phase A (arrival
    // handling, request collection) is shared verbatim with the scalar
    // engine; phase B replaces its sort-and-group claim resolution:
    //
    //  - one bit per router, one plane per output port, records which
    //    (router, port) pairs are requested (scratch_->reqOnce) and which are
    //    requested more than once (scratch_->reqMulti);
    //  - uncontested grants fall out of plane algebra, 64 routers per
    //    word op: win = once & ~multi & ~claimed;
    //  - the sweep visits requested routers via ctz scans of the OR of
    //    the request planes — ascending router id, then ascending port
    //    index, which is exactly the scalar engine's flat-key order —
    //    so contested ports (the rare case) walk their arrival-ordered
    //    request chain with the same straight-over-turn rank logic.
    //
    // Every observable effect (claims, return-path latches, deferred
    // outcomes, RNG draws, deliveries) is applied in the scalar order;
    // the differential oracle and golden pins hold the two engines to
    // bit-identical results.
    std::vector<size_t> &active = scratch_->active;
    std::vector<size_t> &next = scratch_->nextActive;
    std::vector<PassRequest> &requests = scratch_->requests;

    active.clear();
    for (size_t i = 0; i < flights.size(); ++i)
        active.push_back(i);

    const int words = bitMesh_.words();
    const bool fixed_priority = params_.opticalArbitration ==
                                OpticalArbitration::FixedPriority;
    const bool invert = params_.faults.invertStraightPriority;

    while (!active.empty()) {
        requests.clear();
        next.clear();
        collectPassRequests(flights, active, requests);

        // Build the request planes and, per requested port, the
        // arrival-ordered request chain (epoch-tagged so the flat
        // head/tail tables never need clearing).
        scratch_->reqOnce.clear();
        scratch_->reqMulti.clear();
        scratch_->reqNext.resize(requests.size());
        ++scratch_->reqEpochCur;
        for (uint32_t ri = 0;
             ri < static_cast<uint32_t>(requests.size()); ++ri) {
            const PassRequest &r = requests[ri];
            const size_t key =
                static_cast<size_t>(r.router) * kMeshPorts +
                portIndex(r.out);
            scratch_->reqNext[ri] = UINT32_MAX;
            if (scratch_->reqEpoch[key] != scratch_->reqEpochCur) {
                scratch_->reqEpoch[key] = scratch_->reqEpochCur;
                scratch_->reqHead[key] = ri;
                scratch_->reqTail[key] = ri;
                scratch_->reqOnce.set(r.router, r.out);
            } else {
                scratch_->reqNext[scratch_->reqTail[key]] = ri;
                scratch_->reqTail[key] = ri;
                scratch_->reqMulti.set(r.router, r.out);
            }
        }

        // Uncontested-grant planes: win = once & ~multi & ~claimed.
        for (int pi = 0; pi < kMeshPorts; ++pi) {
            const Port p = portFromIndex(pi);
            bitplane::andnot2(scratch_->reqOnce.plane(p), scratch_->reqMulti.plane(p),
                              scratch_->claims.plane(p), scratch_->reqWin.plane(p),
                              words);
        }

        for (int w = 0; w < words; ++w) {
            uint64_t any = scratch_->reqOnce.plane(Port::North)[w] |
                           scratch_->reqOnce.plane(Port::East)[w] |
                           scratch_->reqOnce.plane(Port::South)[w] |
                           scratch_->reqOnce.plane(Port::West)[w];
            while (any != 0) {
                const int bit = __builtin_ctzll(any);
                any &= any - 1;
                const NodeId router =
                    static_cast<NodeId>(w * 64 + bit);
                const uint64_t m = uint64_t{1} << bit;
                for (int pi = 0; pi < kMeshPorts; ++pi) {
                    const Port out = portFromIndex(pi);
                    if ((scratch_->reqOnce.plane(out)[w] & m) == 0)
                        continue;
                    const size_t key =
                        static_cast<size_t>(router) * kMeshPorts +
                        static_cast<size_t>(pi);
                    if ((scratch_->reqWin.plane(out)[w] & m) != 0) {
                        // Single requester, port free: grant without
                        // touching the rank logic.
                        applyPassWin(flights,
                                     requests[scratch_->reqHead[key]].flight,
                                     router, out, next);
                        continue;
                    }
                    // Contested port, or one pre-claimed in the
                    // launch phase (then every requester loses).
                    uint32_t winner = UINT32_MAX;
                    if (!claimed(router, out)) {
                        winner = scratch_->reqHead[key];
                        if (fixed_priority) {
                            const auto rank = [&](uint32_t ri) {
                                const PassRequest &r = requests[ri];
                                return std::make_pair(
                                    (r.straight || r.boosted) !=
                                            invert
                                        ? 0
                                        : 1,
                                    portIndex(
                                        flights[r.flight].inPort));
                            };
                            for (uint32_t ri = scratch_->reqNext[winner];
                                 ri != UINT32_MAX; ri = scratch_->reqNext[ri]) {
                                if (rank(ri) < rank(winner))
                                    winner = ri;
                            }
                        } else {
                            // Rotating priority over input ports
                            // (ablation).
                            const int start =
                                static_cast<int>(cycle_ % kMeshPorts);
                            const auto rrRank = [&](uint32_t ri) {
                                const int p = portIndex(
                                    flights[requests[ri].flight]
                                        .inPort);
                                return (p - start + kMeshPorts) %
                                       kMeshPorts;
                            };
                            for (uint32_t ri = scratch_->reqNext[winner];
                                 ri != UINT32_MAX; ri = scratch_->reqNext[ri]) {
                                if (rrRank(ri) < rrRank(winner))
                                    winner = ri;
                            }
                        }
                    }
                    for (uint32_t ri = scratch_->reqHead[key];
                         ri != UINT32_MAX; ri = scratch_->reqNext[ri]) {
                        if (ri == winner) {
                            applyPassWin(flights, requests[ri].flight,
                                         router, out, next);
                        } else {
                            receiveOrDrop(
                                flights[requests[ri].flight], false);
                        }
                    }
                }
            }
        }
        std::swap(active, next);
    }
}

void
PhastlaneNetwork::propagateGlobalPriority(std::vector<Flight> &flights)
{
    // Idealized intra-cycle priority (ablation): straight packets
    // evict turning packets' claims regardless of arrival order.
    // Resolved as a monotone fixed point: once blocked, a flight stays
    // blocked, which is conservative when its blocker is itself
    // blocked upstream.
    const size_t n = flights.size();
    std::vector<Itinerary> &its = scratch_->its;
    its.resize(n);
    for (size_t i = 0; i < n; ++i) {
        its[i].claims.clear();
        its[i].entered.clear();
        its[i].inPorts.clear();
        its[i].stop = 0;
    }
    for (size_t i = 0; i < n; ++i) {
        Flight f = flights[i]; // walk a copy of the program
        Itinerary &it = its[i];
        while (true) {
            it.entered.push_back(f.at);
            it.inPorts.push_back(f.inPort);
            const ControlGroup g = f.prog.front();
            if (g.local) {
                it.stop = it.entered.size() - 1;
                break;
            }
            const Port out = applyTurn(f.inPort, g.turn());
            it.claims.push_back(
                ItineraryClaim{f.at, out,
                               g.turn() == Turn::Straight,
                               f.pkt.boosted, f.inPort});
            f.prog.translate();
            f.at = mesh_.neighbor(f.at, out);
            PL_ASSERT(f.at != kInvalidNode, "route left the mesh");
            f.inPort = opposite(out);
        }
    }

    // blocked[i] = index of the first losing claim (SIZE_MAX: none).
    std::vector<size_t> &blocked = scratch_->blocked;
    blocked.assign(n, SIZE_MAX);
    // Rank per claim, lower wins: straight-ness, then input port,
    // then flight index -- packed into one word so the flat winner
    // table below needs a single compare.
    const bool invert = params_.faults.invertStraightPriority;
    const auto packedRank = [invert](const ItineraryClaim &c,
                                     size_t i) {
        return (static_cast<uint64_t>(
                    (c.straight || c.boosted) != invert ? 0 : 1)
                << 62) |
               (static_cast<uint64_t>(portIndex(c.inPort)) << 56) |
               static_cast<uint64_t>(i);
    };
    bool changed = true;
    while (changed) {
        changed = false;
        // Winner per (router, port) among still-active claims;
        // launches (claim index 0 at the launch router) outrank
        // everything, then straight, then turn, then input port.
        // scratch_->bestEpoch tags which flat slots are live this round, so
        // the tables need no clearing between fixed-point rounds.
        ++scratch_->resolveEpoch;
        for (size_t i = 0; i < n; ++i) {
            const auto &cl = its[i].claims;
            const size_t limit = std::min(blocked[i], cl.size());
            for (size_t k = 0; k < limit; ++k) {
                // Ports claimed in the launch phase (buffered-packet
                // launches) outrank every optical arrival and are
                // handled separately below.
                if (claimed(cl[k].router, cl[k].out))
                    continue;
                const size_t key =
                    static_cast<size_t>(cl[k].router) * kMeshPorts +
                    portIndex(cl[k].out);
                const uint64_t rank = packedRank(cl[k], i);
                if (scratch_->bestEpoch[key] != scratch_->resolveEpoch ||
                    rank < scratch_->bestRank[key]) {
                    scratch_->bestEpoch[key] = scratch_->resolveEpoch;
                    scratch_->bestRank[key] = rank;
                    scratch_->bestFlight[key] = static_cast<uint32_t>(i);
                }
            }
        }
        for (size_t i = 0; i < n; ++i) {
            const auto &cl = its[i].claims;
            const size_t limit = std::min(blocked[i], cl.size());
            for (size_t k = 0; k < limit; ++k) {
                const size_t key =
                    static_cast<size_t>(cl[k].router) * kMeshPorts +
                    portIndex(cl[k].out);
                const bool loses =
                    claimed(cl[k].router, cl[k].out) ||
                    scratch_->bestFlight[key] != i;
                if (loses) {
                    blocked[i] = k;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Apply the realized paths in flight order.
    for (size_t i = 0; i < n; ++i) {
        Flight &f = flights[i];
        const Itinerary &it = its[i];
        const size_t stop_idx =
            blocked[i] == SIZE_MAX ? it.stop : blocked[i];
        // Walk the flight to its stopping router, handling taps and
        // the terminal action through the same per-arrival logic.
        for (size_t k = 0;; ++k) {
            PL_ASSERT(f.at == it.entered[k], "itinerary mismatch");
            if (k == stop_idx && blocked[i] != SIZE_MAX) {
                if (failedRouters_[static_cast<size_t>(f.at)] != 0) {
                    deadRouterArrival(f);
                    break;
                }
                // Tap (if any) still happens on arrival, then the
                // blocked packet is received or dropped.
                const ControlGroup gb = f.prog.front();
                if (gb.multicast)
                    serveTapAt(f);
                receiveOrDrop(f, false);
                break;
            }
            if (handleArrival(f))
                break;
            if (faultRoll(params_.faults, params_.faults.misTurnRate,
                          FaultKind::MisTurn, f.pkt.branchId,
                          static_cast<uint64_t>(cycle_),
                          static_cast<uint64_t>(f.at))) {
                // Mis-tuned pass resonator (as in the FCFS model).
                // The itinerary's downstream claims were already
                // resolved as if the packet passed; leaving them
                // claimed is conservative and this ablation model has
                // no lockstep oracle to disagree with.
                ++events_.faultMisTurns;
                receiveOrDrop(f, false);
                break;
            }
            const ControlGroup g = f.prog.front();
            const Port out = applyTurn(f.inPort, g.turn());
            setClaim(f.at, out);
            ++events_.passTraversals;
            if (observer_)
                observer_->onPass(f.pkt, f.at);
            returnPaths_.registerHop(f.at, f.inPort, out);
            f.recordHop(ReturnHop{f.at, f.inPort, out});
            f.prog.translate();
            f.at = mesh_.neighbor(f.at, out);
            f.inPort = opposite(out);
            ++f.hops;
        }
    }
}

void
PhastlaneNetwork::step()
{
    if (useShardedStep()) {
        stepSharded();
        return;
    }
    if (observer_)
        observer_->onCycleBegin(cycle_);
    deliveries_.clear();
    scratch_->claims.clear();
    returnPaths_.beginCycle();

    resolveOutcomes();
    nicToLocalQueues();
    launchPhase();
    switch (params_.wavefront) {
      case WavefrontModel::SubstepFcfs:
        propagateSubstepFcfs(scratch_->flights);
        break;
      case WavefrontModel::BitplaneFcfs:
        propagateBitplane(scratch_->flights);
        break;
      case WavefrontModel::GlobalPriority:
        propagateGlobalPriority(scratch_->flights);
        break;
    }

    events_.routerCycles += static_cast<uint64_t>(mesh_.nodeCount());
    if (observer_)
        observer_->onCycleEnd(cycle_);
    ++cycle_;
}

} // namespace phastlane::core
