/**
 * @file
 * Design-space explorer: for a chosen wavelength count, clock
 * frequency and optical power budget, report what the analytic models
 * of Section 3 say -- per-cycle hop reach for each scaling scenario,
 * peak optical power, the power-limited hop count, and the router
 * area against the node budgets. This is the paper's Section 3
 * methodology packaged as a tool.
 *
 *   ./examples/design_explorer [--wavelengths 64] [--freq 4.0]
 *       [--efficiency 0.98] [--budget 32]
 */

#include <cstdio>

#include "common/config.hpp"
#include "common/table.hpp"
#include "optical/area_model.hpp"
#include "optical/power_model.hpp"
#include "optical/timing.hpp"

using namespace phastlane;
using namespace phastlane::optical;

int
main(int argc, char **argv)
{
    const Config args = Config::fromArgs(argc, argv);
    const int wl = static_cast<int>(args.getInt("wavelengths", 64));
    const double freq = args.getDouble("freq", 4.0);
    const double eff = args.getDouble("efficiency", 0.98);
    const double budget = args.getDouble("budget", 32.0);

    std::printf("design point: %d wavelengths, %.1f GHz, %.1f%% "
                "crossing efficiency, %.0f W optical budget\n\n",
                wl, freq, 100.0 * eff, budget);

    // Timing: how far can a packet go per cycle?
    TextTable timing({"scaling", "max hops/cycle", "PP [ps]",
                      "PA [ps]", "1-hop path [ps]",
                      "max path [ps]"});
    PeakPowerModel power;
    int min_hops = 99;
    for (Scaling s : {Scaling::Optimistic, Scaling::Average,
                      Scaling::Pessimistic}) {
        RouterTimingModel m(s, wl);
        const int hops = m.maxHopsPerCycle(freq);
        min_hops = std::min(min_hops, hops);
        timing.addRow({scalingName(s),
                       TextTable::num(int64_t{hops}),
                       TextTable::num(m.packetPass().totalPs(), 1),
                       TextTable::num(m.packetAccept().totalPs(), 1),
                       TextTable::num(m.pathDelayPs(1), 1),
                       TextTable::num(
                           hops > 0 ? m.pathDelayPs(hops) : 0.0, 1)});
    }
    timing.print();

    // Power: what does the timing-derived reach cost, and what does
    // the budget allow?
    const int power_hops = power.maxHopsWithinBudget(eff, wl, budget);
    std::printf("\npeak optical power at the timing-limited reach:\n");
    TextTable pw({"hops", "peak power [W]", "within budget"});
    for (int h = 1; h <= 8; ++h) {
        pw.addRow({TextTable::num(int64_t{h}),
                   TextTable::num(power.peakPowerW(eff, wl, h), 1),
                   power.peakPowerW(eff, wl, h) <= budget ? "yes"
                                                          : "no"});
    }
    pw.print();
    std::printf("power-limited hop count: %d\n", power_hops);

    // Area.
    AreaModel area;
    ChipGeometry geom;
    const RouterArea a = area.evaluate(wl);
    std::printf("\nrouter area: %.2f mm^2 (port %.2f mm + internal "
                "%.2f mm per edge)\n",
                a.areaMm2, a.portLengthMm, a.internalLengthMm);
    std::printf("fits single-core node (%.1f mm^2): %s; dual (%.1f): "
                "%s; quad (%.1f): %s\n",
                geom.nodeAreaMm2,
                area.fitsNode(wl, geom.nodeAreaMm2) ? "yes" : "no",
                geom.dualNodeAreaMm2,
                area.fitsNode(wl, geom.dualNodeAreaMm2) ? "yes" : "no",
                geom.quadNodeAreaMm2,
                area.fitsNode(wl, geom.quadNodeAreaMm2) ? "yes"
                                                        : "no");

    // Verdict in the paper's terms.
    const int usable = std::min(min_hops, power_hops);
    std::printf("\nusable per-cycle reach (min of timing and power): "
                "%d hops\n", usable);
    return 0;
}
