/**
 * @file
 * Adversarial source mixes layered on top of the synthetic patterns
 * (DESIGN.md §14): a few sources hammer the network while the rest
 * behave, which is exactly the load shape that starves turning
 * packets under the straight-over-turn optical priority. Used by the
 * fairness experiments to stress the admission-control policies.
 *
 * The mix modifies two things per source: its injection-rate scale
 * and (optionally) its destination. Both are deterministic functions
 * of the node id, so a mix adds no RNG draws of its own — with
 * AdversarialMix::None the driver's draw sequence is bit-identical
 * to a run without this layer, which keeps the pinned goldens and
 * the differential oracle streams stable.
 */

#ifndef PHASTLANE_TRAFFIC_ADVERSARIAL_HPP
#define PHASTLANE_TRAFFIC_ADVERSARIAL_HPP

#include <string>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace phastlane::traffic {

/** Adversarial source mix. */
enum class AdversarialMix : uint8_t {
    None,         ///< every source behaves identically
    ElephantMice, ///< few high-rate fixed-destination elephants
    Tenants,      ///< one aggressive tenant vs. polite co-tenants
};

/** Display name ("none", "elephant", "tenant"). */
const char *mixName(AdversarialMix m);

/** Parse a mix name; fatal() on unknown names. */
AdversarialMix parseMix(const std::string &name);

/** Configuration of one adversarial mix. */
struct AdversarialConfig {
    AdversarialMix mix = AdversarialMix::None;

    /** ElephantMice: fraction of sources that are elephants. */
    double elephantFraction = 0.125;

    /** ElephantMice: elephants' injection-rate multiplier. */
    double elephantBoost = 4.0;

    /** Tenants: number of tenants; node n belongs to tenant
     *  n % tenantCount. */
    int tenantCount = 2;

    /** Tenants: tenant 0's injection-rate multiplier (the aggressive
     *  tenant; the others stay at the base rate). */
    double tenantBoost = 4.0;
};

/** True when node @p n is an elephant under @p cfg (elephants are
 *  spread across the mesh by striding, not clustered at node 0). */
bool isElephant(const AdversarialConfig &cfg, NodeId n,
                int node_count);

/**
 * Injection-rate multiplier for source @p n. 1.0 for every node when
 * the mix is None; elephants / the aggressive tenant get their boost.
 */
double rateScale(const AdversarialConfig &cfg, NodeId n,
                 int node_count);

/**
 * Destination override for source @p n, or kInvalidNode when the mix
 * does not pin one (the caller falls through to the configured
 * pattern). Draws no RNG values when returning kInvalidNode:
 *  - ElephantMice: elephants target the node diagonally opposite
 *    their own (long paths, many turns), mice fall through.
 *  - Tenants: the aggressive tenant targets its tenant's first node
 *    (an intra-tenant hotspot), the others fall through.
 */
NodeId mixDestination(const AdversarialConfig &cfg, NodeId src,
                      const MeshTopology &mesh);

} // namespace phastlane::traffic

#endif // PHASTLANE_TRAFFIC_ADVERSARIAL_HPP
