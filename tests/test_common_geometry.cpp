/**
 * @file
 * Mesh topology and dimension-order routing tests, parameterized over
 * several mesh shapes.
 */

#include <gtest/gtest.h>

#include "common/geometry.hpp"

namespace phastlane {
namespace {

TEST(Geometry, CoordRoundTrip8x8)
{
    MeshTopology mesh(8, 8);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n)
        EXPECT_EQ(mesh.nodeAt(mesh.coordOf(n)), n);
}

TEST(Geometry, RowMajorLayout)
{
    MeshTopology mesh(8, 8);
    EXPECT_EQ(mesh.nodeAt({0, 0}), 0);
    EXPECT_EQ(mesh.nodeAt({7, 0}), 7);
    EXPECT_EQ(mesh.nodeAt({0, 1}), 8);
    EXPECT_EQ(mesh.nodeAt({7, 7}), 63);
}

TEST(Geometry, EdgeNeighborsAreInvalid)
{
    MeshTopology mesh(8, 8);
    EXPECT_EQ(mesh.neighbor(0, Port::South), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(0, Port::West), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(63, Port::North), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(63, Port::East), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(0, Port::North), 8);
    EXPECT_EQ(mesh.neighbor(0, Port::East), 1);
}

TEST(Geometry, NeighborsAreSymmetric)
{
    MeshTopology mesh(8, 8);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        for (Port d : kMeshDirections) {
            const NodeId m = mesh.neighbor(n, d);
            if (m != kInvalidNode)
                EXPECT_EQ(mesh.neighbor(m, opposite(d)), n);
        }
    }
}

class MeshShapes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshShapes, XyRouteLengthEqualsHopDistance)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            EXPECT_EQ(static_cast<int>(mesh.xyRoute(a, b).size()),
                      mesh.hopDistance(a, b));
        }
    }
}

TEST_P(MeshShapes, XyRouteGoesXThenY)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            bool seen_y = false;
            for (Port p : mesh.xyRoute(a, b)) {
                const bool is_y =
                    p == Port::North || p == Port::South;
                if (is_y)
                    seen_y = true;
                else
                    EXPECT_FALSE(seen_y)
                        << "X move after a Y move on route " << a
                        << "->" << b;
            }
        }
    }
}

TEST_P(MeshShapes, XyPathEndsAtDestination)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            const auto path = mesh.xyPath(a, b);
            if (a == b) {
                EXPECT_TRUE(path.empty());
            } else {
                ASSERT_FALSE(path.empty());
                EXPECT_EQ(path.back(), b);
            }
        }
    }
}

TEST_P(MeshShapes, XyFirstHopMatchesRoute)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            const auto route = mesh.xyRoute(a, b);
            if (a == b)
                EXPECT_EQ(mesh.xyFirstHop(a, b), Port::Local);
            else
                EXPECT_EQ(mesh.xyFirstHop(a, b), route.front());
        }
    }
}

TEST_P(MeshShapes, XyPathStaysInsideMesh)
{
    const auto [w, h] = GetParam();
    MeshTopology mesh(w, h);
    for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
        for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
            for (NodeId n : mesh.xyPath(a, b))
                EXPECT_TRUE(mesh.valid(n));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshShapes,
    ::testing::Values(std::pair{2, 2}, std::pair{4, 4}, std::pair{8, 8},
                      std::pair{4, 8}, std::pair{8, 2},
                      std::pair{1, 8}, std::pair{8, 1}));

TEST(Geometry, HopDistanceIsAMetric)
{
    MeshTopology mesh(8, 8);
    for (NodeId a = 0; a < 64; a += 7) {
        for (NodeId b = 0; b < 64; b += 5) {
            EXPECT_EQ(mesh.hopDistance(a, b), mesh.hopDistance(b, a));
            EXPECT_EQ(mesh.hopDistance(a, a), 0);
            for (NodeId c = 0; c < 64; c += 11) {
                EXPECT_LE(mesh.hopDistance(a, c),
                          mesh.hopDistance(a, b) +
                              mesh.hopDistance(b, c));
            }
        }
    }
}

TEST(Geometry, MaxDistanceIn8x8Is14)
{
    MeshTopology mesh(8, 8);
    int max_d = 0;
    for (NodeId a = 0; a < 64; ++a)
        for (NodeId b = 0; b < 64; ++b)
            max_d = std::max(max_d, mesh.hopDistance(a, b));
    EXPECT_EQ(max_d, 14);
}

} // namespace
} // namespace phastlane
