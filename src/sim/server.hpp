/**
 * @file
 * The simulation server core (DESIGN.md §15): multiplexes workload
 * streams from multiple concurrent clients onto one live network,
 * deterministically.
 *
 * Transport-agnostic: the socket daemon (examples/netsim_serve.cpp)
 * and tests drive this class directly. Three mechanisms make a served
 * run byte-identical to an offline replay of the same records, no
 * matter how client messages interleave in wall-clock time:
 *
 *  - **At-most-once injection** via the ReliableNic sequence idiom:
 *    every submitted chunk carries a per-client sequence number; a
 *    chunk at or below the last accepted sequence is acknowledged
 *    again and discarded, so client retransmits (lost acks) never
 *    double-inject.
 *
 *  - **Watermark-gated lockstep**: a client whose last submitted
 *    record has cycle W implicitly promises every future record has
 *    cycle >= W, so the simulation may advance through cycle C only
 *    once min(W) over unfinished clients exceeds C. Arrival timing
 *    can therefore only delay the simulation, never reorder it.
 *
 *  - **Canonical merge order**: records due at the same cycle are
 *    released ascending by client id, then in per-client submission
 *    order -- exactly the order `netsim_serve --merge` writes, so the
 *    offline comparator replays the identical packet sequence.
 *
 * Backpressure: released records flow through the same bounded
 * ReplayCore window as offline replay, and each client's inbox of
 * not-yet-released records defers its acknowledgements once it grows
 * past a soft cap -- a stop-and-wait client then stalls until the
 * simulation catches up, bounding server memory under open-loop load.
 */

#ifndef PHASTLANE_SIM_SERVER_HPP
#define PHASTLANE_SIM_SERVER_HPP

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "sim/replay.hpp"

namespace phastlane::sim {

/** Knobs for SimServer. */
struct ServerOptions {
    /** Sessions that must open before the simulation starts; the
     *  watermark of a yet-unconnected client is implicitly 0. */
    size_t expectedSessions = 1;

    /** Release-window bound shared with ReplayOptions::maxPending;
     *  must match the offline replay's for byte-identical results. */
    size_t maxPending = 4096;

    /** Per-session inbox size above which acks are withheld. */
    size_t inboxSoftCap = 8192;

    /** Drain deadline in cycles (counted from construction). */
    Cycle maxCycles = 10000000;

    /** Invoke the snapshot hook every this many cycles (0 = never). */
    Cycle snapshotInterval = 0;
};

/**
 * One live network serving chunked record streams from N clients.
 * Drive with openSession()/submit()/finish(), call pump() after
 * feeding input, and collect acknowledgements from takeReadyAcks().
 */
class SimServer
{
  public:
    SimServer(Network &net, const ServerOptions &opts = {});

    /** An acknowledgement owed to a client. */
    struct Ack {
        uint64_t clientId = 0;
        uint64_t seq = 0;
        bool duplicate = false; ///< re-ack of an already-seen chunk
    };

    /**
     * Open a session for @p client_id (ids must be distinct; they
     * define the canonical merge order). Returns "" or an error.
     */
    std::string openSession(uint64_t client_id);

    /**
     * Submit chunk @p seq (1-based, consecutive) of cycle-sorted
     * records. seq <= the last accepted sequence is a duplicate:
     * discarded but re-acknowledged (at-most-once). A gap or a
     * cycle regression is an error. Returns "" or an error.
     */
    std::string submit(uint64_t client_id, uint64_t seq,
                       const std::vector<traffic::TraceRecord> &records);

    /** End of stream marker, consuming the next sequence number. */
    std::string finish(uint64_t client_id, uint64_t seq);

    /**
     * Advance the simulation as far as watermarks, the release
     * window, and the cycle budget allow, then promote deferred
     * acknowledgements. Cheap when nothing can progress.
     */
    void pump();

    /** Acknowledgements ready to transmit, in issue order. */
    std::vector<Ack> takeReadyAcks();

    bool allSessionsOpen() const
    {
        return sessions_.size() >= opts_.expectedSessions;
    }
    bool allFinished() const;

    /** True once every session finished and the network drained (or
     *  the cycle budget ran out -- check hitCycleLimit()). */
    bool done() const { return done_; }
    bool hitCycleLimit() const { return hitCycleLimit_; }

    /** Replay statistics so far (final once done()). */
    ReplayStats stats() const;

    /** Records accepted from @p client_id so far. */
    uint64_t acceptedRecords(uint64_t client_id) const;

    /** Acknowledgements currently withheld from @p client_id for
     *  backpressure. A transport can tell the client its ack is
     *  deferred (not lost) so it neither retransmits nor times out. */
    size_t deferredAckCount(uint64_t client_id) const;

    Network &net() { return net_; }

    /** Called every ServerOptions::snapshotInterval cycles (from
     *  pump) with the current cycle -- the daemon publishes metrics /
     *  heatmap snapshots from here. */
    void setSnapshotHook(std::function<void(Cycle)> hook)
    {
        snapshotHook_ = std::move(hook);
    }

  private:
    struct Session {
        std::deque<traffic::TraceRecord> inbox;
        uint64_t lastSeq = 0;
        uint64_t accepted = 0;
        Cycle watermark = 0; ///< cycle of the last submitted record
        bool finished = false;
        std::vector<uint64_t> deferredAcks;
    };

    /** Smallest watermark over unfinished sessions (kNeverCycle when
     *  all finished); cycles strictly below it are fully known. */
    Cycle safeHorizon() const;
    void releaseDue();
    void promoteAcks();

    Network &net_;
    ServerOptions opts_;
    ReplayCore core_;
    std::map<uint64_t, Session> sessions_; ///< keyed by client id
    std::vector<Ack> readyAcks_;
    std::function<void(Cycle)> snapshotHook_;
    Cycle deadline_ = 0;
    Cycle nextSnapshot_ = 0;
    bool done_ = false;
    bool hitCycleLimit_ = false;
};

} // namespace phastlane::sim

#endif // PHASTLANE_SIM_SERVER_HPP
