/**
 * @file
 * Virtual Circuit Tree Multicasting (Jerger, Peh & Lipasti, ISCA
 * 2008), as used by the paper's electrical baseline for broadcasts.
 *
 * Each router keeps a small table mapping a tree id to the set of
 * output ports (and the local ejection) that tree uses at this router.
 * The first broadcast of a source is sent as unicast clones that
 * install table entries along their dimension-order routes; once every
 * clone has been delivered the tree is complete, and subsequent
 * broadcasts travel as a single flit that replicates at the table's
 * forks.
 */

#ifndef PHASTLANE_ELECTRICAL_VCTM_HPP
#define PHASTLANE_ELECTRICAL_VCTM_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "electrical/flit.hpp"

namespace phastlane::electrical {

/** Output set of one tree at one router. */
struct TreeEntry {
    /** Bitmask over mesh output ports (bit = portIndex). */
    uint8_t meshPorts = 0;

    /** Deliver to the local node here. */
    bool local = false;
};

/**
 * The per-router VCTM table with FIFO replacement.
 */
class VctmTable
{
  public:
    explicit VctmTable(int capacity);

    /** Lookup; nullptr on miss. */
    const TreeEntry *find(TreeId tree) const;

    /** Add @p port to the tree's mesh-output set (installing the
     *  entry if needed; may evict the oldest other tree). */
    void installPort(TreeId tree, Port port);

    /** Mark local delivery for the tree. */
    void installLocal(TreeId tree);

    size_t size() const { return entries_.size(); }

    /** Trees evicted so far (diagnostic; evictions while a tree is in
     *  use indicate an undersized table). */
    uint64_t evictions() const { return evictions_; }

  private:
    TreeEntry &entry(TreeId tree);

    size_t capacity_;
    std::unordered_map<TreeId, TreeEntry> entries_;
    std::vector<TreeId> fifo_;
    uint64_t evictions_ = 0;
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_VCTM_HPP
