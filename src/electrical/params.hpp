/**
 * @file
 * Configuration of the electrical baseline network (paper Table 2).
 *
 * The baseline is an aggressive input-queued virtual-channel router
 * optimized for both latency and bandwidth: single-flit (80-byte)
 * packets, 10 one-entry VCs per port with wait-for-tail credit, iSLIP
 * VC and switch allocation, input speedup 4 / output speedup 1, and a
 * total per-hop latency of 2 or 3 cycles (modeling route lookahead and
 * pipeline speculation), with ejection bypassing the crossbar.
 */

#ifndef PHASTLANE_ELECTRICAL_PARAMS_HPP
#define PHASTLANE_ELECTRICAL_PARAMS_HPP

#include <cstdint>

namespace phastlane::electrical {

/**
 * Electrical baseline parameters (defaults per Table 2, 3-cycle
 * configuration).
 */
struct ElectricalParams {
    int meshWidth = 8;
    int meshHeight = 8;

    /** Virtual channels per input port (Table 2: 10). */
    int vcsPerPort = 10;

    /** Flit entries per VC (Table 2: 1; wait-for-tail credit). */
    int vcDepth = 1;

    /**
     * Total per-hop latency in cycles, link included (Table 2: total
     * router delay 2 or 3 with speculation and lookahead).
     */
    int routerDelay = 3;

    /** Crossbar input speedup (Table 2: 4). */
    int inputSpeedup = 4;

    /** Crossbar output speedup (Table 2: 1). */
    int outputSpeedup = 1;

    /** NIC queue entries (Table 2: 50). */
    int nicQueueEntries = 50;

    /** iSLIP grant/accept iterations for switch allocation. */
    int allocIterations = 2;

    /** Virtual Circuit Tree Multicasting table entries per router. */
    int vctmTableEntries = 128;

    /** Cycles without progress before the watchdog trips. */
    uint64_t watchdogCycles = 100000;

    uint64_t seed = 1;

    int nodeCount() const { return meshWidth * meshHeight; }
};

} // namespace phastlane::electrical

#endif // PHASTLANE_ELECTRICAL_PARAMS_HPP
