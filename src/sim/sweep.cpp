#include "sim/sweep.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/log.hpp"
#include "core/network.hpp"
#include "obs/observe.hpp"
#include "sim/multisim.hpp"
#include "sim/parallel.hpp"

namespace phastlane::sim {

std::vector<double>
defaultRateGrid()
{
    // Generated from integer counters so the endpoints are exact:
    // repeated floating-point accumulation (r += 0.01) drifts enough
    // that the grid's length and endpoints depend on rounding.
    std::vector<double> rates;
    for (int m = 1; m <= 9; ++m) // 0.01 .. 0.09 step 0.01
        rates.push_back(m / 100.0);
    for (int m = 100; m <= 500; m += 25) // 0.10 .. 0.50 step 0.025
        rates.push_back(m / 1000.0);
    return rates;
}

bool
applyAdmissionFlags(const Config &args, core::PhastlaneParams &params)
{
    bool any = false;
    if (args.has("admission")) {
        const std::string name = args.getString("admission", "none");
        if (name == "none") {
            params.admission = core::AdmissionPolicy::None;
        } else if (name == "token") {
            params.admission = core::AdmissionPolicy::TokenBucket;
        } else if (name == "age") {
            params.admission = core::AdmissionPolicy::AgeBoost;
        } else {
            fatal("--admission must be none|token|age, got '%s'",
                  name.c_str());
        }
        any = true;
    }
    const auto intFlag = [&](const char *key, int &field, int lo) {
        if (!args.has(key))
            return;
        const int v = static_cast<int>(args.getInt(key, 0));
        if (v < lo)
            fatal("--%s must be >= %d, got %d", key, lo, v);
        field = v;
        any = true;
    };
    intFlag("admission-burst", params.admissionBurst, 1);
    intFlag("admission-period", params.admissionPeriod, 1);
    intFlag("admission-age", params.admissionAgeThreshold, 0);
    return any;
}

std::vector<std::string>
admissionFlagNames()
{
    return {"admission", "admission-burst", "admission-period",
            "admission-age"};
}

bool
applyTrafficFlags(const Config &args, traffic::PatternOptions &opts,
                  traffic::AdversarialConfig &adv)
{
    bool any = false;
    const auto rate = [&](const char *key, double &field) {
        if (!args.has(key))
            return;
        const double v = args.getDouble(key, 0.0);
        if (v < 0.0 || v > 1.0)
            fatal("--%s must be in [0, 1], got %g", key, v);
        field = v;
        any = true;
    };
    rate("hotspot-fraction", opts.hotspotFraction);
    if (args.has("hotspot-node")) {
        opts.hotspotNode =
            static_cast<NodeId>(args.getInt("hotspot-node", 0));
        any = true;
    }
    if (args.has("mix")) {
        adv.mix = traffic::parseMix(args.getString("mix", "none"));
        any = true;
    }
    rate("elephant-fraction", adv.elephantFraction);
    const auto boost = [&](const char *key, double &field) {
        if (!args.has(key))
            return;
        const double v = args.getDouble(key, 1.0);
        if (v < 1.0)
            fatal("--%s must be >= 1, got %g", key, v);
        field = v;
        any = true;
    };
    boost("elephant-boost", adv.elephantBoost);
    boost("tenant-boost", adv.tenantBoost);
    if (args.has("tenant-count")) {
        const int v = static_cast<int>(args.getInt("tenant-count", 2));
        if (v < 1)
            fatal("--tenant-count must be >= 1, got %d", v);
        adv.tenantCount = v;
        any = true;
    }
    return any;
}

std::vector<std::string>
trafficFlagNames()
{
    return {"hotspot-fraction", "hotspot-node",  "mix",
            "elephant-fraction", "elephant-boost", "tenant-count",
            "tenant-boost"};
}

namespace {

/** Simulate one sweep point; self-contained and thread-safe (its own
 *  network, driver, and RNG). */
SweepPoint
runPoint(const NetConfig &config, const SweepConfig &sweep,
         double rate)
{
    auto net = config.make(sweep.seed);
    traffic::SyntheticConfig cfg;
    cfg.pattern = sweep.pattern;
    cfg.patternOpts = sweep.patternOpts;
    cfg.adversarial = sweep.adversarial;
    cfg.injectionRate = rate;
    cfg.warmupCycles = sweep.warmupCycles;
    cfg.measureCycles = sweep.measureCycles;
    cfg.seed = sweep.seed;
    traffic::SyntheticDriver driver(*net, cfg);
    SweepPoint pt;
    pt.injectionRate = rate;
    // Each point records into its own registry so parallel shards
    // never share observer state; runSweep merges them in rate order.
    std::optional<obs::MetricsObserver> observer;
    auto *pl = dynamic_cast<core::PhastlaneNetwork *>(net.get());
    if (sweep.collectMetrics && pl) {
        observer.emplace(*pl, pt.metrics);
        pl->setObserver(&*observer);
    }
    pt.result = driver.run();
    if (pl && observer)
        pl->setObserver(nullptr);
    return pt;
}

/** One sweep point under batched execution: its own network and
 *  step-wise SyntheticDriver (DESIGN.md §13). */
class SweepJob final : public MultiSim::Job
{
  public:
    SweepJob(const NetConfig &config, const SweepConfig &sweep,
             double rate)
        : net_(config.make(sweep.seed)), rate_(rate)
    {
        traffic::SyntheticConfig cfg;
        cfg.pattern = sweep.pattern;
        cfg.patternOpts = sweep.patternOpts;
        cfg.adversarial = sweep.adversarial;
        cfg.injectionRate = rate;
        cfg.warmupCycles = sweep.warmupCycles;
        cfg.measureCycles = sweep.measureCycles;
        cfg.seed = sweep.seed;
        driver_.emplace(*net_, cfg);
        driver_->begin();
    }

    bool batchEligible() const { return batchable(*net_); }

    core::PhastlaneNetwork &network() override
    {
        return static_cast<core::PhastlaneNetwork &>(*net_);
    }
    bool done() override { return driver_->done(); }
    void preStep() override { driver_->preStep(); }
    void postStep() override { driver_->postStep(); }

    SweepPoint finishPoint()
    {
        SweepPoint pt;
        pt.injectionRate = rate_;
        pt.result = driver_->finish();
        return pt;
    }

  private:
    std::unique_ptr<Network> net_;
    std::optional<traffic::SyntheticDriver> driver_;
    double rate_;
};

/** Batched serial sweep: gangs of SweepJobs in rate order. Returns
 *  nullopt when the configuration cannot batch (metrics collection
 *  wants an observer; shards / GlobalPriority / non-Phastlane nets
 *  take the per-instance path). */
std::optional<std::vector<SweepPoint>>
runSweepBatched(const NetConfig &config, const SweepConfig &sweep)
{
    if (sweep.collectMetrics)
        return std::nullopt;
    const size_t n = sweep.rates.size();
    const int limit = sweep.batch <= 0 ? MultiSim::kDefaultBatch
                                       : sweep.batch;
    std::vector<SweepPoint> points;
    size_t done = 0;
    while (done < n) {
        const size_t gang =
            std::min(n - done, static_cast<size_t>(limit));
        std::vector<std::unique_ptr<SweepJob>> jobs;
        jobs.reserve(gang);
        MultiSim ms(limit);
        for (size_t i = 0; i < gang; ++i) {
            jobs.push_back(std::make_unique<SweepJob>(
                config, sweep, sweep.rates[done + i]));
            if (!jobs.back()->batchEligible()) {
                // Probe found an ineligible configuration: the whole
                // sweep shares it, so fall back entirely.
                return std::nullopt;
            }
            ms.add(*jobs.back());
        }
        ms.runAll();
        for (auto &job : jobs) {
            points.push_back(job->finishPoint());
            // Same truncation as the serial loop: points after the
            // first saturated one are dropped (later gangs are never
            // built at all).
            if (sweep.stopAtSaturation &&
                points.back().result.saturated) {
                return points;
            }
        }
        done += gang;
    }
    return points;
}

} // namespace

std::vector<SweepPoint>
runSweep(const NetConfig &config, const SweepConfig &sweep)
{
    const size_t n = sweep.rates.size();
    const int threads = resolveThreadCount(sweep.threads);

    if (threads <= 1 || n <= 1) {
        // Serial execution: gang the points' networks through the
        // batched lockstep backend when the configuration allows it
        // (bit-identical results; see DESIGN.md §13).
        if (sweep.batch != 1 && n > 1) {
            if (auto batched = runSweepBatched(config, sweep))
                return *batched;
        }
        std::vector<SweepPoint> points;
        for (double rate : sweep.rates) {
            points.push_back(runPoint(config, sweep, rate));
            if (sweep.stopAtSaturation && points.back().result.saturated)
                break;
        }
        return points;
    }

    std::vector<SweepPoint> points(n);
    if (!sweep.stopAtSaturation) {
        parallelFor(
            n,
            [&](size_t i) {
                points[i] =
                    runPoint(config, sweep, sweep.rates[i]);
            },
            threads);
        return points;
    }

    // Early exit must survive parallelism: simulate in thread-sized
    // waves and truncate at the first saturated point, matching the
    // serial result exactly (points up to and including it).
    size_t done = 0;
    while (done < n) {
        const size_t batch =
            std::min(n - done, static_cast<size_t>(threads));
        parallelFor(
            batch,
            [&](size_t i) {
                points[done + i] = runPoint(config, sweep,
                                            sweep.rates[done + i]);
            },
            threads);
        for (size_t i = 0; i < batch; ++i) {
            if (points[done + i].result.saturated) {
                points.resize(done + i + 1);
                return points;
            }
        }
        done += batch;
    }
    return points;
}

double
saturationThroughput(const std::vector<SweepPoint> &points)
{
    double best = 0.0;
    for (const auto &pt : points)
        best = std::max(best, pt.result.acceptedRate);
    return best;
}

obs::MetricsRegistry
mergedMetrics(const std::vector<SweepPoint> &points)
{
    obs::MetricsRegistry total;
    for (const auto &pt : points)
        total.merge(pt.metrics);
    return total;
}

} // namespace phastlane::sim
